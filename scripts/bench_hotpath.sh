#!/usr/bin/env bash
# Build and run the hot-path benchmark gate. Writes BENCH_hotpath.json at
# the repo root and exits non-zero if the perf gate fails (see
# crates/bench/src/bin/hotpath.rs for the thresholds).
#
#   IORCH_BENCH_QUICK=1 scripts/bench_hotpath.sh   # fast, noisier smoke run
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline -p iorch-bench --bin hotpath
exec ./target/release/hotpath
