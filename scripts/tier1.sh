#!/usr/bin/env bash
# Tier-1 verification: offline release build + the full test suite,
# plus formatting and lint gates (rustfmt, clippy with -D warnings).
# This is the gate every PR must keep green (see ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release --offline
cargo clippy --workspace --offline --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace
cargo test -q --offline
cargo test -q --offline --workspace

# The convergence oracle (crash the control plane at every tick boundary
# of every fault scenario) is too heavy for the debug suite; its tests
# are #[ignore]d there and run here in release.
cargo test -q --offline -p iorch-bench --release --test convergence -- --include-ignored

# The trace recorder must also build and pass with the instrumentation
# compiled out (the production hot-path configuration).
export RUSTFLAGS="${RUSTFLAGS:-} --cfg iorch_trace_off"
cargo build --release --offline --workspace
cargo test -q --offline --workspace

echo "tier1 OK"
