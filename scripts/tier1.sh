#!/usr/bin/env bash
# Tier-1 verification: offline release build + the full test suite,
# plus formatting and lint gates (rustfmt, clippy with -D warnings).
# This is the gate every PR must keep green (see ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release --offline
cargo clippy --workspace --offline --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace
cargo test -q --offline
cargo test -q --offline --workspace

# The convergence oracle (crash the control plane at every tick boundary
# of every fault scenario) is too heavy for the debug suite; its tests
# are #[ignore]d there and run here in release.
cargo test -q --offline -p iorch-bench --release --test convergence -- --include-ignored

# Cluster-wide convergence oracle: crash the controller and each node at
# every tick of the cluster fault scenarios (node_crash, net_partition),
# seeds {7, 42, 1337}; the recovered steady-state digest must be
# byte-identical to the no-extra-fault run's.
cargo test -q --offline -p iorch-bench --release --test cluster_convergence -- --include-ignored

# Policy-redesign byte-identity oracle: every plane expressed as a policy
# set must replay every tracedump scenario byte-identically to the frozen
# legacy plane, seed-swept (the exhaustive sweep is #[ignore]d in debug).
cargo test -q --offline -p iorch-bench --release --test policy_equivalence -- --include-ignored

# Named-policy-set ablation sweep: all seven sets must provision and
# complete the bursty run on one engine (IORCH_ABLATION=named keeps the
# parameter ablations out of the gate).
cargo build --release --offline -p iorch-bench --benches
IORCH_ABLATION=named cargo bench --offline -p iorch-bench --bench exp_ablation

# Declarative-runner smoke sweep: every named experiment runs at the
# smoke profile and every emitted JSON artifact must pass schema
# validation (required keys, finite numbers, nonzero sample counts).
cargo build --release --offline -p iorch-bench --bin experiments
rm -rf target/exp-smoke
target/release/experiments run all --profile smoke --seed 42 --out target/exp-smoke --quiet
target/release/experiments validate target/exp-smoke

# The cluster family (part of `run all` above) doubles as a gate: it
# fails unless every (nodes, fault) cell converges to the no-fault
# steady state with zero duplicated ownership, and it regenerates
# BENCH_cluster.json at the repo root.
target/release/experiments validate BENCH_cluster.json

# Control-plane scaling gate: `run all` skips wall-clock (timing) specs,
# so the scale experiment runs by name here. It regenerates
# BENCH_scale.json (schema-validated below, like every other artifact)
# and fails unless the 1024-domain steady-state control tick stays
# within 4x of the 16-domain tick.
rm -rf target/exp-scale
target/release/experiments run scale --profile smoke --seed 42 --out target/exp-scale
target/release/experiments validate target/exp-scale
target/release/experiments validate BENCH_scale.json

# Golden-summary regression suite: byte-identical smoke artifacts across
# repeated runs and seeds {7, 42, 1337}, plus the live-telemetry
# non-interference contract (the exhaustive sweep is #[ignore]d in debug).
cargo test -q --offline -p iorch-bench --release --test experiment_determinism -- --include-ignored

# Timer-wheel differential oracle: the wheel scheduler must fire the
# exact same events in the exact same order as the frozen binary-heap
# engine, across randomized op scripts (run in release for seed volume).
cargo test -q --offline -p iorch-simcore --release --test scheduler_differential

# Hot-path perf gate: regenerates BENCH_hotpath.json at full measure and
# fails if any gated row (store write/read, watch fan-out, batched
# fan-out, control tick, scheduler churn) drops below its threshold.
scripts/bench_hotpath.sh

# The trace recorder must also build and pass with the instrumentation
# compiled out (the production hot-path configuration).
export RUSTFLAGS="${RUSTFLAGS:-} --cfg iorch_trace_off"
cargo build --release --offline --workspace
cargo test -q --offline --workspace

echo "tier1 OK"
