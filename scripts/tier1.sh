#!/usr/bin/env bash
# Tier-1 verification: offline release build + the full test suite.
# This is the gate every PR must keep green (see ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo test -q --offline --workspace
echo "tier1 OK"
