#!/usr/bin/env bash
# Tier-1 verification: offline release build + the full test suite,
# plus formatting and lint gates (rustfmt, clippy with -D warnings).
# This is the gate every PR must keep green (see ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release --offline
cargo clippy --workspace --offline --all-targets -- -D warnings
cargo test -q --offline
cargo test -q --offline --workspace

# The trace recorder must also build and pass with the instrumentation
# compiled out (the production hot-path configuration).
export RUSTFLAGS="${RUSTFLAGS:-} --cfg iorch_trace_off"
cargo build --release --offline --workspace
cargo test -q --offline --workspace

echo "tier1 OK"
