//! # iorchestra-suite — umbrella crate for the IOrchestra (SC '15) reproduction
//!
//! Re-exports every crate in the workspace so examples and integration tests
//! have a single import root. See the individual crates for the real APIs:
//!
//! * [`simcore`] — deterministic discrete-event engine
//! * [`metrics`] — latency histograms, CDFs, rate/utilization tracking
//! * [`storage`] — SSD/HDD/RAID0 device models, host queue, blktrace monitor
//! * [`guestos`] — simulated Linux guest I/O stack (page cache, writeback,
//!   request queue with congestion avoidance)
//! * [`hypervisor`] — Xen-like machine: system store, rings, NUMA, I/O cores
//! * [`netsim`] — inter-node network model for scale-out experiments
//! * [`core`] — IOrchestra itself: monitoring/management modules and the
//!   three collaborative policies, plus the Baseline/SDC/DIF comparators
//! * [`workloads`] — Olio, YCSB, mpiBLAST, Cloud9, FileBench models

pub use iorch_guestos as guestos;
pub use iorch_hypervisor as hypervisor;
pub use iorch_metrics as metrics;
pub use iorch_netsim as netsim;
pub use iorch_simcore as simcore;
pub use iorch_storage as storage;
pub use iorch_workloads as workloads;
pub use iorchestra as core;
