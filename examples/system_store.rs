//! Working directly with the system store: permissions, watches, and the
//! anomaly detector — the framework-level plumbing that makes the three
//! collaborative functions possible (paper §3–§4), plus the "malicious
//! VM" scenario the management module can flag.
//!
//! ```text
//! cargo run --release --example system_store
//! ```

use iorchestra_suite::core::{AnomalyDetector, AnomalyParams};
use iorchestra_suite::hypervisor::{DomainId, Perms, StoreError, XenStore, DOM0};
use iorchestra_suite::simcore::SimTime;

fn main() {
    let mut store = XenStore::new();
    let vm1 = DomainId(1);
    let vm2 = DomainId(2);

    // dom0 provisions per-domain subtrees, private to each owner.
    store
        .mkdir(DOM0, XenStore::domain_path(vm1), Perms::private_to(vm1))
        .unwrap();
    store
        .mkdir(DOM0, XenStore::domain_path(vm2), Perms::private_to(vm2))
        .unwrap();

    // Guests publish their collaborative state under their own subtree.
    store
        .write(vm1, "/local/domain/1/virt-dev/has_dirty_pages", "1")
        .unwrap();
    store
        .write(vm1, "/local/domain/1/virt-dev/nr", "8192")
        .unwrap();
    println!("vm1 published has_dirty_pages=1, nr=8192");

    // Isolation: vm2 can neither read nor write vm1's keys.
    let denied_read = store.read(vm2, "/local/domain/1/virt-dev/nr");
    let denied_write = store.write(vm2, "/local/domain/1/virt-dev/nr", "0");
    println!("vm2 read  vm1's nr  -> {denied_read:?}");
    println!("vm2 write vm1's nr  -> {denied_write:?}");
    assert_eq!(denied_read, Err(StoreError::PermissionDenied));
    assert_eq!(denied_write, Err(StoreError::PermissionDenied));

    // The hypervisor sees everything and drives Algorithm 1 through a
    // watch: vm1 registers a callback on its own subtree and dom0 writes
    // flush_now=1 when the device goes idle.
    let vm1_watch = store.watch(vm1, "/local/domain/1/virt-dev");
    store
        .write(DOM0, "/local/domain/1/virt-dev/flush_now", "1")
        .unwrap();
    let events = store.take_events();
    println!("\nwatch events after dom0 set flush_now=1:");
    for ev in &events {
        println!(
            "  -> watch {:?} owner=dom{} path={} value={:?}",
            ev.watch, ev.owner.0, ev.path, ev.value
        );
    }
    assert!(events.iter().any(|e| e.watch == vm1_watch));

    // Transactions apply atomically or not at all.
    let txn = store.txn_begin();
    store.txn_write(txn, vm2, "/local/domain/2/a", "1").unwrap();
    store
        .txn_write(txn, vm2, "/local/domain/1/evil", "1")
        .unwrap();
    let result = store.txn_commit(txn);
    println!("\ntransaction with a cross-domain write -> {result:?}");
    assert!(result.is_err());
    assert_eq!(
        store.read(DOM0, "/local/domain/2/a"),
        Err(StoreError::NotFound)
    );

    // Anomaly detection: a guest hammering the store gets flagged.
    let mut detector = AnomalyDetector::new(AnomalyParams::default());
    let t = SimTime::from_millis(10);
    for _ in 0..500 {
        store.write(vm2, "/local/domain/2/spam", "x").unwrap();
        detector.on_write(vm2, t);
    }
    detector.on_write(vm1, t);
    println!(
        "\nafter a 500-write burst: flagged domains = {:?} (vm1 flagged: {})",
        detector.flagged().map(|d| d.0).collect::<Vec<_>>(),
        detector.is_flagged(vm1)
    );
    assert!(detector.is_flagged(vm2));
    assert!(!detector.is_flagged(vm1));
    println!(
        "store write counts: vm1={} vm2={}",
        store.write_count(vm1),
        store.write_count(vm2)
    );
}
