//! Writing your own control plane.
//!
//! IOrchestra's framework is deliberately open ("it can be easily applied
//! to other issues that require cross-domain collaboration" — paper §1).
//! This example implements a tiny custom policy on the same hook surface
//! the built-in planes use: a *write-back governor* that simply syncs any
//! guest whose dirty pages exceed a fixed budget, and compares it to
//! running with no policy at all.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use std::rc::Rc;

use iorchestra_suite::guestos::KernelSignal;
use iorchestra_suite::hypervisor::{
    Cluster, ControlPlane, DomainId, IoPathMode, Machine, MachineConfig, Sched, VmSpec,
};
use iorchestra_suite::simcore::{SimDuration, SimTime, Simulation};
use iorchestra_suite::workloads::{recorder, spawn_fileserver, FsParams, VmRef};

/// Sync any guest holding more than `budget_pages` dirty pages, checked on
/// every monitoring tick.
struct DirtyBudgetGovernor {
    budget_pages: u64,
    syncs_issued: u64,
}

impl ControlPlane for DirtyBudgetGovernor {
    fn name(&self) -> &'static str {
        "dirty-budget-governor"
    }

    fn tick_period(&self) -> Option<SimDuration> {
        Some(SimDuration::from_millis(100))
    }

    fn on_kernel_signal(
        &mut self,
        m: &mut Machine,
        s: &mut Sched,
        dom: DomainId,
        sig: KernelSignal,
    ) {
        // Keep stock congestion behaviour; this policy is flush-only.
        if sig == KernelSignal::CongestionQuery {
            m.cp_enter_congestion(s, dom);
        }
    }

    fn on_tick(&mut self, m: &mut Machine, s: &mut Sched) {
        for dom in m.domain_ids() {
            let dirty = m.domain(dom).map(|d| d.kernel.dirty_pages()).unwrap_or(0);
            if dirty > self.budget_pages {
                self.syncs_issued += 1;
                m.cp_remote_sync(s, dom);
            }
        }
    }
}

fn run(custom: bool) -> (f64, u64) {
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let idx = cl.add_machine(MachineConfig::paper_testbed(9, IoPathMode::Paravirt));
    if custom {
        cl.install_control(
            s,
            idx,
            Box::new(DirtyBudgetGovernor {
                budget_pages: 8192, // 32 MiB
                syncs_issued: 0,
            }),
        );
    }
    let rec = recorder(SimTime::from_secs(1));
    for v in 0..4u64 {
        let (cl, s) = sim.parts_mut();
        let dom = cl.create_domain(s, idx, VmSpec::new(1, 1).with_disk_gb(6), |g| {
            g.wb.periodic_interval = SimDuration::from_secs(2);
            g.wb.dirty_expire = SimDuration::from_secs(6);
        });
        spawn_fileserver(
            cl,
            s,
            VmRef { machine: idx, dom },
            FsParams {
                threads: 1,
                pool: 2_000,
                file_size: 512 << 10,
                op_cpu: SimDuration::from_millis(1),
                burst: Some((100, SimDuration::from_millis(600))),
                seed: 9 ^ v,
                ..FsParams::default()
            },
            Rc::clone(&rec),
        );
    }
    sim.run_until(SimTime::from_secs(8));
    let now = sim.now();
    let bps = rec.borrow().throughput_bps(now);
    let (_, writes) = sim.world().machine(idx).storage.monitor().byte_counts();
    (bps / 1e6, writes >> 20)
}

fn main() {
    let (plain_bps, plain_writes) = run(false);
    let (gov_bps, gov_writes) = run(true);
    println!("4 file-server VMs in request waves, 8 simulated seconds\n");
    println!(
        "{:<24} {:>14} {:>18}",
        "policy", "FS MB/s", "device writes (MB)"
    );
    println!(
        "{:<24} {:>14.1} {:>18}",
        "none (stock kernel)", plain_bps, plain_writes
    );
    println!(
        "{:<24} {:>14.1} {:>18}",
        "dirty-budget governor", gov_bps, gov_writes
    );
    println!(
        "\nThe governor drains dirty pages early through cp_remote_sync — the same \
         machine verb IOrchestra's Algorithm 1 uses — smoothing device traffic \
         without touching the guest kernels."
    );
}
