//! Writing your own policy rule.
//!
//! IOrchestra's framework is deliberately open ("it can be easily applied
//! to other issues that require cross-domain collaboration" — paper §1).
//! This example implements a user-defined rule on the policy API the
//! built-in planes use: a *burst tamer* that rate-limits any guest whose
//! I/O rate spikes past a budget and lifts the cap once it calms down.
//! The rule only decides; the [`PolicyEngine`] owns enforcement (here the
//! ring-push rate limiter behind [`Action::RateLimit`]).
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use iorchestra_suite::core::policy::EnforcementPoint;
use iorchestra_suite::core::{
    Action, IOrchestraConfig, PolicyCtx, PolicyEngine, PolicySet, Rule, Stage,
};
use iorchestra_suite::hypervisor::{Cluster, DomainId, IoPathMode, MachineConfig, VmSpec};
use iorchestra_suite::simcore::{SimDuration, SimTime, Simulation};
use iorchestra_suite::workloads::{recorder, spawn_fileserver, FsParams, VmRef};

/// Cap any guest whose I/O rate bursts past `budget_bps`; lift the cap
/// once it falls back under half the budget.
struct BurstTamer {
    budget_bps: u64,
    cap_bps: u64,
    last_bytes: BTreeMap<DomainId, u64>,
    capped: BTreeSet<DomainId>,
}

impl Rule for BurstTamer {
    fn name(&self) -> &'static str {
        "burst-tamer"
    }

    fn on_tick(&mut self, ctx: &PolicyCtx<'_>, out: &mut Vec<Action>) {
        let ticks_per_sec = 1000 / ctx.cfg().tick.as_millis().max(1);
        for dom in ctx.machine().domains() {
            let total = ctx.machine().io_bytes(dom);
            let last = self.last_bytes.insert(dom, total).unwrap_or(total);
            let rate = (total - last) * ticks_per_sec;
            if rate > self.budget_bps && self.capped.insert(dom) {
                out.push(Action::RateLimit {
                    dom,
                    bytes_per_sec: Some(self.cap_bps),
                });
            } else if rate < self.budget_bps / 2 && self.capped.remove(&dom) {
                out.push(Action::RateLimit {
                    dom,
                    bytes_per_sec: None,
                });
            }
        }
    }
}

fn run(custom: bool) -> (f64, u64) {
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let idx = cl.add_machine(MachineConfig::paper_testbed(9, IoPathMode::Paravirt));
    if custom {
        let set = PolicySet::custom("burst-tamer", IOrchestraConfig::new(9)).stage(
            Stage::new("tamer", EnforcementPoint::RingPush).rule(BurstTamer {
                budget_bps: 64 << 20, // trip above 64 MiB/s...
                cap_bps: 32 << 20,    // ...cap at 32 MiB/s until calm
                last_bytes: BTreeMap::new(),
                capped: BTreeSet::new(),
            }),
        );
        cl.install_control(s, idx, Box::new(PolicyEngine::new(set)));
    }
    let rec = recorder(SimTime::from_secs(1));
    for v in 0..4u64 {
        let (cl, s) = sim.parts_mut();
        let dom = cl.create_domain(s, idx, VmSpec::new(1, 1).with_disk_gb(6), |g| {
            g.wb.periodic_interval = SimDuration::from_secs(2);
            g.wb.dirty_expire = SimDuration::from_secs(6);
        });
        spawn_fileserver(
            cl,
            s,
            VmRef { machine: idx, dom },
            FsParams {
                threads: 1,
                pool: 2_000,
                file_size: 512 << 10,
                op_cpu: SimDuration::from_millis(1),
                burst: Some((100, SimDuration::from_millis(600))),
                seed: 9 ^ v,
                ..FsParams::default()
            },
            Rc::clone(&rec),
        );
    }
    sim.run_until(SimTime::from_secs(8));
    let now = sim.now();
    let bps = rec.borrow().throughput_bps(now);
    let (_, writes) = sim.world().machine(idx).storage.monitor().byte_counts();
    (bps / 1e6, writes >> 20)
}

fn main() {
    let (plain_bps, plain_writes) = run(false);
    let (tamed_bps, tamed_writes) = run(true);
    println!("4 file-server VMs in request waves, 8 simulated seconds\n");
    println!(
        "{:<24} {:>14} {:>18}",
        "policy", "FS MB/s", "device writes (MB)"
    );
    println!(
        "{:<24} {:>14.1} {:>18}",
        "none (stock kernel)", plain_bps, plain_writes
    );
    println!(
        "{:<24} {:>14.1} {:>18}",
        "burst-tamer rule", tamed_bps, tamed_writes
    );
    println!(
        "\nThe rule is ~30 lines and only *decides*: it watches per-domain I/O \
         rates through the read-only PolicyCtx and emits Action::RateLimit. \
         The engine enforces the cap at the ring-push point with the same \
         mechanism the built-in policy sets use — no control-plane plumbing."
    );
}
