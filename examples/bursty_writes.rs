//! Bursty writes (the paper's §5.6): an update-heavy store driven by
//! synchronized 10× bursts. Shows how IOrchestra's flush + congestion
//! control keep the 99.9th-percentile latency bounded where the baseline
//! tail explodes.
//!
//! ```text
//! cargo run --release --example bursty_writes
//! ```

use std::rc::Rc;

use iorchestra_suite::core::SystemKind;
use iorchestra_suite::hypervisor::{Cluster, VmSpec};
use iorchestra_suite::metrics::{fmt_us, LatencySummary};
use iorchestra_suite::simcore::{SimDuration, SimTime, Simulation};
use iorchestra_suite::workloads::{recorder, spawn_ycsb, VmRef, YcsbParams};

fn run(kind: SystemKind, rate: f64, burst: SimDuration) -> LatencySummary {
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let machine = kind.provision(cl, s, 5);
    let a = cl.create_domain(s, machine, VmSpec::new(2, 4).with_disk_gb(20), |g| {
        // Compressed writeback clocks for a short demo run.
        g.wb.periodic_interval = SimDuration::from_millis(1000);
        g.wb.dirty_expire = SimDuration::from_millis(3000);
    });
    let b = cl.create_domain(s, machine, VmSpec::new(2, 4).with_disk_gb(20), |g| {
        g.wb.periodic_interval = SimDuration::from_millis(1000);
        g.wb.dirty_expire = SimDuration::from_millis(3000);
    });
    let rec = recorder(SimTime::from_secs(2));
    let mut p = YcsbParams::ycsb1(rate, 77).with_burst(burst);
    p.memtable_flush_bytes = 2 << 20;
    spawn_ycsb(
        cl,
        s,
        &[VmRef { machine, dom: a }, VmRef { machine, dom: b }],
        None,
        p,
        Rc::clone(&rec),
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
    let summary = LatencySummary::from_histogram(&rec.borrow().hist);
    summary
}

fn main() {
    println!("YCSB1 with synchronized bursts (peak = 10x average rate)\n");
    for burst_ms in [50u64, 100] {
        println!("burst length {burst_ms} ms:");
        println!(
            "  {:<12} {:>10} {:>10} {:>10}",
            "system", "mean(us)", "p99(us)", "p99.9(us)"
        );
        for kind in [
            SystemKind::Baseline,
            SystemKind::Sdc,
            SystemKind::Dif,
            SystemKind::IOrchestra,
        ] {
            let s = run(kind, 600.0, SimDuration::from_millis(burst_ms));
            println!(
                "  {:<12} {:>10} {:>10} {:>10}",
                kind.label(),
                fmt_us(s.mean),
                fmt_us(s.p99),
                fmt_us(s.p999)
            );
        }
        println!();
    }
}
