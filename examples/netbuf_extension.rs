//! The paper's future-work extension in action: collaborative network
//! transmit-buffer sizing (§7 — "network buffer sizes, window sizes,
//! packet queues").
//!
//! Four sender VMs share one GbE link through per-VM TX buffers. Their
//! traffic alternates bursts and quiet periods. With *static* buffers the
//! semantic gap bites twice: small buffers bounce bursty senders off the
//! limit while the link idles, and large buffers build seconds of
//! bufferbloat when the link saturates. The collaborative policy reads
//! each guest's published backlog/rejections from the system store, sees
//! the real link utilization from the host side, and resizes buffers on
//! the fly.
//!
//! ```text
//! cargo run --release --example netbuf_extension
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use iorchestra_suite::core::netbuf::{NetBufParams, NetBufPolicy, TxDecision, TxObservation};
use iorchestra_suite::netsim::TxQueue;
use iorchestra_suite::simcore::{Scheduler, SimDuration, SimTime, Simulation};

const LINK_BW: u64 = 117 * 1024 * 1024; // GbE
const PKT: u64 = 1500;
const SENDERS: usize = 4;

struct World {
    queues: Vec<TxQueue>,
    /// Whether each sender is currently in a burst phase.
    bursting: Vec<bool>,
    link_busy_until: SimTime,
    link_busy_time: SimDuration,
    /// Rotating round-robin cursor over the TX queues.
    rr: usize,
    sent_pkts: u64,
    rejected_before: Vec<u64>,
    /// Rejections counted during the settling window (excluded from the
    /// steady-state comparison).
    rejected_settling: u64,
    delays_us_sum: f64,
    delays_n: u64,
}

impl World {
    fn link_utilization(&self, now: SimTime) -> f64 {
        let t = now.as_secs_f64();
        if t <= 0.0 {
            0.0
        } else {
            (self.link_busy_time.as_secs_f64() / t).min(1.0)
        }
    }
}

fn drain_link(w: &mut World, s: &mut Scheduler<World>) {
    // Round-robin service of the TX queues at link speed.
    let now = s.now();
    if w.link_busy_until > now {
        return;
    }
    let n = w.queues.len();
    for k in 0..n {
        let i = (w.rr + k) % n;
        if !w.queues[i].is_empty() {
            w.rr = (i + 1) % n;
            let bytes = w.queues[i].pop(now).unwrap();
            let wire = SimDuration::from_secs_f64(bytes as f64 / LINK_BW as f64);
            w.link_busy_until = now + wire;
            w.link_busy_time += wire;
            w.sent_pkts += 1;
            w.delays_us_sum += w.queues[i].avg_delay().as_micros_f64();
            w.delays_n += 1;
            s.schedule_at(w.link_busy_until, drain_link);
            return;
        }
    }
}

fn run(collaborative: bool, initial_buf: u64) -> (f64, f64, u64) {
    let world = World {
        queues: (0..SENDERS).map(|_| TxQueue::new(initial_buf)).collect(),
        bursting: vec![false; SENDERS],
        link_busy_until: SimTime::ZERO,
        link_busy_time: SimDuration::ZERO,
        rr: 0,
        sent_pkts: 0,
        rejected_before: vec![0; SENDERS],
        rejected_settling: 0,
        delays_us_sum: 0.0,
        delays_n: 0,
    };
    let mut sim = Simulation::new(world);
    let s = sim.scheduler_mut();

    // Senders: each emits a 300 KiB application batch (say, a response
    // buffer handed to the NIC at once) every 15 ms, phase-shifted. The
    // average load (~80 MB/s) is well under the link: only the *burst*
    // needs buffer space — exactly the sizing question the guest cannot
    // answer alone.
    for i in 0..SENDERS {
        let phase = SimDuration::from_micros(3750 * i as u64 + 1);
        let st = s.now() + phase;
        s.schedule_at(st, move |w: &mut World, s| {
            fn batch(i: usize, w: &mut World, s: &mut Scheduler<World>) {
                w.bursting[i] = true;
                for _ in 0..200 {
                    let _ = w.queues[i].push(PKT, s.now());
                }
                s.schedule_in(SimDuration::from_millis(15), move |w, s| batch(i, w, s));
            }
            batch(i, w, s);
        });
    }
    // Kick the link whenever work may exist.
    s.schedule_every(SimDuration::from_micros(100), |w: &mut World, s| {
        drain_link(w, s);
        true
    });
    // Snapshot rejections after a settling second, so the table compares
    // steady states (the collaborative case needs a few management ticks
    // to adapt from its deliberately bad starting size).
    s.schedule_at(SimTime::from_secs(1), |w: &mut World, _s| {
        w.rejected_settling = w.queues.iter().map(|q| q.rejected()).sum();
    });
    // The collaborative management tick.
    if collaborative {
        let params = NetBufParams::default();
        let policy = Rc::new(RefCell::new(NetBufPolicy::new()));
        let pol = Rc::clone(&policy);
        s.schedule_every(SimDuration::from_millis(100), move |w: &mut World, s| {
            let util = w.link_utilization(s.now());
            for i in 0..w.queues.len() {
                let rejected_now = w.queues[i].rejected();
                let obs = TxObservation {
                    capacity: w.queues[i].capacity(),
                    backlog: w.queues[i].backlog(),
                    rejected_delta: rejected_now - w.rejected_before[i],
                    avg_delay: w.queues[i].avg_delay(),
                };
                w.rejected_before[i] = rejected_now;
                let d = pol.borrow_mut().decide(&params, obs, util);
                if std::env::var("IORCH_TRACE").is_ok() && i == 0 && s.now() < SimTime::from_secs(2)
                {
                    eprintln!(
                        "    t={} util={util:.2} cap={} delta={} delay={} -> {d:?}",
                        s.now(),
                        obs.capacity,
                        obs.rejected_delta,
                        obs.avg_delay
                    );
                }
                if let TxDecision::Resize(new) = d {
                    w.queues[i].set_capacity(new);
                }
            }
            true
        });
    }
    sim.run_until(SimTime::from_secs(10));
    let w = sim.world();
    if std::env::var("IORCH_PROBE").is_ok() {
        eprintln!(
            "  caps: {:?} rejected: {:?}",
            w.queues.iter().map(|q| q.capacity()).collect::<Vec<_>>(),
            w.queues.iter().map(|q| q.rejected()).collect::<Vec<_>>()
        );
    }
    let goodput = w.sent_pkts as f64 * PKT as f64 / 10.0 / 1e6;
    let avg_delay_ms = if w.delays_n == 0 {
        0.0
    } else {
        w.delays_us_sum / w.delays_n as f64 / 1000.0
    };
    let rejected: u64 = w.queues.iter().map(|q| q.rejected()).sum::<u64>() - w.rejected_settling;
    (goodput, avg_delay_ms, rejected)
}

fn main() {
    println!("collaborative TX-buffer sizing, 4 bursty senders on one GbE link\n");
    println!(
        "{:<34} {:>12} {:>12} {:>12}",
        "configuration", "goodput MB/s", "delay (ms)", "rejected*"
    );
    for (label, collaborative, buf) in [
        ("static 16 KiB (guessed too small)", false, 16u64 << 10),
        ("static 8 MiB (over-provisioned)", false, 8 << 20),
        ("collaborative (starts 16 KiB)", true, 16 << 10),
    ] {
        let (goodput, delay, rejected) = run(collaborative, buf);
        println!("{label:<34} {goodput:>12.1} {delay:>12.2} {rejected:>12}");
    }
    println!(
        "\n* rejections counted after a 1 s settling window.\n\
         The collaborative policy grows buffers while the link has headroom (ending \
         rejections) and shrinks them when queueing delay exceeds the target — the same \
         store-mediated pattern as the paper's Algorithms 1-3, applied to the NIC."
    );
}
