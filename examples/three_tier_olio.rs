//! A three-tier web application (the paper's Olio deployment) with
//! per-tier latency breakdowns — the §5.1 "IOrchestra in Action" scenario.
//!
//! Shows how the framework helps a *distributed multi-tier* application:
//! the database and file-server tiers improve the most, since their VMs
//! are the I/O-bound ones (paper Fig. 6).
//!
//! ```text
//! cargo run --release --example three_tier_olio
//! ```

use iorchestra_suite::core::SystemKind;
use iorchestra_suite::hypervisor::{Cluster, VmSpec};
use iorchestra_suite::metrics::{fmt_ms, latency_improvement_pct};
use iorchestra_suite::simcore::{SimDuration, SimTime, Simulation};
use iorchestra_suite::workloads::{spawn_olio, OlioParams, OlioRecorders, VmRef};

struct TierReport {
    total_ms: f64,
    web_ms: f64,
    db_ms: f64,
    file_ms: f64,
    total: iorchestra_suite::simcore::SimDuration,
    web: iorchestra_suite::simcore::SimDuration,
    db: iorchestra_suite::simcore::SimDuration,
    file: iorchestra_suite::simcore::SimDuration,
}

fn run(kind: SystemKind, clients: u32) -> TierReport {
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let machine = kind.provision(cl, s, 11);

    // One VM per tier, as the paper deploys Olio.
    let web = cl.create_domain(s, machine, VmSpec::new(2, 4).with_disk_gb(10), |_| {});
    let db = cl.create_domain(s, machine, VmSpec::new(2, 4).with_disk_gb(60), |_| {});
    let fsv = cl.create_domain(s, machine, VmSpec::new(2, 4).with_disk_gb(40), |_| {});

    let recs = OlioRecorders::new(SimTime::from_secs(2));
    let params = OlioParams {
        clients,
        seed: 99,
        ..OlioParams::default()
    };
    spawn_olio(
        cl,
        s,
        VmRef { machine, dom: web },
        VmRef { machine, dom: db },
        VmRef { machine, dom: fsv },
        params,
        recs.clone(),
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(8));

    let g = |r: &iorchestra_suite::workloads::Rec| {
        let h = &r.borrow().hist;
        (h.mean().as_millis_f64(), h.mean())
    };
    let (total_ms, total) = g(&recs.total);
    let (web_ms, web) = g(&recs.web);
    let (db_ms, db) = g(&recs.db);
    let (file_ms, file) = g(&recs.file);
    TierReport {
        total_ms,
        web_ms,
        db_ms,
        file_ms,
        total,
        web,
        db,
        file,
    }
}

fn main() {
    let clients = 200;
    println!("Olio three-tier deployment, {clients} emulated clients\n");
    let base = run(SystemKind::Baseline, clients);
    let iorch = run(SystemKind::IOrchestra, clients);
    println!("tier          baseline     iorchestra   improvement");
    println!(
        "end-to-end    {:>8} ms  {:>8} ms  {:>6.1}%",
        fmt_ms_val(base.total_ms),
        fmt_ms_val(iorch.total_ms),
        latency_improvement_pct(base.total, iorch.total)
    );
    println!(
        "web           {:>8} ms  {:>8} ms  {:>6.1}%",
        fmt_ms_val(base.web_ms),
        fmt_ms_val(iorch.web_ms),
        latency_improvement_pct(base.web, iorch.web)
    );
    println!(
        "database      {:>8} ms  {:>8} ms  {:>6.1}%",
        fmt_ms_val(base.db_ms),
        fmt_ms_val(iorch.db_ms),
        latency_improvement_pct(base.db, iorch.db)
    );
    println!(
        "file server   {:>8} ms  {:>8} ms  {:>6.1}%",
        fmt_ms_val(base.file_ms),
        fmt_ms_val(iorch.file_ms),
        latency_improvement_pct(base.file, iorch.file)
    );
    let _ = fmt_ms(iorchestra_suite::simcore::SimDuration::ZERO);
}

fn fmt_ms_val(v: f64) -> String {
    format!("{v:.2}")
}
