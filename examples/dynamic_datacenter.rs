//! A dynamic data center: VMs of random sizes arrive as a Poisson
//! process, run FS / YCSB / Cloud9 jobs with fixed problem sizes, and
//! depart — the §5.3/§5.5 methodology. Compares how many VMs each system
//! completes and what it costs in CPU.
//!
//! ```text
//! cargo run --release --example dynamic_datacenter
//! ```

use iorchestra_suite::core::SystemKind;
use iorchestra_suite::hypervisor::Cluster;
use iorchestra_suite::simcore::{SimTime, Simulation};
use iorchestra_suite::workloads::{spawn_arrivals, ArrivalParams};

fn main() {
    let lambda = 14.0; // VMs per minute
    println!("dynamic data center, λ = {lambda} VMs/min, 30 simulated seconds\n");
    println!(
        "{:<12} {:>8} {:>8} {:>9} {:>10} {:>10}",
        "system", "arrived", "started", "completed", "cpu util", "io MB/s"
    );
    for kind in [
        SystemKind::Baseline,
        SystemKind::Sdc,
        SystemKind::IOrchestra,
    ] {
        let mut sim = Simulation::new(Cluster::new());
        let (cl, s) = sim.parts_mut();
        let machine = kind.provision(cl, s, 42);
        let horizon = SimTime::from_secs(30);
        let stats = spawn_arrivals(
            cl,
            s,
            machine,
            ArrivalParams {
                lambda_per_min: lambda,
                fs_bytes: 128 << 20,
                ycsb_ops: 10_000,
                cloud9_cpu_secs: 2.0,
                seed: 42,
                ..ArrivalParams::default()
            },
            horizon,
        );
        sim.run_until(horizon);
        let now = sim.now();
        let m = sim.world().machine(machine);
        let (rb, wb) = m.storage.monitor().byte_counts();
        let st = stats.borrow();
        println!(
            "{:<12} {:>8} {:>8} {:>9} {:>9.1}% {:>10.1}",
            kind.label(),
            st.arrived,
            st.started,
            st.completed,
            m.utilization(now) * 100.0,
            (rb + wb) as f64 / now.as_secs_f64() / 1e6
        );
    }
    println!(
        "\nSDC spins one dedicated core (higher idle utilization) and cannot use the \
         second socket's capacity; IOrchestra balances both sockets and completes \
         the most VMs at high arrival rates (paper Figs. 10-11)."
    );
}
