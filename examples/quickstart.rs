//! Quickstart: build an IOrchestra-enabled host, boot two VMs, run a
//! key-value workload, and compare latency against the stock baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::rc::Rc;

use iorchestra_suite::core::SystemKind;
use iorchestra_suite::hypervisor::{Cluster, VmSpec};
use iorchestra_suite::metrics::{fmt_us, latency_improvement_pct, LatencySummary};
use iorchestra_suite::simcore::{SimDuration, SimTime, Simulation};
use iorchestra_suite::workloads::{recorder, spawn_ycsb, VmRef, YcsbParams};

fn run(kind: SystemKind) -> LatencySummary {
    // 1. A cluster with one physical machine running `kind`
    //    (Baseline / SDC / DIF / IOrchestra — same API).
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let machine = kind.provision(cl, s, /* seed */ 7);

    // 2. Two data-node VMs (2 VCPUs, 4 GB) forming one key-value store.
    let a = cl.create_domain(s, machine, VmSpec::new(2, 4).with_disk_gb(20), |_| {});
    let b = cl.create_domain(s, machine, VmSpec::new(2, 4).with_disk_gb(20), |_| {});
    let nodes = [VmRef { machine, dom: a }, VmRef { machine, dom: b }];

    // 3. An update-heavy YCSB client at 2000 requests/second. The recorder
    //    collects op latencies after a 1-second warm-up.
    let rec = recorder(SimTime::from_secs(1));
    let params = YcsbParams::ycsb1(2000.0, 42);
    spawn_ycsb(cl, s, &nodes, None, params, Rc::clone(&rec));

    // 4. Run five simulated seconds and summarize.
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
    let summary = LatencySummary::from_histogram(&rec.borrow().hist);
    summary
}

fn main() {
    println!("quickstart: YCSB1 @ 2000 req/s on a 2-VM store\n");
    let baseline = run(SystemKind::Baseline);
    let iorch = run(SystemKind::IOrchestra);
    println!(
        "{:<12} mean={:>8} us   p99={:>8} us   p99.9={:>8} us   ({} ops)",
        "Baseline",
        fmt_us(baseline.mean),
        fmt_us(baseline.p99),
        fmt_us(baseline.p999),
        baseline.count
    );
    println!(
        "{:<12} mean={:>8} us   p99={:>8} us   p99.9={:>8} us   ({} ops)",
        "IOrchestra",
        fmt_us(iorch.mean),
        fmt_us(iorch.p99),
        fmt_us(iorch.p999),
        iorch.count
    );
    println!(
        "\nIOrchestra improves mean latency by {:.1}% and the 99.9th percentile by {:.1}%.",
        latency_improvement_pct(baseline.mean, iorch.mean),
        latency_improvement_pct(baseline.p999, iorch.p999),
    );
}
