//! Deterministic fault-scenario suite: every fault the
//! [`FaultPlan`](iorchestra_suite::simcore::FaultPlan) subsystem can
//! inject, run across a seed sweep, with liveness and safety invariants
//! asserted on the observable state (the `/iorchestra/health` subtree,
//! guest kernel counters, workload recorders).
//!
//! Every scenario is a pure function of its seed: the harness runs each
//! `(scenario, seed)` pair **twice** and demands byte-identical summary
//! strings, so any failure printed below (`seed 0x…`) replays exactly.

use std::rc::Rc;

use iorchestra_suite::core::{keys, FunctionSet, SystemKind};
use iorchestra_suite::guestos::FileOp;
use iorchestra_suite::hypervisor::{Cluster, DomainId, Machine, Sched, VmSpec, DOM0};
use iorchestra_suite::simcore::{
    gen, FaultKind, FaultPlan, FaultWindow, SimDuration, SimTime, Simulation,
};
use iorchestra_suite::workloads::{recorder, spawn_multistream, MultiStreamParams, VmRef};

/// Seeds per scenario (each run twice for the determinism check).
const SEEDS: usize = 8;

fn sim_with(kind: SystemKind, seed: u64) -> (Simulation<Cluster>, usize) {
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let idx = kind.provision(cl, s, seed);
    (sim, idx)
}

/// Stock (slow) writeback clocks: only the collaborative flush can drain
/// dirty pages within the few simulated seconds a scenario runs.
fn slow_wb(g: &mut iorchestra_suite::guestos::GuestConfig) {
    g.wb.periodic_interval = SimDuration::from_secs(30);
    g.wb.dirty_expire = SimDuration::from_secs(60);
}

/// Dirty `mb` MiB of page cache in `dom` (a buffered write, no sync).
fn dirty_mb(cl: &mut Cluster, s: &mut Sched, idx: usize, dom: DomainId, mb: u64) {
    let file = cl
        .machine_mut(idx)
        .kernel_mut(dom)
        .unwrap()
        .create_file((4 * mb) << 20)
        .unwrap();
    cl.submit_op(
        s,
        idx,
        dom,
        0,
        FileOp::Write {
            file,
            offset: 0,
            len: mb << 20,
        },
        None,
    );
}

/// Read a `/iorchestra/health/<id>/<key>` counter ("0" if never
/// published — the plane only writes health keys on change).
fn health(m: &Machine, dom: DomainId, key: &str) -> String {
    m.store
        .read(DOM0, format!("{}/{}", keys::health_base(dom), key))
        .unwrap_or_else(|_| "0".to_string())
}

/// Run `scenario` twice per seed across the sweep and require the two
/// summaries to be byte-identical (bit-for-bit replay from the seed).
fn sweep(base: u64, scenario: impl Fn(u64) -> String) {
    gen::for_each_seed(base, SEEDS, |seed, _rng| {
        let a = scenario(seed);
        let b = scenario(seed);
        assert_eq!(
            a, b,
            "seed {seed:#018x}: scenario is not reproducible from its seed"
        );
    });
}

// --------------------------------------------------------------------
// Scenario 1: unresponsive guest (ignores flush_now)
// --------------------------------------------------------------------

/// A guest that never acks `flush_now` must not wedge the flush loop:
/// the command times out, the next-dirtiest domain gets the slot, and
/// after `flush_max_retries` consecutive timeouts the slacker is
/// quarantined — all visible in the health subtree.
#[test]
fn unresponsive_guest_flush_falls_back_and_quarantines() {
    sweep(0xFA_0001, |seed| {
        let kind = SystemKind::IOrchestraWith(FunctionSet::flush_only());
        let (mut sim, idx) = sim_with(kind, seed);
        let (cl, s) = sim.parts_mut();
        let slacker = cl.create_domain(s, idx, VmSpec::new(1, 2).with_disk_gb(8), slow_wb);
        let healthy = cl.create_domain(s, idx, VmSpec::new(1, 2).with_disk_gb(8), slow_wb);
        // The slacker is dirtier, so Algorithm 1's argmax picks it first.
        dirty_mb(cl, s, idx, slacker, 16);
        dirty_mb(cl, s, idx, healthy, 8);
        let plan = FaultPlan::new().with(
            FaultWindow::always(),
            FaultKind::IgnoreFlushNow { dom: slacker.0 },
        );
        cl.install_faults(s, idx, plan);
        sim.run_until(SimTime::from_secs(8));
        let m = sim.world().machine(idx);
        assert_eq!(
            m.domain(healthy).unwrap().kernel.dirty_pages(),
            0,
            "seed {seed:#x}: healthy guest starved behind an unresponsive peer"
        );
        let timeouts: u64 = health(m, slacker, "flush_timeouts").parse().unwrap();
        assert!(
            timeouts >= 1,
            "seed {seed:#x}: unacked flush_now never timed out"
        );
        assert_eq!(
            health(m, slacker, "quarantined"),
            "1",
            "seed {seed:#x}: persistently unresponsive guest must be quarantined"
        );
        assert_eq!(health(m, healthy, "quarantined"), "0", "seed {seed:#x}");
        format!(
            "slacker: timeouts={timeouts} dirty={} | healthy: dirty={}",
            m.domain(slacker).unwrap().kernel.dirty_pages(),
            m.domain(healthy).unwrap().kernel.dirty_pages(),
        )
    });
}

// --------------------------------------------------------------------
// Scenario 2: store hammer → quarantine → operator clear
// --------------------------------------------------------------------

/// A guest hammering the store is quarantined by the anomaly detector
/// while its co-resident keeps working; an operator write to
/// `/iorchestra/control/<id>/clear` restores collaboration.
#[test]
fn store_hammer_is_quarantined_and_operator_clear_restores() {
    sweep(0xFA_0002, |seed| {
        let (mut sim, idx) = sim_with(SystemKind::IOrchestra, seed);
        let (cl, s) = sim.parts_mut();
        let evil = cl.create_domain(s, idx, VmSpec::new(1, 1).with_disk_gb(8), |_| {});
        let good = cl.create_domain(s, idx, VmSpec::new(2, 2).with_disk_gb(8), |_| {});
        let rec = recorder(SimTime::ZERO);
        spawn_multistream(
            cl,
            s,
            VmRef {
                machine: idx,
                dom: good,
            },
            MultiStreamParams {
                streams: 2,
                file_size: 256 << 20,
                read_size: 1 << 20,
                first_vcpu: 0,
                seed,
            },
            Rc::clone(&rec),
        );
        // 5000 writes/s for 1.5 s — far over the 200-per-second budget.
        let plan = FaultPlan::new().with(
            FaultWindow::new(SimTime::ZERO, SimTime::from_millis(1500)),
            FaultKind::StoreHammer {
                dom: evil.0,
                period: SimDuration::from_micros(200),
            },
        );
        cl.install_faults(s, idx, plan);
        sim.run_until(SimTime::from_secs(2));
        {
            let m = sim.world().machine(idx);
            assert_eq!(
                health(m, evil, "quarantined"),
                "1",
                "seed {seed:#x}: store hammer escaped quarantine"
            );
            assert_eq!(
                health(m, good, "quarantined"),
                "0",
                "seed {seed:#x}: co-resident wrongly quarantined"
            );
        }
        let ops_at_clear = rec.borrow().ops;
        assert!(
            ops_at_clear > 0,
            "seed {seed:#x}: co-resident made no progress under the hammer"
        );
        // Operator clear through the control channel (dom0-only subtree).
        let (cl, s) = sim.parts_mut();
        let path = keys::clear_quarantine(evil);
        cl.cp_action(s, idx, move |m, _s| {
            let _ = m.store.write(DOM0, &path, "1");
        });
        sim.run_until(SimTime::from_millis(2600));
        let m = sim.world().machine(idx);
        assert_eq!(
            health(m, evil, "quarantined"),
            "0",
            "seed {seed:#x}: operator clear did not restore the domain"
        );
        let ops = rec.borrow().ops;
        format!(
            "ops_at_clear={ops_at_clear} ops={ops} writes_evil={}",
            m.store.write_count(evil)
        )
    });
}

// --------------------------------------------------------------------
// Scenario 3: permission violator (probes another domain's subtree)
// --------------------------------------------------------------------

/// A guest probing a co-resident's `flush_now` key is denied by the
/// store's permission model on every attempt, trips the (much tighter)
/// denied-operation budget, and is quarantined; the victim's key is
/// never corrupted and the victim stays in good standing.
#[test]
fn permission_violator_is_denied_and_quarantined() {
    sweep(0xFA_0003, |seed| {
        let (mut sim, idx) = sim_with(SystemKind::IOrchestra, seed);
        let (cl, s) = sim.parts_mut();
        let evil = cl.create_domain(s, idx, VmSpec::new(1, 1).with_disk_gb(8), |_| {});
        let victim = cl.create_domain(s, idx, VmSpec::new(1, 1).with_disk_gb(8), |_| {});
        let plan = FaultPlan::new().with(
            FaultWindow::new(SimTime::ZERO, SimTime::from_secs(1)),
            FaultKind::StoreViolation {
                dom: evil.0,
                victim: victim.0,
                period: SimDuration::from_millis(5),
            },
        );
        cl.install_faults(s, idx, plan);
        sim.run_until(SimTime::from_secs(2));
        let m = sim.world().machine(idx);
        let denied: u64 = health(m, evil, "store_denied").parse().unwrap();
        assert!(
            denied > 0,
            "seed {seed:#x}: permission violations not accounted"
        );
        assert_eq!(
            health(m, evil, "quarantined"),
            "1",
            "seed {seed:#x}: permission violator escaped quarantine"
        );
        assert_eq!(health(m, victim, "quarantined"), "0", "seed {seed:#x}");
        // Safety: the poison value never landed in the victim's key.
        let flush_now = m.store.read(DOM0, keys::flush_now(victim)).unwrap();
        assert_ne!(
            flush_now, "31337",
            "seed {seed:#x}: cross-domain write reached the victim"
        );
        format!("denied={denied} victim_flush_now={flush_now}")
    });
}

// --------------------------------------------------------------------
// Scenario 4: degraded device — IOrchestra never worse than Baseline
// --------------------------------------------------------------------

/// With the device degraded (4× service-time slowdown mid-run),
/// IOrchestra on the same seed and plan must not fall meaningfully
/// behind Baseline: collaboration may not help a slow disk, but it must
/// never hurt.
#[test]
fn degraded_device_never_worse_than_baseline() {
    fn run(kind: SystemKind, seed: u64) -> u64 {
        let (mut sim, idx) = sim_with(kind, seed);
        let (cl, s) = sim.parts_mut();
        let dom = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(20), |_| {});
        let rec = recorder(SimTime::ZERO);
        spawn_multistream(
            cl,
            s,
            VmRef { machine: idx, dom },
            MultiStreamParams {
                streams: 4,
                file_size: 1 << 30,
                read_size: 1 << 20,
                first_vcpu: 0,
                seed,
            },
            Rc::clone(&rec),
        );
        let plan = FaultPlan::new().with(
            FaultWindow::new(SimTime::from_millis(500), SimTime::from_millis(1500)),
            FaultKind::DeviceSlowdown { factor: 4.0 },
        );
        cl.install_faults(s, idx, plan);
        sim.run_until(SimTime::from_millis(2500));
        let ops = rec.borrow().ops;
        ops
    }
    sweep(0xFA_0004, |seed| {
        let base = run(SystemKind::Baseline, seed);
        let iorch = run(SystemKind::IOrchestra, seed);
        assert!(
            iorch as f64 >= base as f64 * 0.9,
            "seed {seed:#x}: IOrchestra ({iorch} ops) fell behind Baseline ({base} ops) on a degraded device"
        );
        assert!(base > 0, "seed {seed:#x}: baseline made no progress");
        format!("base={base} iorch={iorch}")
    });
}

// --------------------------------------------------------------------
// Scenario 5: device stall — liveness across the outage
// --------------------------------------------------------------------

/// A full device stall freezes completions for its window but must not
/// wedge anything: the workload resumes and keeps completing ops after
/// the window closes.
#[test]
fn device_stall_is_survived() {
    sweep(0xFA_0005, |seed| {
        let (mut sim, idx) = sim_with(SystemKind::IOrchestra, seed);
        let (cl, s) = sim.parts_mut();
        let dom = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(20), |_| {});
        let rec = recorder(SimTime::ZERO);
        spawn_multistream(
            cl,
            s,
            VmRef { machine: idx, dom },
            MultiStreamParams {
                streams: 4,
                file_size: 1 << 30,
                read_size: 1 << 20,
                first_vcpu: 0,
                seed,
            },
            Rc::clone(&rec),
        );
        let plan = FaultPlan::new().with(
            FaultWindow::new(SimTime::from_millis(200), SimTime::from_millis(600)),
            FaultKind::DeviceStall,
        );
        cl.install_faults(s, idx, plan);
        sim.run_until(SimTime::from_millis(700));
        let during = rec.borrow().ops;
        sim.run_until(SimTime::from_millis(2500));
        let after = rec.borrow().ops;
        assert!(
            after > during,
            "seed {seed:#x}: no progress after the stall window ({during} -> {after})"
        );
        // The closed loop keeps streams running to the end of the run, so
        // recovery means real throughput, not a single straggler.
        assert!(
            after >= during + 10,
            "seed {seed:#x}: device barely recovered ({during} -> {after})"
        );
        format!("during={during} after={after}")
    });
}

// --------------------------------------------------------------------
// Scenario 6: watch-event delay — choreography still converges
// --------------------------------------------------------------------

/// With every XenBus watch delivery delayed, the flush choreography
/// still converges (just later): the dirty pages drain and the
/// `flush_now` round trip completes.
#[test]
fn delayed_watches_still_converge() {
    sweep(0xFA_0006, |seed| {
        let kind = SystemKind::IOrchestraWith(FunctionSet::flush_only());
        let (mut sim, idx) = sim_with(kind, seed);
        let (cl, s) = sim.parts_mut();
        let dom = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(20), slow_wb);
        dirty_mb(cl, s, idx, dom, 16);
        let plan = FaultPlan::new().with(
            FaultWindow::always(),
            FaultKind::WatchDelay {
                extra: SimDuration::from_millis(50),
            },
        );
        cl.install_faults(s, idx, plan);
        sim.run_until(SimTime::from_secs(5));
        let m = sim.world().machine(idx);
        assert_eq!(
            m.domain(dom).unwrap().kernel.dirty_pages(),
            0,
            "seed {seed:#x}: flush choreography never converged under watch delay"
        );
        assert_eq!(
            m.store.read(DOM0, keys::flush_now(dom)).unwrap(),
            "0",
            "seed {seed:#x}: flush_now round trip incomplete"
        );
        assert_eq!(health(m, dom, "quarantined"), "0", "seed {seed:#x}");
        format!(
            "dirty={} timeouts={}",
            m.domain(dom).unwrap().kernel.dirty_pages(),
            health(m, dom, "flush_timeouts"),
        )
    });
}

// --------------------------------------------------------------------
// Scenario 7: guest ignores release_request
// --------------------------------------------------------------------

/// A guest that ignores `release_request` simply degrades itself to
/// Baseline congestion behaviour (sleeping); nothing wedges and the
/// workload still makes progress.
#[test]
fn ignored_release_request_degrades_gracefully() {
    sweep(0xFA_0007, |seed| {
        let kind = SystemKind::IOrchestraWith(FunctionSet::congestion_only());
        let (mut sim, idx) = sim_with(kind, seed);
        let (cl, s) = sim.parts_mut();
        let dom = cl.create_domain(s, idx, VmSpec::new(4, 4).with_disk_gb(20), |g| {
            g.queue.nr_requests = 64;
            g.readahead_chunks = 16;
        });
        let rec = recorder(SimTime::ZERO);
        spawn_multistream(
            cl,
            s,
            VmRef { machine: idx, dom },
            MultiStreamParams {
                streams: 8,
                file_size: 1 << 30,
                read_size: 4 << 20,
                first_vcpu: 0,
                seed,
            },
            Rc::clone(&rec),
        );
        let plan = FaultPlan::new().with(
            FaultWindow::always(),
            FaultKind::IgnoreReleaseRequest { dom: dom.0 },
        );
        cl.install_faults(s, idx, plan);
        sim.run_until(SimTime::from_secs(3));
        let m = sim.world().machine(idx);
        let k = &m.domain(dom).unwrap().kernel;
        assert_eq!(
            k.bypass_grants(),
            0,
            "seed {seed:#x}: the guest ignores releases, so none may be applied"
        );
        let ops = rec.borrow().ops;
        assert!(
            ops > 10,
            "seed {seed:#x}: workload wedged when release_request was ignored (ops={ops})"
        );
        format!(
            "ops={ops} congestion_entries={} bypass={}",
            k.congestion_entries(),
            k.bypass_grants()
        )
    });
}

// --------------------------------------------------------------------
// Quarantine semantics: monitoring keys of a flagged domain are inert
// --------------------------------------------------------------------

/// Once quarantined, a domain's monitoring keys are dead letters: even
/// if it advertises an enormous dirty-page count, the management tick
/// never orders it to flush — the slot goes to a well-behaved domain.
#[test]
fn quarantined_domain_monitoring_is_ignored() {
    sweep(0xFA_0008, |seed| {
        let kind = SystemKind::IOrchestraWith(FunctionSet::flush_only());
        let (mut sim, idx) = sim_with(kind, seed);
        let (cl, s) = sim.parts_mut();
        let evil = cl.create_domain(s, idx, VmSpec::new(1, 2).with_disk_gb(8), slow_wb);
        let healthy = cl.create_domain(s, idx, VmSpec::new(1, 2).with_disk_gb(8), slow_wb);
        let plan = FaultPlan::new().with(
            FaultWindow::new(SimTime::ZERO, SimTime::from_millis(800)),
            FaultKind::StoreHammer {
                dom: evil.0,
                period: SimDuration::from_micros(200),
            },
        );
        cl.install_faults(s, idx, plan);
        sim.run_until(SimTime::from_millis(1500));
        assert_eq!(
            health(sim.world().machine(idx), evil, "quarantined"),
            "1",
            "seed {seed:#x}: hammer not quarantined"
        );
        // The quarantined guest baits the flush policy with a huge
        // advertised dirty count; the healthy guest has real dirty pages.
        let (cl, s) = sim.parts_mut();
        dirty_mb(cl, s, idx, healthy, 8);
        let bait_flag = keys::has_dirty_pages(evil);
        let bait_nr = keys::nr_dirty(evil);
        cl.cp_action(s, idx, move |m, _s| {
            let _ = m.store.write(evil, &bait_flag, "1");
            let _ = m.store.write(evil, &bait_nr, "999999999");
        });
        sim.run_until(SimTime::from_secs(4));
        let m = sim.world().machine(idx);
        assert_eq!(
            m.store.read(DOM0, keys::flush_now(evil)).unwrap(),
            "0",
            "seed {seed:#x}: management tick acted on a quarantined domain's keys"
        );
        assert_eq!(
            m.domain(healthy).unwrap().kernel.dirty_pages(),
            0,
            "seed {seed:#x}: healthy guest should have received the flush slot"
        );
        format!(
            "evil_flush_now={} healthy_dirty={}",
            m.store.read(DOM0, keys::flush_now(evil)).unwrap(),
            m.domain(healthy).unwrap().kernel.dirty_pages(),
        )
    });
}
