//! Multi-machine integration: clusters, the network model and the
//! scale-out workloads running together.

use std::cell::RefCell;
use std::rc::Rc;

use iorchestra_suite::core::SystemKind;
use iorchestra_suite::hypervisor::{Cluster, VmSpec};
use iorchestra_suite::netsim::{NetParams, Network, NodeId};
use iorchestra_suite::simcore::{SimTime, Simulation};
use iorchestra_suite::workloads::{
    recorder, spawn_blast, spawn_ycsb, BlastParams, VmRef, YcsbParams,
};

#[test]
fn blast_runs_across_four_machines() {
    let mut sim = Simulation::new(Cluster::new());
    let machines = 4;
    let net = Rc::new(RefCell::new(Network::new(
        machines + 1,
        NetParams::default(),
    )));
    let mut workers = Vec::new();
    let mut ids = Vec::new();
    for m in 0..machines {
        let (cl, s) = sim.parts_mut();
        let idx = SystemKind::IOrchestra.provision(cl, s, m as u64);
        let dom = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(20), |_| {});
        workers.push(VmRef { machine: idx, dom });
        ids.push(NodeId(m));
    }
    let rec = recorder(SimTime::ZERO);
    {
        let (cl, s) = sim.parts_mut();
        spawn_blast(
            cl,
            s,
            &workers,
            Some((Rc::clone(&net), ids, NodeId(machines))),
            BlastParams {
                scan_per_query: 8 << 20,
                max_queries: 3,
                ..BlastParams::default()
            },
            Rc::clone(&rec),
        );
    }
    sim.run_until(SimTime::from_secs(30));
    let r = rec.borrow();
    assert!(r.finished, "all three queries must complete");
    assert!(r.ops > 0);
    // Coordination traffic flowed: each worker reported per query.
    let sent: u64 = (0..machines)
        .map(|m| net.borrow().msgs_sent(NodeId(m)))
        .sum();
    assert!(sent >= 3 * machines as u64, "sent={sent}");
}

#[test]
fn multinode_ycsb_pays_for_forwarding() {
    // A 4-node store spread over 4 machines must show higher mean latency
    // than a single-node store: forwarded requests pay two network hops
    // and replication crosses machines.
    let run = |machines: usize| {
        let mut sim = Simulation::new(Cluster::new());
        let net = Rc::new(RefCell::new(Network::new(machines, NetParams::default())));
        let mut nodes = Vec::new();
        let mut ids = Vec::new();
        for m in 0..machines {
            let (cl, s) = sim.parts_mut();
            let idx = SystemKind::Baseline.provision(cl, s, 40 + m as u64);
            let dom = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(20), |_| {});
            nodes.push(VmRef { machine: idx, dom });
            ids.push(NodeId(m));
        }
        let rec = recorder(SimTime::from_millis(500));
        {
            let (cl, s) = sim.parts_mut();
            spawn_ycsb(
                cl,
                s,
                &nodes,
                Some((net, ids)),
                YcsbParams::ycsb1(800.0, 123),
                Rc::clone(&rec),
            );
        }
        sim.run_until(SimTime::from_secs(3));
        let m = rec.borrow().hist.mean();
        assert!(rec.borrow().ops > 500);
        m
    };
    let single = run(1);
    let four = run(4);
    assert!(
        four > single,
        "scale-out must add inter-node latency: 1={single} 4={four}"
    );
}
