//! Integration tests for the collaborative machinery itself: the store
//! choreography of Algorithms 1 and 2 observed end to end, failure
//! injection, and the anomaly path.

use std::rc::Rc;

use iorchestra_suite::core::{FunctionSet, SystemKind};
use iorchestra_suite::guestos::FileOp;
use iorchestra_suite::hypervisor::{Cluster, VmSpec, DOM0};
use iorchestra_suite::simcore::{SimDuration, SimTime, Simulation};
use iorchestra_suite::workloads::{recorder, spawn_multistream, MultiStreamParams, VmRef};

fn sim_with(kind: SystemKind, seed: u64) -> (Simulation<Cluster>, usize) {
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let idx = kind.provision(cl, s, seed);
    (sim, idx)
}

/// Algorithm 1 end to end: a guest dirties pages, publishes
/// `has_dirty_pages`, and the management module orders a flush once the
/// device goes idle; the dirty pages reach the device without any app
/// `sync()`.
#[test]
fn flush_choreography_drains_dirty_pages() {
    let (mut sim, idx) = sim_with(SystemKind::IOrchestraWith(FunctionSet::flush_only()), 3);
    let (cl, s) = sim.parts_mut();
    let dom = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(20), |g| {
        // Stock (slow) writeback clocks: only IOrchestra can flush early.
        g.wb.periodic_interval = SimDuration::from_secs(30);
        g.wb.dirty_expire = SimDuration::from_secs(60);
    });
    let file = cl
        .machine_mut(idx)
        .kernel_mut(dom)
        .unwrap()
        .create_file(64 << 20)
        .unwrap();
    cl.submit_op(
        s,
        idx,
        dom,
        0,
        FileOp::Write {
            file,
            offset: 0,
            len: 16 << 20,
        },
        None,
    );
    // Before any policy action the pages are dirty.
    assert!(cl.machine(idx).domain(dom).unwrap().kernel.dirty_pages() > 0);
    sim.run_until(SimTime::from_secs(3));
    let m = sim.world().machine(idx);
    // The store shows the full round trip: has_dirty_pages back to 0 and
    // flush_now back to 0.
    assert_eq!(
        m.store
            .read(DOM0, "/local/domain/1/virt-dev/has_dirty_pages")
            .unwrap(),
        "0"
    );
    assert_eq!(
        m.store
            .read(DOM0, "/local/domain/1/virt-dev/flush_now")
            .unwrap(),
        "0"
    );
    assert_eq!(m.domain(dom).unwrap().kernel.dirty_pages(), 0);
    // And the 16 MiB actually reached the device.
    let (_, writes) = m.storage.monitor().byte_counts();
    assert!(writes >= 16 << 20, "writes={writes}");
}

/// Algorithm 2 end to end: a false congestion trigger is released through
/// the store (`congested` → `release_request` → bypass), so the guest
/// keeps more requests in flight than its descriptor limit.
#[test]
fn congestion_choreography_releases_false_triggers() {
    let kind = SystemKind::IOrchestraWith(FunctionSet::congestion_only());
    let (mut sim, idx) = sim_with(kind, 4);
    let (cl, s) = sim.parts_mut();
    let dom = cl.create_domain(s, idx, VmSpec::new(4, 4).with_disk_gb(20), |g| {
        g.queue.nr_requests = 64;
        g.readahead_chunks = 16;
    });
    let vm = VmRef { machine: idx, dom };
    let rec = recorder(SimTime::ZERO);
    spawn_multistream(
        cl,
        s,
        vm,
        MultiStreamParams {
            streams: 8,
            file_size: 1 << 30,
            read_size: 4 << 20,
            first_vcpu: 0,
            seed: 4,
        },
        Rc::clone(&rec),
    );
    sim.run_until(SimTime::from_secs(3));
    let m = sim.world().machine(idx);
    let k = &m.domain(dom).unwrap().kernel;
    assert!(
        k.bypass_grants() >= 1,
        "the release_request path never engaged"
    );
    assert!(rec.borrow().ops > 10);
}

/// Same scenario under baseline: congestion engages and sleeps submitters
/// instead.
#[test]
fn baseline_congestion_sleeps_instead() {
    let (mut sim, idx) = sim_with(SystemKind::Baseline, 4);
    let (cl, s) = sim.parts_mut();
    let dom = cl.create_domain(s, idx, VmSpec::new(4, 4).with_disk_gb(20), |g| {
        g.queue.nr_requests = 64;
        g.readahead_chunks = 16;
    });
    let vm = VmRef { machine: idx, dom };
    let rec = recorder(SimTime::ZERO);
    spawn_multistream(
        cl,
        s,
        vm,
        MultiStreamParams {
            streams: 8,
            file_size: 1 << 30,
            read_size: 4 << 20,
            first_vcpu: 0,
            seed: 4,
        },
        Rc::clone(&rec),
    );
    sim.run_until(SimTime::from_secs(3));
    let m = sim.world().machine(idx);
    let k = &m.domain(dom).unwrap().kernel;
    assert!(k.congestion_entries() >= 1, "congestion never triggered");
    assert_eq!(k.bypass_grants(), 0, "baseline must never bypass");
}

/// Failure injection: a guest that ignores `flush_now` (we simulate by
/// tearing the domain down right after the command) must not wedge the
/// management module — other domains still get flushed.
#[test]
fn unresponsive_guest_does_not_wedge_flush_policy() {
    let (mut sim, idx) = sim_with(SystemKind::IOrchestraWith(FunctionSet::flush_only()), 8);
    let (cl, s) = sim.parts_mut();
    let doomed = cl.create_domain(s, idx, VmSpec::new(1, 1).with_disk_gb(8), |g| {
        g.wb.periodic_interval = SimDuration::from_secs(30);
        g.wb.dirty_expire = SimDuration::from_secs(60);
    });
    let healthy = cl.create_domain(s, idx, VmSpec::new(1, 1).with_disk_gb(8), |g| {
        g.wb.periodic_interval = SimDuration::from_secs(30);
        g.wb.dirty_expire = SimDuration::from_secs(60);
    });
    for dom in [doomed, healthy] {
        let file = cl
            .machine_mut(idx)
            .kernel_mut(dom)
            .unwrap()
            .create_file(32 << 20)
            .unwrap();
        cl.submit_op(
            s,
            idx,
            dom,
            0,
            FileOp::Write {
                file,
                offset: 0,
                len: 8 << 20,
            },
            None,
        );
    }
    // Give the policy a moment, then kill the first domain mid-protocol.
    sim.run_until(SimTime::from_millis(150));
    let (cl, s) = sim.parts_mut();
    cl.destroy_domain(s, idx, doomed);
    sim.run_until(SimTime::from_secs(4));
    let m = sim.world().machine(idx);
    assert_eq!(
        m.domain(healthy).unwrap().kernel.dirty_pages(),
        0,
        "healthy guest must still be flushed"
    );
}

/// A malicious guest hammering the store gets flagged by the anomaly
/// detector while well-behaved guests stay clean.
#[test]
fn store_spammer_is_flagged() {
    let (mut sim, idx) = sim_with(SystemKind::IOrchestra, 15);
    let (cl, s) = sim.parts_mut();
    let evil = cl.create_domain(s, idx, VmSpec::new(1, 1), |_| {});
    let good = cl.create_domain(s, idx, VmSpec::new(1, 1), |_| {});
    // The malicious driver writes its keys in a tight loop.
    let path = format!("/local/domain/{}/virt-dev/spam", evil.0);
    s.schedule_every(SimDuration::from_micros(200), move |cl: &mut Cluster, s| {
        let m = cl.machine_mut(idx);
        let _ = m.store.write(evil, &path, "x");
        s.now() < SimTime::from_secs(2)
    });
    sim.run_until(SimTime::from_secs(3));
    let m = sim.world().machine(idx);
    assert!(m.store.write_count(evil) > 1_000);
    assert!(m.store.write_count(good) < 100);
    // The write counts are the detector's input; verify through the
    // machine-level accounting that the spammer dominates.
    assert!(m.store.write_count(evil) > 50 * m.store.write_count(good).max(1));
}
