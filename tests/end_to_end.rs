//! Cross-crate integration tests: full machines running real workloads
//! under every system, exercising the entire stack end to end.

use std::rc::Rc;

use iorchestra_suite::core::{FunctionSet, SystemKind};
use iorchestra_suite::hypervisor::{Cluster, VmSpec};
use iorchestra_suite::simcore::{
    FaultKind, FaultPlan, FaultWindow, SimDuration, SimTime, Simulation,
};
use iorchestra_suite::workloads::{
    recorder, spawn_fileserver, spawn_webserver, spawn_ycsb, FsParams, VmRef, WsParams, YcsbParams,
};

fn store_sim(kind: SystemKind, seed: u64) -> (Simulation<Cluster>, usize) {
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let idx = kind.provision(cl, s, seed);
    (sim, idx)
}

fn run_ycsb(kind: SystemKind, seed: u64) -> (u64, SimDuration, SimDuration) {
    run_ycsb_with_faults(kind, seed, None)
}

fn run_ycsb_with_faults(
    kind: SystemKind,
    seed: u64,
    plan: Option<FaultPlan>,
) -> (u64, SimDuration, SimDuration) {
    let (mut sim, idx) = store_sim(kind, seed);
    let (cl, s) = sim.parts_mut();
    let a = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(20), |_| {});
    let b = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(20), |_| {});
    if let Some(plan) = plan {
        cl.install_faults(s, idx, plan);
    }
    let rec = recorder(SimTime::from_millis(500));
    spawn_ycsb(
        cl,
        s,
        &[
            VmRef {
                machine: idx,
                dom: a,
            },
            VmRef {
                machine: idx,
                dom: b,
            },
        ],
        None,
        YcsbParams::ycsb1(1200.0, seed),
        Rc::clone(&rec),
    );
    sim.run_until(SimTime::from_millis(2500));
    let r = rec.borrow();
    (r.ops, r.hist.mean(), r.hist.p999())
}

#[test]
fn every_system_completes_ycsb_ops() {
    for kind in SystemKind::headline() {
        let (ops, mean, p999) = run_ycsb(kind, 31);
        // 1200 rps over ~2s measured window.
        assert!(ops > 1500, "{}: only {ops} ops", kind.label());
        assert!(
            mean > SimDuration::from_micros(20) && mean < SimDuration::from_millis(20),
            "{}: implausible mean {mean}",
            kind.label()
        );
        assert!(p999 >= mean, "{}: tail below mean", kind.label());
    }
}

#[test]
fn same_seed_is_bit_reproducible() {
    let a = run_ycsb(SystemKind::IOrchestra, 77);
    let b = run_ycsb(SystemKind::IOrchestra, 77);
    assert_eq!(a, b, "identical seeds must give identical results");
}

#[test]
fn same_seed_and_fault_plan_is_bit_reproducible() {
    // A fault-injected run is still a pure function of (seed, plan): the
    // plan schedules everything at install time, so two identical runs
    // give byte-identical summaries — and the faults really bite (the
    // degraded run differs from the clean one).
    let plan = || {
        FaultPlan::new()
            .with(
                FaultWindow::new(SimTime::from_millis(400), SimTime::from_millis(900)),
                FaultKind::DeviceSlowdown { factor: 3.0 },
            )
            .with(
                FaultWindow::new(SimTime::from_millis(1200), SimTime::from_millis(1400)),
                FaultKind::DeviceStall,
            )
    };
    let a = run_ycsb_with_faults(SystemKind::IOrchestra, 77, Some(plan()));
    let b = run_ycsb_with_faults(SystemKind::IOrchestra, 77, Some(plan()));
    assert_eq!(a, b, "identical (seed, FaultPlan) must replay bit-for-bit");
    let clean = run_ycsb(SystemKind::IOrchestra, 77);
    assert_ne!(a, clean, "the fault plan must actually perturb the run");
}

#[test]
fn different_seeds_differ() {
    let a = run_ycsb(SystemKind::Baseline, 1);
    let b = run_ycsb(SystemKind::Baseline, 2);
    assert_ne!((a.1, a.2), (b.1, b.2));
}

#[test]
fn dedicated_core_reads_beat_paravirt_overhead() {
    // A read-mostly store: the dedicated-core path removes doorbell and
    // interrupt costs, so SDC/IOrchestra mean latency must not be worse
    // than baseline by more than noise.
    let run = |kind: SystemKind| {
        let (mut sim, idx) = store_sim(kind, 5);
        let (cl, s) = sim.parts_mut();
        let a = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(20), |_| {});
        let rec = recorder(SimTime::from_millis(500));
        spawn_ycsb(
            cl,
            s,
            &[VmRef {
                machine: idx,
                dom: a,
            }],
            None,
            YcsbParams::ycsb2(1500.0, 5),
            Rc::clone(&rec),
        );
        sim.run_until(SimTime::from_millis(3000));
        let m = rec.borrow().hist.mean();
        m
    };
    let base = run(SystemKind::Baseline);
    let sdc = run(SystemKind::Sdc);
    assert!(
        sdc.as_nanos() as f64 <= base.as_nanos() as f64 * 1.10,
        "SDC {sdc} should not regress vs baseline {base}"
    );
}

#[test]
fn policy_toggles_change_behaviour() {
    // The IOrchestra store choreography must actually engage: after a
    // write-heavy run, the plane has triggered flushes.
    let kind = SystemKind::IOrchestraWith(FunctionSet::flush_only());
    let (mut sim, idx) = store_sim(kind, 9);
    let (cl, s) = sim.parts_mut();
    let a = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(20), |g| {
        g.wb.periodic_interval = SimDuration::from_secs(2);
        g.wb.dirty_expire = SimDuration::from_secs(10);
    });
    let vm = VmRef {
        machine: idx,
        dom: a,
    };
    let rec = recorder(SimTime::ZERO);
    spawn_fileserver(
        cl,
        s,
        vm,
        FsParams {
            threads: 2,
            pool: 500,
            seed: 9,
            ..FsParams::default()
        },
        Rc::clone(&rec),
    );
    sim.run_until(SimTime::from_secs(3));
    // The guest must have published has_dirty_pages and the manager must
    // have reacted with flush_now at least once (device has idle windows
    // in this single-VM run).
    let m = sim.world().machine(idx);
    let nr = m
        .store
        .read(
            iorchestra_suite::hypervisor::DOM0,
            "/local/domain/1/virt-dev/has_dirty_pages",
        )
        .expect("guest driver must publish dirty state");
    assert!(nr == "0" || nr == "1");
    assert!(rec.borrow().ops > 0);
}

#[test]
fn webserver_full_stack() {
    let (mut sim, idx) = store_sim(SystemKind::IOrchestra, 13);
    let (cl, s) = sim.parts_mut();
    let dom = cl.create_domain(s, idx, VmSpec::new(2, 2).with_disk_gb(10), |_| {});
    let rec = recorder(SimTime::from_millis(300));
    spawn_webserver(
        cl,
        s,
        VmRef { machine: idx, dom },
        WsParams {
            threads: 2,
            pages: 500,
            seed: 13,
            ..WsParams::default()
        },
        Rc::clone(&rec),
    );
    sim.run_until(SimTime::from_secs(2));
    let r = rec.borrow();
    assert!(r.ops > 50, "web requests served: {}", r.ops);
    // Each WS request reads 10 pages + appends a log record; with a hot
    // docroot most reads are cache hits, so the latency is small but the
    // payload accounting must still add up (10 x 16 KiB + 8 KiB).
    assert!(r.hist.mean() > SimDuration::ZERO);
    assert_eq!(r.bytes, r.ops * (10 * (16 << 10) + (8 << 10)));
}

#[test]
fn destroying_mid_io_is_safe() {
    let (mut sim, idx) = store_sim(SystemKind::IOrchestra, 21);
    let (cl, s) = sim.parts_mut();
    let dom = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(20), |_| {});
    let rec = recorder(SimTime::ZERO);
    spawn_ycsb(
        cl,
        s,
        &[VmRef { machine: idx, dom }],
        None,
        YcsbParams::ycsb1(2000.0, 21),
        Rc::clone(&rec),
    );
    // Let I/O get going, then kill the domain with requests in flight.
    sim.run_until(SimTime::from_millis(200));
    rec.borrow_mut().stopped = true;
    let (cl, s) = sim.parts_mut();
    cl.destroy_domain(s, idx, dom);
    // The simulation must drain cleanly (no panics, no stuck events).
    sim.run_until(SimTime::from_secs(2));
    assert_eq!(sim.world().machine(idx).domain_count(), 0);
}
