//! Cluster control tier at scale: 4 nodes × 64 domains, one node lost.
//!
//! The acceptance run for the cluster tier: place a full catalog across
//! four IOrchestra machines, kill one node for good, and require every
//! orphaned domain to be re-placed on the survivors with zero duplicated
//! ownership and the quota math still respected.

use iorchestra_suite::core::cluster::ClusterTier;
use iorchestra_suite::core::{ClusterConfig, SystemKind};
use iorchestra_suite::hypervisor::{Cluster, VmSpec};
use iorchestra_suite::simcore::{
    FaultKind, FaultPlan, FaultWindow, SimDuration, SimTime, Simulation,
};

#[test]
fn four_nodes_64_domains_fail_over_without_duplicates() {
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let machines: Vec<usize> = (0..4)
        .map(|m| SystemKind::IOrchestra.provision(cl, s, 0xD0 + m as u64))
        .collect();
    let tier = ClusterTier::install(cl, s, &machines, ClusterConfig::default());
    {
        let mut t = tier.borrow_mut();
        for i in 0..64u32 {
            t.submit_domain(VmSpec::new(1 + i % 2, 1).with_disk_gb(4));
        }
        // Node 2 dies at 1.5 s and never comes back within the horizon.
        t.install_faults(
            s,
            &FaultPlan::new().with(
                FaultWindow::always(),
                FaultKind::NodeCrash {
                    node: 2,
                    at: SimTime::from_millis(1500),
                    recover_after: SimDuration::from_secs(60),
                },
            ),
        );
    }

    // Phase 1: the catalog spreads over all four nodes.
    sim.run_until(SimTime::from_millis(1400));
    {
        let (cl, _s) = sim.parts_mut();
        let t = tier.borrow();
        let per_node: Vec<usize> = t.agents().iter().map(|a| a.owned().len()).collect();
        assert_eq!(per_node.iter().sum::<usize>(), 64, "all 64 domains placed");
        assert!(
            per_node.iter().all(|&n| n > 0),
            "placement must use every node, got {per_node:?}"
        );
        assert!(t.ownership_violations(cl).is_empty());
        let lost = per_node[2];
        assert!(lost > 0, "node 2 must own something to orphan");
    }

    // Phase 2: leases expire, orphans fail over to the three survivors.
    sim.run_until(SimTime::from_secs(6));
    let (cl, _s) = sim.parts_mut();
    let t = tier.borrow();
    assert!(t.agents()[2].is_down(), "node 2 stays dead");
    assert!(
        !t.controller().members()[&2].alive,
        "controller must have declared node 2 dead"
    );
    assert!(
        t.controller().stats().failovers > 0,
        "orphans must be re-placed via failover"
    );

    // Every logical domain is owned exactly once, all on survivors.
    let mut owners: Vec<(u32, u32)> = Vec::new();
    for a in t.agents() {
        if a.is_down() {
            continue;
        }
        for &ldom in a.owned().keys() {
            owners.push((ldom, a.node()));
        }
    }
    owners.sort_unstable();
    let ldoms: Vec<u32> = owners.iter().map(|&(l, _)| l).collect();
    let catalog: Vec<u32> = t.controller().catalog().keys().copied().collect();
    assert_eq!(ldoms, catalog, "all orphans re-placed, each exactly once");
    assert!(
        t.ownership_violations(cl).is_empty(),
        "no duplicated ownership"
    );

    // Quota math holds on the survivors: placed vcpus within overcommit.
    let overcommit = t.config().vcpu_overcommit;
    for a in t.agents() {
        if a.is_down() {
            continue;
        }
        let m = cl.machine(a.machine());
        let caps = m.placement_caps();
        assert!(
            caps.placed_vcpus <= caps.total_cores * overcommit,
            "node {} over quota: {} vcpus on {} cores x{overcommit}",
            a.node(),
            caps.placed_vcpus,
            caps.total_cores
        );
    }
}
