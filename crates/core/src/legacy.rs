//! Frozen pre-redesign control planes, kept as the differential oracle.
//!
//! These are the hand-fused plane structs exactly as they stood before the
//! [`policy`](crate::policy) pipeline redesign: [`LegacyBaselinePlane`],
//! [`LegacyDifPlane`], and [`LegacyIOrchestraPlane`] (Algorithms 1–3 plus
//! the PR 5 robustness machinery, hardcoded into one `on_tick`). The
//! equivalence suite replays every tracedump fault scenario against both a
//! legacy plane and the pipeline-expressed policy set and asserts the
//! rendered traces are **byte-identical** — the same role the
//! `xenstore_legacy` model plays for the store. New code should use
//! [`PolicySet`](crate::policy::PolicySet) constructors instead; nothing
//! here is wired into [`SystemKind`](crate::SystemKind) provisioning.

use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use iorch_guestos::KernelSignal;
use iorch_hypervisor::{
    AsStorePath, Cluster, ControlPlane, DomainId, Machine, Sched, StorePath, WatchEvent, DOM0,
};
use iorch_simcore::trace::{Decision, TraceEventKind};
use iorch_simcore::{trace_event, SimDuration, SimRng, SimTime};

use crate::anomaly::AnomalyDetector;
use crate::formulas::{
    drr_quantum, inverse_latency_weights, ratio_changed, socket_io_share, socket_process_weight,
};
use crate::keys::{self, val, DomainKeys};
use crate::monitor::MonitoringModule;
use crate::planes::{IOrchestraConfig, PlaneStats};

// --------------------------------------------------------------------
// Baseline / SDC
// --------------------------------------------------------------------

/// Pre-redesign stock behaviour: the guest's congestion avoidance runs
/// blind.
pub struct LegacyBaselinePlane {
    label: &'static str,
}

impl LegacyBaselinePlane {
    /// The paper's Baseline (pair with paravirt I/O).
    pub fn baseline() -> Self {
        LegacyBaselinePlane { label: "baseline" }
    }

    /// SDC label (pair with a single dedicated core).
    pub fn sdc() -> Self {
        LegacyBaselinePlane { label: "sdc" }
    }
}

impl ControlPlane for LegacyBaselinePlane {
    fn name(&self) -> &'static str {
        self.label
    }

    fn on_kernel_signal(
        &mut self,
        m: &mut Machine,
        s: &mut Sched,
        dom: DomainId,
        sig: KernelSignal,
    ) {
        if sig == KernelSignal::CongestionQuery {
            m.cp_enter_congestion(s, dom);
        }
    }
}

// --------------------------------------------------------------------
// DIF
// --------------------------------------------------------------------

/// Pre-redesign disk-idleness-based flushing (Elango et al. \[17\]).
pub struct LegacyDifPlane {
    monitor: MonitoringModule,
    tick: SimDuration,
}

impl LegacyDifPlane {
    /// New DIF plane.
    pub fn new() -> Self {
        LegacyDifPlane {
            monitor: MonitoringModule::new(),
            tick: SimDuration::from_millis(100),
        }
    }
}

impl Default for LegacyDifPlane {
    fn default() -> Self {
        Self::new()
    }
}

impl ControlPlane for LegacyDifPlane {
    fn name(&self) -> &'static str {
        "dif"
    }

    fn tick_period(&self) -> Option<SimDuration> {
        Some(self.tick)
    }

    fn on_kernel_signal(
        &mut self,
        m: &mut Machine,
        s: &mut Sched,
        dom: DomainId,
        sig: KernelSignal,
    ) {
        if sig == KernelSignal::CongestionQuery {
            m.cp_enter_congestion(s, dom);
        }
    }

    fn on_tick(&mut self, m: &mut Machine, s: &mut Sched) {
        let rep = self.monitor.sample(m, s.now());
        if rep.device_underutilized {
            // Idleness is broadcast: every VM with dirty pages flushes now.
            // (The simultaneous flush is DIF's weakness vs. Algorithm 1.)
            for dom in m.domain_ids() {
                let dirty = m.domain(dom).map(|d| d.kernel.dirty_pages()).unwrap_or(0);
                if dirty > 0 {
                    m.cp_remote_sync(s, dom);
                }
            }
        }
    }
}

// --------------------------------------------------------------------
// IOrchestra
// --------------------------------------------------------------------

/// The pre-redesign IOrchestra plane: store-choreographed flush control,
/// collaborative congestion control, and NUMA-aware I/O co-scheduling,
/// hand-fused into one struct.
pub struct LegacyIOrchestraPlane {
    cfg: IOrchestraConfig,
    rng: SimRng,
    monitor: MonitoringModule,
    anomaly: AnomalyDetector,
    write_count_base: BTreeMap<DomainId, u64>,
    denied_base: BTreeMap<DomainId, u64>,
    /// When each outstanding `release_request` command was issued. The
    /// per-tick reconciliation sweep re-issues a grant still sitting
    /// unaccepted in the store past [`IOrchestraConfig::release_ack_timeout`]
    /// — epochs make the re-issue idempotent, so a dropped bus delivery
    /// cannot strand a sleeping guest.
    release_pending: BTreeMap<DomainId, SimTime>,
    /// In-flight `flush_now` commands and their ack deadlines.
    flush_in_progress: BTreeMap<DomainId, SimTime>,
    /// Domains in retry backoff after flush timeouts.
    flush_backoff_until: BTreeMap<DomainId, SimTime>,
    /// Consecutive unacked flushes per domain (reset on ack).
    flush_fail_streak: BTreeMap<DomainId, u32>,
    /// Cumulative flush timeouts per domain (health counter).
    flush_timeouts_by_dom: BTreeMap<DomainId, u64>,
    /// Quarantined domains: their store events and monitoring keys are
    /// ignored and they get Baseline behaviour until an operator clears
    /// them through the `/iorchestra/control` channel.
    quarantined: BTreeSet<DomainId>,
    /// Last health tuple published per domain (flush_timeouts,
    /// quarantined, store_denied) — the store is only touched on change,
    /// so a healthy steady-state tick publishes nothing.
    health_published: BTreeMap<DomainId, (u64, bool, u64)>,
    /// VMs whose congestion was confirmed (host really congested), woken
    /// FIFO when the host is relieved.
    congested_fifo: Vec<DomainId>,
    last_route_weights: BTreeMap<DomainId, Vec<f64>>,
    last_weight_push: SimTime,
    manager_watch_registered: bool,
    /// Interned per-domain store paths, built once at attach so the
    /// per-tick loops below never `format!` a path.
    domain_keys: BTreeMap<DomainId, DomainKeys>,
    /// Command generation, persisted under [`keys::STATE_EPOCH`]. Every
    /// `flush_now`/`release_request` command carries a fresh epoch; a
    /// restarted plane resumes at `persisted + 1`, so guest drivers can
    /// discard commands stamped by a dead incarnation or duplicated by an
    /// unreliable bus.
    epoch: u64,
    stats: PlaneStats,
}

impl LegacyIOrchestraPlane {
    /// Build a plane.
    pub fn new(cfg: IOrchestraConfig) -> Self {
        LegacyIOrchestraPlane {
            rng: SimRng::new(cfg.seed ^ 0x10c),
            monitor: MonitoringModule::new(),
            anomaly: AnomalyDetector::new(cfg.anomaly),
            write_count_base: BTreeMap::new(),
            denied_base: BTreeMap::new(),
            release_pending: BTreeMap::new(),
            flush_in_progress: BTreeMap::new(),
            flush_backoff_until: BTreeMap::new(),
            flush_fail_streak: BTreeMap::new(),
            flush_timeouts_by_dom: BTreeMap::new(),
            quarantined: BTreeSet::new(),
            health_published: BTreeMap::new(),
            congested_fifo: Vec::new(),
            last_route_weights: BTreeMap::new(),
            last_weight_push: SimTime::ZERO,
            manager_watch_registered: false,
            domain_keys: BTreeMap::new(),
            epoch: 0,
            stats: PlaneStats::default(),
            cfg,
        }
    }

    /// Counters.
    pub fn stats(&self) -> PlaneStats {
        self.stats
    }

    /// Domains flagged by the anomaly detector.
    pub fn flagged_domains(&self) -> Vec<DomainId> {
        self.anomaly.flagged().collect()
    }

    /// Currently quarantined domains.
    pub fn quarantined_domains(&self) -> Vec<DomainId> {
        self.quarantined.iter().copied().collect()
    }

    /// Read an unsigned counter from the plane's persisted state subtree
    /// (missing or unparsable reads as 0 — the subtree grows lazily).
    fn read_state_u64<P: AsStorePath>(m: &Machine, path: P) -> u64 {
        m.store
            .read_ref(DOM0, path)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    }

    /// Bump the command generation and persist it, so a restarted plane
    /// (`epoch = persisted + 1`) always outranks in-flight commands.
    fn next_epoch(&mut self, m: &mut Machine) -> u64 {
        self.epoch += 1;
        let _ = m
            .store
            .write(DOM0, keys::STATE_EPOCH, val::uint(self.epoch));
        self.epoch
    }

    /// Quarantine a domain: drop it from every collaborative queue and
    /// revert it to Baseline behaviour (graceful degradation) until an
    /// operator clears it. Persisted, so a dom0 restart cannot
    /// un-quarantine an anomalous guest.
    fn quarantine(&mut self, m: &mut Machine, dom: DomainId, now: SimTime, reason: &'static str) {
        if self.quarantined.insert(dom) {
            self.stats.quarantines += 1;
            self.congested_fifo.retain(|&d| d != dom);
            self.release_pending.remove(&dom);
            self.flush_in_progress.remove(&dom);
            self.flush_backoff_until.remove(&dom);
            let k = Self::keys_for(&mut self.domain_keys, dom);
            let _ = m
                .store
                .write_if_changed(DOM0, &k.state_quarantined, val::one());
            // The cancelled in-flight flush must not be resurrected by a
            // later recovery scan.
            let _ = m
                .store
                .write_if_changed(DOM0, &k.state_flush_epoch, val::zero());
            trace_event!(
                now,
                TraceEventKind::Decision(Decision::Quarantine { dom: dom.0, reason })
            );
        }
    }

    /// Operator clear (a dom0 write of `"1"` to
    /// `/iorchestra/control/<id>/clear`): forgive history and restore
    /// collaboration. A strict no-op for a domain that is not quarantined
    /// — no detector reset, no store writes, no trace.
    fn clear_quarantine(&mut self, m: &mut Machine, dom: DomainId, now: SimTime) {
        if !self.quarantined.remove(&dom) {
            return;
        }
        trace_event!(
            now,
            TraceEventKind::Decision(Decision::QuarantineCleared { dom: dom.0 })
        );
        self.anomaly.clear(dom);
        self.flush_fail_streak.remove(&dom);
        self.flush_backoff_until.remove(&dom);
        let k = Self::keys_for(&mut self.domain_keys, dom);
        let _ = m
            .store
            .write_if_changed(DOM0, &k.state_quarantined, val::zero());
        let _ = m
            .store
            .write_if_changed(DOM0, &k.state_fail_streak, val::zero());
    }

    fn guest_write(m: &mut Machine, dom: DomainId, path: &StorePath, v: Rc<str>) {
        // The guest driver writes through its own credentials — permission
        // violations would surface here.
        let _ = m.store.write(dom, path, v);
    }

    /// Guest-side monitoring republish: suppressed entirely when the store
    /// already holds the value, so an idle domain puts zero traffic on the
    /// XenBus channel per tick. Only used for keys no policy callback
    /// consumes (the control keys always publish).
    fn guest_publish(m: &mut Machine, dom: DomainId, path: &StorePath, v: Rc<str>) {
        let _ = m.store.write_if_changed(dom, path, v);
    }

    fn keys_for(
        domain_keys: &mut BTreeMap<DomainId, DomainKeys>,
        dom: DomainId,
    ) -> &mut DomainKeys {
        domain_keys
            .entry(dom)
            .or_insert_with(|| DomainKeys::new(dom))
    }

    fn run_flush_policy(&mut self, m: &mut Machine, s: &mut Sched) {
        // Algorithm 1: when the device is underutilized, tell the guest
        // with the most dirty pages to flush. Besides the windowed
        // bandwidth check the device must be instantaneously quiet, or the
        // flush would land on top of a read burst the window average
        // missed.
        if m.storage.in_flight() > 8 || m.storage.queue_depth() > 0 {
            return;
        }
        let now = s.now();
        let mut best: Option<(u64, DomainId)> = None;
        // Eligible (dom, nr_dirty) pairs, recorded as the decision's input
        // when tracing is on (the Vec is only built inside the trace arm).
        let mut candidates: Vec<(u32, u64)> = Vec::new();
        let tracing = iorch_simcore::trace::enabled();
        for dom in m.domain_ids() {
            // Skip domains with a flush in flight, in post-timeout backoff,
            // or quarantined — the argmax over the rest IS the fallback to
            // the next-dirtiest domain.
            if self.flush_in_progress.contains_key(&dom)
                || self.quarantined.contains(&dom)
                || self.flush_backoff_until.get(&dom).is_some_and(|&t| now < t)
            {
                continue;
            }
            let k = Self::keys_for(&mut self.domain_keys, dom);
            let has_dirty = m
                .store
                .read_ref(DOM0, &k.has_dirty_pages)
                .map(|v| v == "1")
                .unwrap_or(false);
            if !has_dirty {
                continue;
            }
            let nr = m
                .store
                .read_ref(DOM0, &k.nr_dirty)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            if tracing {
                candidates.push((dom.0, nr));
            }
            if best.is_none_or(|(bn, _)| nr > bn) {
                best = Some((nr, dom));
            }
        }
        if let Some((nr_dirty, dom)) = best {
            let deadline = now + self.cfg.flush_ack_timeout;
            self.flush_in_progress.insert(dom, deadline);
            self.stats.flushes_triggered += 1;
            trace_event!(
                now,
                TraceEventKind::Decision(Decision::FlushNow {
                    dom: dom.0,
                    nr_dirty,
                    candidates,
                })
            );
            // Persist the in-flight record before issuing the command: a
            // crash between the two leaves a phantom in-flight entry that
            // expires through the normal timeout path, never a command the
            // recovered plane does not know about.
            let epoch = self.next_epoch(m);
            let k = Self::keys_for(&mut self.domain_keys, dom);
            let _ = m.store.write(DOM0, &k.state_flush_epoch, val::uint(epoch));
            let _ = m.store.write(
                DOM0,
                &k.state_flush_deadline,
                val::uint(deadline.as_nanos()),
            );
            let _ = m.store.write(DOM0, &k.flush_now, val::uint(epoch));
        }
    }

    /// Expire `flush_now` ack deadlines: an unresponsive guest loses its
    /// slot (the next policy run picks the next-dirtiest domain), backs
    /// off exponentially, and is quarantined after
    /// `flush_max_retries` consecutive timeouts.
    fn expire_flush_deadlines(&mut self, m: &mut Machine, now: SimTime) {
        let expired: Vec<DomainId> = self
            .flush_in_progress
            .iter()
            .filter(|&(_, &deadline)| now >= deadline)
            .map(|(&d, _)| d)
            .collect();
        for dom in expired {
            self.flush_in_progress.remove(&dom);
            self.stats.flush_timeouts += 1;
            let timeouts = {
                let t = self.flush_timeouts_by_dom.entry(dom).or_insert(0);
                *t += 1;
                *t
            };
            let streak = {
                let s = self.flush_fail_streak.entry(dom).or_insert(0);
                *s += 1;
                *s
            };
            trace_event!(
                now,
                TraceEventKind::Decision(Decision::FlushTimeout { dom: dom.0, streak })
            );
            {
                let k = Self::keys_for(&mut self.domain_keys, dom);
                let _ = m
                    .store
                    .write_if_changed(DOM0, &k.state_flush_epoch, val::zero());
                let _ =
                    m.store
                        .write_if_changed(DOM0, &k.state_fail_streak, val::uint(streak as u64));
                let _ = m
                    .store
                    .write_if_changed(DOM0, &k.state_timeouts, val::uint(timeouts));
            }
            if streak >= self.cfg.flush_max_retries {
                self.quarantine(m, dom, now, "flush-timeout streak");
            } else {
                let shift = (streak - 1).min(6);
                self.flush_backoff_until
                    .insert(dom, now + self.cfg.flush_retry_backoff * (1u64 << shift));
            }
        }
    }

    /// Publish per-domain health counters under `/iorchestra/health/<id>`.
    /// Pure change-detection in plane memory: a steady-state tick performs
    /// zero store operations.
    fn publish_health(&mut self, m: &mut Machine) {
        for dom in m.domain_ids() {
            let tuple = (
                self.flush_timeouts_by_dom.get(&dom).copied().unwrap_or(0),
                self.quarantined.contains(&dom),
                m.store.denied_count(dom),
            );
            if self.health_published.get(&dom) == Some(&tuple) {
                continue;
            }
            let prev = self.health_published.insert(dom, tuple);
            let k = Self::keys_for(&mut self.domain_keys, dom);
            let (timeouts, quarantined, denied) = tuple;
            // `write_if_changed` (not plain writes): after a recovery the
            // in-memory `health_published` map is empty, and republishing a
            // value the store already holds must stay silent.
            if prev.map(|p| p.0) != Some(timeouts) {
                let _ =
                    m.store
                        .write_if_changed(DOM0, &k.health_flush_timeouts, val::uint(timeouts));
            }
            if prev.map(|p| p.1) != Some(quarantined) {
                let _ =
                    m.store
                        .write_if_changed(DOM0, &k.health_quarantined, val::flag(quarantined));
            }
            if prev.map(|p| p.2) != Some(denied) {
                let _ = m
                    .store
                    .write_if_changed(DOM0, &k.health_store_denied, val::uint(denied));
            }
        }
    }

    /// Algorithm 2's adjudication of one raised `congested` flag: confirm
    /// (host really congested — park the domain in the wake FIFO) or grant
    /// a release under a fresh epoch. Shared by the watch-event handler,
    /// the per-tick reconciliation sweep and the dom0 recovery scan, so a
    /// query is answered the same way no matter which path noticed it.
    fn adjudicate_congestion(&mut self, m: &mut Machine, now: SimTime, dom: DomainId) {
        if m.storage.is_congested() {
            // Host really is overcrowded: the guest stays asleep and is
            // woken FIFO on relief.
            self.stats.congestions_confirmed += 1;
            trace_event!(
                now,
                TraceEventKind::Decision(Decision::CongestionConfirmed {
                    dom: dom.0,
                    host_qdepth: m.storage.queue_depth() as u32,
                })
            );
            if !self.congested_fifo.contains(&dom) {
                self.congested_fifo.push(dom);
            }
        } else {
            // False trigger: release the request queue.
            self.stats.releases_granted += 1;
            trace_event!(
                now,
                TraceEventKind::Decision(Decision::ReleaseGranted {
                    dom: dom.0,
                    host_qdepth: m.storage.queue_depth() as u32,
                })
            );
            let epoch = self.next_epoch(m);
            let k = Self::keys_for(&mut self.domain_keys, dom);
            let _ = m.store.write(DOM0, &k.release_request, val::uint(epoch));
            self.release_pending.insert(dom, now);
        }
    }

    /// The reconciliation half of the lossy-bus hardening: every tick,
    /// re-read each collaborating domain's congestion keys straight from
    /// the store and repair whatever the bus lost. A raised `congested`
    /// flag nobody adjudicated (dropped guest-to-dom0 event, or a wake
    /// FIFO that died with a crashed plane) is adjudicated now; a granted
    /// release still unaccepted past the ack timeout (dropped dom0-to-
    /// guest delivery) is re-issued under a fresh epoch, which the guest's
    /// epoch cursor makes idempotent.
    fn reconcile_congestion(&mut self, m: &mut Machine, now: SimTime) {
        for dom in m.domain_ids() {
            if self.quarantined.contains(&dom) {
                continue;
            }
            let (congested_key, release_key) = {
                let k = Self::keys_for(&mut self.domain_keys, dom);
                (k.congested.clone(), k.release_request.clone())
            };
            let asking = m
                .store
                .read_ref(DOM0, &congested_key)
                .map(|v| v == "1")
                .unwrap_or(false);
            if !asking {
                self.release_pending.remove(&dom);
                continue;
            }
            if self.congested_fifo.contains(&dom) {
                // Confirmed: the staggered wake on relief owns this domain.
                continue;
            }
            let granted = m
                .store
                .read_ref(DOM0, &release_key)
                .map(|v| v != "0")
                .unwrap_or(false);
            if !granted {
                // Raised but never adjudicated: the query event was lost.
                self.adjudicate_congestion(m, now, dom);
                continue;
            }
            match self.release_pending.get(&dom) {
                Some(&issued) if now < issued + self.cfg.release_ack_timeout => {}
                _ => {
                    // The grant delivery was dropped (or predates this
                    // plane incarnation): re-issue under a fresh epoch.
                    self.stats.releases_granted += 1;
                    trace_event!(
                        now,
                        TraceEventKind::Decision(Decision::ReleaseGranted {
                            dom: dom.0,
                            host_qdepth: m.storage.queue_depth() as u32,
                        })
                    );
                    let epoch = self.next_epoch(m);
                    let _ = m.store.write(DOM0, &release_key, val::uint(epoch));
                    self.release_pending.insert(dom, now);
                }
            }
        }
    }

    fn run_congestion_relief(&mut self, m: &mut Machine, s: &mut Sched) {
        // Algorithm 2's final block: the host device is relieved; wake
        // sleeping VMs FIFO with a random 0–99 ms interleave.
        if self.congested_fifo.is_empty() {
            return;
        }
        let idx = m.idx;
        let mut offset = SimDuration::ZERO;
        let now = s.now();
        for dom in std::mem::take(&mut self.congested_fifo) {
            // `wake_interleave_max_ms == 0` means a true simultaneous wake
            // (the DESIGN.md §5 "no interleave" ablation point): no draw at
            // all, so the RNG stream is untouched too.
            if self.cfg.wake_interleave_max_ms > 0 {
                offset +=
                    SimDuration::from_millis(self.rng.range(0, self.cfg.wake_interleave_max_ms));
            }
            self.stats.staggered_wakeups += 1;
            trace_event!(
                now,
                TraceEventKind::Decision(Decision::StaggeredWake {
                    dom: dom.0,
                    offset_ms: offset.as_millis(),
                })
            );
            let congested_key = Self::keys_for(&mut self.domain_keys, dom).congested.clone();
            s.schedule_in(offset, move |cl: &mut Cluster, s| {
                cl.cp_action(s, idx, move |m, s| {
                    // The plane that scheduled this wake may have crashed in
                    // the meantime; a dead dom0 wakes nobody. The recovery
                    // scan re-adjudicates every domain whose `congested` key
                    // is still raised.
                    if m.is_control_down() {
                        return;
                    }
                    m.cp_grant_bypass(s, dom);
                    let _ = m.store.write(DOM0, &congested_key, val::zero());
                });
            });
        }
    }

    fn run_cosched(&mut self, m: &mut Machine, s: &mut Sched, now: SimTime) {
        if m.iocores.len() < 2 {
            return;
        }
        // L_i per socket, in microseconds.
        let mut lat_by_socket: BTreeMap<usize, f64> = BTreeMap::new();
        for c in &m.iocores {
            lat_by_socket.insert(c.socket(), c.avg_latency().as_micros_f64());
        }
        let dom_ids = m.domain_ids();
        let vm_share = 1.0 / dom_ids.len().max(1) as f64;
        let device_bw = m.storage.device_bandwidth();
        let sockets = m.topology.sockets();
        let interval_due =
            now.saturating_since(self.last_weight_push) >= self.cfg.weight_update_interval;
        let mut pushed = false;
        for dom in dom_ids {
            if self.quarantined.contains(&dom) {
                continue;
            }
            let Some(d) = m.domain(dom) else { continue };
            // Process weight per socket: each VCPU carries weight 1 (the
            // guest publishes per-process weights; with one I/O thread per
            // VCPU they are uniform).
            let vcpu_sockets: Vec<usize> = (0..d.spec.vcpus)
                .map(|v| d.vcpu_socket(&m.topology, v))
                .collect();
            let vcpu_weights = vec![1.0; vcpu_sockets.len()];
            let spanned: Vec<usize> = {
                let mut v = vcpu_sockets.clone();
                v.sort_unstable();
                v.dedup();
                v
            };
            // Route weights: inverse-latency across the spanned sockets,
            // scaled by where the VM's I/O processes actually live.
            let lats: Vec<f64> = spanned
                .iter()
                .map(|sk| lat_by_socket.get(sk).copied().unwrap_or(1.0))
                .collect();
            let inv = inverse_latency_weights(&lats);
            let total_w: f64 = vcpu_weights.iter().sum();
            let mut route = vec![0.0; sockets];
            for (j, sk) in spanned.iter().enumerate() {
                let proc_w = socket_process_weight(&vcpu_weights, &vcpu_sockets, *sk);
                route[*sk] = inv[j] * (proc_w / total_w).max(0.05);
            }
            let norm: f64 = route.iter().sum();
            if norm > 0.0 {
                for r in &mut route {
                    *r /= norm;
                }
            }
            let stale = self
                .last_route_weights
                .get(&dom)
                .is_none_or(|prev| ratio_changed(prev, &route, self.cfg.weight_change_threshold));
            if !(stale || interval_due) {
                continue;
            }
            pushed = true;
            self.stats.weight_pushes += 1;
            trace_event!(
                now,
                TraceEventKind::Decision(Decision::WeightPush {
                    dom: dom.0,
                    weights: route.clone(),
                })
            );
            self.last_route_weights.insert(dom, route.clone());
            // Publish to the store (the guests' registered callbacks pick
            // these up; for the simulated guests the machine applies them
            // directly).
            let k = Self::keys_for(&mut self.domain_keys, dom);
            for (sk, w) in route.iter().enumerate() {
                let _ = m
                    .store
                    .write(DOM0, k.socket_weight(sk), format!("{:.4}", w));
            }
            m.cp_set_route_weights(dom, route);
            // Quanta per socket: Q_i = BW_max · S^{VMi}_{SKT}.
            for sk in &spanned {
                let w_skt = socket_process_weight(&vcpu_weights, &vcpu_sockets, *sk);
                let share = socket_io_share(w_skt, total_w, vm_share);
                m.cp_set_quantum(*sk, dom, drr_quantum(device_bw, share, self.cfg.drr_round));
            }
            // cgroup blkio weight at the device, proportional to VM share.
            m.cp_set_blkio_weight(dom, ((vm_share * 1000.0) as u32).clamp(10, 1000));
        }
        if pushed {
            self.last_weight_push = now;
        }
        let _ = s;
    }
}

impl ControlPlane for LegacyIOrchestraPlane {
    fn name(&self) -> &'static str {
        "iorchestra"
    }

    fn tick_period(&self) -> Option<SimDuration> {
        Some(self.cfg.tick)
    }

    fn on_domain_created(&mut self, m: &mut Machine, _s: &mut Sched, dom: DomainId) {
        if !self.manager_watch_registered {
            m.store.watch(DOM0, "/local");
            m.store.watch(DOM0, keys::CONTROL_ROOT);
            self.manager_watch_registered = true;
        }
        // Guest-driver registration: defaults + a watch on its own subtree.
        // The DomainKeys built here is the one the per-tick loops reuse for
        // the domain's whole lifetime.
        let k = Self::keys_for(&mut self.domain_keys, dom);
        Self::guest_write(m, dom, &k.flush_now, val::zero());
        Self::guest_write(m, dom, &k.congested, val::zero());
        Self::guest_write(m, dom, &k.release_request, val::zero());
        m.store.watch(dom, &k.virt_dev);
    }

    fn on_domain_destroyed(&mut self, m: &mut Machine, _s: &mut Sched, dom: DomainId) {
        // Drop the persisted state subtree so a later recovery scan (or a
        // recycled domain id) cannot inherit a dead domain's history.
        let _ = m.store.remove(DOM0, keys::state_base(dom).as_str());
        self.flush_in_progress.remove(&dom);
        self.flush_backoff_until.remove(&dom);
        self.flush_fail_streak.remove(&dom);
        self.flush_timeouts_by_dom.remove(&dom);
        self.quarantined.remove(&dom);
        self.health_published.remove(&dom);
        self.congested_fifo.retain(|&d| d != dom);
        self.release_pending.remove(&dom);
        self.last_route_weights.remove(&dom);
        self.write_count_base.remove(&dom);
        self.denied_base.remove(&dom);
        self.domain_keys.remove(&dom);
        self.anomaly.remove(dom);
    }

    fn on_kernel_signal(
        &mut self,
        m: &mut Machine,
        s: &mut Sched,
        dom: DomainId,
        sig: KernelSignal,
    ) {
        if self.quarantined.contains(&dom) {
            // Graceful degradation: a quarantined domain gets stock
            // Baseline behaviour — congestion means sleeping, and nothing
            // it does touches the store or the collaborative queues.
            if sig == KernelSignal::CongestionQuery {
                m.cp_enter_congestion(s, dom);
            }
            return;
        }
        match sig {
            KernelSignal::DirtyStatusChanged(has) => {
                if self.cfg.functions.flush {
                    let nr = m.domain(dom).map(|d| d.kernel.dirty_pages()).unwrap_or(0);
                    let k = Self::keys_for(&mut self.domain_keys, dom);
                    // Monitoring keys: no callback consumes them, so a
                    // value the store already holds is not republished.
                    Self::guest_publish(m, dom, &k.has_dirty_pages, val::flag(has));
                    Self::guest_publish(m, dom, &k.nr_dirty, val::uint(nr));
                }
            }
            KernelSignal::CongestionQuery => {
                if self.cfg.functions.congestion {
                    // The guest enters congestion immediately (as Linux
                    // does) and asks the host through the store; the answer
                    // arrives a store-round-trip later. This is a control
                    // key: it always publishes, because the management
                    // module must re-answer even a repeated query.
                    m.cp_enter_congestion(s, dom);
                    let k = Self::keys_for(&mut self.domain_keys, dom);
                    Self::guest_write(m, dom, &k.congested, val::one());
                } else {
                    m.cp_enter_congestion(s, dom);
                }
            }
            KernelSignal::CongestionCleared => {
                if self.cfg.functions.congestion {
                    let k = Self::keys_for(&mut self.domain_keys, dom);
                    Self::guest_write(m, dom, &k.congested, val::zero());
                    self.congested_fifo.retain(|&d| d != dom);
                }
            }
            KernelSignal::RemoteSyncCompleted => {
                let k = Self::keys_for(&mut self.domain_keys, dom);
                Self::guest_write(m, dom, &k.flush_now, val::zero());
            }
        }
        let _ = s;
    }

    fn on_store_event(&mut self, m: &mut Machine, s: &mut Sched, ev: WatchEvent) {
        // Operator command channel (outside /local, so only dom0 can write
        // it — a quarantined guest cannot clear itself).
        if let Some(dom) = keys::control_dom_of_path(&ev.path) {
            if ev.owner == DOM0
                && keys::is_key(&ev.path, "clear")
                && ev.value.as_deref() == Some("1")
            {
                self.clear_quarantine(m, dom, s.now());
                // Consume the command edge: the key returns to "0" so a
                // recovery scan only sees clears that were never processed,
                // and the operator's next write is a fresh edge.
                let _ = m.store.write(DOM0, &*ev.path, val::zero());
            }
            return;
        }
        let Some(dom) = keys::domain_of_path(&ev.path) else {
            return;
        };
        if self.quarantined.contains(&dom) {
            // The management module ignores a quarantined domain's keys
            // entirely — its watch-event spam costs one hash probe here.
            return;
        }
        if ev.owner == DOM0 {
            // Management-module side.
            if keys::is_key(&ev.path, "congested") && ev.value.as_deref() == Some("1") {
                if !self.cfg.functions.congestion {
                    return;
                }
                // Events are hints; the store is the state of record. The
                // per-tick reconciliation sweep may have adjudicated this
                // query already (e.g. when the raising event was delayed),
                // in which case this delivery is a no-op.
                let k = Self::keys_for(&mut self.domain_keys, dom);
                let still_asking = m
                    .store
                    .read_ref(DOM0, &k.congested)
                    .map(|v| v == "1")
                    .unwrap_or(false);
                let granted = m
                    .store
                    .read_ref(DOM0, &k.release_request)
                    .map(|v| v != "0")
                    .unwrap_or(false);
                if still_asking && !granted && !self.congested_fifo.contains(&dom) {
                    self.adjudicate_congestion(m, s.now(), dom);
                }
            } else if keys::is_key(&ev.path, "flush_now") && ev.value.as_deref() == Some("0") {
                // The guest acked (wrote flush_now back to 0): the flush
                // completed, so the domain is in good standing again.
                if self.flush_in_progress.remove(&dom).is_some() {
                    trace_event!(
                        s.now(),
                        TraceEventKind::Decision(Decision::FlushAck { dom: dom.0 })
                    );
                }
                self.flush_fail_streak.remove(&dom);
                self.flush_backoff_until.remove(&dom);
                let k = Self::keys_for(&mut self.domain_keys, dom);
                let _ = m
                    .store
                    .write_if_changed(DOM0, &k.state_flush_epoch, val::zero());
                let _ = m
                    .store
                    .write_if_changed(DOM0, &k.state_fail_streak, val::zero());
            }
        } else if ev.owner == dom {
            // Guest-driver side (registered callback functions). Commands
            // are epoch-stamped (any value > 0); the guest kernel remembers
            // the highest epoch it has executed per channel and discards
            // stale or duplicated deliveries, so a recovering plane and an
            // unreliable bus are both safe.
            let cmd = ev
                .value
                .as_deref()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            if keys::is_key(&ev.path, "flush_now") && cmd > 0 {
                let Some(kernel) = m.kernel_mut(dom) else {
                    return;
                };
                let accepted = kernel.accept_flush_epoch(cmd);
                let last_seen = kernel.flush_epoch_seen();
                if accepted {
                    m.cp_remote_sync(s, dom);
                } else {
                    // The original delivery of this command (or a newer
                    // one) already drove the flush; acking here would tell
                    // the plane a still-running flush completed.
                    trace_event!(
                        s.now(),
                        TraceEventKind::Decision(Decision::StaleCommand {
                            dom: dom.0,
                            epoch: cmd,
                            last_seen,
                        })
                    );
                }
            } else if keys::is_key(&ev.path, "release_request") && cmd > 0 {
                let Some(kernel) = m.kernel_mut(dom) else {
                    return;
                };
                let accepted = kernel.accept_release_epoch(cmd);
                let last_seen = kernel.release_epoch_seen();
                if accepted {
                    m.cp_grant_bypass(s, dom);
                    let k = Self::keys_for(&mut self.domain_keys, dom);
                    Self::guest_write(m, dom, &k.release_request, val::zero());
                    Self::guest_write(m, dom, &k.congested, val::zero());
                } else {
                    trace_event!(
                        s.now(),
                        TraceEventKind::Decision(Decision::StaleCommand {
                            dom: dom.0,
                            epoch: cmd,
                            last_seen,
                        })
                    );
                }
            }
        }
    }

    fn on_tick(&mut self, m: &mut Machine, s: &mut Sched) {
        let now = s.now();
        let report = self.monitor.sample(m, now);
        // Anomaly detection on store-write and denied-operation rates.
        // Bases advance for every domain (so an operator clear only counts
        // *new* traffic), but only unquarantined domains feed the detector.
        for dom in m.domain_ids() {
            let count = m.store.write_count(dom);
            let base = self.write_count_base.insert(dom, count).unwrap_or(0);
            let delta = count.saturating_sub(base);
            let denied = m.store.denied_count(dom);
            let denied_base = self.denied_base.insert(dom, denied).unwrap_or(0);
            let denied_delta = denied.saturating_sub(denied_base);
            if self.quarantined.contains(&dom) {
                continue;
            }
            if delta > 0 && self.anomaly.on_writes(dom, delta, now) {
                self.quarantine(m, dom, now, "write-rate budget");
            }
            if denied_delta > 0 && self.anomaly.on_denied(dom, denied_delta, now) {
                self.quarantine(m, dom, now, "denied-rate budget");
            }
        }
        // Consequence of a flag: quarantine (Baseline behaviour, keys
        // ignored) until an operator clears it. Usually already handled
        // above; this catches domains still flagged from older windows.
        for dom in self.anomaly.flagged().collect::<Vec<_>>() {
            self.quarantine(m, dom, now, "anomaly flag");
        }
        // Unacked flush commands lose their slot, with backoff/quarantine.
        self.expire_flush_deadlines(m, now);
        // Guest drivers republish their dirty-page counts each period so
        // the argmax in Algorithm 1 works from fresh numbers.
        if self.cfg.functions.flush {
            for dom in m.domain_ids() {
                if self.quarantined.contains(&dom) {
                    continue;
                }
                let nr = m.domain(dom).map(|d| d.kernel.dirty_pages()).unwrap_or(0);
                if nr > 0 {
                    let k = Self::keys_for(&mut self.domain_keys, dom);
                    Self::guest_publish(m, dom, &k.nr_dirty, val::uint(nr));
                }
            }
        }
        if self.cfg.functions.flush && report.device_underutilized {
            self.run_flush_policy(m, s);
        }
        if self.cfg.functions.congestion {
            self.reconcile_congestion(m, now);
            if !report.device_congested {
                self.run_congestion_relief(m, s);
            }
        }
        if self.cfg.functions.cosched {
            self.run_cosched(m, s, now);
        }
        self.publish_health(m);
    }

    fn on_crash(&mut self, _m: &mut Machine, s: &mut Sched) {
        trace_event!(s.now(), TraceEventKind::Decision(Decision::PlaneCrash));
        // The daemon's process memory dies with dom0; only the store (and
        // the guests) survive. Reset every field to its boot state — the
        // recovery scan rebuilds what was persisted.
        self.rng = SimRng::new(self.cfg.seed ^ 0x10c);
        self.monitor = MonitoringModule::new();
        self.anomaly = AnomalyDetector::new(self.cfg.anomaly);
        self.write_count_base.clear();
        self.denied_base.clear();
        self.flush_in_progress.clear();
        self.flush_backoff_until.clear();
        self.flush_fail_streak.clear();
        self.flush_timeouts_by_dom.clear();
        self.quarantined.clear();
        self.health_published.clear();
        self.congested_fifo.clear();
        self.last_route_weights.clear();
        self.last_weight_push = SimTime::ZERO;
        self.manager_watch_registered = false;
        self.domain_keys.clear();
        self.epoch = 0;
        self.release_pending.clear();
        self.stats = PlaneStats::default();
    }

    fn on_recover(&mut self, m: &mut Machine, s: &mut Sched) {
        let now = s.now();
        // The store is the source of truth. Events the dead incarnation
        // missed are gone (XenBus does not replay), so everything below
        // works from current store values, never from event history.
        self.epoch = Self::read_state_u64(m, keys::STATE_EPOCH) + 1;
        let _ = m
            .store
            .write(DOM0, keys::STATE_EPOCH, val::uint(self.epoch));
        m.store.watch(DOM0, "/local");
        m.store.watch(DOM0, keys::CONTROL_ROOT);
        self.manager_watch_registered = true;
        let domains = m.domain_ids();
        for &dom in &domains {
            // Anomaly bases seed at the *current* counters: traffic that
            // happened while dom0 was down is not a post-recovery burst.
            self.write_count_base.insert(dom, m.store.write_count(dom));
            self.denied_base.insert(dom, m.store.denied_count(dom));
            let k = Self::keys_for(&mut self.domain_keys, dom).clone();
            if Self::read_state_u64(m, &k.state_quarantined) == 1 {
                self.quarantined.insert(dom);
            }
            let streak = Self::read_state_u64(m, &k.state_fail_streak) as u32;
            if streak > 0 {
                self.flush_fail_streak.insert(dom, streak);
            }
            let timeouts = Self::read_state_u64(m, &k.state_timeouts);
            if timeouts > 0 {
                self.flush_timeouts_by_dom.insert(dom, timeouts);
            }
            if Self::read_state_u64(m, &k.state_flush_epoch) > 0 {
                // A flush was in flight at the crash. If the guest already
                // wrote the ack (its `"0"` event was addressed to the dead
                // incarnation and dropped), honour it; otherwise restore
                // the in-flight record — a deadline that passed during the
                // outage expires through the normal timeout path.
                let acked = m
                    .store
                    .read_ref(DOM0, &k.flush_now)
                    .map(|v| v == "0")
                    .unwrap_or(true);
                if acked {
                    self.flush_fail_streak.remove(&dom);
                    let _ = m.store.write(DOM0, &k.state_flush_epoch, val::zero());
                    let _ = m
                        .store
                        .write_if_changed(DOM0, &k.state_fail_streak, val::zero());
                } else {
                    let deadline =
                        SimTime::from_nanos(Self::read_state_u64(m, &k.state_flush_deadline));
                    self.flush_in_progress.insert(dom, deadline);
                }
            }
            // Operator clears written while dom0 was down.
            let clear_key = keys::clear_quarantine(dom);
            let cleared = m
                .store
                .read_ref(DOM0, clear_key.as_str())
                .map(|v| v == "1")
                .unwrap_or(false);
            if cleared {
                self.clear_quarantine(m, dom, now);
                let _ = m.store.write(DOM0, clear_key.as_str(), val::zero());
            }
            // Domains still asking about congestion: their query event (or
            // the scheduled wake) died with the old incarnation, and a
            // sleeping guest cannot re-ask. Re-adjudicate from the store —
            // even if the dead incarnation had granted a release (its epoch
            // is outranked, and the delivery may have died with it).
            if self.cfg.functions.congestion && !self.quarantined.contains(&dom) {
                let asking = m
                    .store
                    .read_ref(DOM0, &k.congested)
                    .map(|v| v == "1")
                    .unwrap_or(false);
                if asking {
                    self.adjudicate_congestion(m, now, dom);
                }
            }
        }
        // Retries and protocol turnarounds the guests burned against the
        // dead incarnation must not carry over as empty token buckets — a
        // denial storm the moment service resumes would quarantine the
        // victims of the outage. A true hammer re-drains its refilled
        // bucket within milliseconds and re-trips the detector anyway.
        m.store.quota_refill_all();
        trace_event!(
            now,
            TraceEventKind::Decision(Decision::PlaneRecover {
                epoch: self.epoch,
                domains: domains.len() as u32,
                quarantined: self.quarantined.len() as u32,
            })
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_names() {
        assert_eq!(LegacyBaselinePlane::baseline().name(), "baseline");
        assert_eq!(LegacyBaselinePlane::sdc().name(), "sdc");
        assert_eq!(LegacyDifPlane::new().name(), "dif");
        assert_eq!(
            LegacyIOrchestraPlane::new(IOrchestraConfig::new(1)).name(),
            "iorchestra"
        );
    }

    #[test]
    fn tick_periods() {
        assert!(LegacyBaselinePlane::baseline().tick_period().is_none());
        assert!(LegacyDifPlane::new().tick_period().is_some());
        assert!(LegacyIOrchestraPlane::new(IOrchestraConfig::new(1))
            .tick_period()
            .is_some());
    }

    /// Regression: the retry-backoff shift is capped at 6 (and
    /// `SimDuration * u64` saturates), so an absurd fail streak can never
    /// overflow the `1u64 << shift` arithmetic or produce a wrapped-around
    /// backoff deadline in the past.
    #[test]
    fn flush_backoff_shift_is_capped_at_long_streaks() {
        use iorch_hypervisor::{IoPathMode, MachineConfig, VmSpec};
        use iorch_simcore::Simulation;

        let mut sim = Simulation::new(Cluster::new());
        let (cl, s) = sim.parts_mut();
        let idx = cl.add_machine(MachineConfig::paper_testbed(1, IoPathMode::Paravirt));
        let mut cfg = IOrchestraConfig::new(1);
        cfg.flush_max_retries = u32::MAX; // keep the quarantine path out of the way
        let mut plane = LegacyIOrchestraPlane::new(cfg);
        let dom = cl.create_domain(s, idx, VmSpec::new(1, 1).with_disk_gb(4), |_| {});
        let now = SimTime::from_secs(100);
        for &streak in &[6u32, 31, 63, 64, 200, u32::MAX - 2] {
            plane.flush_fail_streak.insert(dom, streak);
            plane.flush_in_progress.insert(dom, now);
            plane.expire_flush_deadlines(cl.machine_mut(idx), now);
            let until = plane.flush_backoff_until[&dom];
            // Every streak past the cap backs off by exactly base * 2^6.
            assert_eq!(
                until,
                now + plane.cfg.flush_retry_backoff * (1u64 << 6),
                "streak {streak}"
            );
            assert!(until > now, "streak {streak}: backoff wrapped");
        }
    }

    /// Regression: `wake_interleave_max_ms == 0` means a true simultaneous
    /// wake — zero offset for every woken domain and no RNG draw at all
    /// (the old code clamped the draw bound to 1 and still consumed the
    /// stream, so "no interleave" silently became "0–1 ms interleave").
    #[test]
    fn interleave_zero_is_simultaneous_and_draws_no_rng() {
        use iorch_hypervisor::{IoPathMode, MachineConfig, VmSpec};
        use iorch_simcore::{gen, Simulation};

        gen::for_each_seed(0x1A_0001, 16, |seed, rng| {
            let doms = 2 + rng.below(6);
            let mut sim = Simulation::new(Cluster::new());
            let (cl, s) = sim.parts_mut();
            let idx = cl.add_machine(MachineConfig::paper_testbed(seed, IoPathMode::Paravirt));
            let mut cfg = IOrchestraConfig::new(seed);
            cfg.wake_interleave_max_ms = 0;
            let mut plane = LegacyIOrchestraPlane::new(cfg);
            let mut ids = Vec::new();
            for _ in 0..doms {
                ids.push(cl.create_domain(s, idx, VmSpec::new(1, 1).with_disk_gb(4), |_| {}));
            }
            plane.congested_fifo = ids;
            let mut pristine = plane.rng.clone();
            let session = iorch_simcore::trace::TraceSession::new();
            plane.run_congestion_relief(cl.machine_mut(idx), s);
            let rec = session.finish();
            assert_eq!(plane.stats.staggered_wakeups, doms, "seed {seed}");
            assert!(plane.congested_fifo.is_empty(), "seed {seed}");
            // The RNG stream is untouched: the next draw matches a clone
            // taken before the relief ran.
            assert_eq!(
                pristine.next_u64(),
                plane.rng.next_u64(),
                "seed {seed}: interleave 0 consumed the RNG stream"
            );
            if iorch_simcore::trace::COMPILED {
                let offsets: Vec<u64> = rec
                    .into_events()
                    .iter()
                    .filter_map(|e| match &e.kind {
                        TraceEventKind::Decision(Decision::StaggeredWake { offset_ms, .. }) => {
                            Some(*offset_ms)
                        }
                        _ => None,
                    })
                    .collect();
                assert_eq!(offsets, vec![0; doms as usize], "seed {seed}");
            }
        });
    }
}
