//! Control-plane configuration and compatibility surface.
//!
//! The control planes the paper compares are expressed as
//! [`PolicySet`](crate::policy::PolicySet)s executed by one
//! [`PolicyEngine`] (see the
//! [`policy`](crate::policy) module). This module keeps what is shared by
//! every plane — [`FunctionSet`], [`IOrchestraConfig`], [`PlaneStats`] —
//! plus the historic [`IOrchestraPlane`] name, now an alias for the
//! engine; `IOrchestraPlane::new(cfg)` still builds the paper's full
//! system. (The `BaselinePlane`/`DifPlane` shims that bridged the policy
//! redesign have been removed — build those planes with
//! [`PolicySet::baseline`](crate::policy::PolicySet::baseline) /
//! [`PolicySet::sdc`](crate::policy::PolicySet::sdc) /
//! [`PolicySet::dif`](crate::policy::PolicySet::dif).)

use iorch_simcore::SimDuration;

use crate::anomaly::AnomalyParams;
use crate::policy::PolicyEngine;

/// Which of IOrchestra's three functions are enabled — §5 evaluates them
/// individually (Figs. 8–11) and together (Figs. 4–7, 12).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FunctionSet {
    /// Cross-domain dirty-page flush control (Algorithm 1).
    pub flush: bool,
    /// Collaborative congestion control (Algorithm 2).
    pub congestion: bool,
    /// Inter-domain I/O co-scheduling on dedicated cores (Algorithm 3).
    pub cosched: bool,
}

impl FunctionSet {
    /// All three functions (the full system).
    pub fn all() -> Self {
        FunctionSet {
            flush: true,
            congestion: true,
            cosched: true,
        }
    }

    /// Only the flush function (Fig. 8 / Table 2 ablation).
    pub fn flush_only() -> Self {
        FunctionSet {
            flush: true,
            congestion: false,
            cosched: false,
        }
    }

    /// Only congestion control (Fig. 9 ablation).
    pub fn congestion_only() -> Self {
        FunctionSet {
            flush: false,
            congestion: true,
            cosched: false,
        }
    }

    /// Only co-scheduling (Figs. 10–11 ablation).
    pub fn cosched_only() -> Self {
        FunctionSet {
            flush: false,
            congestion: false,
            cosched: true,
        }
    }
}

/// IOrchestra tunables.
#[derive(Clone, Copy, Debug)]
pub struct IOrchestraConfig {
    /// Enabled functions.
    pub functions: FunctionSet,
    /// Monitoring/management tick.
    pub tick: SimDuration,
    /// Max random interleave when waking congested VMs (paper: 0–99 ms).
    pub wake_interleave_max_ms: u64,
    /// Co-scheduler: minimum interval between weight pushes (paper: 1 s).
    pub weight_update_interval: SimDuration,
    /// Co-scheduler: immediate push when ratios change more than this
    /// (paper: 50%).
    pub weight_change_threshold: f64,
    /// DRR polling-round length used to scale quanta.
    pub drr_round: SimDuration,
    /// Anomaly-detector settings.
    pub anomaly: AnomalyParams,
    /// How long a `flush_now` command may stay unacked before the
    /// management module gives the slot to the next-dirtiest domain.
    pub flush_ack_timeout: SimDuration,
    /// Base retry backoff after a flush timeout (doubles per consecutive
    /// timeout, capped at 64×).
    pub flush_retry_backoff: SimDuration,
    /// Consecutive flush timeouts after which a domain is quarantined.
    pub flush_max_retries: u32,
    /// How long an issued `release_request` command may stay unaccepted
    /// (store value still non-zero) before the per-tick reconciliation
    /// sweep re-issues it under a fresh epoch. Keeps a guest alive when
    /// the bus drops the grant delivery.
    pub release_ack_timeout: SimDuration,
    /// RNG seed for the wake interleave.
    pub seed: u64,
}

impl IOrchestraConfig {
    /// Paper defaults with all functions on.
    pub fn new(seed: u64) -> Self {
        IOrchestraConfig {
            functions: FunctionSet::all(),
            tick: SimDuration::from_millis(100),
            wake_interleave_max_ms: 99,
            weight_update_interval: SimDuration::from_secs(1),
            weight_change_threshold: 0.5,
            drr_round: SimDuration::from_millis(1),
            anomaly: AnomalyParams::default(),
            // Three ticks: a healthy guest acks a flush well within one.
            flush_ack_timeout: SimDuration::from_millis(300),
            flush_retry_backoff: SimDuration::from_secs(1),
            flush_max_retries: 3,
            release_ack_timeout: SimDuration::from_millis(300),
            seed,
        }
    }

    /// Restrict the enabled functions.
    pub fn with_functions(mut self, f: FunctionSet) -> Self {
        self.functions = f;
        self
    }
}

/// Counters exposed for tests and reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlaneStats {
    /// `flush_now` commands issued (Algorithm 1 activations).
    pub flushes_triggered: u64,
    /// Congestion queries answered with a release (false triggers avoided).
    pub releases_granted: u64,
    /// Congestion queries confirmed (host really congested).
    pub congestions_confirmed: u64,
    /// Staggered wakeups issued after host relief.
    pub staggered_wakeups: u64,
    /// Weight pushes to I/O cores.
    pub weight_pushes: u64,
    /// `flush_now` commands that expired unacked.
    pub flush_timeouts: u64,
    /// Domains quarantined (anomalous or persistently unresponsive).
    pub quarantines: u64,
}

/// The paper's system: store-choreographed flush control, collaborative
/// congestion control, and NUMA-aware I/O co-scheduling — executed by the
/// policy engine as [`PolicySet::iorchestra`](crate::policy::PolicySet).
/// `IOrchestraPlane::new(cfg)` keeps working via
/// `From<IOrchestraConfig> for PolicySet`.
pub type IOrchestraPlane = PolicyEngine;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySet;
    use iorch_hypervisor::ControlPlane;

    #[test]
    fn function_set_presets() {
        assert!(FunctionSet::all().flush && FunctionSet::all().cosched);
        assert!(FunctionSet::flush_only().flush && !FunctionSet::flush_only().congestion);
        assert!(
            FunctionSet::congestion_only().congestion && !FunctionSet::congestion_only().cosched
        );
        assert!(FunctionSet::cosched_only().cosched && !FunctionSet::cosched_only().flush);
    }

    #[test]
    fn plane_names_survive_the_shim_removal() {
        assert_eq!(PolicyEngine::new(PolicySet::baseline()).name(), "baseline");
        assert_eq!(PolicyEngine::new(PolicySet::sdc()).name(), "sdc");
        assert_eq!(PolicyEngine::new(PolicySet::dif()).name(), "dif");
        assert_eq!(
            IOrchestraPlane::new(IOrchestraConfig::new(1)).name(),
            "iorchestra"
        );
    }
}
