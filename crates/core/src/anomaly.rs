//! Anomaly detection on system-store traffic.
//!
//! "IOrchestra can be configured to identify malicious VMs by enabling
//! anomaly detection in the management module" (paper §3). The concrete
//! threat in a shared store is a guest hammering its keys to spam the
//! management module with watch events; the detector flags domains whose
//! store write *rate* exceeds a budget over a sliding window.

use std::collections::BTreeMap;

use iorch_hypervisor::DomainId;
use iorch_simcore::{SimDuration, SimTime};

/// Detector configuration.
#[derive(Clone, Copy, Debug)]
pub struct AnomalyParams {
    /// Window over which writes are counted.
    pub window: SimDuration,
    /// Writes per window that trip the detector.
    pub max_writes_per_window: u64,
}

impl Default for AnomalyParams {
    fn default() -> Self {
        AnomalyParams {
            window: SimDuration::from_secs(1),
            // Legitimate traffic is a handful of edge-triggered updates;
            // hundreds per second is abuse.
            max_writes_per_window: 200,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct DomState {
    window_start: SimTime,
    in_window: u64,
    flagged: bool,
}

/// Sliding-window store-write rate limiter / anomaly flagger.
#[derive(Clone, Debug)]
pub struct AnomalyDetector {
    params: AnomalyParams,
    doms: BTreeMap<DomainId, DomState>,
}

impl AnomalyDetector {
    /// New detector.
    pub fn new(params: AnomalyParams) -> Self {
        AnomalyDetector {
            params,
            doms: BTreeMap::new(),
        }
    }

    /// Record one store write by `dom` at `now`. Returns `true` if the
    /// domain is (now) flagged as anomalous.
    pub fn on_write(&mut self, dom: DomainId, now: SimTime) -> bool {
        self.on_writes(dom, 1, now)
    }

    /// Record `n` store writes at once (e.g. from a write-count delta
    /// observed on a monitoring tick). Returns the flag state.
    pub fn on_writes(&mut self, dom: DomainId, n: u64, now: SimTime) -> bool {
        let st = self.doms.entry(dom).or_default();
        if now.saturating_since(st.window_start) > self.params.window {
            st.window_start = now;
            st.in_window = 0;
        }
        st.in_window += n;
        if st.in_window > self.params.max_writes_per_window {
            st.flagged = true;
        }
        st.flagged
    }

    /// Is a domain currently flagged?
    pub fn is_flagged(&self, dom: DomainId) -> bool {
        self.doms.get(&dom).is_some_and(|s| s.flagged)
    }

    /// All flagged domains.
    pub fn flagged(&self) -> Vec<DomainId> {
        self.doms
            .iter()
            .filter(|(_, s)| s.flagged)
            .map(|(&d, _)| d)
            .collect()
    }

    /// Clear a domain's flag (operator intervention).
    pub fn clear(&mut self, dom: DomainId) {
        if let Some(s) = self.doms.get_mut(&dom) {
            s.flagged = false;
            s.in_window = 0;
        }
    }

    /// Forget a domain entirely (teardown).
    pub fn remove(&mut self, dom: DomainId) {
        self.doms.remove(&dom);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn small() -> AnomalyDetector {
        AnomalyDetector::new(AnomalyParams {
            window: SimDuration::from_millis(100),
            max_writes_per_window: 5,
        })
    }

    #[test]
    fn normal_rate_not_flagged() {
        let mut det = small();
        for i in 0..20 {
            // One write per window.
            assert!(!det.on_write(DomainId(1), t(i * 150)));
        }
        assert!(!det.is_flagged(DomainId(1)));
    }

    #[test]
    fn burst_gets_flagged() {
        let mut det = small();
        let mut flagged = false;
        for _ in 0..10 {
            flagged = det.on_write(DomainId(2), t(10));
        }
        assert!(flagged);
        assert_eq!(det.flagged(), vec![DomainId(2)]);
    }

    #[test]
    fn flag_is_sticky_until_cleared() {
        let mut det = small();
        for _ in 0..10 {
            det.on_write(DomainId(1), t(0));
        }
        assert!(det.is_flagged(DomainId(1)));
        // Still flagged much later even at a low rate.
        det.on_write(DomainId(1), t(10_000));
        assert!(det.is_flagged(DomainId(1)));
        det.clear(DomainId(1));
        assert!(!det.is_flagged(DomainId(1)));
    }

    #[test]
    fn per_domain_isolation() {
        let mut det = small();
        for _ in 0..10 {
            det.on_write(DomainId(1), t(0));
        }
        det.on_write(DomainId(2), t(0));
        assert!(det.is_flagged(DomainId(1)));
        assert!(!det.is_flagged(DomainId(2)));
        det.remove(DomainId(1));
        assert!(!det.is_flagged(DomainId(1)));
    }
}
