//! Anomaly detection on system-store traffic.
//!
//! "IOrchestra can be configured to identify malicious VMs by enabling
//! anomaly detection in the management module" (paper §3). The concrete
//! threats in a shared store are a guest hammering its keys to spam the
//! management module with watch events, and a guest probing other domains'
//! subtrees (permission violations). The detector flags domains whose
//! store write *rate* — or denied-write rate — exceeds a budget over a
//! sliding window.
//!
//! The window is a true sliding count, implemented as a ring of
//! `BUCKETS` sub-windows: a burst that straddles a window boundary still
//! trips the flag, because expiring one sub-window only forgets the oldest
//! eighth of the history, not all of it (the old tumbling implementation
//! reset the whole count on the first write after expiry).

use std::collections::{BTreeMap, BTreeSet};

use iorch_hypervisor::DomainId;
use iorch_simcore::{SimDuration, SimTime};

/// Sub-windows per sliding window. More buckets = finer expiry
/// granularity; 8 keeps the state a single cache line per counter.
const BUCKETS: usize = 8;

/// Detector configuration.
#[derive(Clone, Copy, Debug)]
pub struct AnomalyParams {
    /// Window over which writes are counted.
    pub window: SimDuration,
    /// Writes per window that trip the detector.
    pub max_writes_per_window: u64,
    /// Denied write-type store operations (permission violations) per
    /// window that trip the detector. Much lower than the write budget:
    /// legitimate guests produce essentially none.
    pub max_denied_per_window: u64,
}

impl Default for AnomalyParams {
    fn default() -> Self {
        AnomalyParams {
            window: SimDuration::from_secs(1),
            // Legitimate traffic is a handful of edge-triggered updates;
            // hundreds per second is abuse.
            max_writes_per_window: 200,
            max_denied_per_window: 8,
        }
    }
}

/// A sliding event count over a ring of sub-windows. `total` is the number
/// of events in roughly the last `BUCKETS` sub-windows; advancing time
/// expires only the sub-windows that actually aged out.
#[derive(Clone, Debug, Default)]
struct SlidingCount {
    /// Start of the sub-window at `head`.
    head_start: SimTime,
    head: usize,
    buckets: [u64; BUCKETS],
    total: u64,
}

impl SlidingCount {
    fn advance(&mut self, now: SimTime, sub_ns: u64) {
        let elapsed = now.saturating_since(self.head_start).as_nanos();
        let steps = elapsed / sub_ns;
        if steps == 0 {
            return;
        }
        if steps >= BUCKETS as u64 {
            // Everything in the ring has aged out.
            *self = SlidingCount {
                head_start: now,
                ..SlidingCount::default()
            };
            return;
        }
        for _ in 0..steps {
            self.head = (self.head + 1) % BUCKETS;
            self.total -= self.buckets[self.head];
            self.buckets[self.head] = 0;
        }
        self.head_start += SimDuration::from_nanos(sub_ns) * steps;
    }

    /// Add `n` events at `now`; returns the sliding total.
    fn add(&mut self, n: u64, now: SimTime, sub_ns: u64) -> u64 {
        self.advance(now, sub_ns);
        self.buckets[self.head] += n;
        self.total += n;
        self.total
    }
}

#[derive(Clone, Debug, Default)]
struct DomState {
    writes: SlidingCount,
    denied: SlidingCount,
    flagged: bool,
}

/// Sliding-window store-write rate limiter / anomaly flagger.
#[derive(Clone, Debug)]
pub struct AnomalyDetector {
    params: AnomalyParams,
    /// Sub-window width in nanoseconds (window / BUCKETS, at least 1).
    sub_ns: u64,
    doms: BTreeMap<DomainId, DomState>,
    /// Eagerly-maintained mirror of the flagged domains, so the per-tick
    /// [`flagged`](Self::flagged) sweep is O(flagged) — empty in the
    /// steady state — instead of a walk over every tracked domain.
    flagged: BTreeSet<DomainId>,
}

impl AnomalyDetector {
    /// New detector.
    pub fn new(params: AnomalyParams) -> Self {
        AnomalyDetector {
            sub_ns: (params.window.as_nanos() / BUCKETS as u64).max(1),
            params,
            doms: BTreeMap::new(),
            flagged: BTreeSet::new(),
        }
    }

    /// Record one store write by `dom` at `now`. Returns `true` if the
    /// domain is (now) flagged as anomalous.
    pub fn on_write(&mut self, dom: DomainId, now: SimTime) -> bool {
        self.on_writes(dom, 1, now)
    }

    /// Record `n` store writes at once (e.g. from a write-count delta
    /// observed on a monitoring tick). Returns the flag state.
    pub fn on_writes(&mut self, dom: DomainId, n: u64, now: SimTime) -> bool {
        let st = self.doms.entry(dom).or_default();
        if st.writes.add(n, now, self.sub_ns) > self.params.max_writes_per_window {
            st.flagged = true;
            self.flagged.insert(dom);
        }
        st.flagged
    }

    /// Record `n` denied write-type store operations (permission
    /// violations) by `dom` at `now`. Returns the flag state.
    pub fn on_denied(&mut self, dom: DomainId, n: u64, now: SimTime) -> bool {
        let st = self.doms.entry(dom).or_default();
        if st.denied.add(n, now, self.sub_ns) > self.params.max_denied_per_window {
            st.flagged = true;
            self.flagged.insert(dom);
        }
        st.flagged
    }

    /// Is a domain currently flagged?
    pub fn is_flagged(&self, dom: DomainId) -> bool {
        self.doms.get(&dom).is_some_and(|s| s.flagged)
    }

    /// All flagged domains, ascending by id. Borrows the eager mirror —
    /// no walk, no allocation.
    pub fn flagged(&self) -> impl Iterator<Item = DomainId> + '_ {
        self.flagged.iter().copied()
    }

    /// Clear a domain's flag and history (operator intervention).
    pub fn clear(&mut self, dom: DomainId) {
        if let Some(s) = self.doms.get_mut(&dom) {
            *s = DomState::default();
        }
        self.flagged.remove(&dom);
    }

    /// Forget a domain entirely (teardown).
    pub fn remove(&mut self, dom: DomainId) {
        self.doms.remove(&dom);
        self.flagged.remove(&dom);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn small() -> AnomalyDetector {
        AnomalyDetector::new(AnomalyParams {
            window: SimDuration::from_millis(100),
            max_writes_per_window: 5,
            max_denied_per_window: 3,
        })
    }

    #[test]
    fn normal_rate_not_flagged() {
        let mut det = small();
        for i in 0..20 {
            // One write per window.
            assert!(!det.on_write(DomainId(1), t(i * 150)));
        }
        assert!(!det.is_flagged(DomainId(1)));
    }

    #[test]
    fn burst_gets_flagged() {
        let mut det = small();
        let mut flagged = false;
        for _ in 0..10 {
            flagged = det.on_write(DomainId(2), t(10));
        }
        assert!(flagged);
        assert_eq!(det.flagged().collect::<Vec<_>>(), vec![DomainId(2)]);
    }

    #[test]
    fn burst_straddling_window_boundary_is_caught() {
        // The tumbling implementation reset the count on the first write
        // more than a window after the window start, so 4 writes at t=99
        // plus 4 writes at t=101+100=201... could escape. Reproduce the
        // exact escape: a few writes early, then a burst split across the
        // first window's boundary.
        let mut det = small();
        // 3 writes late in the first window.
        for _ in 0..3 {
            assert!(!det.on_write(DomainId(1), t(95)));
        }
        // 3 more just past the boundary: 6 writes inside t in [95, 105] —
        // far over the 5-per-100ms budget. A tumbling window would have
        // reset to 0 at t=101 and seen only 3.
        det.on_write(DomainId(1), t(101));
        det.on_write(DomainId(1), t(101));
        let flagged = det.on_write(DomainId(1), t(101));
        assert!(flagged, "boundary-straddling burst must be flagged");
    }

    #[test]
    fn count_decays_gradually_not_all_at_once() {
        let mut det = small();
        // 5 writes at t=0 (exactly at budget, not over).
        for _ in 0..5 {
            assert!(!det.on_write(DomainId(1), t(0)));
        }
        // A full window later they have all aged out: 5 more are again
        // exactly at budget.
        for _ in 0..5 {
            assert!(!det.on_write(DomainId(1), t(150)));
        }
        // But only half a window after *those*, the history remains: one
        // more write tips the sliding total over.
        assert!(det.on_write(DomainId(1), t(200)));
    }

    #[test]
    fn denied_budget_is_separate_and_tighter() {
        let mut det = small();
        // Writes within budget do not flag…
        for _ in 0..5 {
            assert!(!det.on_write(DomainId(1), t(0)));
        }
        // …but 4 denials (> 3) do, independently of the write count.
        for _ in 0..3 {
            assert!(!det.on_denied(DomainId(1), 1, t(1)));
        }
        assert!(det.on_denied(DomainId(1), 1, t(1)));
        assert!(det.is_flagged(DomainId(1)));
    }

    #[test]
    fn flag_is_sticky_until_cleared() {
        let mut det = small();
        for _ in 0..10 {
            det.on_write(DomainId(1), t(0));
        }
        assert!(det.is_flagged(DomainId(1)));
        // Still flagged much later even at a low rate.
        det.on_write(DomainId(1), t(10_000));
        assert!(det.is_flagged(DomainId(1)));
        det.clear(DomainId(1));
        assert!(!det.is_flagged(DomainId(1)));
    }

    #[test]
    fn per_domain_isolation() {
        let mut det = small();
        for _ in 0..10 {
            det.on_write(DomainId(1), t(0));
        }
        det.on_write(DomainId(2), t(0));
        assert!(det.is_flagged(DomainId(1)));
        assert!(!det.is_flagged(DomainId(2)));
        det.remove(DomainId(1));
        assert!(!det.is_flagged(DomainId(1)));
    }
}
