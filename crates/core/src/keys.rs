//! Typed paths for the IOrchestra keys in the system store.
//!
//! The prototype's XenStore layout (paper Fig. 3): each domain owns
//! `/local/domain/<id>/virt-dev/…` where the collaborative state lives.

use std::rc::Rc;

use iorch_hypervisor::{DomainId, StorePath, XenStore};

/// `has_dirty_pages` — set by the guest when `bdi_writeback.nr > 0`
/// (Algorithm 1).
pub fn has_dirty_pages(dom: DomainId) -> String {
    format!("{}/virt-dev/has_dirty_pages", XenStore::domain_path(dom))
}

/// `nr` — the guest's dirty-page count, published so the management module
/// can pick `argmax_i nr_i`.
pub fn nr_dirty(dom: DomainId) -> String {
    format!("{}/virt-dev/nr", XenStore::domain_path(dom))
}

/// `flush_now` — written by the management module to trigger a remote
/// `sync()` in the guest (Algorithm 1).
pub fn flush_now(dom: DomainId) -> String {
    format!("{}/virt-dev/flush_now", XenStore::domain_path(dom))
}

/// `congested` — set when the guest wants to enable congestion avoidance
/// on its virtual device (Algorithm 2).
pub fn congested(dom: DomainId) -> String {
    format!("{}/virt-dev/congested", XenStore::domain_path(dom))
}

/// `release_request` — written by the management module when the host
/// device is *not* actually congested (Algorithm 2).
pub fn release_request(dom: DomainId) -> String {
    format!("{}/virt-dev/release_request", XenStore::domain_path(dom))
}

/// Per-socket I/O weight published by the management module (§3.3).
pub fn socket_weight(dom: DomainId, socket: usize) -> String {
    format!("{}/virt-dev/weight/{}", XenStore::domain_path(dom), socket)
}

/// `/iorchestra/health/<id>` — root of the management module's published
/// per-domain health counters (dom0-owned, world-readable).
pub fn health_base(dom: DomainId) -> String {
    format!("/iorchestra/health/{}", dom.0)
}

/// `…/flush_timeouts` — `flush_now` commands that timed out unacked.
pub fn health_flush_timeouts(dom: DomainId) -> String {
    format!("{}/flush_timeouts", health_base(dom))
}

/// `…/quarantined` — `"1"` while the domain is quarantined (anomalous or
/// persistently unresponsive), `"0"` otherwise.
pub fn health_quarantined(dom: DomainId) -> String {
    format!("{}/quarantined", health_base(dom))
}

/// `…/store_denied` — denied store operations attributed to the domain.
pub fn health_store_denied(dom: DomainId) -> String {
    format!("{}/store_denied", health_base(dom))
}

/// `/iorchestra/control/<id>/clear` — operator command channel: dom0
/// writes `"1"` to clear a domain's quarantine and restore collaboration.
/// Lives outside `/local` so a guest cannot write it itself.
pub fn clear_quarantine(dom: DomainId) -> String {
    format!("/iorchestra/control/{}/clear", dom.0)
}

/// Root of the operator command subtree (the management module watches
/// this prefix).
pub const CONTROL_ROOT: &str = "/iorchestra/control";

/// Root of the management module's persisted decision state. The store is
/// the plane's source of truth across a dom0 crash: everything under here
/// is rebuilt into plane memory by the recovery scan. No watch covers this
/// prefix, so persisting state generates no XenBus traffic.
pub const STATE_ROOT: &str = "/iorchestra/state";

/// `/iorchestra/state/epoch` — the plane's monotonic command generation.
/// Every `flush_now`/`release_request` command carries an epoch; a
/// restarted plane resumes at `persisted + 1` so guests can discard
/// anything stamped by a dead incarnation (or duplicated on the bus).
pub const STATE_EPOCH: &str = "/iorchestra/state/epoch";

/// `/iorchestra/state/<id>` — root of one domain's persisted plane state.
pub fn state_base(dom: DomainId) -> String {
    format!("{}/{}", STATE_ROOT, dom.0)
}

/// `…/quarantined` — `"1"` while the domain is quarantined. Restored on
/// recovery so a crash cannot un-quarantine an anomalous guest.
pub fn state_quarantined(dom: DomainId) -> String {
    format!("{}/quarantined", state_base(dom))
}

/// `…/flush_epoch` — epoch of the in-flight `flush_now` command, `"0"`
/// when none is outstanding.
pub fn state_flush_epoch(dom: DomainId) -> String {
    format!("{}/flush_epoch", state_base(dom))
}

/// `…/flush_deadline` — ack deadline (raw nanoseconds) of the in-flight
/// `flush_now` command; meaningful only while `flush_epoch` is non-zero.
pub fn state_flush_deadline(dom: DomainId) -> String {
    format!("{}/flush_deadline", state_base(dom))
}

/// `…/fail_streak` — consecutive unacked flushes (quarantine input).
pub fn state_fail_streak(dom: DomainId) -> String {
    format!("{}/fail_streak", state_base(dom))
}

/// `…/timeouts` — cumulative flush timeouts (health counter input).
pub fn state_timeouts(dom: DomainId) -> String {
    format!("{}/timeouts", state_base(dom))
}

/// Extract the domain id from an operator command path
/// `/iorchestra/control/<id>/…`.
pub fn control_dom_of_path(path: &str) -> Option<DomainId> {
    let rest = path.strip_prefix("/iorchestra/control/")?;
    let id_str = rest.split('/').next()?;
    id_str.parse().ok().map(DomainId)
}

/// Extract the domain id from a store path under `/local/domain/<id>/…`.
pub fn domain_of_path(path: &str) -> Option<DomainId> {
    let rest = path.strip_prefix("/local/domain/")?;
    let id_str = rest.split('/').next()?;
    id_str.parse().ok().map(DomainId)
}

/// Does the path name this key (final segment match)?
pub fn is_key(path: &str, key: &str) -> bool {
    path.rsplit('/').next() == Some(key)
}

/// Pre-parsed store paths for one domain's `virt-dev` subtree.
///
/// The per-tick policy loops (Algorithms 1–3) touch these keys for every
/// domain on every 100 ms tick; building them with `format!` each time put
/// a handful of heap allocations on the hot path per domain per tick.
/// A `DomainKeys` is built once when the domain attaches to the control
/// plane; after that every store operation clones an interned
/// [`StorePath`] (a reference-count bump) and watch events fired from
/// these writes share the same allocation.
#[derive(Clone, Debug)]
pub struct DomainKeys {
    /// The domain these keys belong to.
    pub dom: DomainId,
    /// `/local/domain/<id>` — the domain's subtree root.
    pub base: StorePath,
    /// `…/virt-dev` — where the collaborative state lives (watch target).
    pub virt_dev: StorePath,
    /// `…/virt-dev/has_dirty_pages` (Algorithm 1).
    pub has_dirty_pages: StorePath,
    /// `…/virt-dev/nr` (Algorithm 1's argmax input).
    pub nr_dirty: StorePath,
    /// `…/virt-dev/flush_now` (Algorithm 1 trigger).
    pub flush_now: StorePath,
    /// `…/virt-dev/congested` (Algorithm 2).
    pub congested: StorePath,
    /// `…/virt-dev/release_request` (Algorithm 2).
    pub release_request: StorePath,
    /// `/iorchestra/health/<id>/flush_timeouts` (robustness counters).
    pub health_flush_timeouts: StorePath,
    /// `/iorchestra/health/<id>/quarantined`.
    pub health_quarantined: StorePath,
    /// `/iorchestra/health/<id>/store_denied`.
    pub health_store_denied: StorePath,
    /// `/iorchestra/state/<id>/quarantined` (crash-persisted).
    pub state_quarantined: StorePath,
    /// `/iorchestra/state/<id>/flush_epoch` (crash-persisted).
    pub state_flush_epoch: StorePath,
    /// `/iorchestra/state/<id>/flush_deadline` (crash-persisted).
    pub state_flush_deadline: StorePath,
    /// `/iorchestra/state/<id>/fail_streak` (crash-persisted).
    pub state_fail_streak: StorePath,
    /// `/iorchestra/state/<id>/timeouts` (crash-persisted).
    pub state_timeouts: StorePath,
    /// `…/virt-dev/weight/<socket>`, grown on demand (§3.3).
    socket_weights: Vec<StorePath>,
}

impl DomainKeys {
    /// Build the key set for a domain (the only place these paths are
    /// formatted).
    pub fn new(dom: DomainId) -> Self {
        let parse = |s: String| StorePath::parse(&s).expect("domain key paths are well-formed");
        DomainKeys {
            dom,
            base: parse(XenStore::domain_path(dom)),
            virt_dev: parse(format!("{}/virt-dev", XenStore::domain_path(dom))),
            has_dirty_pages: parse(has_dirty_pages(dom)),
            nr_dirty: parse(nr_dirty(dom)),
            flush_now: parse(flush_now(dom)),
            congested: parse(congested(dom)),
            release_request: parse(release_request(dom)),
            health_flush_timeouts: parse(health_flush_timeouts(dom)),
            health_quarantined: parse(health_quarantined(dom)),
            health_store_denied: parse(health_store_denied(dom)),
            state_quarantined: parse(state_quarantined(dom)),
            state_flush_epoch: parse(state_flush_epoch(dom)),
            state_flush_deadline: parse(state_flush_deadline(dom)),
            state_fail_streak: parse(state_fail_streak(dom)),
            state_timeouts: parse(state_timeouts(dom)),
            socket_weights: Vec::new(),
        }
    }

    /// `…/virt-dev/weight/<socket>`, interned on first use per socket.
    pub fn socket_weight(&mut self, socket: usize) -> &StorePath {
        while self.socket_weights.len() <= socket {
            let sk = self.socket_weights.len();
            let path = socket_weight(self.dom, sk);
            self.socket_weights
                .push(StorePath::parse(&path).expect("weight paths are well-formed"));
        }
        &self.socket_weights[socket]
    }
}

/// Cached store-value encodings for the hot flag and counter writes.
///
/// The store holds values as `Rc<str>`; encoding `"0"`, `"1"` and small
/// counters through this module means the per-tick republishes pass a
/// shared allocation straight through to the tree and every watch event.
/// The table is thread-local because the store's `Rc<str>` values are
/// single-threaded by design — the whole simulation is.
pub mod val {
    use super::Rc;

    const SMALL: u64 = 256;

    thread_local! {
        static TABLE: Vec<Rc<str>> = (0..SMALL)
            .map(|n| Rc::from(n.to_string().as_str()))
            .collect();
    }

    /// `"0"` — the dominant flag value.
    pub fn zero() -> Rc<str> {
        uint(0)
    }

    /// `"1"` — the other flag value.
    pub fn one() -> Rc<str> {
        uint(1)
    }

    /// A boolean flag as `"1"`/`"0"`.
    pub fn flag(v: bool) -> Rc<str> {
        uint(v as u64)
    }

    /// Decimal encoding of an unsigned counter; values below 256 come from
    /// a shared table, larger ones allocate.
    pub fn uint(n: u64) -> Rc<str> {
        match TABLE.with(|t| t.get(n as usize).map(Rc::clone)) {
            Some(v) => v,
            None => Rc::from(n.to_string().as_str()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_are_domain_scoped() {
        let d = DomainId(7);
        assert_eq!(
            has_dirty_pages(d),
            "/local/domain/7/virt-dev/has_dirty_pages"
        );
        assert_eq!(flush_now(d), "/local/domain/7/virt-dev/flush_now");
        assert_eq!(socket_weight(d, 1), "/local/domain/7/virt-dev/weight/1");
    }

    #[test]
    fn domain_extraction() {
        assert_eq!(
            domain_of_path("/local/domain/12/virt-dev/flush_now"),
            Some(DomainId(12))
        );
        assert_eq!(domain_of_path("/local/domain/12"), Some(DomainId(12)));
        assert_eq!(domain_of_path("/other/12"), None);
        assert_eq!(domain_of_path("/local/domain/xyz/a"), None);
    }

    #[test]
    fn health_and_control_paths() {
        let d = DomainId(9);
        assert_eq!(
            health_flush_timeouts(d),
            "/iorchestra/health/9/flush_timeouts"
        );
        assert_eq!(health_quarantined(d), "/iorchestra/health/9/quarantined");
        assert_eq!(health_store_denied(d), "/iorchestra/health/9/store_denied");
        assert_eq!(clear_quarantine(d), "/iorchestra/control/9/clear");
        assert_eq!(
            control_dom_of_path("/iorchestra/control/9/clear"),
            Some(DomainId(9))
        );
        assert_eq!(control_dom_of_path("/local/domain/9/virt-dev/nr"), None);
        let k = DomainKeys::new(d);
        assert_eq!(k.health_flush_timeouts.as_str(), health_flush_timeouts(d));
        assert_eq!(k.health_quarantined.as_str(), health_quarantined(d));
        assert_eq!(k.health_store_denied.as_str(), health_store_denied(d));
    }

    #[test]
    fn state_paths() {
        let d = DomainId(5);
        assert_eq!(STATE_EPOCH, "/iorchestra/state/epoch");
        assert_eq!(state_base(d), "/iorchestra/state/5");
        assert_eq!(state_quarantined(d), "/iorchestra/state/5/quarantined");
        assert_eq!(state_flush_epoch(d), "/iorchestra/state/5/flush_epoch");
        assert_eq!(
            state_flush_deadline(d),
            "/iorchestra/state/5/flush_deadline"
        );
        assert_eq!(state_fail_streak(d), "/iorchestra/state/5/fail_streak");
        assert_eq!(state_timeouts(d), "/iorchestra/state/5/timeouts");
        // The state subtree is not an operator-command path.
        assert_eq!(control_dom_of_path(&state_quarantined(d)), None);
        let k = DomainKeys::new(d);
        assert_eq!(k.state_quarantined.as_str(), state_quarantined(d));
        assert_eq!(k.state_flush_epoch.as_str(), state_flush_epoch(d));
        assert_eq!(k.state_flush_deadline.as_str(), state_flush_deadline(d));
        assert_eq!(k.state_fail_streak.as_str(), state_fail_streak(d));
        assert_eq!(k.state_timeouts.as_str(), state_timeouts(d));
    }

    #[test]
    fn key_matching() {
        assert!(is_key("/local/domain/1/virt-dev/flush_now", "flush_now"));
        assert!(!is_key("/local/domain/1/virt-dev/flush_now", "congested"));
    }

    #[test]
    fn domain_keys_match_formatted_paths() {
        let d = DomainId(42);
        let mut k = DomainKeys::new(d);
        assert_eq!(k.base.as_str(), "/local/domain/42");
        assert_eq!(k.virt_dev.as_str(), "/local/domain/42/virt-dev");
        assert_eq!(k.has_dirty_pages.as_str(), has_dirty_pages(d));
        assert_eq!(k.nr_dirty.as_str(), nr_dirty(d));
        assert_eq!(k.flush_now.as_str(), flush_now(d));
        assert_eq!(k.congested.as_str(), congested(d));
        assert_eq!(k.release_request.as_str(), release_request(d));
        // Sockets can be requested out of order; the vec backfills.
        assert_eq!(k.socket_weight(1).as_str(), socket_weight(d, 1));
        assert_eq!(k.socket_weight(0).as_str(), socket_weight(d, 0));
    }

    #[test]
    fn cached_values_encode_decimal() {
        assert_eq!(&*val::zero(), "0");
        assert_eq!(&*val::one(), "1");
        assert_eq!(&*val::flag(true), "1");
        assert_eq!(&*val::flag(false), "0");
        assert_eq!(&*val::uint(255), "255");
        assert_eq!(&*val::uint(1_000_000), "1000000");
        // Small values share one allocation.
        assert!(std::rc::Rc::ptr_eq(&val::uint(7), &val::uint(7)));
    }
}
