//! Typed paths for the IOrchestra keys in the system store.
//!
//! The prototype's XenStore layout (paper Fig. 3): each domain owns
//! `/local/domain/<id>/virt-dev/…` where the collaborative state lives.

use iorch_hypervisor::{DomainId, XenStore};

/// `has_dirty_pages` — set by the guest when `bdi_writeback.nr > 0`
/// (Algorithm 1).
pub fn has_dirty_pages(dom: DomainId) -> String {
    format!("{}/virt-dev/has_dirty_pages", XenStore::domain_path(dom))
}

/// `nr` — the guest's dirty-page count, published so the management module
/// can pick `argmax_i nr_i`.
pub fn nr_dirty(dom: DomainId) -> String {
    format!("{}/virt-dev/nr", XenStore::domain_path(dom))
}

/// `flush_now` — written by the management module to trigger a remote
/// `sync()` in the guest (Algorithm 1).
pub fn flush_now(dom: DomainId) -> String {
    format!("{}/virt-dev/flush_now", XenStore::domain_path(dom))
}

/// `congested` — set when the guest wants to enable congestion avoidance
/// on its virtual device (Algorithm 2).
pub fn congested(dom: DomainId) -> String {
    format!("{}/virt-dev/congested", XenStore::domain_path(dom))
}

/// `release_request` — written by the management module when the host
/// device is *not* actually congested (Algorithm 2).
pub fn release_request(dom: DomainId) -> String {
    format!("{}/virt-dev/release_request", XenStore::domain_path(dom))
}

/// Per-socket I/O weight published by the management module (§3.3).
pub fn socket_weight(dom: DomainId, socket: usize) -> String {
    format!("{}/virt-dev/weight/{}", XenStore::domain_path(dom), socket)
}

/// Extract the domain id from a store path under `/local/domain/<id>/…`.
pub fn domain_of_path(path: &str) -> Option<DomainId> {
    let rest = path.strip_prefix("/local/domain/")?;
    let id_str = rest.split('/').next()?;
    id_str.parse().ok().map(DomainId)
}

/// Does the path name this key (final segment match)?
pub fn is_key(path: &str, key: &str) -> bool {
    path.rsplit('/').next() == Some(key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_are_domain_scoped() {
        let d = DomainId(7);
        assert_eq!(
            has_dirty_pages(d),
            "/local/domain/7/virt-dev/has_dirty_pages"
        );
        assert_eq!(flush_now(d), "/local/domain/7/virt-dev/flush_now");
        assert_eq!(socket_weight(d, 1), "/local/domain/7/virt-dev/weight/1");
    }

    #[test]
    fn domain_extraction() {
        assert_eq!(
            domain_of_path("/local/domain/12/virt-dev/flush_now"),
            Some(DomainId(12))
        );
        assert_eq!(domain_of_path("/local/domain/12"), Some(DomainId(12)));
        assert_eq!(domain_of_path("/other/12"), None);
        assert_eq!(domain_of_path("/local/domain/xyz/a"), None);
    }

    #[test]
    fn key_matching() {
        assert!(is_key("/local/domain/1/virt-dev/flush_now", "flush_now"));
        assert!(!is_key("/local/domain/1/virt-dev/flush_now", "congested"));
    }
}
