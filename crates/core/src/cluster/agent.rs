//! The per-node agent: runs on each machine, renews its lease, and
//! applies controller commands idempotently.
//!
//! The agent is the cluster's ground truth: `owned` maps logical domain
//! ids to the real [`DomainId`]s it created on its machine, and every
//! heartbeat reports that set verbatim. Command application is guarded
//! three ways — boot incarnation (a rebooted node discards commands aimed
//! at its previous life), the `(epoch, seq)` cursor (stale and duplicate
//! deliveries are discarded), and idempotence (starting an owned domain
//! or stopping an unowned one just acks). A node crash destroys the
//! machine's domains and bumps the incarnation; recovery re-registers
//! with exponential backoff.

use std::collections::BTreeMap;

use iorch_hypervisor::{Cluster, DomainId, Sched, VmSpec};
use iorch_netsim::{MsgBus, NodeId};
use iorch_simcore::trace::{Decision, TraceEventKind};
use iorch_simcore::{trace_event, SimTime};

use super::msg::{Msg, NodeCaps};
use super::ClusterConfig;

/// One node's agent.
pub struct NodeAgent {
    cfg: ClusterConfig,
    node: u32,
    machine: usize,
    ctrl: NodeId,
    caps: NodeCaps,
    incarnation: u64,
    down: bool,
    lease_until: SimTime,
    /// Command cursor: the highest `(epoch, seq)` applied so far.
    last_epoch: u64,
    last_seq: u64,
    /// Logical domain → the machine domain actually running it.
    owned: BTreeMap<u32, DomainId>,
    backoff_shift: u32,
    next_register_at: SimTime,
}

impl NodeAgent {
    /// An agent for cluster node `node`, driving machine `machine`.
    pub fn new(
        cfg: ClusterConfig,
        node: u32,
        machine: usize,
        caps: NodeCaps,
        ctrl: NodeId,
    ) -> Self {
        NodeAgent {
            cfg,
            node,
            machine,
            ctrl,
            caps,
            incarnation: 1,
            down: false,
            lease_until: SimTime::ZERO,
            last_epoch: 0,
            last_seq: 0,
            owned: BTreeMap::new(),
            backoff_shift: 0,
            next_register_at: SimTime::ZERO,
        }
    }

    /// Cluster node index.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// The hypervisor machine this agent drives.
    pub fn machine(&self) -> usize {
        self.machine
    }

    /// Whether the node is currently crashed.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Current boot incarnation.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Whether the agent holds an unexpired lease at `now`.
    pub fn has_lease(&self, now: SimTime) -> bool {
        now < self.lease_until
    }

    /// Logical domain → machine domain map (ground truth).
    pub fn owned(&self) -> &BTreeMap<u32, DomainId> {
        &self.owned
    }

    /// One heartbeat tick: register (with exponential backoff) while
    /// leaseless, heartbeat otherwise. No-op while crashed.
    pub fn tick(&mut self, bus: &mut MsgBus<Msg>, now: SimTime) {
        if self.down {
            return;
        }
        if !self.has_lease(now) {
            if now < self.next_register_at {
                return;
            }
            let shift = self.backoff_shift.min(self.cfg.backoff_cap_shift);
            self.next_register_at = now + self.cfg.register_backoff * (1u64 << shift);
            self.backoff_shift += 1;
            self.send(
                bus,
                Msg::Register {
                    node: self.node,
                    incarnation: self.incarnation,
                    caps: self.caps,
                },
                now,
            );
        } else {
            let owned: Vec<u32> = self.owned.keys().copied().collect();
            self.send(
                bus,
                Msg::Heartbeat {
                    node: self.node,
                    incarnation: self.incarnation,
                    caps: self.caps,
                    owned,
                },
                now,
            );
        }
    }

    fn send(&mut self, bus: &mut MsgBus<Msg>, msg: Msg, now: SimTime) {
        let len = msg.wire_len();
        bus.send(NodeId(self.node as usize), self.ctrl, len, msg, now);
    }

    /// Handle one inbound message (the tier drops deliveries while the
    /// node is crashed — a dead host receives nothing).
    pub fn on_msg(
        &mut self,
        bus: &mut MsgBus<Msg>,
        cl: &mut Cluster,
        s: &mut Sched,
        msg: Msg,
        now: SimTime,
    ) {
        match msg {
            Msg::Lease { ttl, .. } => {
                self.lease_until = now + ttl;
                self.backoff_shift = 0;
                self.next_register_at = now;
            }
            Msg::Start {
                inc,
                epoch,
                seq,
                ldom,
                spec,
                ..
            } => {
                if self.admit(inc, epoch, seq, now) {
                    self.apply_start(cl, s, ldom, spec);
                    self.ack(bus, epoch, seq, now);
                }
            }
            Msg::Stop {
                inc,
                epoch,
                seq,
                ldom,
                ..
            } => {
                if self.admit(inc, epoch, seq, now) {
                    self.apply_stop(cl, s, ldom);
                    self.ack(bus, epoch, seq, now);
                }
            }
            // Node-originated kinds never arrive here.
            Msg::Register { .. } | Msg::Heartbeat { .. } | Msg::CmdAck { .. } => {}
        }
    }

    /// Incarnation + cursor admission for a command. Advances the cursor
    /// on admit; traces and discards otherwise. Duplicates are not
    /// re-acked — the controller's heartbeat resolution covers lost acks.
    fn admit(&mut self, inc: u64, epoch: u64, seq: u64, now: SimTime) -> bool {
        if inc != self.incarnation || (epoch, seq) <= (self.last_epoch, self.last_seq) {
            trace_event!(
                now,
                TraceEventKind::Decision(Decision::ClusterCmdStale {
                    node: self.node,
                    epoch,
                    seq,
                })
            );
            return false;
        }
        self.last_epoch = epoch;
        self.last_seq = seq;
        true
    }

    fn ack(&mut self, bus: &mut MsgBus<Msg>, epoch: u64, seq: u64, now: SimTime) {
        self.send(
            bus,
            Msg::CmdAck {
                node: self.node,
                epoch,
                seq,
            },
            now,
        );
    }

    fn apply_start(&mut self, cl: &mut Cluster, s: &mut Sched, ldom: u32, spec: VmSpec) {
        if self.owned.contains_key(&ldom) {
            return;
        }
        let dom = cl.create_domain(s, self.machine, spec, |_| {});
        self.owned.insert(ldom, dom);
    }

    fn apply_stop(&mut self, cl: &mut Cluster, s: &mut Sched, ldom: u32) {
        if let Some(dom) = self.owned.remove(&ldom) {
            cl.destroy_domain(s, self.machine, dom);
        }
    }

    /// Node crash: the machine loses its domains, the agent its volatile
    /// state. (The tier stops delivering to a crashed agent.)
    pub fn crash(&mut self, cl: &mut Cluster, s: &mut Sched) {
        self.down = true;
        self.lease_until = SimTime::ZERO;
        for (_, dom) in std::mem::take(&mut self.owned) {
            cl.destroy_domain(s, self.machine, dom);
        }
    }

    /// Reboot: a fresh incarnation with a reset cursor, registering
    /// immediately (the controller voids the previous life on sight).
    pub fn recover(&mut self, now: SimTime) {
        self.down = false;
        self.incarnation += 1;
        self.last_epoch = 0;
        self.last_seq = 0;
        self.backoff_shift = 0;
        self.next_register_at = now;
        self.lease_until = SimTime::ZERO;
    }
}
