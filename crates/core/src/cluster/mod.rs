//! # The cluster control tier
//!
//! IOrchestra's per-machine control planes close the semantic gap inside
//! one host; the paper's §6 scale-out experiments (Fig. 7) run the same
//! workloads across up to eight machines. This module adds the missing
//! tier: a cluster **controller** plus per-node **agents** exchanging
//! messages over a deterministic bus ([`iorch_netsim::MsgBus`]) layered
//! on the NIC serialization model, with lease-based membership, failure
//! detection, and quota/NUMA-aware domain failover.
//!
//! Protocol summary (DESIGN.md §14 has the full state machines):
//!
//! * **Membership**: nodes register under a boot incarnation and renew a
//!   lease with periodic heartbeats carrying their ground-truth owned
//!   set. An expired lease marks the node dead and orphans its domains.
//! * **Placement**: the desired placement is recomputed every controller
//!   tick as a *pure function* of the alive membership and the durable
//!   domain catalog (greedy over the [`placement`] rule pipeline), so any
//!   two controllers with the same view agree byte-for-byte.
//! * **Reconciliation**: the controller diffs desired against reported
//!   ownership and issues idempotent, epoch-stamped `Start`/`Stop`
//!   commands with timeout + exponential-backoff retry. Superseded
//!   copies are stopped make-before-break.
//! * **Failure model**: the bus injects partitions, loss, duplication,
//!   reordering and delay from a [`FaultPlan`]; node and controller
//!   crashes destroy volatile state. A partitioned node keeps serving
//!   its domains and reconciles after heal; a rebooted node registers
//!   under a fresh incarnation and pre-crash commands aimed at its
//!   previous life are discarded.
//!
//! The convergence contract: after any fault schedule drawn from the
//! supported kinds, once faults cease the cluster's steady state
//! ([`ClusterTier::steady_digest`]) is byte-identical to the no-fault
//! run's — seed-swept and gated by `cluster_convergence` in tier 1.

pub mod agent;
pub mod controller;
pub mod msg;
pub mod placement;

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::{Rc, Weak};

use iorch_hypervisor::{Cluster, Machine, Sched, VmSpec};
use iorch_netsim::{BusStats, MsgBus, NetParams, NodeId};
use iorch_simcore::faults::{FaultKind, FaultPlan};
use iorch_simcore::{SimDuration, SimTime};

pub use agent::NodeAgent;
pub use controller::{Controller, ControllerStats, Member};
pub use msg::{Msg, NodeCaps};
pub use placement::{NodeView, PlacementPipeline, PlacementRule};

/// Timing and quota knobs of the cluster control tier.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Controller reconcile period.
    pub controller_tick: SimDuration,
    /// Agent heartbeat period.
    pub heartbeat: SimDuration,
    /// Lease granted per registration/heartbeat.
    pub lease_ttl: SimDuration,
    /// Base command-ack deadline (doubled per retry up to the cap).
    pub rpc_timeout: SimDuration,
    /// Base re-registration backoff (doubled per attempt up to the cap).
    pub register_backoff: SimDuration,
    /// Maximum doubling shift for both backoffs.
    pub backoff_cap_shift: u32,
    /// Command suppression window after a controller restart, while
    /// heartbeats rebuild the membership.
    pub recovery_grace: SimDuration,
    /// VCPU overcommit factor applied to unreserved cores.
    pub vcpu_overcommit: u32,
    /// Per-node guest-memory quota in bytes.
    pub mem_quota: u64,
    /// NIC model parameters for the control bus.
    pub net: NetParams,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            controller_tick: SimDuration::from_millis(50),
            heartbeat: SimDuration::from_millis(100),
            lease_ttl: SimDuration::from_millis(350),
            rpc_timeout: SimDuration::from_millis(250),
            register_backoff: SimDuration::from_millis(150),
            backoff_cap_shift: 4,
            recovery_grace: SimDuration::from_millis(300),
            vcpu_overcommit: 4,
            mem_quota: 64 << 30,
            net: NetParams::default(),
        }
    }
}

/// Derive a node's advertised capacity from its machine's topology.
fn caps_of(m: &Machine, cfg: &ClusterConfig) -> NodeCaps {
    let pc = m.placement_caps();
    NodeCaps {
        total_vcpus: pc.total_cores * cfg.vcpu_overcommit,
        numa_max_vcpus: pc.numa_max_cores * cfg.vcpu_overcommit,
        mem_quota: cfg.mem_quota,
    }
}

/// The installed cluster control tier: controller, agents, and the bus
/// between them, driven by scheduler events. Obtained from
/// [`ClusterTier::install`]; scheduled closures hold a [`Weak`] back-ref,
/// so the tier dies (and its periodics stop) when the caller drops the
/// [`Rc`].
pub struct ClusterTier {
    cfg: ClusterConfig,
    bus: MsgBus<Msg>,
    controller: Controller,
    agents: Vec<NodeAgent>,
    me: Weak<RefCell<ClusterTier>>,
    /// Instant of the nearest armed bus-pump event (`ZERO` = none).
    pump_at: SimTime,
}

impl ClusterTier {
    /// Install the tier over the given machines (one agent per machine;
    /// the controller gets its own bus address after the last node).
    /// Schedules the controller tick and the heartbeat tick.
    pub fn install(
        cl: &mut Cluster,
        s: &mut Sched,
        machines: &[usize],
        cfg: ClusterConfig,
    ) -> Rc<RefCell<ClusterTier>> {
        let n = machines.len();
        let ctrl = NodeId(n);
        let agents: Vec<NodeAgent> = machines
            .iter()
            .enumerate()
            .map(|(i, &m)| NodeAgent::new(cfg, i as u32, m, caps_of(cl.machine(m), &cfg), ctrl))
            .collect();
        let tier = Rc::new_cyclic(|me| {
            RefCell::new(ClusterTier {
                cfg,
                bus: MsgBus::new(n + 1, cfg.net),
                controller: Controller::new(cfg, ctrl),
                agents,
                me: me.clone(),
                pump_at: SimTime::ZERO,
            })
        });
        let me = Rc::downgrade(&tier);
        s.schedule_every(cfg.controller_tick, move |_cl: &mut Cluster, s| {
            let Some(t) = me.upgrade() else { return false };
            let mut t = t.borrow_mut();
            let t = &mut *t;
            let now = s.now();
            t.controller.tick(&mut t.bus, now);
            t.ensure_pump(s);
            true
        });
        let me = Rc::downgrade(&tier);
        s.schedule_every(cfg.heartbeat, move |_cl: &mut Cluster, s| {
            let Some(t) = me.upgrade() else { return false };
            let mut t = t.borrow_mut();
            let t = &mut *t;
            let now = s.now();
            for a in &mut t.agents {
                a.tick(&mut t.bus, now);
            }
            t.ensure_pump(s);
            true
        });
        tier
    }

    /// The tier's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The controller (membership, catalog, desired placement, stats).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// The node agents, in node order.
    pub fn agents(&self) -> &[NodeAgent] {
        &self.agents
    }

    /// Bus delivery/loss counters.
    pub fn bus_stats(&self) -> BusStats {
        self.bus.stats()
    }

    /// Add a domain to the cluster catalog; the controller places and
    /// starts it on its next tick. Returns the logical domain id.
    pub fn submit_domain(&mut self, spec: VmSpec) -> u32 {
        self.controller.submit(spec)
    }

    /// Remove a domain from the catalog; reconciliation stops it.
    pub fn retire_domain(&mut self, ldom: u32) {
        self.controller.retire(ldom);
    }

    /// Arm a fault plan on the tier: network kinds merge into the bus;
    /// node/controller crashes are scheduled as crash/recover pairs.
    /// Machine-level kinds are ignored here — install those per machine
    /// with [`Cluster::install_faults`].
    pub fn install_faults(&mut self, s: &mut Sched, plan: &FaultPlan) {
        self.bus.install_faults(plan);
        for ev in plan.events() {
            match ev.kind {
                FaultKind::NodeCrash {
                    node,
                    at,
                    recover_after,
                } => {
                    let me = self.me.clone();
                    s.schedule_at(at, move |cl: &mut Cluster, s| {
                        if let Some(t) = me.upgrade() {
                            t.borrow_mut().crash_node(cl, s, node);
                        }
                    });
                    let me = self.me.clone();
                    s.schedule_at(at + recover_after, move |_cl: &mut Cluster, s| {
                        if let Some(t) = me.upgrade() {
                            t.borrow_mut().recover_node(s, node);
                        }
                    });
                }
                FaultKind::ControllerCrash { at, recover_after } => {
                    let me = self.me.clone();
                    s.schedule_at(at, move |_cl: &mut Cluster, s| {
                        if let Some(t) = me.upgrade() {
                            let mut t = t.borrow_mut();
                            t.controller.crash(s.now());
                        }
                    });
                    let me = self.me.clone();
                    s.schedule_at(at + recover_after, move |_cl: &mut Cluster, s| {
                        if let Some(t) = me.upgrade() {
                            let mut t = t.borrow_mut();
                            t.controller.recover(s.now());
                        }
                    });
                }
                _ => {}
            }
        }
    }

    /// Crash node `node` now: its machine's domains are destroyed and the
    /// agent goes silent until recovery.
    pub fn crash_node(&mut self, cl: &mut Cluster, s: &mut Sched, node: u32) {
        if let Some(a) = self.agents.get_mut(node as usize) {
            a.crash(cl, s);
        }
    }

    /// Reboot node `node` now under a fresh incarnation.
    pub fn recover_node(&mut self, s: &mut Sched, node: u32) {
        if let Some(a) = self.agents.get_mut(node as usize) {
            a.recover(s.now());
        }
    }

    /// Arm (or re-arm) the bus pump at the earliest pending delivery.
    /// Stale pump events (superseded by an earlier re-arm) no-op.
    fn ensure_pump(&mut self, s: &mut Sched) {
        let Some(due) = self.bus.next_due() else {
            return;
        };
        let now = s.now();
        if self.pump_at > now && self.pump_at <= due {
            return;
        }
        let at = due.max(now);
        self.pump_at = at;
        let me = self.me.clone();
        s.schedule_at(at, move |cl: &mut Cluster, s| {
            if let Some(t) = me.upgrade() {
                let mut t = t.borrow_mut();
                if t.pump_at == at {
                    t.pump(cl, s);
                }
            }
        });
    }

    /// Drain due deliveries and route them; crashed endpoints receive
    /// nothing (the message is consumed and lost, like a dead host).
    fn pump(&mut self, cl: &mut Cluster, s: &mut Sched) {
        self.pump_at = SimTime::ZERO;
        let now = s.now();
        for (dst, msg) in self.bus.take_due(now) {
            self.deliver(cl, s, dst, msg, now);
        }
        self.ensure_pump(s);
    }

    fn deliver(&mut self, cl: &mut Cluster, s: &mut Sched, dst: NodeId, msg: Msg, now: SimTime) {
        if dst == self.controller.node_id() {
            if !self.controller.is_down() {
                self.controller.on_msg(&mut self.bus, msg, now);
            }
        } else if let Some(a) = self.agents.get_mut(dst.0) {
            if !a.is_down() {
                a.on_msg(&mut self.bus, cl, s, msg, now);
            }
        }
    }

    /// Canonical steady-state digest for the convergence oracle. Includes
    /// everything that must converge (liveness, ownership, machine domain
    /// counts, catalog, desired placement, membership owned sets) and
    /// excludes what legitimately differs between a faulted and a
    /// fault-free history (epochs, incarnations, sequence numbers, lease
    /// deadlines, machine [`DomainId`](iorch_hypervisor::DomainId)s,
    /// stats).
    pub fn steady_digest(&self, cl: &Cluster) -> String {
        let mut out = String::new();
        for a in &self.agents {
            let owned: Vec<u32> = a.owned().keys().copied().collect();
            let doms = cl.machine(a.machine()).domain_count();
            let _ = writeln!(
                out,
                "node {} up={} owned={:?} machine_doms={}",
                a.node(),
                !a.is_down(),
                owned,
                doms
            );
        }
        let c = &self.controller;
        let catalog: Vec<(u32, u32)> = c.catalog().iter().map(|(&l, s)| (l, s.vcpus)).collect();
        let desired: Vec<(u32, u32)> = c.desired().into_iter().collect();
        let _ = writeln!(out, "ctrl down={} catalog={catalog:?}", c.is_down());
        let _ = writeln!(out, "ctrl desired={desired:?}");
        for (&node, m) in c.members() {
            let _ = writeln!(out, "member {node} alive={} owned={:?}", m.alive, m.owned);
        }
        out
    }

    /// Ownership invariant check: no logical domain may be owned by more
    /// than one live node, and every owned entry must map to a live
    /// machine domain. Returns human-readable violations (empty = ok).
    /// A crashed node's entries are skipped — its machine domains were
    /// destroyed with it.
    pub fn ownership_violations(&self, cl: &Cluster) -> Vec<String> {
        let mut out = Vec::new();
        let mut owners: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
        for a in &self.agents {
            if a.is_down() {
                continue;
            }
            for (&ldom, &dom) in a.owned() {
                owners.entry(ldom).or_default().push(a.node());
                if cl.machine(a.machine()).domain(dom).is_none() {
                    out.push(format!(
                        "node {} owns ldom {ldom} but machine domain {dom:?} is gone",
                        a.node()
                    ));
                }
            }
        }
        for (ldom, nodes) in owners {
            if nodes.len() > 1 {
                out.push(format!(
                    "ldom {ldom} owned by {} nodes: {nodes:?}",
                    nodes.len()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemKind;
    use iorch_simcore::faults::FaultWindow;
    use iorch_simcore::Simulation;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    /// `n` IOrchestra machines + the tier, with `doms` small domains
    /// submitted at t=0.
    fn cluster(n: usize, doms: u32) -> (Simulation<Cluster>, Rc<RefCell<ClusterTier>>) {
        let mut sim = Simulation::new(Cluster::new());
        let (cl, s) = sim.parts_mut();
        let machines: Vec<usize> = (0..n)
            .map(|i| SystemKind::IOrchestra.provision(cl, s, 42 ^ i as u64))
            .collect();
        let tier = ClusterTier::install(cl, s, &machines, ClusterConfig::default());
        {
            let mut t = tier.borrow_mut();
            for i in 0..doms {
                t.submit_domain(VmSpec::new(1 + i % 2, 1));
            }
        }
        (sim, tier)
    }

    #[test]
    fn membership_forms_and_domains_place() {
        let (mut sim, tier) = cluster(3, 8);
        sim.run_until(ms(3000));
        let t = tier.borrow();
        let cl = sim.world();
        assert_eq!(t.controller().members().len(), 3);
        assert!(t.controller().members().values().all(|m| m.alive));
        let placed: usize = t.agents().iter().map(|a| a.owned().len()).sum();
        assert_eq!(placed, 8, "all submitted domains are running");
        assert_eq!(t.controller().inflight_len(), 0, "steady state is quiet");
        assert!(t.ownership_violations(cl).is_empty());
        // Ground truth matches the controller's desired placement.
        let desired = t.controller().desired();
        for a in t.agents() {
            for &ldom in a.owned().keys() {
                assert_eq!(desired.get(&ldom), Some(&a.node()));
            }
        }
    }

    #[test]
    fn node_crash_fails_over_and_rejoin_reconciles() {
        let (mut sim, tier) = cluster(3, 8);
        {
            let (_, s) = sim.parts_mut();
            let plan = FaultPlan::new().with(
                FaultWindow::always(),
                FaultKind::NodeCrash {
                    node: 1,
                    at: ms(1500),
                    recover_after: SimDuration::from_millis(900),
                },
            );
            tier.borrow_mut().install_faults(s, &plan);
        }
        sim.run_until(ms(1400));
        let before = tier.borrow().agents()[1].owned().len();
        assert!(before > 0, "node 1 runs domains before the crash");
        // While node 1 is down past its lease, its domains fail over.
        sim.run_until(ms(2300));
        {
            let t = tier.borrow();
            assert!(t.controller().stats().failovers > 0);
            let placed: usize = t
                .agents()
                .iter()
                .filter(|a| !a.is_down())
                .map(|a| a.owned().len())
                .sum();
            assert_eq!(placed, 8, "orphans re-placed on survivors");
        }
        // After recovery everything reconciles with zero dup ownership.
        sim.run_until(ms(8000));
        let t = tier.borrow();
        let cl = sim.world();
        assert!(t.ownership_violations(cl).is_empty());
        assert_eq!(t.agents()[1].incarnation(), 2, "rejoined as a new life");
        let placed: usize = t.agents().iter().map(|a| a.owned().len()).sum();
        assert_eq!(placed, 8);
    }

    #[test]
    fn partition_keeps_serving_and_heals() {
        let (mut sim, tier) = cluster(3, 8);
        {
            let (_, s) = sim.parts_mut();
            // Node 2 is cut off from everyone (controller included) for
            // 1.5 s — long past the lease TTL.
            let plan = FaultPlan::new().with(
                FaultWindow::new(ms(1500), ms(3000)),
                FaultKind::NetPartition { group: 0b100 },
            );
            tier.borrow_mut().install_faults(s, &plan);
        }
        sim.run_until(ms(1400));
        let before = tier.borrow().agents()[2].owned().len();
        assert!(before > 0);
        sim.run_until(ms(2900));
        {
            let t = tier.borrow();
            // The controller declared node 2 dead and re-placed its
            // domains; node 2 itself keeps serving what it has.
            assert!(!t.controller().members()[&2].alive);
            assert_eq!(t.agents()[2].owned().len(), before, "still serving");
            assert!(t.controller().stats().failovers > 0);
        }
        sim.run_until(ms(9000));
        let t = tier.borrow();
        let cl = sim.world();
        assert!(t.controller().members()[&2].alive, "rejoined after heal");
        assert_eq!(t.agents()[2].incarnation(), 1, "no reboot happened");
        assert!(t.ownership_violations(cl).is_empty());
        let placed: usize = t.agents().iter().map(|a| a.owned().len()).sum();
        assert_eq!(placed, 8, "duplicates reconciled away after heal");
    }

    #[test]
    fn controller_crash_rebuilds_from_heartbeats() {
        let (mut sim, tier) = cluster(3, 8);
        {
            let (_, s) = sim.parts_mut();
            let plan = FaultPlan::new().with(
                FaultWindow::always(),
                FaultKind::ControllerCrash {
                    at: ms(2000),
                    recover_after: SimDuration::from_millis(700),
                },
            );
            tier.borrow_mut().install_faults(s, &plan);
        }
        sim.run_until(ms(8000));
        let t = tier.borrow();
        let cl = sim.world();
        assert!(t.controller().epoch() > 1, "fresh epoch after recovery");
        assert_eq!(t.controller().members().len(), 3, "membership rebuilt");
        assert!(t.ownership_violations(cl).is_empty());
        let placed: usize = t.agents().iter().map(|a| a.owned().len()).sum();
        assert_eq!(placed, 8, "no domain was disturbed by the restart");
    }
}
