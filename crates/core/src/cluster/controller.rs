//! The cluster controller: lease-based membership, failure detection,
//! and domain failover.
//!
//! The controller is deliberately *stateless about intent*: the desired
//! placement is recomputed on every tick as a pure function of the alive
//! membership and the durable domain catalog ([`Controller::desired`]),
//! and reconciliation only diffs that against the ground-truth `owned`
//! sets nodes report in heartbeats. There is no placement journal to
//! corrupt — a controller that crashes and restarts (fresh epoch, empty
//! membership) rebuilds everything from heartbeats and converges to the
//! same steady state as a controller that never crashed, which is exactly
//! what the cluster convergence oracle asserts.
//!
//! Command reliability follows the policy engine's epoch scheme
//! (DESIGN.md §7): every command carries `(epoch, seq)` plus the target's
//! boot incarnation; agents discard stale/duplicate deliveries; the
//! controller re-issues unacked commands under fresh sequence numbers
//! with exponentially backed-off deadlines. Acks are an optimization —
//! heartbeat `owned` sets resolve in-flight commands even when every ack
//! is lost.

use std::collections::BTreeMap;

use iorch_hypervisor::VmSpec;
use iorch_netsim::{MsgBus, NodeId};
use iorch_simcore::trace::{Decision, TraceEventKind};
use iorch_simcore::{trace_event, SimTime};

use super::msg::{Msg, NodeCaps};
use super::placement::{NodeView, PlacementPipeline};
use super::ClusterConfig;

/// A node as the controller currently believes it to be.
#[derive(Clone, Debug)]
pub struct Member {
    /// Boot incarnation the node last registered/heartbeat under.
    pub incarnation: u64,
    /// Advertised capacity.
    pub caps: NodeCaps,
    /// Instant the lease runs out (renewed by heartbeats).
    pub lease_until: SimTime,
    /// False once the lease expired; flips back on a heartbeat
    /// (rejoin) or registration.
    pub alive: bool,
    /// Ground-truth owned set from the node's last heartbeat, ascending.
    pub owned: Vec<u32>,
}

/// An unacked command awaiting its deadline.
#[derive(Clone, Copy, Debug)]
struct Rpc {
    /// True for `Start`, false for `Stop`.
    start: bool,
    seq: u64,
    deadline: SimTime,
    attempt: u32,
}

/// Monotonic controller counters (excluded from convergence digests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Commands issued (first attempts and retries).
    pub commands: u64,
    /// Timed-out commands re-issued with backoff.
    pub retries: u64,
    /// Acks dropped for carrying a stale epoch.
    pub stale_acks: u64,
    /// Orphaned domains re-placed on survivors.
    pub failovers: u64,
}

/// The cluster controller state machine. Driven by [`tick`](Self::tick)
/// and the message handlers; sends through the caller-provided bus so it
/// stays borrow-disjoint from the rest of the tier.
pub struct Controller {
    cfg: ClusterConfig,
    ctrl: NodeId,
    /// Durable command epoch: bumped on every recovery, never reset.
    epoch: u64,
    down: bool,
    /// After a recovery, commands are suppressed until this instant so
    /// membership can rebuild from heartbeats first.
    grace_until: SimTime,
    members: BTreeMap<u32, Member>,
    /// Durable domain catalog: `ldom → spec`. Survives controller
    /// crashes (etcd-style persistence in a real deployment).
    catalog: BTreeMap<u32, VmSpec>,
    next_ldom: u32,
    /// Domains orphaned by a lease expiry, with their dead former owner
    /// (for failover tracing).
    orphans: BTreeMap<u32, u32>,
    next_seq: u64,
    /// Unacked commands, keyed `(node, ldom)` — a node can have at most
    /// one in-flight command per logical domain.
    inflight: BTreeMap<(u32, u32), Rpc>,
    stats: ControllerStats,
}

impl Controller {
    /// A fresh controller addressed as `ctrl` on the bus.
    pub fn new(cfg: ClusterConfig, ctrl: NodeId) -> Self {
        Controller {
            cfg,
            ctrl,
            epoch: 1,
            down: false,
            grace_until: SimTime::ZERO,
            members: BTreeMap::new(),
            catalog: BTreeMap::new(),
            next_ldom: 0,
            orphans: BTreeMap::new(),
            next_seq: 0,
            inflight: BTreeMap::new(),
            stats: ControllerStats::default(),
        }
    }

    /// Add a domain to the durable catalog; returns its logical id.
    pub fn submit(&mut self, spec: VmSpec) -> u32 {
        self.next_ldom += 1;
        self.catalog.insert(self.next_ldom, spec);
        self.next_ldom
    }

    /// Remove a domain from the catalog (reconciliation stops it).
    pub fn retire(&mut self, ldom: u32) {
        self.catalog.remove(&ldom);
        self.orphans.remove(&ldom);
    }

    /// The controller's bus address.
    pub fn node_id(&self) -> NodeId {
        self.ctrl
    }

    /// Whether the controller is currently crashed.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Current command epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Monotonic counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Current membership view.
    pub fn members(&self) -> &BTreeMap<u32, Member> {
        &self.members
    }

    /// The durable domain catalog.
    pub fn catalog(&self) -> &BTreeMap<u32, VmSpec> {
        &self.catalog
    }

    /// Unacked command count (empty at steady state).
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Desired placement: a pure function of the alive membership and the
    /// catalog. Greedy in ascending `ldom` order over the standard
    /// placement pipeline; domains that fit nowhere are omitted.
    pub fn desired(&self) -> BTreeMap<u32, u32> {
        let mut views: Vec<NodeView> = self
            .members
            .iter()
            .filter(|(_, m)| m.alive)
            .map(|(&n, m)| {
                NodeView::new(
                    n,
                    m.caps.total_vcpus,
                    m.caps.numa_max_vcpus,
                    m.caps.mem_quota,
                )
            })
            .collect();
        let pipeline = PlacementPipeline::standard();
        let mut out = BTreeMap::new();
        for (&ldom, spec) in &self.catalog {
            if let Some(node) = pipeline.place(spec, &mut views) {
                out.insert(ldom, node);
            }
        }
        out
    }

    /// Crash: volatile state (membership, in-flight commands, orphan
    /// ledger) is lost; the epoch and catalog are durable.
    pub fn crash(&mut self, now: SimTime) {
        self.down = true;
        self.members.clear();
        self.inflight.clear();
        self.orphans.clear();
        trace_event!(now, TraceEventKind::Decision(Decision::ControllerCrash));
    }

    /// Restart under a fresh epoch; commands stay suppressed for the
    /// configured grace period while heartbeats rebuild membership.
    pub fn recover(&mut self, now: SimTime) {
        self.down = false;
        self.epoch += 1;
        self.next_seq = 0;
        self.grace_until = now + self.cfg.recovery_grace;
        trace_event!(
            now,
            TraceEventKind::Decision(Decision::ControllerRecover { epoch: self.epoch })
        );
    }

    /// One control tick: expire leases, retry timed-out commands,
    /// reconcile actual ownership against the desired placement.
    pub fn tick(&mut self, bus: &mut MsgBus<Msg>, now: SimTime) {
        if self.down || now < self.grace_until {
            return;
        }
        self.expire_leases(now);
        self.retry_timeouts(bus, now);
        self.reconcile(bus, now);
    }

    fn expire_leases(&mut self, now: SimTime) {
        let expired: Vec<u32> = self
            .members
            .iter()
            .filter(|(_, m)| m.alive && m.lease_until <= now)
            .map(|(&n, _)| n)
            .collect();
        for node in expired {
            let m = self.members.get_mut(&node).unwrap();
            m.alive = false;
            let owned = std::mem::take(&mut m.owned);
            trace_event!(
                now,
                TraceEventKind::Decision(Decision::LeaseExpired {
                    node,
                    orphaned: owned.len() as u32,
                })
            );
            for ldom in owned {
                self.orphans.insert(ldom, node);
            }
            self.inflight.retain(|&(n, _), _| n != node);
        }
    }

    fn retry_timeouts(&mut self, bus: &mut MsgBus<Msg>, now: SimTime) {
        let due: Vec<(u32, u32)> = self
            .inflight
            .iter()
            .filter(|(_, rpc)| rpc.deadline <= now)
            .map(|(&k, _)| k)
            .collect();
        for (node, ldom) in due {
            let rpc = self.inflight.remove(&(node, ldom)).unwrap();
            let alive = self.members.get(&node).is_some_and(|m| m.alive);
            let spec = self.catalog.get(&ldom).copied();
            if !alive || (rpc.start && spec.is_none()) {
                // The target died or the domain was retired: drop the
                // command and let reconciliation decide afresh.
                continue;
            }
            trace_event!(
                now,
                TraceEventKind::Decision(Decision::ClusterRetry {
                    node,
                    dom: ldom,
                    attempt: rpc.attempt + 1,
                })
            );
            self.stats.retries += 1;
            self.issue(bus, now, node, ldom, rpc.start, spec, rpc.attempt + 1);
        }
    }

    fn reconcile(&mut self, bus: &mut MsgBus<Msg>, now: SimTime) {
        let desired = self.desired();
        // Starts: the desired owner doesn't report the domain yet.
        for (&ldom, &node) in &desired {
            let has_it = self
                .members
                .get(&node)
                .is_some_and(|m| m.owned.binary_search(&ldom).is_ok());
            if has_it || self.inflight.contains_key(&(node, ldom)) {
                continue;
            }
            trace_event!(
                now,
                TraceEventKind::Decision(Decision::DomainPlaced { dom: ldom, node })
            );
            if let Some(from) = self.orphans.remove(&ldom) {
                trace_event!(
                    now,
                    TraceEventKind::Decision(Decision::Failover {
                        dom: ldom,
                        from,
                        to: node,
                    })
                );
                self.stats.failovers += 1;
            }
            let spec = self.catalog.get(&ldom).copied();
            self.issue(bus, now, node, ldom, true, spec, 0);
        }
        // Stops: an alive node owns a domain it shouldn't. Make before
        // break — a superseded copy is only stopped once the desired
        // owner actually reports it (retired domains stop immediately).
        let mut stops: Vec<(u32, u32)> = Vec::new();
        for (&node, m) in &self.members {
            if !m.alive {
                continue;
            }
            for &ldom in &m.owned {
                let keep = match desired.get(&ldom) {
                    Some(&d) if d == node => true,
                    Some(&d) => self
                        .members
                        .get(&d)
                        .is_none_or(|dm| dm.owned.binary_search(&ldom).is_err()),
                    None => self.catalog.contains_key(&ldom),
                };
                if !keep && !self.inflight.contains_key(&(node, ldom)) {
                    stops.push((node, ldom));
                }
            }
        }
        for (node, ldom) in stops {
            trace_event!(
                now,
                TraceEventKind::Decision(Decision::DomainEvicted { dom: ldom, node })
            );
            self.issue(bus, now, node, ldom, false, None, 0);
        }
    }

    /// Issue (or re-issue) a command under a fresh sequence number, with
    /// an exponentially backed-off deadline for retries.
    #[allow(clippy::too_many_arguments)]
    fn issue(
        &mut self,
        bus: &mut MsgBus<Msg>,
        now: SimTime,
        node: u32,
        ldom: u32,
        start: bool,
        spec: Option<VmSpec>,
        attempt: u32,
    ) {
        let Some(m) = self.members.get(&node) else {
            return;
        };
        let inc = m.incarnation;
        self.next_seq += 1;
        let seq = self.next_seq;
        let shift = attempt.min(self.cfg.backoff_cap_shift);
        let deadline = now + self.cfg.rpc_timeout * (1u64 << shift);
        let msg = if start {
            let Some(spec) = spec else { return };
            Msg::Start {
                node,
                inc,
                epoch: self.epoch,
                seq,
                ldom,
                spec,
            }
        } else {
            Msg::Stop {
                node,
                inc,
                epoch: self.epoch,
                seq,
                ldom,
            }
        };
        self.stats.commands += 1;
        self.inflight.insert(
            (node, ldom),
            Rpc {
                start,
                seq,
                deadline,
                attempt,
            },
        );
        let len = msg.wire_len();
        bus.send(self.ctrl, NodeId(node as usize), len, msg, now);
    }

    /// Handle one inbound message (the tier routes controller-addressed
    /// deliveries here; drops them entirely while the controller is down).
    pub fn on_msg(&mut self, bus: &mut MsgBus<Msg>, msg: Msg, now: SimTime) {
        match msg {
            Msg::Register {
                node,
                incarnation,
                caps,
            } => self.on_register(bus, node, incarnation, caps, now),
            Msg::Heartbeat {
                node,
                incarnation,
                caps,
                owned,
            } => self.on_heartbeat(bus, node, incarnation, caps, owned, now),
            Msg::CmdAck { node, epoch, seq } => self.on_ack(node, epoch, seq),
            // Controller-originated kinds reflected back are impossible by
            // construction; ignore defensively.
            Msg::Lease { .. } | Msg::Start { .. } | Msg::Stop { .. } => {}
        }
    }

    fn grant_lease(&mut self, bus: &mut MsgBus<Msg>, node: u32, now: SimTime) {
        let msg = Msg::Lease {
            node,
            epoch: self.epoch,
            ttl: self.cfg.lease_ttl,
        };
        let len = msg.wire_len();
        bus.send(self.ctrl, NodeId(node as usize), len, msg, now);
    }

    fn on_register(
        &mut self,
        bus: &mut MsgBus<Msg>,
        node: u32,
        incarnation: u64,
        caps: NodeCaps,
        now: SimTime,
    ) {
        match self.members.get_mut(&node) {
            // A delayed duplicate from a previous life: ignore.
            Some(m) if incarnation < m.incarnation => return,
            // Re-registration of the current life (lost lease, e.g. a
            // healed partition): renew without touching the owned set —
            // the node kept its domains running.
            Some(m) if incarnation == m.incarnation => {
                m.caps = caps;
                m.lease_until = now + self.cfg.lease_ttl;
                if !m.alive {
                    m.alive = true;
                    trace_event!(
                        now,
                        TraceEventKind::Decision(Decision::NodeRejoined { node, incarnation })
                    );
                }
            }
            // A new node, or a reboot under a fresh incarnation: the
            // previous life's domains and in-flight commands are void.
            _ => {
                self.inflight.retain(|&(n, _), _| n != node);
                self.members.insert(
                    node,
                    Member {
                        incarnation,
                        caps,
                        lease_until: now + self.cfg.lease_ttl,
                        alive: true,
                        owned: Vec::new(),
                    },
                );
                trace_event!(
                    now,
                    TraceEventKind::Decision(Decision::NodeRegistered { node, incarnation })
                );
            }
        }
        self.grant_lease(bus, node, now);
    }

    fn on_heartbeat(
        &mut self,
        bus: &mut MsgBus<Msg>,
        node: u32,
        incarnation: u64,
        caps: NodeCaps,
        owned: Vec<u32>,
        now: SimTime,
    ) {
        match self.members.get_mut(&node) {
            Some(m) if incarnation < m.incarnation => return,
            Some(m) if incarnation == m.incarnation => {
                m.caps = caps;
                m.owned = owned;
                m.lease_until = now + self.cfg.lease_ttl;
                if !m.alive {
                    m.alive = true;
                    trace_event!(
                        now,
                        TraceEventKind::Decision(Decision::NodeRejoined { node, incarnation })
                    );
                }
            }
            // Unknown node (controller restarted) or a newer incarnation
            // whose Register was lost: heartbeats carry everything needed
            // to (re)build the member.
            _ => {
                self.inflight.retain(|&(n, _), _| n != node);
                self.members.insert(
                    node,
                    Member {
                        incarnation,
                        caps,
                        lease_until: now + self.cfg.lease_ttl,
                        alive: true,
                        owned,
                    },
                );
                trace_event!(
                    now,
                    TraceEventKind::Decision(Decision::NodeRegistered { node, incarnation })
                );
            }
        }
        // Ground truth resolves in-flight commands even when acks are
        // lost: a Start is done once owned, a Stop once gone.
        let m = &self.members[&node];
        let owned_now = m.owned.clone();
        self.inflight.retain(|&(n, ldom), rpc| {
            if n != node {
                return true;
            }
            let has = owned_now.binary_search(&ldom).is_ok();
            rpc.start != has
        });
        self.grant_lease(bus, node, now);
    }

    fn on_ack(&mut self, node: u32, epoch: u64, seq: u64) {
        if epoch != self.epoch {
            self.stats.stale_acks += 1;
            return;
        }
        self.inflight
            .retain(|&(n, _), rpc| !(n == node && rpc.seq == seq));
    }
}
