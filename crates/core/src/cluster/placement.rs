//! Quota/NUMA-aware placement scoring — the cluster-level sibling of the
//! per-machine policy pipeline.
//!
//! The controller recomputes the *desired* placement on every tick as a
//! pure function of the alive membership and the sorted domain catalog,
//! which is what makes cluster convergence provable: any two controllers
//! seeing the same membership and catalog produce byte-identical desired
//! state, so a recovered (or partitioned-and-healed) cluster always
//! settles on the no-fault placement.
//!
//! Like the machine-level [`policy`](crate::policy) pipeline, the scoring
//! logic is policies-as-data: each [`PlacementRule`] scores a candidate
//! node (or vetoes it), the [`PlacementPipeline`] sums the scores, and the
//! highest total wins with the lowest node index as tie-break.

use iorch_hypervisor::VmSpec;

/// A candidate node's capacity and current commitments, as seen by the
/// controller (static caps from registration, usage accumulated while
/// placing the catalog in order).
#[derive(Clone, Copy, Debug)]
pub struct NodeView {
    /// Cluster node index.
    pub node: u32,
    /// VCPU capacity (unreserved cores × overcommit factor).
    pub total_vcpus: u32,
    /// Largest VCPU count that stays NUMA-local (per-socket cores ×
    /// overcommit factor).
    pub numa_max_vcpus: u32,
    /// Guest-memory quota in bytes.
    pub mem_quota: u64,
    /// VCPUs already assigned by earlier placements this pass.
    pub used_vcpus: u32,
    /// Memory already assigned by earlier placements this pass.
    pub used_mem: u64,
    /// Domains already assigned by earlier placements this pass.
    pub domains: u32,
}

impl NodeView {
    /// A fresh view with no commitments.
    pub fn new(node: u32, total_vcpus: u32, numa_max_vcpus: u32, mem_quota: u64) -> Self {
        NodeView {
            node,
            total_vcpus,
            numa_max_vcpus,
            mem_quota,
            used_vcpus: 0,
            used_mem: 0,
            domains: 0,
        }
    }
}

/// One placement policy: scores a `(spec, node)` pair, or vetoes the node
/// by returning `None`. Scores are summed across the pipeline.
pub trait PlacementRule {
    /// Rule name (for reports and debugging).
    fn name(&self) -> &'static str;
    /// Score `spec` on `view`; `None` removes the node from consideration.
    fn score(&self, spec: &VmSpec, view: &NodeView) -> Option<i64>;
}

/// Hard quota: a node past its VCPU or memory quota is vetoed.
pub struct QuotaRule;

impl PlacementRule for QuotaRule {
    fn name(&self) -> &'static str {
        "quota"
    }
    fn score(&self, spec: &VmSpec, view: &NodeView) -> Option<i64> {
        let vcpu_ok = view.used_vcpus + spec.vcpus <= view.total_vcpus;
        let mem_ok = view.used_mem + spec.mem_bytes <= view.mem_quota;
        (vcpu_ok && mem_ok).then_some(0)
    }
}

/// Prefer the node with the most free VCPUs after this placement.
pub struct LeastLoadedRule;

impl PlacementRule for LeastLoadedRule {
    fn name(&self) -> &'static str {
        "least_loaded"
    }
    fn score(&self, spec: &VmSpec, view: &NodeView) -> Option<i64> {
        let free = view
            .total_vcpus
            .saturating_sub(view.used_vcpus + spec.vcpus);
        Some(free as i64 * 100)
    }
}

/// Bonus when the VM fits on one socket of the node (the §3.3 NUMA
/// concern lifted to cluster scope: a VM that spans sockets pays
/// cross-socket I/O routing costs).
pub struct NumaFitRule;

impl PlacementRule for NumaFitRule {
    fn name(&self) -> &'static str {
        "numa_fit"
    }
    fn score(&self, spec: &VmSpec, view: &NodeView) -> Option<i64> {
        Some(if spec.vcpus <= view.numa_max_vcpus {
            50
        } else {
            0
        })
    }
}

/// Mild pressure to spread domain *count* (not just VCPUs) so small VMs
/// don't all pile onto one node.
pub struct SpreadDomainsRule;

impl PlacementRule for SpreadDomainsRule {
    fn name(&self) -> &'static str {
        "spread_domains"
    }
    fn score(&self, _spec: &VmSpec, view: &NodeView) -> Option<i64> {
        Some(-(view.domains as i64))
    }
}

/// An ordered set of placement rules; scores sum, any veto excludes the
/// node, ties break to the lowest node index.
pub struct PlacementPipeline {
    rules: Vec<Box<dyn PlacementRule>>,
}

impl PlacementPipeline {
    /// The standard cluster pipeline: quota veto, least-loaded, NUMA-fit
    /// bonus, domain-count spread.
    pub fn standard() -> Self {
        PlacementPipeline {
            rules: vec![
                Box::new(QuotaRule),
                Box::new(LeastLoadedRule),
                Box::new(NumaFitRule),
                Box::new(SpreadDomainsRule),
            ],
        }
    }

    /// Rule names in evaluation order.
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Choose a node for `spec` and commit its usage to the winning view.
    /// Returns `None` when every node is vetoed (cluster full).
    pub fn place(&self, spec: &VmSpec, views: &mut [NodeView]) -> Option<u32> {
        let mut best: Option<(i64, usize)> = None;
        for (i, view) in views.iter().enumerate() {
            let mut total = 0i64;
            let mut vetoed = false;
            for rule in &self.rules {
                match rule.score(spec, view) {
                    Some(sc) => total += sc,
                    None => {
                        vetoed = true;
                        break;
                    }
                }
            }
            if vetoed {
                continue;
            }
            // Strict `>` keeps the lowest node index on ties (views are
            // iterated in ascending node order).
            if best.is_none_or(|(b, _)| total > b) {
                best = Some((total, i));
            }
        }
        let (_, i) = best?;
        views[i].used_vcpus += spec.vcpus;
        views[i].used_mem += spec.mem_bytes;
        views[i].domains += 1;
        Some(views[i].node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(n: u32) -> Vec<NodeView> {
        (0..n).map(|i| NodeView::new(i, 40, 20, 64 << 30)).collect()
    }

    #[test]
    fn ties_break_to_lowest_node() {
        let p = PlacementPipeline::standard();
        let mut v = views(3);
        assert_eq!(p.place(&VmSpec::new(2, 4), &mut v), Some(0));
        // Node 0 is now more loaded; next placement prefers node 1.
        assert_eq!(p.place(&VmSpec::new(2, 4), &mut v), Some(1));
        assert_eq!(p.place(&VmSpec::new(2, 4), &mut v), Some(2));
    }

    #[test]
    fn quota_vetoes_full_nodes() {
        let p = PlacementPipeline::standard();
        let mut v = views(2);
        v[0].used_vcpus = 40;
        let got = p.place(&VmSpec::new(2, 4), &mut v).unwrap();
        assert_eq!(got, 1);
        v[1].used_vcpus = 40;
        assert_eq!(p.place(&VmSpec::new(2, 4), &mut v), None, "cluster full");
    }

    #[test]
    fn memory_quota_is_enforced() {
        let p = PlacementPipeline::standard();
        let mut v = views(2);
        v[0].used_mem = 63 << 30;
        v[1].used_mem = 0;
        assert_eq!(p.place(&VmSpec::new(1, 4), &mut v), Some(1));
    }

    #[test]
    fn numa_fit_beats_slightly_freer_node() {
        let p = PlacementPipeline::standard();
        // Node 0: fits NUMA-locally. Node 1: slightly freer but the VM
        // would span sockets (numa_max 2 < 4 vcpus).
        let mut v = vec![NodeView::new(0, 40, 20, 64 << 30), {
            let mut n = NodeView::new(1, 40, 2, 64 << 30);
            n.used_vcpus = 0;
            n
        }];
        assert_eq!(p.place(&VmSpec::new(4, 4), &mut v), Some(0));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let p = PlacementPipeline::standard();
            let mut v = views(4);
            (0..32)
                .map(|i| p.place(&VmSpec::new(1 + i % 3, 1), &mut v))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn standard_rule_order() {
        assert_eq!(
            PlacementPipeline::standard().rule_names(),
            ["quota", "least_loaded", "numa_fit", "spread_domains"]
        );
    }
}
