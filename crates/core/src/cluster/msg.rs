//! Wire messages of the cluster control protocol.
//!
//! Everything the controller and the node agents exchange travels as one
//! [`Msg`] over the deterministic [`MsgBus`](iorch_netsim::MsgBus); the
//! [`Msg::wire_len`] estimate is what the bus charges to the NIC model,
//! so control traffic contends with (and is delayed by) everything else
//! on the simulated network.
//!
//! Reliability is end-to-end, not in the bus: commands carry an
//! `(epoch, seq)` stamp and the target's boot `incarnation`, agents keep
//! a per-channel cursor and discard stale or duplicate deliveries, and
//! the controller re-issues timed-out commands under fresh sequence
//! numbers — the same idempotent-command scheme the per-machine policy
//! engine uses for guest commands, lifted to cluster scope.

use iorch_hypervisor::VmSpec;
use iorch_simcore::SimDuration;

/// Static capacity a node advertises at registration (and re-asserts in
/// every heartbeat, so a freshly restarted controller can rebuild its
/// membership without waiting for re-registrations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeCaps {
    /// VCPU capacity (unreserved cores × overcommit factor).
    pub total_vcpus: u32,
    /// Largest VCPU count that stays NUMA-local.
    pub numa_max_vcpus: u32,
    /// Guest-memory quota in bytes.
    pub mem_quota: u64,
}

/// One cluster control message.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Node → controller: join (or re-join after a reboot) under a fresh
    /// boot incarnation.
    Register {
        /// Sender's cluster node index.
        node: u32,
        /// Sender's boot incarnation.
        incarnation: u64,
        /// Sender's capacity.
        caps: NodeCaps,
    },
    /// Node → controller: lease renewal plus ground-truth owned set.
    Heartbeat {
        /// Sender's cluster node index.
        node: u32,
        /// Sender's boot incarnation.
        incarnation: u64,
        /// Sender's capacity (repeated so a recovered controller can
        /// rebuild membership from heartbeats alone).
        caps: NodeCaps,
        /// Logical domains the node is actually running, ascending.
        owned: Vec<u32>,
    },
    /// Node → controller: a command was applied.
    CmdAck {
        /// Acking node.
        node: u32,
        /// Epoch of the acked command.
        epoch: u64,
        /// Sequence number of the acked command.
        seq: u64,
    },
    /// Controller → node: membership granted/renewed for `ttl`.
    Lease {
        /// Target node.
        node: u32,
        /// Controller's current command epoch.
        epoch: u64,
        /// Lease duration from delivery.
        ttl: SimDuration,
    },
    /// Controller → node: run logical domain `ldom`.
    Start {
        /// Target node.
        node: u32,
        /// Target's boot incarnation when the command was issued; a
        /// rebooted agent discards commands aimed at its previous life.
        inc: u64,
        /// Command epoch.
        epoch: u64,
        /// Command sequence number.
        seq: u64,
        /// Logical domain to start.
        ldom: u32,
        /// Domain sizing.
        spec: VmSpec,
    },
    /// Controller → node: stop logical domain `ldom`.
    Stop {
        /// Target node.
        node: u32,
        /// Target's boot incarnation when the command was issued.
        inc: u64,
        /// Command epoch.
        epoch: u64,
        /// Command sequence number.
        seq: u64,
        /// Logical domain to stop.
        ldom: u32,
    },
}

impl Msg {
    /// Approximate wire size in bytes, charged to the NIC model.
    pub fn wire_len(&self) -> u64 {
        match self {
            Msg::Register { .. } => 64,
            Msg::Heartbeat { owned, .. } => 48 + 4 * owned.len() as u64,
            Msg::CmdAck { .. } => 32,
            Msg::Lease { .. } => 32,
            Msg::Start { .. } => 96,
            Msg::Stop { .. } => 48,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_grows_with_owned_set() {
        let caps = NodeCaps {
            total_vcpus: 40,
            numa_max_vcpus: 20,
            mem_quota: 64 << 30,
        };
        let empty = Msg::Heartbeat {
            node: 0,
            incarnation: 1,
            caps,
            owned: vec![],
        };
        let eight = Msg::Heartbeat {
            node: 0,
            incarnation: 1,
            caps,
            owned: (0..8).collect(),
        };
        assert_eq!(eight.wire_len() - empty.wire_len(), 32);
        assert!(
            Msg::Start {
                node: 0,
                inc: 1,
                epoch: 1,
                seq: 1,
                ldom: 1,
                spec: VmSpec::new(2, 4),
            }
            .wire_len()
                > Msg::CmdAck {
                    node: 0,
                    epoch: 1,
                    seq: 1
                }
                .wire_len()
        );
    }
}
