//! The monitoring module: samples device and I/O-core status for the
//! management module (paper §3: "the monitoring module collects and
//! processes system statistics, such as latency, throughput, performance
//! counters and access patterns").

use iorch_hypervisor::Machine;
use iorch_simcore::{SimDuration, SimTime};

/// One sample of host-side status.
#[derive(Clone, Debug)]
pub struct MonitorReport {
    /// When the sample was taken.
    pub at: SimTime,
    /// Device bandwidth over the monitoring window as a fraction of
    /// capacity (blktrace stand-in).
    pub bandwidth_fraction: f64,
    /// Below the paper's 1/10 idleness threshold?
    pub device_underutilized: bool,
    /// Host queue deep enough to call the device overcrowded?
    pub device_congested: bool,
    /// Host queue depth.
    pub queue_depth: usize,
    /// `(socket, L_i)` — average latency through each I/O core (§3.3).
    pub core_latencies: Vec<(usize, SimDuration)>,
    /// Machine CPU utilization so far.
    pub cpu_utilization: f64,
}

/// The monitoring module.
#[derive(Clone, Copy, Debug, Default)]
pub struct MonitoringModule {
    samples: u64,
}

impl MonitoringModule {
    /// New module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Samples taken so far.
    pub fn sample_count(&self) -> u64 {
        self.samples
    }

    /// Take a sample of the machine's status.
    pub fn sample(&mut self, m: &mut Machine, now: SimTime) -> MonitorReport {
        self.samples += 1;
        let bandwidth_fraction = m.storage.monitor_mut().bandwidth_fraction(now);
        let device_underutilized = m.storage.monitor_mut().is_underutilized(now);
        let device_congested = m.storage.is_congested();
        let queue_depth = m.storage.queue_depth();
        let core_latencies = m
            .iocores
            .iter()
            .map(|c| (c.socket(), c.avg_latency()))
            .collect();
        MonitorReport {
            at: now,
            bandwidth_fraction,
            device_underutilized,
            device_congested,
            queue_depth,
            core_latencies,
            cpu_utilization: m.utilization(now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iorch_hypervisor::{Cluster, IoPathMode, MachineConfig};

    #[test]
    fn idle_machine_reports_underutilized() {
        let mut cl = Cluster::new();
        let idx = cl.add_machine(MachineConfig::paper_testbed(
            1,
            IoPathMode::DedicatedCores { per_socket: true },
        ));
        let mut mon = MonitoringModule::new();
        let rep = mon.sample(cl.machine_mut(idx), SimTime::from_secs(1));
        assert!(rep.device_underutilized);
        assert!(!rep.device_congested);
        assert_eq!(rep.queue_depth, 0);
        assert_eq!(rep.core_latencies.len(), 2);
        assert_eq!(mon.sample_count(), 1);
        // Two spinning cores out of twelve.
        assert!(rep.cpu_utilization > 0.1 && rep.cpu_utilization < 0.2);
    }

    #[test]
    fn paravirt_machine_has_no_core_latencies() {
        let mut cl = Cluster::new();
        let idx = cl.add_machine(MachineConfig::paper_testbed(1, IoPathMode::Paravirt));
        let mut mon = MonitoringModule::new();
        let rep = mon.sample(cl.machine_mut(idx), SimTime::from_secs(1));
        assert!(rep.core_latencies.is_empty());
    }
}
