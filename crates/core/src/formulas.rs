//! The co-scheduling arithmetic of paper §3.3, as pure functions.
//!
//! Kept free of machine state so the weight distribution and share
//! computations can be unit- and property-tested directly.

/// Distribute a cross-socket VM's I/O process weight across its sockets in
/// **inverse proportion** to each socket's I/O-core latency `L_i`:
///
/// ```text
/// w_i = (ΣL / L_i) / Σ_j (ΣL / L_j)
/// ```
///
/// Zero/near-zero latencies are clamped so an idle core simply looks very
/// fast. The result sums to 1.
pub fn inverse_latency_weights(latencies_us: &[f64]) -> Vec<f64> {
    assert!(!latencies_us.is_empty());
    let clamped: Vec<f64> = latencies_us.iter().map(|&l| l.max(0.5)).collect();
    let sum_l: f64 = clamped.iter().sum();
    let raw: Vec<f64> = clamped.iter().map(|&l| sum_l / l).collect();
    let total: f64 = raw.iter().sum();
    raw.iter().map(|&r| r / total).collect()
}

/// Process weight of a VM on one socket: the sum of the process weights of
/// its VCPUs placed there (`W_SKT(VCPU^{VMi}_k)` in the paper).
pub fn socket_process_weight(vcpu_weights: &[f64], vcpu_sockets: &[usize], socket: usize) -> f64 {
    assert_eq!(vcpu_weights.len(), vcpu_sockets.len());
    vcpu_weights
        .iter()
        .zip(vcpu_sockets)
        .filter(|(_, &s)| s == socket)
        .map(|(w, _)| w)
        .sum()
}

/// I/O share of VM `i` on a socket:
///
/// ```text
/// S^{VMi}_{SKT} = W_SKT / Σ_l P_l · S^{VM}_i
/// ```
pub fn socket_io_share(socket_weight: f64, total_weight: f64, vm_share: f64) -> f64 {
    if total_weight <= 0.0 {
        return 0.0;
    }
    (socket_weight / total_weight) * vm_share
}

/// DRR quantum: `Q_i = BW_max · S^{VMi}_{SKT}` interpreted per polling
/// round of length `round`: the byte budget the VM may consume per visit.
/// (Algorithm 3's `BW_max` is a rate; a per-visit credit must be scaled by
/// the round time or one backlogged VM would monopolize the core for a
/// full second of bandwidth.)
pub fn drr_quantum(bw_max: u64, socket_share: f64, round: iorch_simcore::SimDuration) -> u64 {
    let budget = bw_max as f64 * socket_share.clamp(0.0, 1.0) * round.as_secs_f64();
    (budget as u64).max(4096)
}

/// Has the weight ratio between any pair of sockets changed by more than
/// `threshold` (0.5 = the paper's 50%) relative to the previous weights?
pub fn ratio_changed(prev: &[f64], next: &[f64], threshold: f64) -> bool {
    if prev.len() != next.len() || prev.is_empty() {
        return true;
    }
    for (a, b) in prev.iter().zip(next) {
        let base = a.max(1e-9);
        if ((b - a) / base).abs() > threshold {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_latency_equal_weights() {
        let w = inverse_latency_weights(&[100.0, 100.0]);
        assert!((w[0] - 0.5).abs() < 1e-9);
        assert!((w[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn slow_socket_gets_less() {
        // Socket 1 is 3x slower; paper formula gives it 1/4 of the weight.
        let w = inverse_latency_weights(&[100.0, 300.0]);
        assert!(w[0] > w[1]);
        assert!((w[0] - 0.75).abs() < 1e-9, "w0={}", w[0]);
        assert!((w[1] - 0.25).abs() < 1e-9, "w1={}", w[1]);
    }

    #[test]
    fn weights_sum_to_one() {
        for lats in [
            vec![1.0, 2.0, 3.0],
            vec![50.0],
            vec![0.0, 10.0], // zero clamps, no NaN
        ] {
            let w = inverse_latency_weights(&lats);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "lats={lats:?}");
            assert!(w.iter().all(|&x| x.is_finite() && x >= 0.0));
        }
    }

    #[test]
    fn process_weight_partition() {
        // 4 VCPUs: two on socket 0, two on socket 1, weights 1,2,3,4.
        let w = [1.0, 2.0, 3.0, 4.0];
        let s = [0, 0, 1, 1];
        let w0 = socket_process_weight(&w, &s, 0);
        let w1 = socket_process_weight(&w, &s, 1);
        assert_eq!(w0, 3.0);
        assert_eq!(w1, 7.0);
        // Shares: with a VM share of 0.5, the socket shares split 0.15/0.35.
        let total = 10.0;
        assert!((socket_io_share(w0, total, 0.5) - 0.15).abs() < 1e-9);
        assert!((socket_io_share(w1, total, 0.5) - 0.35).abs() < 1e-9);
    }

    #[test]
    fn shares_sum_to_vm_share() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let s = [0, 1, 0, 1];
        let total: f64 = w.iter().sum();
        let vm_share = 0.4;
        let sum: f64 = (0..2)
            .map(|sk| socket_io_share(socket_process_weight(&w, &s, sk), total, vm_share))
            .sum();
        assert!((sum - vm_share).abs() < 1e-9);
    }

    #[test]
    fn quantum_scales_with_bw_share_and_round() {
        use iorch_simcore::SimDuration;
        let sec = SimDuration::from_secs(1);
        let ms = SimDuration::from_millis(1);
        assert_eq!(drr_quantum(1_000_000, 0.5, sec), 500_000);
        assert_eq!(drr_quantum(1_000_000, 0.0, sec), 4096); // floor
        assert_eq!(drr_quantum(1_000_000, 2.0, sec), 1_000_000); // clamp
        assert_eq!(drr_quantum(1_000_000_000, 0.5, ms), 500_000);
    }

    #[test]
    fn ratio_change_detection() {
        assert!(!ratio_changed(&[0.5, 0.5], &[0.6, 0.4], 0.5));
        assert!(ratio_changed(&[0.5, 0.5], &[0.8, 0.2], 0.5));
        assert!(ratio_changed(&[0.5], &[0.5, 0.5], 0.5), "shape change");
        assert!(ratio_changed(&[], &[], 0.5), "empty is always stale");
    }

    #[test]
    fn zero_total_weight_share_is_zero() {
        assert_eq!(socket_io_share(0.0, 0.0, 1.0), 0.0);
    }
}
