//! The four systems under test, as one enum the bench harness sweeps.

use iorch_hypervisor::{Cluster, IoPathMode, MachineConfig, Sched};

use crate::planes::{FunctionSet, IOrchestraConfig};
use crate::policy::{PolicyEngine, PolicySet};

/// Which system a machine runs — the comparison axis of every figure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SystemKind {
    /// Stock Linux 3.5 + Xen 4.0 paravirtualization.
    Baseline,
    /// Static dedicated I/O core, equal shares, single-socket assumption
    /// [22, 29].
    Sdc,
    /// Disk-idleness-based flushing \[17\] on the paravirt path.
    Dif,
    /// The full IOrchestra prototype (all three functions).
    IOrchestra,
    /// IOrchestra with a subset of functions enabled (§5.3–§5.5 ablations).
    IOrchestraWith(FunctionSet),
}

impl SystemKind {
    /// The four headline systems, in the paper's plotting order.
    pub fn headline() -> [SystemKind; 4] {
        [
            SystemKind::Baseline,
            SystemKind::Sdc,
            SystemKind::Dif,
            SystemKind::IOrchestra,
        ]
    }

    /// Label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::Baseline => "Baseline",
            SystemKind::Sdc => "SDC",
            SystemKind::Dif => "DIF",
            SystemKind::IOrchestra => "IOrchestra",
            SystemKind::IOrchestraWith(f) => {
                if f.flush && !f.congestion && !f.cosched {
                    "IOrch(flush)"
                } else if f.congestion && !f.flush && !f.cosched {
                    "IOrch(cong)"
                } else if f.cosched && !f.flush && !f.congestion {
                    "IOrch(cosched)"
                } else {
                    "IOrch(subset)"
                }
            }
        }
    }

    /// I/O path this system uses.
    pub fn io_mode(&self) -> IoPathMode {
        match self {
            SystemKind::Baseline | SystemKind::Dif => IoPathMode::Paravirt,
            SystemKind::Sdc => IoPathMode::DedicatedCores { per_socket: false },
            SystemKind::IOrchestra => IoPathMode::DedicatedCores { per_socket: true },
            SystemKind::IOrchestraWith(f) => {
                if f.cosched {
                    IoPathMode::DedicatedCores { per_socket: true }
                } else {
                    // Single-function flush/congestion ablations run on the
                    // stock paravirt path so only that function differs
                    // from baseline.
                    IoPathMode::Paravirt
                }
            }
        }
    }

    /// Add a machine running this system to the cluster (installs the
    /// matching control plane).
    pub fn provision(&self, cl: &mut Cluster, s: &mut Sched, seed: u64) -> usize {
        let idx = cl.add_machine(MachineConfig::paper_testbed(seed, self.io_mode()));
        let set = match self {
            SystemKind::Baseline => PolicySet::baseline(),
            SystemKind::Sdc => PolicySet::sdc(),
            SystemKind::Dif => PolicySet::dif(),
            SystemKind::IOrchestra => PolicySet::iorchestra(IOrchestraConfig::new(seed)),
            SystemKind::IOrchestraWith(f) => {
                PolicySet::iorchestra(IOrchestraConfig::new(seed).with_functions(*f))
            }
        };
        let control: Box<dyn iorch_hypervisor::ControlPlane> = Box::new(PolicyEngine::new(set));
        cl.install_control(s, idx, control);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_modes() {
        assert_eq!(SystemKind::Baseline.label(), "Baseline");
        assert_eq!(SystemKind::Baseline.io_mode(), IoPathMode::Paravirt);
        assert_eq!(SystemKind::Dif.io_mode(), IoPathMode::Paravirt);
        assert_eq!(
            SystemKind::Sdc.io_mode(),
            IoPathMode::DedicatedCores { per_socket: false }
        );
        assert_eq!(
            SystemKind::IOrchestra.io_mode(),
            IoPathMode::DedicatedCores { per_socket: true }
        );
        assert_eq!(
            SystemKind::IOrchestraWith(FunctionSet::flush_only()).io_mode(),
            IoPathMode::Paravirt
        );
        assert_eq!(
            SystemKind::IOrchestraWith(FunctionSet::flush_only()).label(),
            "IOrch(flush)"
        );
        assert_eq!(
            SystemKind::IOrchestraWith(FunctionSet::cosched_only()).io_mode(),
            IoPathMode::DedicatedCores { per_socket: true }
        );
    }

    #[test]
    fn provisioning_installs_controls() {
        use iorch_simcore::Simulation;
        let mut sim = Simulation::new(Cluster::new());
        let (cl, s) = sim.parts_mut();
        for kind in SystemKind::headline() {
            let idx = kind.provision(cl, s, 42);
            let expect = match kind {
                SystemKind::Baseline => "baseline",
                SystemKind::Sdc => "sdc",
                SystemKind::Dif => "dif",
                _ => "iorchestra",
            };
            assert_eq!(cl.machine(idx).control_name(), expect);
        }
    }
}
