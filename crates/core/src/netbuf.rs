//! Collaborative network-buffer sizing — the paper's named future-work
//! extension (§7: "IOrchestra will be extended to additional system
//! components …, e.g., network buffer sizes, window sizes, packet
//! queues").
//!
//! Same architecture as Algorithms 1–3, applied to the virtual NIC's
//! transmit buffer:
//!
//! * the guest publishes its TX backlog and rejection count through the
//!   system store (`tx_backlog`, `tx_rejected`);
//! * the monitoring module watches link utilization and per-queue
//!   queueing delay;
//! * the management module resizes each guest's TX buffer: **grow** when
//!   the link has headroom and the guest keeps hitting the buffer limit
//!   (a falsely small buffer — the network twin of a falsely triggered
//!   congestion avoidance), **shrink** when queueing delay exceeds a
//!   target while the link is saturated (bufferbloat).
//!
//! The decision logic is pure ([`NetBufPolicy::decide`]) so it is
//! directly testable; the demo wiring lives in
//! `examples/netbuf_extension.rs`.

use iorch_hypervisor::{DomainId, XenStore};
use iorch_simcore::SimDuration;

/// Store key for a guest's published TX backlog in bytes.
pub fn tx_backlog_key(dom: DomainId) -> String {
    format!("{}/virt-net/tx_backlog", XenStore::domain_path(dom))
}

/// Store key for a guest's published full-buffer rejection count.
pub fn tx_rejected_key(dom: DomainId) -> String {
    format!("{}/virt-net/tx_rejected", XenStore::domain_path(dom))
}

/// Store key the management module writes the granted buffer size to.
pub fn tx_bufsize_key(dom: DomainId) -> String {
    format!("{}/virt-net/tx_buf_size", XenStore::domain_path(dom))
}

/// Tunables for the buffer-sizing policy.
#[derive(Clone, Copy, Debug)]
pub struct NetBufParams {
    /// Smallest granted buffer (one MTU-ish packet).
    pub min_bytes: u64,
    /// Largest granted buffer.
    pub max_bytes: u64,
    /// Link utilization below which growth is allowed.
    pub grow_below_util: f64,
    /// Queueing-delay target; above it (with a busy link) the buffer
    /// shrinks (CoDel-flavoured).
    pub delay_target: SimDuration,
    /// Multiplicative grow step.
    pub grow_factor: f64,
    /// Multiplicative shrink step.
    pub shrink_factor: f64,
}

impl Default for NetBufParams {
    fn default() -> Self {
        NetBufParams {
            min_bytes: 16 * 1024,
            max_bytes: 8 * 1024 * 1024,
            grow_below_util: 0.8,
            delay_target: SimDuration::from_millis(5),
            grow_factor: 2.0,
            shrink_factor: 0.5,
        }
    }
}

/// One guest's observed TX state, as published through the store.
#[derive(Clone, Copy, Debug)]
pub struct TxObservation {
    /// Current buffer capacity.
    pub capacity: u64,
    /// Queued bytes.
    pub backlog: u64,
    /// Rejections since the last decision (the "buffer too small" signal).
    pub rejected_delta: u64,
    /// Average queueing delay through the buffer.
    pub avg_delay: SimDuration,
}

/// What the management module decided for one guest.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxDecision {
    /// Leave the buffer alone.
    Keep,
    /// Resize to the given capacity.
    Resize(u64),
}

/// The pure decision logic.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetBufPolicy {
    grows: u64,
    shrinks: u64,
}

impl NetBufPolicy {
    /// New policy state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decisions made so far (grows, shrinks).
    pub fn stats(&self) -> (u64, u64) {
        (self.grows, self.shrinks)
    }

    /// Decide a guest's new buffer size from its observation and the
    /// host-side link utilization (which the guest cannot see — that is
    /// the semantic gap being bridged).
    pub fn decide(
        &mut self,
        p: &NetBufParams,
        obs: TxObservation,
        link_utilization: f64,
    ) -> TxDecision {
        // Bufferbloat: the link is busy and packets sit too long — a
        // bigger buffer cannot help, it only adds delay.
        if link_utilization >= p.grow_below_util && obs.avg_delay > p.delay_target {
            let new = ((obs.capacity as f64 * p.shrink_factor) as u64).max(p.min_bytes);
            if new < obs.capacity {
                self.shrinks += 1;
                return TxDecision::Resize(new);
            }
            return TxDecision::Keep;
        }
        // Falsely small buffer: the guest keeps bouncing off the limit
        // while the host knows the link has headroom.
        if obs.rejected_delta > 0 && link_utilization < p.grow_below_util {
            let new = ((obs.capacity as f64 * p.grow_factor) as u64).min(p.max_bytes);
            if new > obs.capacity {
                self.grows += 1;
                return TxDecision::Resize(new);
            }
        }
        TxDecision::Keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(capacity: u64, rejected: u64, delay_ms: u64) -> TxObservation {
        TxObservation {
            capacity,
            backlog: capacity / 2,
            rejected_delta: rejected,
            avg_delay: SimDuration::from_millis(delay_ms),
        }
    }

    #[test]
    fn grows_when_rejecting_with_idle_link() {
        let p = NetBufParams::default();
        let mut policy = NetBufPolicy::new();
        match policy.decide(&p, obs(64 << 10, 10, 0), 0.2) {
            TxDecision::Resize(new) => assert_eq!(new, 128 << 10),
            other => panic!("expected grow, got {other:?}"),
        }
        assert_eq!(policy.stats(), (1, 0));
    }

    #[test]
    fn never_grows_past_max() {
        let p = NetBufParams::default();
        let mut policy = NetBufPolicy::new();
        assert_eq!(
            policy.decide(&p, obs(p.max_bytes, 100, 0), 0.1),
            TxDecision::Keep
        );
    }

    #[test]
    fn shrinks_on_bufferbloat() {
        let p = NetBufParams::default();
        let mut policy = NetBufPolicy::new();
        match policy.decide(&p, obs(1 << 20, 0, 50), 0.95) {
            TxDecision::Resize(new) => assert_eq!(new, 512 << 10),
            other => panic!("expected shrink, got {other:?}"),
        }
        assert_eq!(policy.stats(), (0, 1));
    }

    #[test]
    fn never_shrinks_below_min() {
        let p = NetBufParams::default();
        let mut policy = NetBufPolicy::new();
        assert_eq!(
            policy.decide(&p, obs(p.min_bytes, 0, 50), 0.95),
            TxDecision::Keep
        );
    }

    #[test]
    fn keeps_when_healthy() {
        let p = NetBufParams::default();
        let mut policy = NetBufPolicy::new();
        // No rejections, low delay: nothing to do at any utilization.
        assert_eq!(
            policy.decide(&p, obs(256 << 10, 0, 1), 0.3),
            TxDecision::Keep
        );
        assert_eq!(
            policy.decide(&p, obs(256 << 10, 0, 1), 0.95),
            TxDecision::Keep
        );
        // Rejections but the link is already saturated: growing the buffer
        // would only add bloat.
        assert_eq!(
            policy.decide(&p, obs(256 << 10, 9, 1), 0.95),
            TxDecision::Keep
        );
        assert_eq!(policy.stats(), (0, 0));
    }

    #[test]
    fn store_keys_are_domain_scoped() {
        let d = DomainId(3);
        assert_eq!(tx_backlog_key(d), "/local/domain/3/virt-net/tx_backlog");
        assert_eq!(tx_bufsize_key(d), "/local/domain/3/virt-net/tx_buf_size");
        assert_eq!(tx_rejected_key(d), "/local/domain/3/virt-net/tx_rejected");
    }
}
