//! Slot-indexed (slab/SoA) per-domain plane state with dirty sets.
//!
//! The engine used to hold seven parallel `BTreeMap<DomainId, _>`s and
//! rescan every live domain each tick. [`PlaneSlab`] replaces them with
//! one [`DomSlot`] per *machine slot* ([`Machine::slot_of`]): a dense
//! index assigned at domain creation and recycled LIFO at destruction, so
//! every per-domain lookup is an array index and the slab's footprint is
//! bounded by the peak concurrent domain count.
//!
//! # Dirty sets
//!
//! Steady-state ticks must be O(changed), not O(domains). Each recurring
//! sweep is driven by a membership list plus a per-slot flag:
//!
//! * `congestion_attention` — domains whose congestion protocol may need
//!   repair (`reconcile_congestion` visits only these).
//! * `health_dirty` — domains whose health tuple may have moved
//!   (`publish_health` visits only these, unless the store's global
//!   denied total moved — then a full scan is legal and explicit).
//! * `flush_active` — domains with a `flush_now` command in flight
//!   (`expire_flush_deadlines` visits only these).
//! * `kernel_dirty` — domains whose guest kernel holds dirty pages
//!   (the per-tick `nr_dirty` republish visits only these).
//! * `store_dirty` — domains whose *store* `has_dirty_pages` flag is
//!   raised (Algorithm 1's argmax candidates, exposed to rules through
//!   [`PolicyCtx::dirty_domains`](super::PolicyCtx::dirty_domains)).
//!
//! The contract (DESIGN.md §13): marking may over-approximate — visiting
//! a quiescent domain is a no-op because every visit re-checks ground
//! truth (store values, slot state) before acting — but must never
//! under-approximate, so every marking site is an *engine-internal* write
//! or a reliably-delivered kernel signal, never a lossy XenBus watch
//! event alone. Sweeps sort their list before visiting, preserving the
//! DomainId-ascending action order the full scans had, which is what
//! keeps the refactor byte-identical.
//!
//! # Slot reuse
//!
//! Machine slots are recycled; [`DomainId`]s are not. Every slot access
//! verifies `slot.dom` against the asking id: a recycled slot whose
//! occupant changed is reset to boot state before use, so a new tenant
//! can never inherit its predecessor's quarantine/backoff/health state —
//! even when the plane was detached during the predecessor's destruction
//! and no `on_domain_destroyed` ever fired.

use iorch_hypervisor::{DomainId, Machine, DOM0};
use iorch_simcore::SimTime;

use crate::keys::DomainKeys;

/// Per-domain plane state, one per machine slot.
#[derive(Default)]
pub(crate) struct DomSlot {
    /// Occupying domain; slot state is only valid for this id.
    pub dom: Option<DomainId>,
    /// Interned store paths, built once per occupancy.
    pub keys: Option<DomainKeys>,
    /// When the outstanding `release_request` grant was issued.
    pub release_pending: Option<SimTime>,
    /// Ack deadline of the in-flight `flush_now` command.
    pub flush_in_progress: Option<SimTime>,
    /// Retry backoff expiry after flush timeouts.
    pub flush_backoff_until: Option<SimTime>,
    /// Consecutive unacked flushes (reset on ack).
    pub flush_fail_streak: u32,
    /// Cumulative flush timeouts (health counter).
    pub flush_timeouts: u64,
    /// Quarantined: Baseline behaviour until an operator clears it.
    pub quarantined: bool,
    /// Last health tuple published (timeouts, quarantined, denied).
    pub health_published: Option<(u64, bool, u64)>,
    /// O(1) membership mirror of the engine's wake FIFO.
    pub in_fifo: bool,
    /// Listed in the congestion-attention set.
    pub attention: bool,
    /// Listed in the health-dirty set.
    pub health_dirty: bool,
    /// Mirror of the guest kernel's has-dirty-pages edge (fed by the
    /// reliable `DirtyStatusChanged` signal, equal to `dirty_pages() > 0`
    /// whenever the plane observes the kernel).
    pub kernel_dirty: bool,
    /// Mirror of the store's `has_dirty_pages` key (the engine is that
    /// key's only writer after boot, so the mirror cannot drift).
    pub store_dirty: bool,
}

/// The engine's per-domain state: slots plus the dirty-set lists.
#[derive(Default)]
pub(crate) struct PlaneSlab {
    slots: Vec<DomSlot>,
    /// Congestion-attention set (may hold stale/duplicate ids; sweeps
    /// sort, dedup and re-check the slot flag).
    attention: Vec<DomainId>,
    /// Health-dirty set (same lazy hygiene as `attention`).
    health_dirty: Vec<DomainId>,
    /// Domains with a flush command in flight (superset; the sweep drops
    /// entries whose slot shows no in-flight command).
    flush_active: Vec<DomainId>,
    /// Domains whose kernel holds dirty pages (superset, same hygiene).
    kernel_dirty: Vec<DomainId>,
    /// Domains whose store `has_dirty_pages` is `"1"` — kept exactly
    /// (sorted, live, no stale entries) because rules iterate it every
    /// tick through `PolicyCtx::dirty_domains`.
    store_dirty: Vec<DomainId>,
    /// Reusable buffer for explicit full scans (recovery, denied sweeps).
    scratch: Vec<DomainId>,
}

impl PlaneSlab {
    /// Index of `dom`'s slot if it is live and initialized for `dom`.
    fn live_index(&self, m: &Machine, dom: DomainId) -> Option<usize> {
        let i = m.slot_of(dom)?;
        (self.slots.get(i)?.dom == Some(dom)).then_some(i)
    }

    /// Slot of a live, initialized domain.
    pub fn slot(&self, m: &Machine, dom: DomainId) -> Option<&DomSlot> {
        self.live_index(m, dom).map(|i| &self.slots[i])
    }

    /// Mutable slot of a live domain, initializing (or resetting a
    /// recycled slot) on first touch. `None` only for domains the machine
    /// no longer knows.
    pub fn slot_mut(&mut self, m: &Machine, dom: DomainId) -> Option<&mut DomSlot> {
        let i = self.ensure(m, dom)?;
        Some(&mut self.slots[i])
    }

    /// Ensure `dom`'s slot exists and belongs to it; returns the index.
    /// A fresh occupancy starts at boot state with interned keys, both
    /// dirty-page mirrors read from ground truth, and a pending health
    /// publication (a new tenant always announces itself).
    pub fn ensure(&mut self, m: &Machine, dom: DomainId) -> Option<usize> {
        let i = m.slot_of(dom)?;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, DomSlot::default);
        }
        if self.slots[i].dom != Some(dom) {
            let keys = DomainKeys::new(dom);
            let store_dirty = m
                .store
                .read_ref(DOM0, &keys.has_dirty_pages)
                .map(|v| v == "1")
                .unwrap_or(false);
            let kernel_dirty = m
                .domain(dom)
                .map(|d| d.kernel.dirty_pages() > 0)
                .unwrap_or(false);
            self.slots[i] = DomSlot {
                dom: Some(dom),
                keys: Some(keys),
                store_dirty,
                kernel_dirty,
                ..DomSlot::default()
            };
            if store_dirty {
                sorted_insert(&mut self.store_dirty, dom);
            }
            if kernel_dirty {
                self.kernel_dirty.push(dom);
            }
            self.slots[i].health_dirty = true;
            self.health_dirty.push(dom);
        }
        Some(i)
    }

    /// Mark a domain for the congestion-reconciliation sweep.
    pub fn mark_attention(&mut self, m: &Machine, dom: DomainId) {
        if let Some(s) = self.slot_mut(m, dom) {
            if !s.attention {
                s.attention = true;
                self.attention.push(dom);
            }
        }
    }

    /// Mark a domain for the health-publication sweep.
    pub fn mark_health(&mut self, m: &Machine, dom: DomainId) {
        if let Some(s) = self.slot_mut(m, dom) {
            if !s.health_dirty {
                s.health_dirty = true;
                self.health_dirty.push(dom);
            }
        }
    }

    /// Record a flush command in flight (deadline in the slot).
    pub fn mark_flush_active(&mut self, dom: DomainId) {
        self.flush_active.push(dom);
    }

    /// Update the kernel dirty-page mirror from a `DirtyStatusChanged`
    /// signal. Clearing leaves the list entry to be dropped lazily by the
    /// republish sweep.
    pub fn set_kernel_dirty(&mut self, m: &Machine, dom: DomainId, dirty: bool) {
        if let Some(s) = self.slot_mut(m, dom) {
            if dirty && !s.kernel_dirty {
                s.kernel_dirty = true;
                self.kernel_dirty.push(dom);
            } else if !dirty {
                s.kernel_dirty = false;
            }
        }
    }

    /// Update the store `has_dirty_pages` mirror. The exact (sorted,
    /// stale-free) list is what rules iterate per tick.
    pub fn set_store_dirty(&mut self, m: &Machine, dom: DomainId, dirty: bool) {
        if let Some(s) = self.slot_mut(m, dom) {
            if s.store_dirty != dirty {
                s.store_dirty = dirty;
                if dirty {
                    sorted_insert(&mut self.store_dirty, dom);
                } else if let Ok(p) = self.store_dirty.binary_search(&dom) {
                    self.store_dirty.remove(p);
                }
            }
        }
    }

    /// Domains whose store `has_dirty_pages` is raised, ascending.
    pub fn dirty_domains(&self) -> &[DomainId] {
        &self.store_dirty
    }

    /// Whether the congestion-attention set is empty (steady-state fast
    /// path for the reconcile sweep).
    pub fn attention_is_empty(&self) -> bool {
        self.attention.is_empty()
    }

    /// Take a sweep list for visiting: sorted ascending, deduped. The
    /// caller retains the entries it keeps and hands the list back via
    /// the matching `restore_*`.
    fn take_sorted(list: &mut Vec<DomainId>) -> Vec<DomainId> {
        let mut v = std::mem::take(list);
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Take the attention list for a reconcile sweep.
    pub fn take_attention(&mut self) -> Vec<DomainId> {
        Self::take_sorted(&mut self.attention)
    }

    /// Return the retained attention entries (appended after any marks
    /// made during the sweep; hygiene is restored on the next take).
    pub fn restore_attention(&mut self, kept: Vec<DomainId>) {
        restore(&mut self.attention, kept);
    }

    /// Take the health-dirty list for a publication sweep.
    pub fn take_health_dirty(&mut self) -> Vec<DomainId> {
        Self::take_sorted(&mut self.health_dirty)
    }

    /// Take the flush-active list for a deadline sweep.
    pub fn take_flush_active(&mut self) -> Vec<DomainId> {
        Self::take_sorted(&mut self.flush_active)
    }

    /// Return the retained flush-active entries.
    pub fn restore_flush_active(&mut self, kept: Vec<DomainId>) {
        restore(&mut self.flush_active, kept);
    }

    /// Take the kernel-dirty list for the republish sweep.
    pub fn take_kernel_dirty(&mut self) -> Vec<DomainId> {
        Self::take_sorted(&mut self.kernel_dirty)
    }

    /// Return the retained kernel-dirty entries.
    pub fn restore_kernel_dirty(&mut self, kept: Vec<DomainId>) {
        restore(&mut self.kernel_dirty, kept);
    }

    /// Take the scratch buffer for an explicit full scan (cleared).
    pub fn take_scratch(&mut self) -> Vec<DomainId> {
        let mut v = std::mem::take(&mut self.scratch);
        v.clear();
        v
    }

    /// Hand the scratch buffer back (capacity is kept).
    pub fn restore_scratch(&mut self, scratch: Vec<DomainId>) {
        self.scratch = scratch;
    }

    /// Clear the health-dirty set wholesale — legal right after a full
    /// health scan, which supersedes every pending entry.
    pub fn clear_health_dirty(&mut self) {
        for s in &mut self.slots {
            s.health_dirty = false;
        }
        self.health_dirty.clear();
    }

    /// Forget a domain: reset its slot and purge it from every list.
    pub fn remove(&mut self, dom: DomainId) {
        if let Some(s) = self.slots.iter_mut().find(|s| s.dom == Some(dom)) {
            *s = DomSlot::default();
        }
        for list in [
            &mut self.attention,
            &mut self.health_dirty,
            &mut self.flush_active,
            &mut self.kernel_dirty,
            &mut self.store_dirty,
        ] {
            list.retain(|&d| d != dom);
        }
    }

    /// Drop list entries for domains the machine no longer knows (or
    /// whose slot was recycled). Behaviour-neutral — sweeps skip such
    /// entries anyway — but keeps list sizes bounded after churn the
    /// plane never heard about.
    pub fn prune(&mut self, m: &Machine) {
        let slots = &self.slots;
        let live = |dom: DomainId| {
            m.slot_of(dom)
                .and_then(|i| slots.get(i))
                .is_some_and(|s| s.dom == Some(dom))
        };
        self.attention.retain(|&d| live(d));
        self.health_dirty.retain(|&d| live(d));
        self.flush_active.retain(|&d| live(d));
        self.kernel_dirty.retain(|&d| live(d));
        self.store_dirty.retain(|&d| live(d));
    }

    /// Reset to boot state (plane crash: process memory dies with dom0).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.attention.clear();
        self.health_dirty.clear();
        self.flush_active.clear();
        self.kernel_dirty.clear();
        self.store_dirty.clear();
    }

    /// Live quarantined domains, ascending (diagnostics).
    pub fn quarantined_domains(&self) -> Vec<DomainId> {
        let mut v: Vec<DomainId> = self
            .slots
            .iter()
            .filter(|s| s.quarantined)
            .filter_map(|s| s.dom)
            .collect();
        v.sort_unstable();
        v
    }

    /// Count of quarantined slots (recovery trace metadata).
    pub fn quarantined_count(&self) -> usize {
        self.slots.iter().filter(|s| s.quarantined).count()
    }

    /// Number of allocated slots (bounded by the machine's slot
    /// high-water mark; churn-test observability).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.slots.len()
    }
}

/// Insert keeping the list sorted ascending (no-op if present).
fn sorted_insert(list: &mut Vec<DomainId>, dom: DomainId) {
    if let Err(p) = list.binary_search(&dom) {
        list.insert(p, dom);
    }
}

/// Put retained sweep entries back, after any marks made mid-sweep.
fn restore(list: &mut Vec<DomainId>, mut kept: Vec<DomainId>) {
    if list.is_empty() {
        *list = kept;
    } else {
        kept.append(list);
        *list = kept;
    }
}
