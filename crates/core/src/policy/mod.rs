//! The programmable policy data plane: typed enforcement points, a staged
//! rule pipeline, and one engine that executes every control plane.
//!
//! Before this module, each control plane the paper compares (Baseline,
//! SDC, DIF, IOrchestra and its `FunctionSet` ablations) was a hand-fused
//! struct: Algorithms 1–3 hardcoded into one `on_tick`, and every new
//! policy a fork. Following PAIO's stage/rule split — enforcement
//! *mechanisms* live in the data plane, *policies* are data — the planes
//! are now expressed as [`PolicySet`]s: ordered [`Stage`]s of [`Rule`]s,
//! anchored at typed [`EnforcementPoint`]s, evaluated once per control
//! tick by the [`PolicyEngine`].
//!
//! # Division of labour
//!
//! * **Rules decide.** A [`Rule`] reads monitor and trace signals through
//!   a read-only [`PolicyCtx`] and emits [`Action`]s. Rules own their own
//!   decision state (rate baselines, last pushed weights, …) and are
//!   notified of lifecycle events (crash, recovery, domain destruction).
//! * **The engine enforces.** The [`PolicyEngine`] owns every mechanism
//!   the PR 5 robustness work introduced — epoch-stamped command issue,
//!   persisted recovery state, quarantine bookkeeping, ack deadlines,
//!   reconciliation sweeps, the staggered-wake FIFO — and applies each
//!   action through the same store writes and machine verbs the
//!   hand-fused planes used, in the same order.
//!
//! # Determinism contract
//!
//! The pipeline-expressed built-in sets reproduce the pre-redesign
//! planes' traces **byte-identically** (see `crates/core/src/legacy.rs`
//! and the `policy_equivalence` suite): same store write order, same
//! trace event order, same RNG draw order. Two design rules make this
//! hold, and custom policy sets inherit them:
//!
//! 1. Within a stage, every rule is evaluated against the same immutable
//!    [`PolicyCtx`] snapshot, and the collected actions are applied in
//!    emission order *after* evaluation. Built-in stages hold one rule
//!    each, so batching is observationally identical to inline execution.
//! 2. Rule-firing trace events ([`Decision::RuleFired`]) are opt-in per
//!    set ([`PolicySet::trace_rules`]); the built-in sets leave them off
//!    so their decision streams match the legacy planes byte for byte.
//!
//! [`Decision::RuleFired`]: iorch_simcore::trace::Decision::RuleFired
//!
//! # Quick start
//!
//! ```
//! use iorchestra::policy::{PolicyEngine, PolicySet};
//! use iorchestra::IOrchestraConfig;
//!
//! // The paper's full system, as a policy set:
//! let plane = PolicyEngine::new(PolicySet::iorchestra(IOrchestraConfig::new(7)));
//! assert_eq!(plane.set().name(), "iorchestra");
//!
//! // An ablation is configuration, not a fork:
//! use iorchestra::FunctionSet;
//! let cfg = IOrchestraConfig::new(7).with_functions(FunctionSet::flush_only());
//! let _flush_only = PolicyEngine::new(PolicySet::iorchestra(cfg));
//! ```
//!
//! See `examples/custom_policy.rs` for a user-defined rate-limit rule.

mod builtin;
mod engine;
mod slab;

pub use builtin::{
    AnomalyRule, CongestionAdjudicationRule, CoschedRule, DifBroadcastRule, FlushArgmaxRule,
};
pub use engine::PolicyEngine;

use iorch_hypervisor::{DomainId, Machine, StoreQuota};
use iorch_simcore::{SimDuration, SimTime};

use crate::keys::DomainKeys;
use crate::monitor::MonitorReport;
use crate::planes::{IOrchestraConfig, PlaneStats};

// --------------------------------------------------------------------
// Enforcement points
// --------------------------------------------------------------------

/// The decision sites on the I/O path where policy actions bind.
///
/// A [`Stage`] is anchored at one point. Stages are *evaluated* once per
/// control tick, in the order the points are listed here (then in
/// declaration order within a point); the point names where the resulting
/// actions take effect on the data path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EnforcementPoint {
    /// Guest queue admission: store-write/denied-rate anomaly budgets and
    /// per-domain store quotas ([`Action::Quarantine`], [`Action::Quota`]).
    QueueAdmission,
    /// Flush/release command issue over the store ([`Action::Flush`],
    /// [`Action::Release`]) — Algorithms 1 and 2's command half.
    CommandIssue,
    /// Frontend-ring push into the backend ([`Action::RateLimit`] binds
    /// on the ring-drain dispatch path).
    RingPush,
    /// DRR visit on a dedicated I/O core (per-socket quanta from
    /// [`Action::Priority`]).
    DrrVisit,
    /// Host device dispatch (route weights and blkio weights from
    /// [`Action::Priority`]) — Algorithm 3's enforcement half.
    DeviceDispatch,
}

impl EnforcementPoint {
    /// Tick evaluation order (see [`PolicyEngine`] docs / DESIGN.md §10):
    /// admission first, then command issue, then the data-path points.
    pub const TICK_ORDER: [EnforcementPoint; 5] = [
        EnforcementPoint::QueueAdmission,
        EnforcementPoint::CommandIssue,
        EnforcementPoint::RingPush,
        EnforcementPoint::DrrVisit,
        EnforcementPoint::DeviceDispatch,
    ];
}

/// Guest-side monitoring feeds a stage can request. Declaring a feed
/// makes the engine publish the corresponding guest state into the store
/// (collaborative sets only), exactly as the legacy plane did.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Feed {
    /// `has_dirty_pages` / `nr_dirty` under each domain's virt-dev subtree
    /// (Algorithm 1's input), republished on change each tick.
    DirtyPages,
}

// --------------------------------------------------------------------
// Actions
// --------------------------------------------------------------------

/// How a flush command reaches the guest.
#[derive(Clone, PartialEq, Debug)]
pub enum FlushMode {
    /// Store-choreographed: epoch-stamped `flush_now` with a persisted
    /// in-flight record, ack deadline, retry backoff and quarantine on
    /// repeated timeouts (Algorithm 1's command path).
    Tracked {
        /// The chosen domain's dirty-page count (trace metadata).
        nr_dirty: u64,
        /// All eligible `(dom, nr_dirty)` pairs (trace metadata; built
        /// only while tracing is enabled).
        candidates: Vec<(u32, u64)>,
    },
    /// Direct hypercall-style remote sync with no store choreography, no
    /// epoch and no ack tracking (DIF's broadcast, or a quick custom
    /// governor).
    Direct,
}

/// What a [`Rule`] can ask the engine to enforce. Each action maps onto
/// one mechanism (store writes + machine verbs) owned by the engine.
#[derive(Clone, PartialEq, Debug)]
pub enum Action {
    /// Cap a domain's backend dispatch at `bytes_per_sec`
    /// (`None` lifts the cap). Binds at [`EnforcementPoint::RingPush`].
    RateLimit {
        /// Target domain.
        dom: DomainId,
        /// Cap in bytes/sec; `None` (or 0) removes the limiter.
        bytes_per_sec: Option<u64>,
    },
    /// Program a domain's I/O priority: per-socket route weights, DRR
    /// quanta and a blkio weight (Algorithm 3's outputs).
    Priority {
        /// Target domain.
        dom: DomainId,
        /// Per-socket route weights (normalized; one slot per socket).
        route: Vec<f64>,
        /// `(socket, quantum_bytes)` pairs for the spanned sockets.
        quanta: Vec<(usize, u64)>,
        /// cgroup blkio weight at the device (10–1000).
        blkio_weight: u32,
    },
    /// Override a domain's store quota (`None` restores the base quota).
    Quota {
        /// Target domain.
        dom: DomainId,
        /// Replacement quota, or `None` to clear the override.
        quota: Option<StoreQuota>,
    },
    /// Tell a guest to write back its dirty pages.
    Flush {
        /// Target domain.
        dom: DomainId,
        /// Tracked (store-choreographed) or direct.
        mode: FlushMode,
    },
    /// Grant a congestion release under a fresh epoch (Algorithm 2's
    /// `release_request`). Collaborative sets only.
    Release {
        /// Target domain.
        dom: DomainId,
    },
    /// Quarantine a domain: Baseline behaviour, keys ignored, persisted
    /// until an operator clears it.
    Quarantine {
        /// Target domain.
        dom: DomainId,
        /// Which budget or policy tripped (trace label).
        reason: &'static str,
    },
}

impl Action {
    /// The domain this action targets.
    pub fn domain(&self) -> DomainId {
        match self {
            Action::RateLimit { dom, .. }
            | Action::Priority { dom, .. }
            | Action::Quota { dom, .. }
            | Action::Flush { dom, .. }
            | Action::Release { dom }
            | Action::Quarantine { dom, .. } => *dom,
        }
    }

    /// Short discriminant label used by rule-firing trace events.
    pub fn label(&self) -> &'static str {
        match self {
            Action::RateLimit { .. } => "rate_limit",
            Action::Priority { .. } => "priority",
            Action::Quota { .. } => "quota",
            Action::Flush { .. } => "flush",
            Action::Release { .. } => "release",
            Action::Quarantine { .. } => "quarantine",
        }
    }
}

/// Answer to a congestion adjudication (Algorithm 2's branch).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Host really congested: the guest stays asleep and joins the FIFO
    /// woken on relief.
    Confirm,
    /// False trigger: grant a release under a fresh epoch.
    Release,
}

// --------------------------------------------------------------------
// PolicyCtx
// --------------------------------------------------------------------

/// Read-only view of the monitor, machine and engine state a [`Rule`]
/// decides on. Built fresh for each evaluation; rules cannot mutate
/// anything through it — all effects go through emitted [`Action`]s.
pub struct PolicyCtx<'a> {
    pub(crate) now: SimTime,
    pub(crate) report: Option<&'a MonitorReport>,
    pub(crate) machine: &'a Machine,
    pub(crate) cfg: &'a IOrchestraConfig,
    pub(crate) slab: &'a slab::PlaneSlab,
    pub(crate) congested_fifo: &'a [DomainId],
    pub(crate) stats: &'a PlaneStats,
}

impl<'a> PolicyCtx<'a> {
    /// Current sim time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This tick's monitor report (`None` outside tick evaluation, e.g.
    /// during recovery adjudication).
    pub fn report(&self) -> Option<&'a MonitorReport> {
        self.report
    }

    /// The machine: store (reads only — `read_ref` takes `&self`),
    /// storage subsystem, domains, topology.
    pub fn machine(&self) -> &'a Machine {
        self.machine
    }

    /// The engine's tunables.
    pub fn cfg(&self) -> &'a IOrchestraConfig {
        self.cfg
    }

    /// Whether a domain is quarantined (rules should skip it).
    pub fn is_quarantined(&self, dom: DomainId) -> bool {
        self.slab
            .slot(self.machine, dom)
            .is_some_and(|s| s.quarantined)
    }

    /// Whether a `flush_now` command is in flight for this domain.
    pub fn flush_in_flight(&self, dom: DomainId) -> bool {
        self.slab
            .slot(self.machine, dom)
            .is_some_and(|s| s.flush_in_progress.is_some())
    }

    /// Whether the domain is in post-timeout flush retry backoff.
    pub fn in_flush_backoff(&self, dom: DomainId) -> bool {
        self.slab
            .slot(self.machine, dom)
            .and_then(|s| s.flush_backoff_until)
            .is_some_and(|t| self.now < t)
    }

    /// Interned store paths for a domain (present for every live domain
    /// on a collaborative set).
    pub fn keys(&self, dom: DomainId) -> Option<&'a DomainKeys> {
        self.slab.slot(self.machine, dom)?.keys.as_ref()
    }

    /// Domains whose store-published `has_dirty_pages` flag is raised,
    /// ascending by id — the differential signal feeding Algorithm 1's
    /// argmax, maintained by the engine at its own `has_dirty_pages`
    /// publish site. Empty on non-collaborative sets.
    pub fn dirty_domains(&self) -> &'a [DomainId] {
        self.slab.dirty_domains()
    }

    /// Domains whose congestion was confirmed, in FIFO wake order.
    pub fn congested_fifo(&self) -> &'a [DomainId] {
        self.congested_fifo
    }

    /// The engine's activation counters so far.
    pub fn stats(&self) -> &'a PlaneStats {
        self.stats
    }
}

// --------------------------------------------------------------------
// Rule
// --------------------------------------------------------------------

/// One policy decision unit. Implementations own their decision state and
/// emit [`Action`]s; the engine owns enforcement.
///
/// All methods except [`name`](Rule::name) have no-op defaults, so a
/// minimal rule only implements `name` and [`on_tick`](Rule::on_tick).
pub trait Rule: 'static {
    /// Stable rule name (trace label, diagnostics).
    fn name(&self) -> &'static str;

    /// Per-tick evaluation: read `ctx`, push actions onto `out`. Actions
    /// are applied in emission order after the stage finishes evaluating.
    fn on_tick(&mut self, ctx: &PolicyCtx<'_>, out: &mut Vec<Action>) {
        let _ = (ctx, out);
    }

    /// Whether this rule answers congestion adjudications. A set
    /// containing an adjudicating rule (on a collaborative engine) runs
    /// the full Algorithm 2 handshake: `congested` key watches, per-tick
    /// reconciliation, staggered FIFO wake on relief.
    fn adjudicates(&self) -> bool {
        false
    }

    /// Adjudicate one raised `congested` flag. Return `None` to pass to
    /// the next rule; the engine falls back to [`Verdict::Confirm`] (the
    /// guest sleeps, as under Baseline) if no rule answers.
    fn adjudicate(&mut self, ctx: &PolicyCtx<'_>, dom: DomainId) -> Option<Verdict> {
        let _ = (ctx, dom);
        None
    }

    /// A domain was destroyed: drop any per-domain state.
    fn on_domain_destroyed(&mut self, dom: DomainId) {
        let _ = dom;
    }

    /// An operator cleared a quarantine: forgive the domain's history.
    fn on_quarantine_cleared(&mut self, dom: DomainId) {
        let _ = dom;
    }

    /// The control plane crashed: reset decision state to boot values.
    fn on_crash(&mut self) {}

    /// The control plane recovered: re-seed decision state from current
    /// machine/store observables (never from event history).
    fn on_recover(&mut self, ctx: &PolicyCtx<'_>) {
        let _ = ctx;
    }
}

// --------------------------------------------------------------------
// Stage / PolicySet
// --------------------------------------------------------------------

/// An ordered group of rules anchored at one enforcement point.
pub struct Stage {
    pub(crate) name: &'static str,
    pub(crate) point: EnforcementPoint,
    pub(crate) feeds: Vec<Feed>,
    pub(crate) rules: Vec<Box<dyn Rule>>,
}

impl Stage {
    /// New empty stage at `point`.
    pub fn new(name: &'static str, point: EnforcementPoint) -> Self {
        Stage {
            name,
            point,
            feeds: Vec::new(),
            rules: Vec::new(),
        }
    }

    /// Request a guest-side monitoring feed.
    pub fn feed(mut self, f: Feed) -> Self {
        if !self.feeds.contains(&f) {
            self.feeds.push(f);
        }
        self
    }

    /// Append a rule (evaluated in append order).
    pub fn rule(mut self, r: impl Rule) -> Self {
        self.rules.push(Box::new(r));
        self
    }

    /// Stage name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Anchoring enforcement point.
    pub fn point(&self) -> EnforcementPoint {
        self.point
    }
}

/// A complete policy: a name, the engine tunables, and the staged rule
/// pipeline. Built-in constructors re-express the paper's planes; custom
/// sets compose freely via [`PolicySet::custom`].
pub struct PolicySet {
    pub(crate) name: &'static str,
    pub(crate) cfg: IOrchestraConfig,
    pub(crate) tick: Option<SimDuration>,
    pub(crate) collaborative: bool,
    pub(crate) trace_rules: bool,
    pub(crate) stages: Vec<Stage>,
}

impl PolicySet {
    /// Start a custom set: no stages, non-collaborative, ticking at
    /// `cfg.tick`. Chain [`stage`](PolicySet::stage),
    /// [`collaborative`](PolicySet::collaborative), etc. Note the engine
    /// derives its behaviour from the *stages* (and the collaborative
    /// flag), not from `cfg.functions` — that field only drives the
    /// built-in [`PolicySet::iorchestra`] constructor.
    pub fn custom(name: &'static str, cfg: IOrchestraConfig) -> Self {
        PolicySet {
            name,
            tick: Some(cfg.tick),
            collaborative: false,
            trace_rules: false,
            stages: Vec::new(),
            cfg,
        }
    }

    /// Enable/disable store choreography: key registration at domain
    /// creation, watches, health publication, quarantine persistence and
    /// crash/recovery handling. Non-collaborative sets never touch the
    /// store (like Baseline and DIF).
    pub fn collaborative(mut self, on: bool) -> Self {
        self.collaborative = on;
        self
    }

    /// Set (or with `None`, disable) the control tick.
    pub fn tick(mut self, t: Option<SimDuration>) -> Self {
        self.tick = t;
        self
    }

    /// Emit a [`RuleFired`](iorch_simcore::trace::Decision::RuleFired)
    /// decision per applied action. Off by default — and off for every
    /// built-in set, preserving byte-identical legacy traces.
    pub fn trace_rules(mut self, on: bool) -> Self {
        self.trace_rules = on;
        self
    }

    /// Append a stage (stages at the same point run in append order).
    pub fn stage(mut self, st: Stage) -> Self {
        self.stages.push(st);
        self
    }

    /// Set name (the plane name reported to the trace layer).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Engine tunables.
    pub fn config(&self) -> &IOrchestraConfig {
        &self.cfg
    }

    /// Control tick, if any.
    pub fn tick_period(&self) -> Option<SimDuration> {
        self.tick
    }

    /// Whether this set uses store choreography.
    pub fn is_collaborative(&self) -> bool {
        self.collaborative
    }

    /// The staged pipeline.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }
}
