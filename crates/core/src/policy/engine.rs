//! The policy engine: one [`ControlPlane`] that executes any
//! [`PolicySet`].
//!
//! The engine owns every enforcement *mechanism* — epoch-stamped command
//! issue, persisted recovery state, quarantine bookkeeping, flush ack
//! deadlines, congestion reconciliation, the staggered wake FIFO, health
//! publication — while the set's [`Rule`]s own the *decisions*. Three
//! flags derived from the set shape the engine's behaviour:
//!
//! * `collaborative` ([`PolicySet::collaborative`]): store choreography —
//!   guest-key registration and watches at domain creation, health
//!   publication, persisted quarantine/epoch state, crash/recovery
//!   handling. A non-collaborative engine (Baseline, SDC, DIF) never
//!   touches the store and is crash-oblivious, exactly like the legacy
//!   structs whose crash handlers were no-ops.
//! * `feeds_dirty`: some stage requested [`Feed::DirtyPages`], so the
//!   engine publishes guest dirty-page state into the store (signal
//!   handler + per-tick republish).
//! * `adjudicates`: some rule [`adjudicates`](Rule::adjudicates), so the
//!   engine runs the full Algorithm 2 machinery — `congested`-key
//!   watches, per-tick reconciliation, FIFO relief wake.
//!
//! # Steady-state cost
//!
//! Per-domain state lives in a slot-indexed [`PlaneSlab`] (DESIGN.md
//! §13), and every recurring sweep is driven by a dirty set: the
//! reconciliation, flush-deadline, dirty-page-republish and health
//! sweeps visit only domains marked by store watches, kernel signals or
//! fault paths since the previous tick. A quiescent domain costs a
//! control tick nothing, so steady-state tick cost is O(changed) rather
//! than O(live) — the `scale` experiment gates this at 1024 domains.
//! Recovery and the denied-counter health path are the two sweeps
//! allowed to request an explicit full scan.

use std::rc::Rc;

use iorch_guestos::KernelSignal;
use iorch_hypervisor::{
    AsStorePath, Cluster, ControlPlane, DomainId, Machine, Sched, StorePath, WatchEvent, DOM0,
};
use iorch_simcore::trace::{Decision, TraceEventKind};
use iorch_simcore::{trace_event, SimDuration, SimRng, SimTime};

use crate::keys::{self, val, DomainKeys};
use crate::monitor::{MonitorReport, MonitoringModule};
use crate::planes::PlaneStats;

use super::slab::PlaneSlab;
use super::{Action, EnforcementPoint, Feed, FlushMode, PolicyCtx, PolicySet, Rule, Verdict};

/// Executes a [`PolicySet`]: evaluates its staged rules once per control
/// tick and applies the resulting [`Action`]s through the engine-owned
/// enforcement mechanisms. See the [module docs](super) for the
/// determinism contract.
pub struct PolicyEngine {
    set: PolicySet,
    /// Derived: the set uses store choreography.
    collaborative: bool,
    /// Derived: some stage requested [`Feed::DirtyPages`].
    feeds_dirty: bool,
    /// Derived: some rule adjudicates congestion queries.
    adjudicates: bool,
    rng: SimRng,
    monitor: MonitoringModule,
    /// Slot-indexed per-domain state plus the dirty sets driving every
    /// recurring sweep (release/flush/backoff/quarantine/health state
    /// that used to live in seven parallel `BTreeMap`s).
    slab: PlaneSlab,
    /// VMs whose congestion was confirmed (host really congested), woken
    /// FIFO when the host is relieved. Kept as a `Vec` because wake order
    /// is FIFO; membership tests go through the slot's `in_fifo` bit.
    congested_fifo: Vec<DomainId>,
    manager_watch_registered: bool,
    /// `Machine::domain_generation` at the last slab resync; a tick whose
    /// generation matches skips the domain sweep entirely.
    synced_gen: Option<u64>,
    /// Store-wide denied total at the last health publication. While it
    /// holds still, no domain's denied counter moved and the health sweep
    /// can stay on the dirty set; when it moves, a full scan is legal.
    denied_total_seen: u64,
    /// Command generation, persisted under [`keys::STATE_EPOCH`]. Every
    /// `flush_now`/`release_request` command carries a fresh epoch; a
    /// restarted plane resumes at `persisted + 1`, so guest drivers can
    /// discard commands stamped by a dead incarnation or duplicated by an
    /// unreliable bus.
    epoch: u64,
    stats: PlaneStats,
}

impl PolicyEngine {
    /// Build an engine for a policy set. Accepts an
    /// [`IOrchestraConfig`](crate::IOrchestraConfig) directly (via
    /// `From`), which yields [`PolicySet::iorchestra`] — so the historic
    /// `IOrchestraPlane::new(cfg)` spelling still works.
    pub fn new(set: impl Into<PolicySet>) -> Self {
        let set = set.into();
        let collaborative = set.collaborative;
        let feeds_dirty = collaborative
            && set
                .stages
                .iter()
                .any(|st| st.feeds.contains(&Feed::DirtyPages));
        let adjudicates = collaborative
            && set
                .stages
                .iter()
                .any(|st| st.rules.iter().any(|r| r.adjudicates()));
        PolicyEngine {
            rng: SimRng::new(set.cfg.seed ^ 0x10c),
            monitor: MonitoringModule::new(),
            collaborative,
            feeds_dirty,
            adjudicates,
            slab: PlaneSlab::default(),
            congested_fifo: Vec::new(),
            manager_watch_registered: false,
            synced_gen: None,
            denied_total_seen: 0,
            epoch: 0,
            stats: PlaneStats::default(),
            set,
        }
    }

    /// The policy set this engine executes.
    pub fn set(&self) -> &PolicySet {
        &self.set
    }

    /// Counters.
    pub fn stats(&self) -> PlaneStats {
        self.stats
    }

    /// Currently quarantined domains.
    pub fn quarantined_domains(&self) -> Vec<DomainId> {
        self.slab.quarantined_domains()
    }

    /// Read an unsigned counter from the plane's persisted state subtree
    /// (missing or unparsable reads as 0 — the subtree grows lazily).
    fn read_state_u64<P: AsStorePath>(m: &Machine, path: P) -> u64 {
        m.store
            .read_ref(DOM0, path)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    }

    /// Bump the command generation and persist it, so a restarted plane
    /// (`epoch = persisted + 1`) always outranks in-flight commands.
    fn next_epoch(&mut self, m: &mut Machine) -> u64 {
        self.epoch += 1;
        let _ = m
            .store
            .write(DOM0, keys::STATE_EPOCH, val::uint(self.epoch));
        self.epoch
    }

    fn guest_write(m: &mut Machine, dom: DomainId, path: &StorePath, v: Rc<str>) {
        // The guest driver writes through its own credentials — permission
        // violations would surface here.
        let _ = m.store.write(dom, path, v);
    }

    /// Guest-side monitoring republish: suppressed entirely when the store
    /// already holds the value, so an idle domain puts zero traffic on the
    /// XenBus channel per tick. Only used for keys no policy callback
    /// consumes (the control keys always publish).
    fn guest_publish(m: &mut Machine, dom: DomainId, path: &StorePath, v: Rc<str>) {
        let _ = m.store.write_if_changed(dom, path, v);
    }

    /// Borrow the interned keys for `dom`, falling back to a transient
    /// set held in `tmp` when the domain has no live slot. The fallback
    /// is the cold path for stale bus deliveries addressed to destroyed
    /// domains, whose store sequences must still match the legacy plane.
    fn keys_or<'k>(
        slab: &'k mut PlaneSlab,
        m: &Machine,
        dom: DomainId,
        tmp: &'k mut Option<DomainKeys>,
    ) -> &'k mut DomainKeys {
        slab.ensure(m, dom);
        match slab.slot_mut(m, dom).and_then(|s| s.keys.as_mut()) {
            Some(k) => k,
            None => tmp.insert(DomainKeys::new(dom)),
        }
    }

    /// Whether a domain is quarantined (slot bit; unknown domains are
    /// not).
    fn is_quarantined(&self, m: &Machine, dom: DomainId) -> bool {
        self.slab.slot(m, dom).is_some_and(|s| s.quarantined)
    }

    /// Notify every rule in the set (lifecycle fan-out).
    fn each_rule(set: &mut PolicySet, mut f: impl FnMut(&mut dyn Rule)) {
        for st in &mut set.stages {
            for r in &mut st.rules {
                f(r.as_mut());
            }
        }
    }

    /// Quarantine a domain: drop it from every collaborative queue and
    /// revert it to Baseline behaviour (graceful degradation) until an
    /// operator clears it. Persisted, so a dom0 restart cannot
    /// un-quarantine an anomalous guest.
    fn quarantine(&mut self, m: &mut Machine, dom: DomainId, now: SimTime, reason: &'static str) {
        let newly = match self.slab.slot_mut(m, dom) {
            Some(slot) if !slot.quarantined => {
                slot.quarantined = true;
                slot.release_pending = None;
                slot.flush_in_progress = None;
                slot.flush_backoff_until = None;
                slot.in_fifo = false;
                slot.attention = false;
                true
            }
            _ => false,
        };
        if !newly {
            return;
        }
        self.stats.quarantines += 1;
        self.congested_fifo.retain(|&d| d != dom);
        self.slab.mark_health(m, dom);
        if self.collaborative {
            let mut tmp = None;
            let k = Self::keys_or(&mut self.slab, m, dom, &mut tmp);
            let _ = m
                .store
                .write_if_changed(DOM0, &k.state_quarantined, val::one());
            // The cancelled in-flight flush must not be resurrected by
            // a later recovery scan.
            let _ = m
                .store
                .write_if_changed(DOM0, &k.state_flush_epoch, val::zero());
        }
        trace_event!(
            now,
            TraceEventKind::Decision(Decision::Quarantine { dom: dom.0, reason })
        );
    }

    /// Operator clear (a dom0 write of `"1"` to
    /// `/iorchestra/control/<id>/clear`): forgive history and restore
    /// collaboration. A strict no-op for a domain that is not quarantined
    /// — no rule notification, no store writes, no trace.
    fn clear_quarantine(&mut self, m: &mut Machine, dom: DomainId, now: SimTime) {
        match self.slab.slot_mut(m, dom) {
            Some(slot) if slot.quarantined => {
                slot.quarantined = false;
                slot.flush_fail_streak = 0;
                slot.flush_backoff_until = None;
            }
            _ => return,
        }
        trace_event!(
            now,
            TraceEventKind::Decision(Decision::QuarantineCleared { dom: dom.0 })
        );
        Self::each_rule(&mut self.set, |r| r.on_quarantine_cleared(dom));
        self.slab.mark_health(m, dom);
        if self.adjudicates {
            // A `congested` flag raised while quarantined was ignored; the
            // reconciliation sweep must look again now.
            self.slab.mark_attention(m, dom);
        }
        if self.collaborative {
            let mut tmp = None;
            let k = Self::keys_or(&mut self.slab, m, dom, &mut tmp);
            let _ = m
                .store
                .write_if_changed(DOM0, &k.state_quarantined, val::zero());
            let _ = m
                .store
                .write_if_changed(DOM0, &k.state_fail_streak, val::zero());
        }
    }

    /// Evaluate every stage anchored at `point` against one immutable
    /// context snapshot, then apply the collected actions in emission
    /// order. Batch-apply is the determinism keystone: rules cannot
    /// observe each other's half-applied effects within a stage.
    fn eval_point(
        &mut self,
        m: &mut Machine,
        s: &mut Sched,
        now: SimTime,
        report: Option<&MonitorReport>,
        point: EnforcementPoint,
    ) {
        let mut fired: Vec<(&'static str, &'static str, Action)> = Vec::new();
        {
            let PolicyEngine {
                set,
                slab,
                congested_fifo,
                stats,
                ..
            } = self;
            let PolicySet { cfg, stages, .. } = set;
            let ctx = PolicyCtx {
                now,
                report,
                machine: &*m,
                cfg: &*cfg,
                slab: &*slab,
                congested_fifo: &congested_fifo[..],
                stats: &*stats,
            };
            let mut buf = Vec::new();
            for st in stages.iter_mut().filter(|st| st.point == point) {
                for r in st.rules.iter_mut() {
                    buf.clear();
                    r.on_tick(&ctx, &mut buf);
                    for a in buf.drain(..) {
                        fired.push((st.name, r.name(), a));
                    }
                }
            }
        }
        let trace_rules = self.set.trace_rules;
        for (stage, rule, action) in fired {
            if trace_rules {
                trace_event!(
                    now,
                    TraceEventKind::Decision(Decision::RuleFired {
                        stage,
                        rule,
                        action: action.label(),
                        dom: action.domain().0,
                    })
                );
            }
            self.apply_action(m, s, now, action);
        }
    }

    /// Enforce one action. Each arm replays the exact store-write /
    /// machine-verb sequence the legacy plane used for the corresponding
    /// inline decision.
    fn apply_action(&mut self, m: &mut Machine, s: &mut Sched, now: SimTime, action: Action) {
        match action {
            Action::RateLimit { dom, bytes_per_sec } => {
                m.cp_set_rate_limit(dom, bytes_per_sec);
            }
            Action::Priority {
                dom,
                route,
                quanta,
                blkio_weight,
            } => {
                self.stats.weight_pushes += 1;
                trace_event!(
                    now,
                    TraceEventKind::Decision(Decision::WeightPush {
                        dom: dom.0,
                        weights: route.clone(),
                    })
                );
                // Publish to the store (the guests' registered callbacks
                // pick these up; for the simulated guests the machine
                // applies them directly).
                if self.collaborative {
                    let mut tmp = None;
                    let k = Self::keys_or(&mut self.slab, m, dom, &mut tmp);
                    for (sk, w) in route.iter().enumerate() {
                        let _ = m
                            .store
                            .write(DOM0, k.socket_weight(sk), format!("{:.4}", w));
                    }
                }
                m.cp_set_route_weights(dom, route);
                for (sk, q) in quanta {
                    m.cp_set_quantum(sk, dom, q);
                }
                m.cp_set_blkio_weight(dom, blkio_weight);
            }
            Action::Quota { dom, quota } => {
                m.store.set_domain_quota(dom, quota);
            }
            Action::Flush {
                dom,
                mode: FlushMode::Direct,
            } => {
                m.cp_remote_sync(s, dom);
            }
            Action::Flush {
                dom,
                mode:
                    FlushMode::Tracked {
                        nr_dirty,
                        candidates,
                    },
            } => {
                // Tracked choreography needs the store; a
                // non-collaborative set degrades to a direct sync.
                if !self.collaborative {
                    m.cp_remote_sync(s, dom);
                    return;
                }
                // A rule that raced the quarantine/ack bookkeeping within
                // this tick loses; built-in rules pre-filter via ctx, so
                // this guard never fires for them.
                if self
                    .slab
                    .slot(m, dom)
                    .is_some_and(|sl| sl.quarantined || sl.flush_in_progress.is_some())
                {
                    return;
                }
                let deadline = now + self.set.cfg.flush_ack_timeout;
                if let Some(slot) = self.slab.slot_mut(m, dom) {
                    slot.flush_in_progress = Some(deadline);
                    self.slab.mark_flush_active(dom);
                }
                self.stats.flushes_triggered += 1;
                trace_event!(
                    now,
                    TraceEventKind::Decision(Decision::FlushNow {
                        dom: dom.0,
                        nr_dirty,
                        candidates,
                    })
                );
                // Persist the in-flight record before issuing the command:
                // a crash between the two leaves a phantom in-flight entry
                // that expires through the normal timeout path, never a
                // command the recovered plane does not know about.
                let epoch = self.next_epoch(m);
                let mut tmp = None;
                let k = Self::keys_or(&mut self.slab, m, dom, &mut tmp);
                let _ = m.store.write(DOM0, &k.state_flush_epoch, val::uint(epoch));
                let _ = m.store.write(
                    DOM0,
                    &k.state_flush_deadline,
                    val::uint(deadline.as_nanos()),
                );
                let _ = m.store.write(DOM0, &k.flush_now, val::uint(epoch));
            }
            Action::Release { dom } => {
                if self.collaborative {
                    self.grant_release(m, now, dom);
                }
            }
            Action::Quarantine { dom, reason } => {
                self.quarantine(m, dom, now, reason);
            }
        }
    }

    /// Grant a congestion release under a fresh epoch. Shared by rule
    /// adjudication, the reconciliation re-issue and [`Action::Release`],
    /// so every grant follows the same store sequence.
    fn grant_release(&mut self, m: &mut Machine, now: SimTime, dom: DomainId) {
        self.stats.releases_granted += 1;
        trace_event!(
            now,
            TraceEventKind::Decision(Decision::ReleaseGranted {
                dom: dom.0,
                host_qdepth: m.storage.queue_depth() as u32,
            })
        );
        let epoch = self.next_epoch(m);
        {
            let mut tmp = None;
            let k = Self::keys_or(&mut self.slab, m, dom, &mut tmp);
            let _ = m.store.write(DOM0, &k.release_request, val::uint(epoch));
        }
        if let Some(slot) = self.slab.slot_mut(m, dom) {
            slot.release_pending = Some(now);
        }
        // The ack-timeout re-issue lives in the reconciliation sweep.
        self.slab.mark_attention(m, dom);
    }

    /// Ask the set's adjudicating rules for a verdict on one raised
    /// `congested` flag. First answer wins; the fallback is
    /// [`Verdict::Confirm`] — under no answer the guest sleeps, exactly
    /// as it would under Baseline.
    fn poll_verdict(&mut self, m: &Machine, now: SimTime, dom: DomainId) -> Verdict {
        let PolicyEngine {
            set,
            slab,
            congested_fifo,
            stats,
            ..
        } = self;
        let PolicySet { cfg, stages, .. } = set;
        let ctx = PolicyCtx {
            now,
            report: None,
            machine: m,
            cfg: &*cfg,
            slab: &*slab,
            congested_fifo: &congested_fifo[..],
            stats: &*stats,
        };
        for st in stages.iter_mut() {
            for r in st.rules.iter_mut() {
                if r.adjudicates() {
                    if let Some(v) = r.adjudicate(&ctx, dom) {
                        return v;
                    }
                }
            }
        }
        Verdict::Confirm
    }

    /// Algorithm 2's adjudication of one raised `congested` flag: confirm
    /// (host really congested — park the domain in the wake FIFO) or
    /// grant a release under a fresh epoch. Shared by the watch-event
    /// handler, the per-tick reconciliation sweep and the dom0 recovery
    /// scan, so a query is answered the same way no matter which path
    /// noticed it.
    fn adjudicate_congestion(&mut self, m: &mut Machine, now: SimTime, dom: DomainId) {
        match self.poll_verdict(&*m, now, dom) {
            Verdict::Confirm => {
                self.stats.congestions_confirmed += 1;
                trace_event!(
                    now,
                    TraceEventKind::Decision(Decision::CongestionConfirmed {
                        dom: dom.0,
                        host_qdepth: m.storage.queue_depth() as u32,
                    })
                );
                if !self.slab.slot(m, dom).is_some_and(|sl| sl.in_fifo) {
                    self.congested_fifo.push(dom);
                    if let Some(slot) = self.slab.slot_mut(m, dom) {
                        slot.in_fifo = true;
                    }
                    // Confirmed domains stay under reconciliation watch
                    // until their `congested` flag drops.
                    self.slab.mark_attention(m, dom);
                }
            }
            Verdict::Release => self.grant_release(m, now, dom),
        }
    }

    /// Expire `flush_now` ack deadlines: an unresponsive guest loses its
    /// slot (the next policy run picks the next-dirtiest domain), backs
    /// off exponentially, and is quarantined after
    /// `flush_max_retries` consecutive timeouts. Visits only domains
    /// with a command in flight (ascending, like the map scan it
    /// replaced).
    fn expire_flush_deadlines(&mut self, m: &mut Machine, now: SimTime) {
        let mut active = self.slab.take_flush_active();
        if active.is_empty() {
            self.slab.restore_flush_active(active);
            return;
        }
        active.retain(|&dom| {
            let (timeouts, streak) = match self.slab.slot_mut(m, dom) {
                Some(slot) => {
                    let Some(deadline) = slot.flush_in_progress else {
                        // Acked (or quarantined) since it was listed.
                        return false;
                    };
                    if now < deadline {
                        return true;
                    }
                    slot.flush_in_progress = None;
                    slot.flush_timeouts += 1;
                    slot.flush_fail_streak += 1;
                    (slot.flush_timeouts, slot.flush_fail_streak)
                }
                None => return false,
            };
            self.stats.flush_timeouts += 1;
            trace_event!(
                now,
                TraceEventKind::Decision(Decision::FlushTimeout { dom: dom.0, streak })
            );
            self.slab.mark_health(m, dom);
            {
                let mut tmp = None;
                let k = Self::keys_or(&mut self.slab, m, dom, &mut tmp);
                let _ = m
                    .store
                    .write_if_changed(DOM0, &k.state_flush_epoch, val::zero());
                let _ =
                    m.store
                        .write_if_changed(DOM0, &k.state_fail_streak, val::uint(streak as u64));
                let _ = m
                    .store
                    .write_if_changed(DOM0, &k.state_timeouts, val::uint(timeouts));
            }
            if streak >= self.set.cfg.flush_max_retries {
                self.quarantine(m, dom, now, "flush-timeout streak");
            } else {
                let shift = (streak - 1).min(6);
                let until = now + self.set.cfg.flush_retry_backoff * (1u64 << shift);
                if let Some(slot) = self.slab.slot_mut(m, dom) {
                    slot.flush_backoff_until = Some(until);
                }
            }
            false
        });
        self.slab.restore_flush_active(active);
    }

    /// Publish per-domain health counters under `/iorchestra/health/<id>`.
    /// Dirty-set driven: only domains whose timeout/quarantine state moved
    /// are visited — unless the store's global denied total moved, in
    /// which case any domain's denied counter may have changed and a full
    /// scan is the explicit, legal fallback (denials are rare and already
    /// a misbehaviour signal). A steady-state tick performs zero store
    /// operations either way.
    fn publish_health(&mut self, m: &mut Machine) {
        let denied_total = m.store.denied_total();
        if denied_total != self.denied_total_seen {
            self.denied_total_seen = denied_total;
            let mut scratch = self.slab.take_scratch();
            scratch.extend(m.domains());
            for &dom in &scratch {
                self.publish_health_one(m, dom);
            }
            self.slab.restore_scratch(scratch);
            // The full scan supersedes every pending dirty entry.
            self.slab.clear_health_dirty();
            return;
        }
        let dirty = self.slab.take_health_dirty();
        for &dom in &dirty {
            self.publish_health_one(m, dom);
        }
    }

    /// Publish one domain's health tuple if it moved since last publish.
    fn publish_health_one(&mut self, m: &mut Machine, dom: DomainId) {
        let denied = m.store.denied_count(dom);
        let (tuple, prev) = match self.slab.slot_mut(m, dom) {
            Some(slot) => {
                slot.health_dirty = false;
                let tuple = (slot.flush_timeouts, slot.quarantined, denied);
                if slot.health_published == Some(tuple) {
                    return;
                }
                (tuple, slot.health_published.replace(tuple))
            }
            None => return,
        };
        let Some(k) = self.slab.slot(m, dom).and_then(|s| s.keys.as_ref()) else {
            return;
        };
        let (timeouts, quarantined, denied) = tuple;
        // `write_if_changed` (not plain writes): after a recovery the
        // in-memory published tuples are gone, and republishing a value
        // the store already holds must stay silent.
        if prev.map(|p| p.0) != Some(timeouts) {
            let _ = m
                .store
                .write_if_changed(DOM0, &k.health_flush_timeouts, val::uint(timeouts));
        }
        if prev.map(|p| p.1) != Some(quarantined) {
            let _ = m
                .store
                .write_if_changed(DOM0, &k.health_quarantined, val::flag(quarantined));
        }
        if prev.map(|p| p.2) != Some(denied) {
            let _ = m
                .store
                .write_if_changed(DOM0, &k.health_store_denied, val::uint(denied));
        }
    }

    /// The reconciliation half of the lossy-bus hardening: re-read the
    /// congestion keys of every domain under attention straight from the
    /// store and repair whatever the bus lost. A raised `congested` flag
    /// nobody adjudicated (dropped guest-to-dom0 event, or a wake FIFO
    /// that died with a crashed plane) is adjudicated now; a granted
    /// release still unaccepted past the ack timeout (dropped dom0-to-
    /// guest delivery) is re-issued under a fresh epoch, which the guest's
    /// epoch cursor makes idempotent.
    ///
    /// The attention set is marked at every site that raises or could
    /// raise a `congested` flag the engine knows about — the engine's own
    /// `congested=1` write on a kernel query, grants, FIFO entry,
    /// quarantine clears, the recovery scan — and a domain stays under
    /// attention until a visit observes its flag down. Domains outside
    /// the set provably have nothing to reconcile, so the steady-state
    /// sweep is O(attention), allocation-free, and never clones a key.
    fn reconcile_congestion(&mut self, m: &mut Machine, now: SimTime) {
        if self.slab.attention_is_empty() {
            return;
        }
        enum Fix {
            Drop,
            Keep,
            Adjudicate,
            Regrant,
        }
        let mut att = self.slab.take_attention();
        att.retain(|&dom| {
            let fix = match self.slab.slot(m, dom) {
                Some(slot) if slot.attention && !slot.quarantined => {
                    let k = slot.keys.as_ref().expect("live slot has keys");
                    let asking = m
                        .store
                        .read_ref(DOM0, &k.congested)
                        .map(|v| v == "1")
                        .unwrap_or(false);
                    if !asking {
                        Fix::Drop
                    } else if slot.in_fifo {
                        // Confirmed: the staggered wake on relief owns
                        // this domain.
                        Fix::Keep
                    } else {
                        let granted = m
                            .store
                            .read_ref(DOM0, &k.release_request)
                            .map(|v| v != "0")
                            .unwrap_or(false);
                        if !granted {
                            // Raised but never adjudicated: the query
                            // event was lost.
                            Fix::Adjudicate
                        } else {
                            match slot.release_pending {
                                Some(issued) if now < issued + self.set.cfg.release_ack_timeout => {
                                    Fix::Keep
                                }
                                // The grant delivery was dropped (or
                                // predates this plane incarnation):
                                // re-issue under a fresh epoch.
                                _ => Fix::Regrant,
                            }
                        }
                    }
                }
                // Dead, recycled, or de-marked (quarantined) since listed.
                _ => Fix::Drop,
            };
            match fix {
                Fix::Drop => {
                    if let Some(slot) = self.slab.slot_mut(m, dom) {
                        slot.release_pending = None;
                        slot.attention = false;
                    }
                    false
                }
                Fix::Keep => true,
                Fix::Adjudicate => {
                    self.adjudicate_congestion(m, now, dom);
                    true
                }
                Fix::Regrant => {
                    self.grant_release(m, now, dom);
                    true
                }
            }
        });
        self.slab.restore_attention(att);
    }

    fn run_congestion_relief(&mut self, m: &mut Machine, s: &mut Sched) {
        // Algorithm 2's final block: the host device is relieved; wake
        // sleeping VMs FIFO with a random 0–99 ms interleave.
        if self.congested_fifo.is_empty() {
            return;
        }
        let idx = m.idx;
        let mut offset = SimDuration::ZERO;
        let now = s.now();
        for dom in std::mem::take(&mut self.congested_fifo) {
            if let Some(slot) = self.slab.slot_mut(m, dom) {
                slot.in_fifo = false;
            }
            // `wake_interleave_max_ms == 0` means a true simultaneous wake
            // (the DESIGN.md §5 "no interleave" ablation point): no draw at
            // all, so the RNG stream is untouched too.
            if self.set.cfg.wake_interleave_max_ms > 0 {
                offset += SimDuration::from_millis(
                    self.rng.range(0, self.set.cfg.wake_interleave_max_ms),
                );
            }
            self.stats.staggered_wakeups += 1;
            trace_event!(
                now,
                TraceEventKind::Decision(Decision::StaggeredWake {
                    dom: dom.0,
                    offset_ms: offset.as_millis(),
                })
            );
            let congested_key = {
                let mut tmp = None;
                Self::keys_or(&mut self.slab, m, dom, &mut tmp)
                    .congested
                    .clone()
            };
            s.schedule_in(offset, move |cl: &mut Cluster, s| {
                cl.cp_action(s, idx, move |m, s| {
                    // The plane that scheduled this wake may have crashed in
                    // the meantime; a dead dom0 wakes nobody. The recovery
                    // scan re-adjudicates every domain whose `congested` key
                    // is still raised.
                    if m.is_control_down() {
                        return;
                    }
                    m.cp_grant_bypass(s, dom);
                    let _ = m.store.write(DOM0, &congested_key, val::zero());
                });
            });
        }
    }

    /// Bring the slab in line with the machine's domain set. The
    /// generation counter makes the steady-state case O(1): a tick during
    /// which no domain was created or destroyed skips the sweep entirely.
    /// Covers planes attached after domains already existed (tests,
    /// mid-run install) and churn the plane never heard about.
    fn resync_domains(&mut self, m: &Machine) {
        let gen = m.domain_generation();
        if self.synced_gen == Some(gen) {
            return;
        }
        self.synced_gen = Some(gen);
        for dom in m.domains() {
            self.slab.ensure(m, dom);
        }
        self.slab.prune(m);
    }
}

impl ControlPlane for PolicyEngine {
    fn name(&self) -> &'static str {
        self.set.name
    }

    fn tick_period(&self) -> Option<SimDuration> {
        self.set.tick
    }

    fn on_domain_created(&mut self, m: &mut Machine, _s: &mut Sched, dom: DomainId) {
        if !self.collaborative {
            return;
        }
        if !self.manager_watch_registered {
            m.store.watch(DOM0, "/local");
            m.store.watch(DOM0, keys::CONTROL_ROOT);
            self.manager_watch_registered = true;
        }
        // Guest-driver registration: defaults + a watch on its own subtree.
        // The slot (and its interned DomainKeys) built here is the one the
        // dirty-set sweeps reuse for the domain's whole lifetime.
        let mut tmp = None;
        let k = Self::keys_or(&mut self.slab, m, dom, &mut tmp);
        Self::guest_write(m, dom, &k.flush_now, val::zero());
        Self::guest_write(m, dom, &k.congested, val::zero());
        Self::guest_write(m, dom, &k.release_request, val::zero());
        m.store.watch(dom, &k.virt_dev);
    }

    fn on_domain_destroyed(&mut self, m: &mut Machine, _s: &mut Sched, dom: DomainId) {
        if self.collaborative {
            // Drop the persisted state subtree so a later recovery scan (or
            // a recycled domain slot) cannot inherit a dead domain's
            // history.
            let _ = m.store.remove(DOM0, keys::state_base(dom).as_str());
        }
        self.slab.remove(dom);
        self.congested_fifo.retain(|&d| d != dom);
        Self::each_rule(&mut self.set, |r| r.on_domain_destroyed(dom));
    }

    fn on_kernel_signal(
        &mut self,
        m: &mut Machine,
        s: &mut Sched,
        dom: DomainId,
        sig: KernelSignal,
    ) {
        if self.feeds_dirty {
            // Mirror the kernel's dirty-page edge before any quarantine
            // gating: the signal stream is reliable and is what keeps the
            // republish sweep's dirty set exact — a quarantined domain's
            // transitions must keep tracking so collaboration resumes
            // correctly when an operator clears it.
            if let KernelSignal::DirtyStatusChanged(has) = sig {
                self.slab.set_kernel_dirty(m, dom, has);
            }
        }
        if !self.collaborative || self.is_quarantined(m, dom) {
            // Non-collaborative sets — and quarantined domains under a
            // collaborative one (graceful degradation) — get stock
            // Baseline behaviour: congestion means sleeping, and nothing
            // touches the store or the collaborative queues.
            if sig == KernelSignal::CongestionQuery {
                m.cp_enter_congestion(s, dom);
            }
            return;
        }
        match sig {
            KernelSignal::DirtyStatusChanged(has) => {
                if self.feeds_dirty {
                    let nr = m.domain(dom).map(|d| d.kernel.dirty_pages()).unwrap_or(0);
                    let mut tmp = None;
                    let k = Self::keys_or(&mut self.slab, m, dom, &mut tmp);
                    // Monitoring keys: no callback consumes them, so a
                    // value the store already holds is not republished.
                    Self::guest_publish(m, dom, &k.has_dirty_pages, val::flag(has));
                    Self::guest_publish(m, dom, &k.nr_dirty, val::uint(nr));
                    // This is the only post-boot writer of the store's
                    // has_dirty flag, so updating the mirror here keeps
                    // `PolicyCtx::dirty_domains` exact.
                    self.slab.set_store_dirty(m, dom, has);
                }
            }
            KernelSignal::CongestionQuery => {
                if self.adjudicates {
                    // The guest enters congestion immediately (as Linux
                    // does) and asks the host through the store; the answer
                    // arrives a store-round-trip later. This is a control
                    // key: it always publishes, because the management
                    // module must re-answer even a repeated query.
                    m.cp_enter_congestion(s, dom);
                    {
                        let mut tmp = None;
                        let k = Self::keys_or(&mut self.slab, m, dom, &mut tmp);
                        Self::guest_write(m, dom, &k.congested, val::one());
                    }
                    // The engine itself raised the flag in the store, so
                    // the reconciliation sweep will adjudicate it even if
                    // the watch delivery is lost.
                    self.slab.mark_attention(m, dom);
                } else {
                    m.cp_enter_congestion(s, dom);
                }
            }
            KernelSignal::CongestionCleared => {
                if self.adjudicates {
                    let mut tmp = None;
                    let k = Self::keys_or(&mut self.slab, m, dom, &mut tmp);
                    Self::guest_write(m, dom, &k.congested, val::zero());
                    self.congested_fifo.retain(|&d| d != dom);
                    if let Some(slot) = self.slab.slot_mut(m, dom) {
                        slot.in_fifo = false;
                    }
                }
            }
            KernelSignal::RemoteSyncCompleted => {
                let mut tmp = None;
                let k = Self::keys_or(&mut self.slab, m, dom, &mut tmp);
                Self::guest_write(m, dom, &k.flush_now, val::zero());
            }
        }
        let _ = s;
    }

    fn on_store_event(&mut self, m: &mut Machine, s: &mut Sched, ev: WatchEvent) {
        if !self.collaborative {
            return;
        }
        // Operator command channel (outside /local, so only dom0 can write
        // it — a quarantined guest cannot clear itself).
        if let Some(dom) = keys::control_dom_of_path(&ev.path) {
            if ev.owner == DOM0
                && keys::is_key(&ev.path, "clear")
                && ev.value.as_deref() == Some("1")
            {
                self.clear_quarantine(m, dom, s.now());
                // Consume the command edge: the key returns to "0" so a
                // recovery scan only sees clears that were never processed,
                // and the operator's next write is a fresh edge.
                let _ = m.store.write(DOM0, &*ev.path, val::zero());
            }
            return;
        }
        let Some(dom) = keys::domain_of_path(&ev.path) else {
            return;
        };
        if self.is_quarantined(m, dom) {
            // The management module ignores a quarantined domain's keys
            // entirely — its watch-event spam costs one slot probe here.
            return;
        }
        if ev.owner == DOM0 {
            // Management-module side.
            if keys::is_key(&ev.path, "congested") && ev.value.as_deref() == Some("1") {
                if !self.adjudicates {
                    return;
                }
                // Events are hints; the store is the state of record. The
                // per-tick reconciliation sweep may have adjudicated this
                // query already (e.g. when the raising event was delayed),
                // in which case this delivery is a no-op.
                let (still_asking, granted) = {
                    let mut tmp = None;
                    let k = Self::keys_or(&mut self.slab, m, dom, &mut tmp);
                    (
                        m.store
                            .read_ref(DOM0, &k.congested)
                            .map(|v| v == "1")
                            .unwrap_or(false),
                        m.store
                            .read_ref(DOM0, &k.release_request)
                            .map(|v| v != "0")
                            .unwrap_or(false),
                    )
                };
                let in_fifo = self.slab.slot(m, dom).is_some_and(|sl| sl.in_fifo);
                if still_asking && !granted && !in_fifo {
                    // Defensive mark: however this flag got raised, keep
                    // the domain under reconciliation watch until it drops.
                    self.slab.mark_attention(m, dom);
                    self.adjudicate_congestion(m, s.now(), dom);
                }
            } else if keys::is_key(&ev.path, "flush_now") && ev.value.as_deref() == Some("0") {
                // The guest acked (wrote flush_now back to 0): the flush
                // completed, so the domain is in good standing again.
                let had_in_flight = self
                    .slab
                    .slot_mut(m, dom)
                    .is_some_and(|slot| slot.flush_in_progress.take().is_some());
                if had_in_flight {
                    trace_event!(
                        s.now(),
                        TraceEventKind::Decision(Decision::FlushAck { dom: dom.0 })
                    );
                }
                if let Some(slot) = self.slab.slot_mut(m, dom) {
                    slot.flush_fail_streak = 0;
                    slot.flush_backoff_until = None;
                }
                let mut tmp = None;
                let k = Self::keys_or(&mut self.slab, m, dom, &mut tmp);
                let _ = m
                    .store
                    .write_if_changed(DOM0, &k.state_flush_epoch, val::zero());
                let _ = m
                    .store
                    .write_if_changed(DOM0, &k.state_fail_streak, val::zero());
            }
        } else if ev.owner == dom {
            // Guest-driver side (registered callback functions). Commands
            // are epoch-stamped (any value > 0); the guest kernel remembers
            // the highest epoch it has executed per channel and discards
            // stale or duplicated deliveries, so a recovering plane and an
            // unreliable bus are both safe.
            let cmd = ev
                .value
                .as_deref()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            if keys::is_key(&ev.path, "flush_now") && cmd > 0 {
                let Some(kernel) = m.kernel_mut(dom) else {
                    return;
                };
                let accepted = kernel.accept_flush_epoch(cmd);
                let last_seen = kernel.flush_epoch_seen();
                if accepted {
                    m.cp_remote_sync(s, dom);
                } else {
                    // The original delivery of this command (or a newer
                    // one) already drove the flush; acking here would tell
                    // the plane a still-running flush completed.
                    trace_event!(
                        s.now(),
                        TraceEventKind::Decision(Decision::StaleCommand {
                            dom: dom.0,
                            epoch: cmd,
                            last_seen,
                        })
                    );
                }
            } else if keys::is_key(&ev.path, "release_request") && cmd > 0 {
                let Some(kernel) = m.kernel_mut(dom) else {
                    return;
                };
                let accepted = kernel.accept_release_epoch(cmd);
                let last_seen = kernel.release_epoch_seen();
                if accepted {
                    m.cp_grant_bypass(s, dom);
                    let mut tmp = None;
                    let k = Self::keys_or(&mut self.slab, m, dom, &mut tmp);
                    Self::guest_write(m, dom, &k.release_request, val::zero());
                    Self::guest_write(m, dom, &k.congested, val::zero());
                } else {
                    trace_event!(
                        s.now(),
                        TraceEventKind::Decision(Decision::StaleCommand {
                            dom: dom.0,
                            epoch: cmd,
                            last_seen,
                        })
                    );
                }
            }
        }
    }

    fn on_tick(&mut self, m: &mut Machine, s: &mut Sched) {
        let now = s.now();
        let report = self.monitor.sample(m, now);
        if self.collaborative {
            // Slots (and interned paths) for every live domain; O(1) via
            // the generation check when no domain churned since last tick.
            self.resync_domains(&*m);
        }
        // Admission stages (anomaly budgets → quarantine).
        self.eval_point(m, s, now, Some(&report), EnforcementPoint::QueueAdmission);
        if self.collaborative {
            // Unacked flush commands lose their slot, with
            // backoff/quarantine.
            self.expire_flush_deadlines(m, now);
        }
        if self.feeds_dirty {
            // Guest drivers republish their dirty-page counts each period
            // so the argmax in Algorithm 1 works from fresh numbers. The
            // sweep visits only domains whose kernel actually holds dirty
            // pages (the signal-fed mirror): for every other domain the
            // count is 0 and the legacy full scan skipped it anyway.
            let mut dirty = self.slab.take_kernel_dirty();
            dirty.retain(|&dom| {
                match self.slab.slot(m, dom) {
                    Some(slot) if slot.kernel_dirty => {
                        if slot.quarantined {
                            // Not republished while quarantined, but stays
                            // tracked so collaboration resumes on clear.
                            return true;
                        }
                    }
                    // Dirty pages gone (or domain dead) since listed.
                    _ => return false,
                }
                let nr = m.domain(dom).map(|d| d.kernel.dirty_pages()).unwrap_or(0);
                if nr > 0 {
                    let mut tmp = None;
                    let k = Self::keys_or(&mut self.slab, m, dom, &mut tmp);
                    Self::guest_publish(m, dom, &k.nr_dirty, val::uint(nr));
                }
                true
            });
            self.slab.restore_kernel_dirty(dirty);
        }
        // Command-issue stages (flush argmax, congestion adjudication).
        self.eval_point(m, s, now, Some(&report), EnforcementPoint::CommandIssue);
        if self.adjudicates {
            self.reconcile_congestion(m, now);
            if !report.device_congested {
                self.run_congestion_relief(m, s);
            }
        }
        self.eval_point(m, s, now, Some(&report), EnforcementPoint::RingPush);
        self.eval_point(m, s, now, Some(&report), EnforcementPoint::DrrVisit);
        // Dispatch stages (co-scheduling weights).
        self.eval_point(m, s, now, Some(&report), EnforcementPoint::DeviceDispatch);
        if self.collaborative {
            self.publish_health(m);
        }
    }

    fn on_crash(&mut self, _m: &mut Machine, s: &mut Sched) {
        if !self.collaborative {
            // Baseline/SDC/DIF kept no dom0-resident state worth tracing;
            // the legacy structs' crash handlers were no-ops.
            return;
        }
        trace_event!(s.now(), TraceEventKind::Decision(Decision::PlaneCrash));
        // The daemon's process memory dies with dom0; only the store (and
        // the guests) survive. Reset every field to its boot state — the
        // recovery scan rebuilds what was persisted.
        self.rng = SimRng::new(self.set.cfg.seed ^ 0x10c);
        self.monitor = MonitoringModule::new();
        self.slab.clear();
        self.congested_fifo.clear();
        self.manager_watch_registered = false;
        self.synced_gen = None;
        self.denied_total_seen = 0;
        self.epoch = 0;
        self.stats = PlaneStats::default();
        Self::each_rule(&mut self.set, |r| r.on_crash());
    }

    fn on_recover(&mut self, m: &mut Machine, s: &mut Sched) {
        if !self.collaborative {
            return;
        }
        let now = s.now();
        // The store is the source of truth. Events the dead incarnation
        // missed are gone (XenBus does not replay), so everything below
        // works from current store values, never from event history.
        self.epoch = Self::read_state_u64(m, keys::STATE_EPOCH) + 1;
        let _ = m
            .store
            .write(DOM0, keys::STATE_EPOCH, val::uint(self.epoch));
        m.store.watch(DOM0, "/local");
        m.store.watch(DOM0, keys::CONTROL_ROOT);
        self.manager_watch_registered = true;
        // Rules re-seed their decision state from current observables
        // (e.g. anomaly bases at the current counters, so traffic that
        // happened while dom0 was down is not a post-recovery burst).
        {
            let PolicyEngine {
                set,
                slab,
                congested_fifo,
                stats,
                ..
            } = self;
            let PolicySet { cfg, stages, .. } = set;
            let ctx = PolicyCtx {
                now,
                report: None,
                machine: &*m,
                cfg: &*cfg,
                slab: &*slab,
                congested_fifo: &congested_fifo[..],
                stats: &*stats,
            };
            for st in stages.iter_mut() {
                for r in st.rules.iter_mut() {
                    r.on_recover(&ctx);
                }
            }
        }
        // Recovery is one of the two explicit full scans the dirty-set
        // contract allows (DESIGN.md §13): the dead incarnation's marks
        // died with it, so every live domain is re-examined. Fresh slots
        // come out health-dirty, and the mirrors (kernel/store dirty
        // pages) are re-read from ground truth by `ensure`.
        let mut scratch = self.slab.take_scratch();
        scratch.extend(m.domains());
        for &dom in &scratch {
            self.slab.ensure(m, dom);
            let Some(k) = self
                .slab
                .slot(m, dom)
                .and_then(|sl| sl.keys.as_ref())
                .cloned()
            else {
                continue;
            };
            if Self::read_state_u64(m, &k.state_quarantined) == 1 {
                if let Some(slot) = self.slab.slot_mut(m, dom) {
                    slot.quarantined = true;
                }
            }
            let streak = Self::read_state_u64(m, &k.state_fail_streak) as u32;
            let timeouts = Self::read_state_u64(m, &k.state_timeouts);
            if let Some(slot) = self.slab.slot_mut(m, dom) {
                slot.flush_fail_streak = streak;
                slot.flush_timeouts = timeouts;
            }
            if Self::read_state_u64(m, &k.state_flush_epoch) > 0 {
                // A flush was in flight at the crash. If the guest already
                // wrote the ack (its `"0"` event was addressed to the dead
                // incarnation and dropped), honour it; otherwise restore
                // the in-flight record — a deadline that passed during the
                // outage expires through the normal timeout path.
                let acked = m
                    .store
                    .read_ref(DOM0, &k.flush_now)
                    .map(|v| v == "0")
                    .unwrap_or(true);
                if acked {
                    if let Some(slot) = self.slab.slot_mut(m, dom) {
                        slot.flush_fail_streak = 0;
                    }
                    let _ = m.store.write(DOM0, &k.state_flush_epoch, val::zero());
                    let _ = m
                        .store
                        .write_if_changed(DOM0, &k.state_fail_streak, val::zero());
                } else {
                    let deadline =
                        SimTime::from_nanos(Self::read_state_u64(m, &k.state_flush_deadline));
                    if let Some(slot) = self.slab.slot_mut(m, dom) {
                        slot.flush_in_progress = Some(deadline);
                        self.slab.mark_flush_active(dom);
                    }
                }
            }
            // Operator clears written while dom0 was down.
            let clear_key = keys::clear_quarantine(dom);
            let cleared = m
                .store
                .read_ref(DOM0, clear_key.as_str())
                .map(|v| v == "1")
                .unwrap_or(false);
            if cleared {
                self.clear_quarantine(m, dom, now);
                let _ = m.store.write(DOM0, clear_key.as_str(), val::zero());
            }
            // Domains still asking about congestion: their query event (or
            // the scheduled wake) died with the old incarnation, and a
            // sleeping guest cannot re-ask. Re-adjudicate from the store —
            // even if the dead incarnation had granted a release (its epoch
            // is outranked, and the delivery may have died with it).
            if self.adjudicates && !self.is_quarantined(m, dom) {
                let asking = m
                    .store
                    .read_ref(DOM0, &k.congested)
                    .map(|v| v == "1")
                    .unwrap_or(false);
                if asking {
                    self.slab.mark_attention(m, dom);
                    self.adjudicate_congestion(m, now, dom);
                }
            }
        }
        let domain_count = scratch.len();
        self.slab.restore_scratch(scratch);
        self.synced_gen = Some(m.domain_generation());
        self.denied_total_seen = m.store.denied_total();
        // Retries and protocol turnarounds the guests burned against the
        // dead incarnation must not carry over as empty token buckets — a
        // denial storm the moment service resumes would quarantine the
        // victims of the outage. A true hammer re-drains its refilled
        // bucket within milliseconds and re-trips the detector anyway.
        m.store.quota_refill_all();
        trace_event!(
            now,
            TraceEventKind::Decision(Decision::PlaneRecover {
                epoch: self.epoch,
                domains: domain_count as u32,
                quarantined: self.slab.quarantined_count() as u32,
            })
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planes::IOrchestraConfig;

    #[test]
    fn builtin_set_names_and_ticks() {
        assert_eq!(PolicyEngine::new(PolicySet::baseline()).name(), "baseline");
        assert_eq!(PolicyEngine::new(PolicySet::sdc()).name(), "sdc");
        assert_eq!(PolicyEngine::new(PolicySet::dif()).name(), "dif");
        assert_eq!(
            PolicyEngine::new(IOrchestraConfig::new(1)).name(),
            "iorchestra"
        );
        assert!(PolicyEngine::new(PolicySet::baseline())
            .tick_period()
            .is_none());
        assert!(PolicyEngine::new(PolicySet::dif()).tick_period().is_some());
        assert!(PolicyEngine::new(IOrchestraConfig::new(1))
            .tick_period()
            .is_some());
    }

    #[test]
    fn derived_flags_follow_the_staged_rules() {
        let full = PolicyEngine::new(IOrchestraConfig::new(1));
        assert!(full.collaborative && full.feeds_dirty && full.adjudicates);
        let flush_only = PolicyEngine::new(
            IOrchestraConfig::new(1).with_functions(crate::planes::FunctionSet::flush_only()),
        );
        assert!(flush_only.feeds_dirty && !flush_only.adjudicates);
        let dif = PolicyEngine::new(PolicySet::dif());
        assert!(!dif.collaborative && !dif.feeds_dirty && !dif.adjudicates);
    }

    /// Regression: the retry-backoff shift is capped at 6 (and
    /// `SimDuration * u64` saturates), so an absurd fail streak can never
    /// overflow the `1u64 << shift` arithmetic or produce a wrapped-around
    /// backoff deadline in the past.
    #[test]
    fn flush_backoff_shift_is_capped_at_long_streaks() {
        use iorch_hypervisor::{IoPathMode, MachineConfig, VmSpec};
        use iorch_simcore::Simulation;

        let mut sim = Simulation::new(Cluster::new());
        let (cl, s) = sim.parts_mut();
        let idx = cl.add_machine(MachineConfig::paper_testbed(1, IoPathMode::Paravirt));
        let mut cfg = IOrchestraConfig::new(1);
        cfg.flush_max_retries = u32::MAX; // keep the quarantine path out of the way
        let mut plane = PolicyEngine::new(cfg);
        let dom = cl.create_domain(s, idx, VmSpec::new(1, 1).with_disk_gb(4), |_| {});
        let now = SimTime::from_secs(100);
        for &streak in &[6u32, 31, 63, 64, 200, u32::MAX - 2] {
            let m = cl.machine_mut(idx);
            {
                let slot = plane.slab.slot_mut(&*m, dom).unwrap();
                slot.flush_fail_streak = streak;
                slot.flush_in_progress = Some(now);
            }
            plane.slab.mark_flush_active(dom);
            plane.expire_flush_deadlines(m, now);
            let until = plane
                .slab
                .slot(&*m, dom)
                .unwrap()
                .flush_backoff_until
                .expect("timeout sets a backoff");
            // Every streak past the cap backs off by exactly base * 2^6.
            assert_eq!(
                until,
                now + plane.set.cfg.flush_retry_backoff * (1u64 << 6),
                "streak {streak}"
            );
            assert!(until > now, "streak {streak}: backoff wrapped");
        }
    }

    /// Regression: `wake_interleave_max_ms == 0` means a true simultaneous
    /// wake — zero offset for every woken domain and no RNG draw at all
    /// (the old code clamped the draw bound to 1 and still consumed the
    /// stream, so "no interleave" silently became "0–1 ms interleave").
    #[test]
    fn interleave_zero_is_simultaneous_and_draws_no_rng() {
        use iorch_hypervisor::{IoPathMode, MachineConfig, VmSpec};
        use iorch_simcore::{gen, Simulation};

        gen::for_each_seed(0x1A_0001, 16, |seed, rng| {
            let doms = 2 + rng.below(6);
            let mut sim = Simulation::new(Cluster::new());
            let (cl, s) = sim.parts_mut();
            let idx = cl.add_machine(MachineConfig::paper_testbed(seed, IoPathMode::Paravirt));
            let mut cfg = IOrchestraConfig::new(seed);
            cfg.wake_interleave_max_ms = 0;
            let mut plane = PolicyEngine::new(cfg);
            let mut ids = Vec::new();
            for _ in 0..doms {
                ids.push(cl.create_domain(s, idx, VmSpec::new(1, 1).with_disk_gb(4), |_| {}));
            }
            plane.congested_fifo = ids;
            let mut pristine = plane.rng.clone();
            let session = iorch_simcore::trace::TraceSession::new();
            plane.run_congestion_relief(cl.machine_mut(idx), s);
            let rec = session.finish();
            assert_eq!(plane.stats.staggered_wakeups, doms, "seed {seed}");
            assert!(plane.congested_fifo.is_empty(), "seed {seed}");
            // The RNG stream is untouched: the next draw matches a clone
            // taken before the relief ran.
            assert_eq!(
                pristine.next_u64(),
                plane.rng.next_u64(),
                "seed {seed}: interleave 0 consumed the RNG stream"
            );
            if iorch_simcore::trace::COMPILED {
                let offsets: Vec<u64> = rec
                    .into_events()
                    .iter()
                    .filter_map(|e| match &e.kind {
                        TraceEventKind::Decision(Decision::StaggeredWake { offset_ms, .. }) => {
                            Some(*offset_ms)
                        }
                        _ => None,
                    })
                    .collect();
                assert_eq!(offsets, vec![0; doms as usize], "seed {seed}");
            }
        });
    }

    /// Tenant churn (the ROADMAP's millions-of-users scenario seed): slab
    /// slots are recycled, the per-domain state stays bounded by the peak
    /// concurrent domain count, and a domain occupying a recycled slot
    /// never inherits its predecessor's quarantine/backoff/health state —
    /// even when the plane was detached for the predecessor's destruction
    /// and no `on_domain_destroyed` ever fired.
    #[test]
    fn churned_slab_slots_are_recycled_and_start_clean() {
        use iorch_hypervisor::{IoPathMode, MachineConfig, VmSpec};
        use iorch_simcore::Simulation;

        let mut sim = Simulation::new(Cluster::new());
        let (cl, s) = sim.parts_mut();
        let idx = cl.add_machine(MachineConfig::paper_testbed(7, IoPathMode::Paravirt));
        let mut plane = PolicyEngine::new(IOrchestraConfig::new(7));
        let spec = || VmSpec::new(1, 1).with_disk_gb(4);

        // A long-lived neighbour pins slot 0.
        let anchor = cl.create_domain(s, idx, spec(), |_| {});
        plane.on_domain_created(cl.machine_mut(idx), s, anchor);

        let mut last = None;
        for round in 0..64 {
            let dom = cl.create_domain(s, idx, spec(), |_| {});
            plane.on_domain_created(cl.machine_mut(idx), s, dom);
            let m = cl.machine_mut(idx);
            assert_eq!(m.slot_of(dom), Some(1), "round {round}: slot recycled");
            if let Some(prev) = last {
                assert!(dom.0 > prev, "round {round}: DomainIds are monotonic");
            }
            last = Some(dom.0);
            // Fresh occupant starts clean, whatever its predecessor did.
            {
                let slot = plane.slab.slot(&*m, dom).expect("live slot");
                assert!(!slot.quarantined, "round {round}: inherited quarantine");
                assert_eq!(slot.flush_fail_streak, 0, "round {round}: inherited streak");
                assert!(
                    slot.flush_backoff_until.is_none(),
                    "round {round}: inherited backoff"
                );
                assert!(
                    slot.health_published.is_none(),
                    "round {round}: inherited health"
                );
            }
            assert!(
                plane.quarantined_domains().is_empty(),
                "round {round}: stale quarantine survived churn"
            );
            // Dirty up the slot: quarantine + backoff + published health.
            let now = s.now();
            plane.quarantine(m, dom, now, "churn-test");
            if let Some(slot) = plane.slab.slot_mut(&*m, dom) {
                slot.flush_fail_streak = 3;
                slot.flush_backoff_until = Some(now + SimDuration::from_secs(60));
                slot.health_published = Some((9, true, 9));
            }
            // Odd rounds detach the plane for the destruction: the slab
            // only learns through slot revalidation at the next occupancy.
            if round % 2 == 0 {
                plane.on_domain_destroyed(cl.machine_mut(idx), s, dom);
            }
            cl.destroy_domain(s, idx, dom);
        }
        // Bounded: two concurrent domains peak → two slots, no map growth.
        assert_eq!(plane.slab.len(), 2);
        // One more occupancy revalidates the last (detached-destroy) slot;
        // the stale quarantine bit from round 63 must not survive it.
        let probe = cl.create_domain(s, idx, spec(), |_| {});
        plane.on_domain_created(cl.machine_mut(idx), s, probe);
        assert_eq!(plane.slab.len(), 2);
        assert!(plane.quarantined_domains().is_empty());
    }
}
