//! The paper's planes, re-expressed as rules and policy sets.
//!
//! Each rule here carries exactly the *decision* half of a function the
//! hand-fused planes implemented inline; the enforcement half lives in
//! [`PolicyEngine`](super::PolicyEngine). The constructors at the bottom
//! ([`PolicySet::iorchestra`], [`PolicySet::baseline`], [`PolicySet::sdc`],
//! [`PolicySet::dif`]) assemble them into the planes §5 of the paper
//! compares, byte-identical in trace output to the frozen originals in
//! `crate::legacy`.

use std::collections::BTreeMap;

use iorch_hypervisor::{DomainId, DOM0};
use iorch_simcore::{SimDuration, SimTime};

use crate::anomaly::{AnomalyDetector, AnomalyParams};
use crate::formulas::{
    drr_quantum, inverse_latency_weights, ratio_changed, socket_io_share, socket_process_weight,
};
use crate::planes::{FunctionSet, IOrchestraConfig};

use super::{
    Action, EnforcementPoint, Feed, FlushMode, PolicyCtx, PolicySet, Rule, Stage, Verdict,
};

// --------------------------------------------------------------------
// Admission: anomaly budgets
// --------------------------------------------------------------------

/// Store-write and denied-operation rate budgets ([`QueueAdmission`]).
///
/// Tracks per-domain counter deltas against windowed budgets and emits
/// [`Action::Quarantine`] when a budget trips (and for any domain still
/// flagged from an older window). Bases advance for *every* domain — so
/// an operator clear only counts new traffic — but only unquarantined
/// domains feed the detector.
///
/// [`QueueAdmission`]: EnforcementPoint::QueueAdmission
pub struct AnomalyRule {
    params: AnomalyParams,
    detector: AnomalyDetector,
    write_count_base: BTreeMap<DomainId, u64>,
    denied_base: BTreeMap<DomainId, u64>,
    /// Store-wide `(write_total, denied_total)` at the last per-domain
    /// sweep. Both counters are monotonic, so an unchanged pair proves
    /// every per-domain delta is zero and the sweep can be skipped — the
    /// steady-state tick does no per-domain work here. Domain creation
    /// bumps `write_total` (the boot `has_dirty_pages` write), so a new
    /// domain's base is always seeded on the tick that first sees it.
    last_totals: Option<(u64, u64)>,
}

impl AnomalyRule {
    /// New rule with the given budget parameters.
    pub fn new(params: AnomalyParams) -> Self {
        AnomalyRule {
            params,
            detector: AnomalyDetector::new(params),
            write_count_base: BTreeMap::new(),
            denied_base: BTreeMap::new(),
            last_totals: None,
        }
    }
}

impl Rule for AnomalyRule {
    fn name(&self) -> &'static str {
        "anomaly-budget"
    }

    fn on_tick(&mut self, ctx: &PolicyCtx<'_>, out: &mut Vec<Action>) {
        let m = ctx.machine();
        let now = ctx.now();
        let totals = (m.store.write_total(), m.store.denied_total());
        if self.last_totals != Some(totals) {
            self.last_totals = Some(totals);
            for dom in m.domains() {
                let count = m.store.write_count(dom);
                let base = self.write_count_base.insert(dom, count).unwrap_or(0);
                let delta = count.saturating_sub(base);
                let denied = m.store.denied_count(dom);
                let denied_base = self.denied_base.insert(dom, denied).unwrap_or(0);
                let denied_delta = denied.saturating_sub(denied_base);
                if ctx.is_quarantined(dom) {
                    continue;
                }
                if delta > 0 && self.detector.on_writes(dom, delta, now) {
                    out.push(Action::Quarantine {
                        dom,
                        reason: "write-rate budget",
                    });
                }
                if denied_delta > 0 && self.detector.on_denied(dom, denied_delta, now) {
                    out.push(Action::Quarantine {
                        dom,
                        reason: "denied-rate budget",
                    });
                }
            }
        }
        // Domains still flagged from older windows. Usually duplicates of
        // the pushes above — the engine's quarantine set dedups, exactly
        // as the legacy plane's inline `quarantine()` calls did.
        for dom in self.detector.flagged() {
            out.push(Action::Quarantine {
                dom,
                reason: "anomaly flag",
            });
        }
    }

    fn on_quarantine_cleared(&mut self, dom: DomainId) {
        self.detector.clear(dom);
    }

    fn on_domain_destroyed(&mut self, dom: DomainId) {
        self.write_count_base.remove(&dom);
        self.denied_base.remove(&dom);
        self.detector.remove(dom);
    }

    fn on_crash(&mut self) {
        self.detector = AnomalyDetector::new(self.params);
        self.write_count_base.clear();
        self.denied_base.clear();
        self.last_totals = None;
    }

    fn on_recover(&mut self, ctx: &PolicyCtx<'_>) {
        // Bases seed at the *current* counters: traffic that happened
        // while dom0 was down is not a post-recovery burst.
        let m = ctx.machine();
        for dom in m.domains() {
            self.write_count_base.insert(dom, m.store.write_count(dom));
            self.denied_base.insert(dom, m.store.denied_count(dom));
        }
        self.last_totals = Some((m.store.write_total(), m.store.denied_total()));
    }
}

// --------------------------------------------------------------------
// Flush: Algorithm 1's argmax
// --------------------------------------------------------------------

/// Algorithm 1's decision: when the device is underutilized *and*
/// instantaneously quiet, pick the eligible guest with the most dirty
/// pages and emit a tracked [`Action::Flush`]. Domains with a flush in
/// flight, in retry backoff, or quarantined are skipped — the argmax over
/// the rest IS the fallback to the next-dirtiest domain.
pub struct FlushArgmaxRule;

impl Rule for FlushArgmaxRule {
    fn name(&self) -> &'static str {
        "flush-argmax"
    }

    fn on_tick(&mut self, ctx: &PolicyCtx<'_>, out: &mut Vec<Action>) {
        let Some(report) = ctx.report() else { return };
        if !report.device_underutilized {
            return;
        }
        let m = ctx.machine();
        // Besides the windowed bandwidth check the device must be
        // instantaneously quiet, or the flush would land on top of a read
        // burst the window average missed.
        if m.storage.in_flight() > 8 || m.storage.queue_depth() > 0 {
            return;
        }
        let mut best: Option<(u64, DomainId)> = None;
        // Eligible (dom, nr_dirty) pairs, recorded as the decision's input
        // when tracing is on (the Vec is only built while tracing).
        let mut candidates: Vec<(u32, u64)> = Vec::new();
        let tracing = iorch_simcore::trace::enabled();
        // The engine's dirty set is the scan: domains whose published
        // `has_dirty_pages` flag is down can never enter the argmax, and
        // the set is ascending by id, so the winner (first strict maximum)
        // matches a full ascending scan. The store re-read below keeps the
        // flag authoritative even if something else wrote it.
        for &dom in ctx.dirty_domains() {
            if ctx.flush_in_flight(dom) || ctx.is_quarantined(dom) || ctx.in_flush_backoff(dom) {
                continue;
            }
            let Some(k) = ctx.keys(dom) else { continue };
            let has_dirty = m
                .store
                .read_ref(DOM0, &k.has_dirty_pages)
                .map(|v| v == "1")
                .unwrap_or(false);
            if !has_dirty {
                continue;
            }
            let nr = m
                .store
                .read_ref(DOM0, &k.nr_dirty)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            if tracing {
                candidates.push((dom.0, nr));
            }
            if best.is_none_or(|(bn, _)| nr > bn) {
                best = Some((nr, dom));
            }
        }
        if let Some((nr_dirty, dom)) = best {
            out.push(Action::Flush {
                dom,
                mode: FlushMode::Tracked {
                    nr_dirty,
                    candidates,
                },
            });
        }
    }
}

// --------------------------------------------------------------------
// Flush: DIF's broadcast
// --------------------------------------------------------------------

/// DIF's decision (Elango et al. \[17\]): idleness is broadcast — every
/// VM with dirty pages gets a direct [`Action::Flush`] at once. The
/// simultaneous flush is DIF's weakness vs. Algorithm 1's argmax.
pub struct DifBroadcastRule;

impl Rule for DifBroadcastRule {
    fn name(&self) -> &'static str {
        "dif-broadcast"
    }

    fn on_tick(&mut self, ctx: &PolicyCtx<'_>, out: &mut Vec<Action>) {
        let Some(report) = ctx.report() else { return };
        if !report.device_underutilized {
            return;
        }
        let m = ctx.machine();
        for dom in m.domains() {
            let dirty = m.domain(dom).map(|d| d.kernel.dirty_pages()).unwrap_or(0);
            if dirty > 0 {
                out.push(Action::Flush {
                    dom,
                    mode: FlushMode::Direct,
                });
            }
        }
    }
}

// --------------------------------------------------------------------
// Congestion: Algorithm 2's adjudication
// --------------------------------------------------------------------

/// Algorithm 2's branch: confirm a raised `congested` flag when the host
/// device really is congested (the guest sleeps and joins the wake FIFO),
/// otherwise grant a release. Registering this rule (on a collaborative
/// set) activates the engine's full congestion machinery: `congested`-key
/// watch handling, per-tick reconciliation, and the staggered FIFO wake
/// on relief.
pub struct CongestionAdjudicationRule;

impl Rule for CongestionAdjudicationRule {
    fn name(&self) -> &'static str {
        "congestion-adjudicate"
    }

    fn adjudicates(&self) -> bool {
        true
    }

    fn adjudicate(&mut self, ctx: &PolicyCtx<'_>, _dom: DomainId) -> Option<Verdict> {
        Some(if ctx.machine().storage.is_congested() {
            Verdict::Confirm
        } else {
            Verdict::Release
        })
    }
}

// --------------------------------------------------------------------
// Co-scheduling: Algorithm 3
// --------------------------------------------------------------------

/// Algorithm 3's decision: per-VM route weights (inverse-latency across
/// the sockets the VM's I/O processes span), DRR quanta
/// (`Q_i = BW_max · S^{VMi}_{SKT}`), and a proportional blkio weight,
/// emitted as [`Action::Priority`] when the ratios moved more than the
/// configured threshold or the periodic push interval elapsed.
pub struct CoschedRule {
    last_route_weights: BTreeMap<DomainId, Vec<f64>>,
    last_weight_push: SimTime,
}

impl CoschedRule {
    /// New rule with no pushed history (first tick always pushes).
    pub fn new() -> Self {
        CoschedRule {
            last_route_weights: BTreeMap::new(),
            last_weight_push: SimTime::ZERO,
        }
    }
}

impl Default for CoschedRule {
    fn default() -> Self {
        Self::new()
    }
}

impl Rule for CoschedRule {
    fn name(&self) -> &'static str {
        "numa-cosched"
    }

    fn on_tick(&mut self, ctx: &PolicyCtx<'_>, out: &mut Vec<Action>) {
        let m = ctx.machine();
        if m.iocores.len() < 2 {
            return;
        }
        let now = ctx.now();
        let cfg = ctx.cfg();
        // L_i per socket, in microseconds.
        let mut lat_by_socket: BTreeMap<usize, f64> = BTreeMap::new();
        for c in &m.iocores {
            lat_by_socket.insert(c.socket(), c.avg_latency().as_micros_f64());
        }
        let vm_share = 1.0 / m.domain_count().max(1) as f64;
        let device_bw = m.storage.device_bandwidth();
        let sockets = m.topology.sockets();
        let interval_due =
            now.saturating_since(self.last_weight_push) >= cfg.weight_update_interval;
        let mut pushed = false;
        for dom in m.domains() {
            if ctx.is_quarantined(dom) {
                continue;
            }
            let Some(d) = m.domain(dom) else { continue };
            // Process weight per socket: each VCPU carries weight 1 (the
            // guest publishes per-process weights; with one I/O thread per
            // VCPU they are uniform).
            let vcpu_sockets: Vec<usize> = (0..d.spec.vcpus)
                .map(|v| d.vcpu_socket(&m.topology, v))
                .collect();
            let vcpu_weights = vec![1.0; vcpu_sockets.len()];
            let spanned: Vec<usize> = {
                let mut v = vcpu_sockets.clone();
                v.sort_unstable();
                v.dedup();
                v
            };
            // Route weights: inverse-latency across the spanned sockets,
            // scaled by where the VM's I/O processes actually live.
            let lats: Vec<f64> = spanned
                .iter()
                .map(|sk| lat_by_socket.get(sk).copied().unwrap_or(1.0))
                .collect();
            let inv = inverse_latency_weights(&lats);
            let total_w: f64 = vcpu_weights.iter().sum();
            let mut route = vec![0.0; sockets];
            for (j, sk) in spanned.iter().enumerate() {
                let proc_w = socket_process_weight(&vcpu_weights, &vcpu_sockets, *sk);
                route[*sk] = inv[j] * (proc_w / total_w).max(0.05);
            }
            let norm: f64 = route.iter().sum();
            if norm > 0.0 {
                for r in &mut route {
                    *r /= norm;
                }
            }
            let stale = self
                .last_route_weights
                .get(&dom)
                .is_none_or(|prev| ratio_changed(prev, &route, cfg.weight_change_threshold));
            if !(stale || interval_due) {
                continue;
            }
            pushed = true;
            self.last_route_weights.insert(dom, route.clone());
            // Quanta per socket: Q_i = BW_max · S^{VMi}_{SKT}.
            let quanta: Vec<(usize, u64)> = spanned
                .iter()
                .map(|sk| {
                    let w_skt = socket_process_weight(&vcpu_weights, &vcpu_sockets, *sk);
                    let share = socket_io_share(w_skt, total_w, vm_share);
                    (*sk, drr_quantum(device_bw, share, cfg.drr_round))
                })
                .collect();
            out.push(Action::Priority {
                dom,
                route,
                quanta,
                // cgroup blkio weight at the device, proportional to VM
                // share.
                blkio_weight: ((vm_share * 1000.0) as u32).clamp(10, 1000),
            });
        }
        if pushed {
            self.last_weight_push = now;
        }
    }

    fn on_domain_destroyed(&mut self, dom: DomainId) {
        self.last_route_weights.remove(&dom);
    }

    fn on_crash(&mut self) {
        self.last_route_weights.clear();
        self.last_weight_push = SimTime::ZERO;
    }
}

// --------------------------------------------------------------------
// Built-in policy sets
// --------------------------------------------------------------------

impl PolicySet {
    /// The paper's system as a policy set: Algorithms 1–3 plus anomaly
    /// admission, staged per `cfg.functions` (an ablation is
    /// configuration, not a fork).
    pub fn iorchestra(cfg: IOrchestraConfig) -> PolicySet {
        let f = cfg.functions;
        let anomaly = cfg.anomaly;
        let mut set = PolicySet::custom("iorchestra", cfg)
            .collaborative(true)
            .stage(
                Stage::new("admission", EnforcementPoint::QueueAdmission)
                    .rule(AnomalyRule::new(anomaly)),
            );
        if f.flush {
            set = set.stage(
                Stage::new("flush", EnforcementPoint::CommandIssue)
                    .feed(Feed::DirtyPages)
                    .rule(FlushArgmaxRule),
            );
        }
        if f.congestion {
            set = set.stage(
                Stage::new("congestion", EnforcementPoint::CommandIssue)
                    .rule(CongestionAdjudicationRule),
            );
        }
        if f.cosched {
            set = set.stage(
                Stage::new("cosched", EnforcementPoint::DeviceDispatch).rule(CoschedRule::new()),
            );
        }
        set
    }

    /// The paper's Baseline: no stages, no tick, no store choreography —
    /// the guest's congestion avoidance runs blind (pair with paravirt
    /// I/O).
    pub fn baseline() -> PolicySet {
        PolicySet::custom("baseline", IOrchestraConfig::new(0)).tick(None)
    }

    /// SDC: Baseline behaviour paired with a single dedicated I/O core
    /// \[22, 29\].
    pub fn sdc() -> PolicySet {
        PolicySet::custom("sdc", IOrchestraConfig::new(0)).tick(None)
    }

    /// DIF \[17\]: disk-idleness-based flush broadcast, no store
    /// choreography.
    pub fn dif() -> PolicySet {
        PolicySet::custom("dif", IOrchestraConfig::new(0))
            .tick(Some(SimDuration::from_millis(100)))
            .stage(Stage::new("flush", EnforcementPoint::CommandIssue).rule(DifBroadcastRule))
    }

    /// Look up a built-in set by name (the ablation sweep's vocabulary):
    /// `iorchestra`, `flush_only`, `congestion_only`, `cosched_only`,
    /// `baseline`, `sdc`, or `dif`. Returns `None` for unknown names.
    pub fn named(name: &str, seed: u64) -> Option<PolicySet> {
        Some(match name {
            "iorchestra" => PolicySet::iorchestra(IOrchestraConfig::new(seed)),
            "flush_only" => PolicySet::iorchestra(
                IOrchestraConfig::new(seed).with_functions(FunctionSet::flush_only()),
            ),
            "congestion_only" => PolicySet::iorchestra(
                IOrchestraConfig::new(seed).with_functions(FunctionSet::congestion_only()),
            ),
            "cosched_only" => PolicySet::iorchestra(
                IOrchestraConfig::new(seed).with_functions(FunctionSet::cosched_only()),
            ),
            "baseline" => PolicySet::baseline(),
            "sdc" => PolicySet::sdc(),
            "dif" => PolicySet::dif(),
            _ => return None,
        })
    }
}

impl From<IOrchestraConfig> for PolicySet {
    /// A bare config means the paper's full system: the historic
    /// `IOrchestraPlane::new(cfg)` spelling builds
    /// [`PolicySet::iorchestra`] through this conversion.
    fn from(cfg: IOrchestraConfig) -> Self {
        PolicySet::iorchestra(cfg)
    }
}
