//! # iorchestra — the paper's collaborative-virtualization framework
//!
//! Reproduction of *IOrchestra: Supporting High-Performance Data-Intensive
//! Applications in the Cloud via Collaborative Virtualization* (SC '15).
//!
//! IOrchestra bridges the **semantic gap** between guest VMs and the
//! hypervisor for I/O: guests publish key state (dirty pages, congestion
//! intents) into a shared system store; a hypervisor-side monitoring
//! module watches device and I/O-core status; a management module computes
//! new configurations and publishes them back, and guest-side driver
//! callbacks apply them. Three functions ride on that channel:
//!
//! 1. **Cross-domain flush control** (Algorithm 1): flush the guest with
//!    the most dirty pages when the device is under 1/10 utilized;
//! 2. **Collaborative congestion control** (Algorithm 2): a guest about to
//!    enable congestion avoidance first asks the host; false triggers get
//!    a `release_request` instead of a sleep, and truly congested guests
//!    are woken FIFO with random 0–99 ms interleave on relief;
//! 3. **Inter-domain I/O co-scheduling** (Algorithm 3 + §3.3 formulas in
//!    [`formulas`]): per-socket dedicated cores with deficit-round-robin
//!    quanta `Q_i = BW_max · S^{VMi}_{SKT}` and inverse-latency weight
//!    distribution for cross-socket VMs.
//!
//! Every control plane — the paper's system, its `FunctionSet` ablations,
//! and the comparison systems (Baseline/SDC, DIF \[17\]) — is a
//! [`policy::PolicySet`] executed by the [`policy::PolicyEngine`]: typed
//! enforcement points, staged rules, engine-owned enforcement. See the
//! [`policy`] module for the architecture and its determinism contract;
//! [`SystemKind`] provisions any plane onto a machine. The pre-redesign
//! hand-fused planes survive in [`legacy`] as the byte-identity oracle.

#![warn(missing_docs)]

pub mod anomaly;
pub mod cluster;
pub mod formulas;
pub mod keys;
pub mod legacy;
pub mod monitor;
pub mod netbuf;
pub mod planes;
pub mod policy;
mod system;

pub use anomaly::{AnomalyDetector, AnomalyParams};
pub use cluster::{ClusterConfig, ClusterTier, NodeAgent, NodeCaps};
pub use monitor::{MonitorReport, MonitoringModule};
pub use planes::{FunctionSet, IOrchestraConfig, IOrchestraPlane, PlaneStats};
pub use policy::{Action, PolicyCtx, PolicyEngine, PolicySet, Rule, Stage};
pub use system::SystemKind;
