//! # iorchestra — the paper's collaborative-virtualization framework
//!
//! Reproduction of *IOrchestra: Supporting High-Performance Data-Intensive
//! Applications in the Cloud via Collaborative Virtualization* (SC '15).
//!
//! IOrchestra bridges the **semantic gap** between guest VMs and the
//! hypervisor for I/O: guests publish key state (dirty pages, congestion
//! intents) into a shared system store; a hypervisor-side monitoring
//! module watches device and I/O-core status; a management module computes
//! new configurations and publishes them back, and guest-side driver
//! callbacks apply them. Three functions ride on that channel:
//!
//! 1. **Cross-domain flush control** (Algorithm 1): flush the guest with
//!    the most dirty pages when the device is under 1/10 utilized —
//!    [`planes::IOrchestraPlane`] + [`keys`];
//! 2. **Collaborative congestion control** (Algorithm 2): a guest about to
//!    enable congestion avoidance first asks the host; false triggers get
//!    a `release_request` instead of a sleep, and truly congested guests
//!    are woken FIFO with random 0–99 ms interleave on relief;
//! 3. **Inter-domain I/O co-scheduling** (Algorithm 3 + §3.3 formulas in
//!    [`formulas`]): per-socket dedicated cores with deficit-round-robin
//!    quanta `Q_i = BW_max · S^{VMi}_{SKT}` and inverse-latency weight
//!    distribution for cross-socket VMs.
//!
//! The comparison systems are control planes too: [`planes::BaselinePlane`]
//! (stock, also used for SDC) and [`planes::DifPlane`] (disk-idleness
//! flushing \[17\]). [`SystemKind`] provisions any of them onto a machine.

#![warn(missing_docs)]

pub mod anomaly;
pub mod formulas;
pub mod keys;
pub mod monitor;
pub mod netbuf;
pub mod planes;
mod system;

pub use anomaly::{AnomalyDetector, AnomalyParams};
pub use monitor::{MonitorReport, MonitoringModule};
pub use planes::{
    BaselinePlane, DifPlane, FunctionSet, IOrchestraConfig, IOrchestraPlane, PlaneStats,
};
pub use system::SystemKind;
