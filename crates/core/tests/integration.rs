//! Policy-level integration tests: the IOrchestra plane's store
//! choreography, statistics and per-function toggles observed directly.

use iorch_guestos::FileOp;
use iorch_hypervisor::{Cluster, IoPathMode, MachineConfig, VmSpec, DOM0};
use iorch_simcore::{SimDuration, SimTime, Simulation};
use iorchestra::{
    keys, FunctionSet, IOrchestraConfig, IOrchestraPlane, PolicyEngine, PolicySet, SystemKind,
};

#[test]
fn store_keys_are_registered_on_domain_creation() {
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let idx = SystemKind::IOrchestra.provision(cl, s, 1);
    let dom = cl.create_domain(s, idx, VmSpec::new(2, 4), |_| {});
    let m = cl.machine(idx);
    for key in [
        keys::flush_now(dom),
        keys::congested(dom),
        keys::release_request(dom),
        keys::has_dirty_pages(dom),
    ] {
        assert_eq!(m.store.read(DOM0, &key).unwrap(), "0", "{key}");
    }
}

#[test]
fn dirty_publication_flows_to_store() {
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let idx = SystemKind::IOrchestraWith(FunctionSet::flush_only()).provision(cl, s, 2);
    let dom = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(10), |g| {
        // Slow stock clocks so only the policy flushes.
        g.wb.periodic_interval = SimDuration::from_secs(60);
        g.wb.dirty_expire = SimDuration::from_secs(120);
    });
    let file = cl
        .machine_mut(idx)
        .kernel_mut(dom)
        .unwrap()
        .create_file(32 << 20)
        .unwrap();
    cl.submit_op(
        s,
        idx,
        dom,
        0,
        FileOp::Write {
            file,
            offset: 0,
            len: 4 << 20,
        },
        None,
    );
    // Right after the write (before the first 100 ms management tick can
    // flush it) the store must show has_dirty_pages=1 and a fresh nr.
    sim.run_until(SimTime::from_millis(5));
    let m = sim.world().machine(idx);
    assert_eq!(m.store.read(DOM0, keys::has_dirty_pages(dom)).unwrap(), "1");
    let nr: u64 = m
        .store
        .read(DOM0, keys::nr_dirty(dom))
        .unwrap()
        .parse()
        .unwrap();
    assert!(nr >= 1024, "nr={nr}"); // 4 MiB = 1024 pages
                                    // Eventually the device idles and Algorithm 1 flushes it.
    sim.run_until(SimTime::from_secs(3));
    let m = sim.world().machine(idx);
    assert_eq!(m.store.read(DOM0, keys::has_dirty_pages(dom)).unwrap(), "0");
}

#[test]
fn plane_stats_count_activations() {
    // Drive the flush choreography and check PlaneStats via a plane we
    // hold the configuration of (provisioned manually).
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let idx = cl.add_machine(MachineConfig::paper_testbed(3, IoPathMode::Paravirt));
    let plane =
        IOrchestraPlane::new(IOrchestraConfig::new(3).with_functions(FunctionSet::flush_only()));
    cl.install_control(s, idx, Box::new(plane));
    let dom = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(10), |g| {
        g.wb.periodic_interval = SimDuration::from_secs(60);
        g.wb.dirty_expire = SimDuration::from_secs(120);
    });
    let file = cl
        .machine_mut(idx)
        .kernel_mut(dom)
        .unwrap()
        .create_file(32 << 20)
        .unwrap();
    for i in 0..4u64 {
        cl.submit_op(
            s,
            idx,
            dom,
            0,
            FileOp::Write {
                file,
                offset: i * (4 << 20),
                len: 4 << 20,
            },
            None,
        );
    }
    sim.run_until(SimTime::from_secs(4));
    // The flush round trip completed: dirty drained and flush_now reset.
    let m = sim.world().machine(idx);
    assert_eq!(m.store.read(DOM0, keys::flush_now(dom)).unwrap(), "0");
    assert_eq!(m.domain(dom).unwrap().kernel.dirty_pages(), 0);
    let (_, wbytes) = m.storage.monitor().byte_counts();
    assert!(wbytes >= 16 << 20);
}

#[test]
fn cosched_programs_weights_for_cross_socket_vm() {
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let idx = SystemKind::IOrchestra.provision(cl, s, 4);
    // A 10-VCPU VM must span both sockets (2x6 cores, 2 reserved).
    let dom = cl.create_domain(s, idx, VmSpec::new(10, 8).with_disk_gb(20), |_| {});
    sim.run_until(SimTime::from_secs(3));
    let m = sim.world().machine(idx);
    // The management module published per-socket weights to the store.
    let w0 = m.store.read(DOM0, keys::socket_weight(dom, 0));
    let w1 = m.store.read(DOM0, keys::socket_weight(dom, 1));
    assert!(
        w0.is_ok() && w1.is_ok(),
        "weights not published: {w0:?} {w1:?}"
    );
    let w0: f64 = w0.unwrap().parse().unwrap();
    let w1: f64 = w1.unwrap().parse().unwrap();
    assert!(
        (w0 + w1 - 1.0).abs() < 0.01,
        "weights must sum to 1: {w0} {w1}"
    );
    assert!(w0 > 0.0 && w1 > 0.0, "a cross-socket VM uses both sockets");
}

/// Satellite contract for the operator clear channel: a `clear` written
/// while the domain is *not* quarantined, and a second clear right after a
/// first one, are strict no-ops — no health-key writes, no
/// quarantine-cleared decisions, no anomaly/streak resets riding along.
#[test]
fn clear_without_quarantine_and_double_clear_are_noops() {
    iorch_simcore::gen::for_each_seed(0xC1EA12, 8, |seed, rng| {
        let mut sim = Simulation::new(Cluster::new());
        let (cl, s) = sim.parts_mut();
        let idx = SystemKind::IOrchestra.provision(cl, s, seed);
        let doms = 1 + rng.below(3);
        let mut ids = Vec::new();
        for _ in 0..doms {
            ids.push(cl.create_domain(s, idx, VmSpec::new(1, 2).with_disk_gb(8), |_| {}));
        }
        sim.run_until(SimTime::from_secs(1));
        let health = |m: &iorch_hypervisor::Machine, dom| {
            (
                m.store
                    .read(DOM0, keys::health_quarantined(dom))
                    .unwrap_or_default(),
                m.store
                    .read(DOM0, keys::health_flush_timeouts(dom))
                    .unwrap_or_default(),
                m.store
                    .read(DOM0, keys::health_store_denied(dom))
                    .unwrap_or_default(),
            )
        };
        let before: Vec<_> = {
            let m = sim.world().machine(idx);
            ids.iter().map(|&d| health(m, d)).collect()
        };
        for (i, b) in before.iter().enumerate() {
            assert_eq!(b.0, "0", "seed {seed}: dom {i} must start unquarantined");
        }
        let session = iorch_simcore::trace::TraceSession::new();
        // Two clears for every (unquarantined) domain: the first is a
        // clear-without-quarantine, the second a double clear.
        let mut t = SimTime::from_secs(1);
        for _round in 0..2 {
            let (cl, s) = sim.parts_mut();
            for &dom in &ids {
                let path = keys::clear_quarantine(dom);
                cl.cp_action(s, idx, move |m, _s| {
                    let _ = m.store.write(DOM0, path.as_str(), "1");
                });
            }
            t += SimDuration::from_millis(500);
            sim.run_until(t);
        }
        let events = session.finish().into_events();
        if iorch_simcore::trace::COMPILED {
            let decisions = iorch_simcore::trace::render_decision_log(&events);
            assert!(
                !decisions.contains("quarantine_cleared"),
                "seed {seed}: clear of an unquarantined domain emitted a decision"
            );
        }
        let m = sim.world().machine(idx);
        for (i, &dom) in ids.iter().enumerate() {
            assert_eq!(
                health(m, dom),
                before[i],
                "seed {seed}: no-op clear changed dom {i}'s health keys"
            );
            // The command edge was consumed, so the channel is re-armed.
            assert_eq!(
                m.store
                    .read(DOM0, keys::clear_quarantine(dom))
                    .unwrap_or_default(),
                "0",
                "seed {seed}: clear command not consumed"
            );
        }
    });
}

#[test]
fn dif_and_baseline_planes_never_touch_the_store() {
    for plane in [true, false] {
        let mut sim = Simulation::new(Cluster::new());
        let (cl, s) = sim.parts_mut();
        let idx = cl.add_machine(MachineConfig::paper_testbed(5, IoPathMode::Paravirt));
        if plane {
            cl.install_control(s, idx, Box::new(PolicyEngine::new(PolicySet::dif())));
        } else {
            cl.install_control(s, idx, Box::new(PolicyEngine::new(PolicySet::baseline())));
        }
        let dom = cl.create_domain(s, idx, VmSpec::new(1, 1).with_disk_gb(6), |_| {});
        let file = cl
            .machine_mut(idx)
            .kernel_mut(dom)
            .unwrap()
            .create_file(8 << 20)
            .unwrap();
        cl.submit_op(
            s,
            idx,
            dom,
            0,
            FileOp::Write {
                file,
                offset: 0,
                len: 2 << 20,
            },
            None,
        );
        sim.run_until(SimTime::from_secs(2));
        let m = sim.world().machine(idx);
        // Neither comparison system uses the IOrchestra keys.
        assert!(m.store.read(DOM0, keys::flush_now(dom)).is_err());
        assert!(m.store.read(DOM0, keys::congested(dom)).is_err());
    }
}
