//! Property-based tests for the co-scheduling formulas and the anomaly
//! detector.

use proptest::prelude::*;

use iorch_hypervisor::DomainId;
use iorch_simcore::{SimDuration, SimTime};
use iorchestra::anomaly::{AnomalyDetector, AnomalyParams};
use iorchestra::formulas::{
    drr_quantum, inverse_latency_weights, ratio_changed, socket_io_share, socket_process_weight,
};

proptest! {
    /// Inverse-latency weights: sum to one, all finite and non-negative,
    /// and ordering is inverse to the latencies.
    #[test]
    fn weights_are_a_distribution(lats in proptest::collection::vec(0.0f64..1e6, 1..8)) {
        let w = inverse_latency_weights(&lats);
        prop_assert_eq!(w.len(), lats.len());
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for (i, a) in lats.iter().enumerate() {
            prop_assert!(w[i].is_finite() && w[i] >= 0.0);
            for (j, b) in lats.iter().enumerate() {
                if a.max(0.5) < b.max(0.5) {
                    prop_assert!(w[i] >= w[j], "faster socket must weigh more");
                }
            }
        }
    }

    /// Socket shares partition the VM share exactly.
    #[test]
    fn shares_partition_vm_share(
        weights in proptest::collection::vec(0.01f64..100.0, 1..16),
        sockets in proptest::collection::vec(0usize..4, 16),
        vm_share in 0.01f64..1.0,
    ) {
        let n = weights.len();
        let socks = &sockets[..n];
        let total: f64 = weights.iter().sum();
        let sum: f64 = (0..4)
            .map(|sk| socket_io_share(socket_process_weight(&weights, socks, sk), total, vm_share))
            .sum();
        prop_assert!((sum - vm_share).abs() < 1e-9);
    }

    /// Quanta are monotone in share and bandwidth and never below the floor.
    #[test]
    fn quantum_monotone(bw in 1u64..10_000_000_000, s1 in 0.0f64..1.0, s2 in 0.0f64..1.0) {
        let round = SimDuration::from_millis(1);
        let q1 = drr_quantum(bw, s1, round);
        let q2 = drr_quantum(bw, s2, round);
        prop_assert!(q1 >= 4096 && q2 >= 4096);
        if s1 < s2 {
            prop_assert!(q1 <= q2);
        }
    }

    /// ratio_changed is reflexive-false (same weights never "change") and
    /// symmetric shapes always change.
    #[test]
    fn ratio_change_properties(w in proptest::collection::vec(0.01f64..10.0, 1..6), thr in 0.01f64..2.0) {
        prop_assert!(!ratio_changed(&w, &w, thr));
        let mut longer = w.clone();
        longer.push(1.0);
        prop_assert!(ratio_changed(&w, &longer, thr));
    }

    /// The anomaly detector never flags a domain whose rate stays within
    /// budget, and always flags one that exceeds it in a single window.
    #[test]
    fn detector_threshold_exact(budget in 1u64..100, overshoot in 1u64..100) {
        let params = AnomalyParams {
            window: SimDuration::from_millis(100),
            max_writes_per_window: budget,
        };
        let mut det = AnomalyDetector::new(params);
        // Exactly at budget: never flagged.
        for i in 0..budget {
            prop_assert!(!det.on_write(DomainId(1), SimTime::from_millis(i.min(99))));
        }
        prop_assert!(!det.is_flagged(DomainId(1)));
        // Exceeding within one window: flagged.
        let mut det2 = AnomalyDetector::new(params);
        let mut flagged = false;
        for _ in 0..budget + overshoot {
            flagged = det2.on_write(DomainId(2), SimTime::from_millis(50));
        }
        prop_assert!(flagged);
    }
}
