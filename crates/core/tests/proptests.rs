//! Randomized tests for the co-scheduling formulas and the anomaly
//! detector, driven by the in-tree generators (`iorch_simcore::gen`) with
//! a fixed seed sweep — no external property-test crate.

use iorch_hypervisor::DomainId;
use iorch_simcore::{gen, SimDuration, SimTime};
use iorchestra::anomaly::{AnomalyDetector, AnomalyParams};
use iorchestra::formulas::{
    drr_quantum, inverse_latency_weights, ratio_changed, socket_io_share, socket_process_weight,
};

const CASES: usize = 64;

/// Inverse-latency weights: sum to one, all finite and non-negative, and
/// ordering is inverse to the latencies.
#[test]
fn weights_are_a_distribution() {
    gen::for_each_seed(0xC0_0001, CASES, |seed, rng| {
        let lats = gen::vec_between(rng, 1, 8, |r| gen::f64_in(r, 0.0, 1e6));
        let w = inverse_latency_weights(&lats);
        assert_eq!(w.len(), lats.len(), "seed {seed}");
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "seed {seed}");
        for (i, a) in lats.iter().enumerate() {
            assert!(w[i].is_finite() && w[i] >= 0.0, "seed {seed}");
            for (j, b) in lats.iter().enumerate() {
                if a.max(0.5) < b.max(0.5) {
                    assert!(w[i] >= w[j], "faster socket must weigh more (seed {seed})");
                }
            }
        }
    });
}

/// Socket shares partition the VM share exactly.
#[test]
fn shares_partition_vm_share() {
    gen::for_each_seed(0xC0_0002, CASES, |seed, rng| {
        let weights = gen::vec_between(rng, 1, 16, |r| gen::f64_in(r, 0.01, 100.0));
        let socks = gen::vec_of(rng, weights.len(), |r| r.below(4) as usize);
        let vm_share = gen::f64_in(rng, 0.01, 1.0);
        let total: f64 = weights.iter().sum();
        let sum: f64 = (0..4)
            .map(|sk| socket_io_share(socket_process_weight(&weights, &socks, sk), total, vm_share))
            .sum();
        assert!((sum - vm_share).abs() < 1e-9, "seed {seed}");
    });
}

/// Quanta are monotone in share and bandwidth and never below the floor.
#[test]
fn quantum_monotone() {
    gen::for_each_seed(0xC0_0003, CASES, |seed, rng| {
        let bw = 1 + rng.below(10_000_000_000);
        let s1 = rng.f64();
        let s2 = rng.f64();
        let round = SimDuration::from_millis(1);
        let q1 = drr_quantum(bw, s1, round);
        let q2 = drr_quantum(bw, s2, round);
        assert!(q1 >= 4096 && q2 >= 4096, "seed {seed}");
        if s1 < s2 {
            assert!(q1 <= q2, "seed {seed}");
        }
    });
}

/// ratio_changed is reflexive-false (same weights never "change") and
/// shape mismatches always change.
#[test]
fn ratio_change_properties() {
    gen::for_each_seed(0xC0_0004, CASES, |seed, rng| {
        let w = gen::vec_between(rng, 1, 6, |r| gen::f64_in(r, 0.01, 10.0));
        let thr = gen::f64_in(rng, 0.01, 2.0);
        assert!(!ratio_changed(&w, &w, thr), "seed {seed}");
        let mut longer = w.clone();
        longer.push(1.0);
        assert!(ratio_changed(&w, &longer, thr), "seed {seed}");
    });
}

/// The anomaly detector never flags a domain whose rate stays within
/// budget, and always flags one that exceeds it in a single window.
#[test]
fn detector_threshold_exact() {
    gen::for_each_seed(0xC0_0005, CASES, |seed, rng| {
        let budget = 1 + rng.below(99);
        let overshoot = 1 + rng.below(99);
        let params = AnomalyParams {
            window: SimDuration::from_millis(100),
            max_writes_per_window: budget,
            ..AnomalyParams::default()
        };
        let mut det = AnomalyDetector::new(params);
        // Exactly at budget: never flagged.
        for i in 0..budget {
            assert!(
                !det.on_write(DomainId(1), SimTime::from_millis(i.min(99))),
                "seed {seed}"
            );
        }
        assert!(!det.is_flagged(DomainId(1)), "seed {seed}");
        // Exceeding within one window: flagged.
        let mut det2 = AnomalyDetector::new(params);
        let mut flagged = false;
        for _ in 0..budget + overshoot {
            flagged = det2.on_write(DomainId(2), SimTime::from_millis(50));
        }
        assert!(flagged, "seed {seed}");
    });
}
