//! Deterministic trace replay: named fault scenarios that any debugging
//! session can re-run from a `(SystemKind, seed, scenario)` tuple and get
//! a byte-identical event timeline out of.
//!
//! Each scenario builds a cluster, installs a [`FaultPlan`], runs the
//! simulation under an installed trace recorder and returns the recorded
//! events. The `tracedump` binary renders them as a human-readable
//! timeline, a decision log, or Chrome `about:tracing` JSON. The presets
//! mirror the fault-injection suite (`tests/faults.rs`) so a failing
//! scenario there can be replayed here with full event visibility.

use std::cell::RefCell;
use std::rc::Rc;

use iorch_guestos::{FileOp, GuestConfig};
use iorch_hypervisor::{Cluster, DomainId, Sched, VmSpec};
use iorch_simcore::trace::{TraceEvent, TraceSession};
use iorch_simcore::{FaultKind, FaultPlan, FaultWindow, SimDuration, SimTime, Simulation};
use iorch_workloads::{recorder, spawn_multistream, MultiStreamParams, Rec, VmRef};
use iorchestra::cluster::ClusterTier;
use iorchestra::{ClusterConfig, SystemKind};

/// Named scenarios: `(name, one-line description)`.
pub const SCENARIOS: &[(&str, &str)] = &[
    (
        "mixed8",
        "8 domains: readers driving congestion, dirty writers flushed, a store hammer quarantined",
    ),
    (
        "unresponsive_flush",
        "a guest ignores flush_now: timeout, fallback to the next-dirtiest, quarantine",
    ),
    (
        "store_hammer",
        "a guest hammers the system store and is quarantined while a co-resident keeps working",
    ),
    (
        "device_stall",
        "the device stalls completions for 400 ms mid-run; the workload must resume",
    ),
    (
        "plane_crash",
        "dom0 crashes mid-run and recovers: quarantine and flush state rebuilt from the store",
    ),
    (
        "lossy_bus",
        "XenBus drops, duplicates and reorders events; epoch-stamped commands keep the protocol safe",
    ),
    (
        "node_crash",
        "a cluster node dies mid-run: lease expiry, failover to survivors, reconcile on rejoin",
    ),
    (
        "net_partition",
        "a node is cut off on a lossy network: the cluster serves degraded and heals to steady state",
    ),
];

/// Installs a machine (and its control plane) into the cluster and
/// returns the machine index. Scenarios are written against this seam so
/// the same workload can run under a [`SystemKind`] *or* an arbitrary
/// boxed control plane — the policy-equivalence oracle uses it to replay
/// every scenario under both the legacy hand-fused planes and the policy
/// engine and compare the traces byte for byte.
pub type Provision<'a> = &'a mut dyn FnMut(&mut Cluster, &mut Sched) -> usize;

/// Parse a system name as accepted by the `tracedump` CLI.
pub fn parse_system(name: &str) -> Option<SystemKind> {
    Some(match name {
        "baseline" => SystemKind::Baseline,
        "sdc" => SystemKind::Sdc,
        "dif" => SystemKind::Dif,
        "iorchestra" => SystemKind::IOrchestra,
        _ => return None,
    })
}

/// Run `scenario` under a trace recorder and return the recorded events.
/// Returns `None` for an unknown scenario name. With tracing compiled
/// out (`--cfg iorch_trace_off`) the scenario still runs but the event
/// list is empty.
pub fn run_scenario(kind: SystemKind, seed: u64, scenario: &str) -> Option<Vec<TraceEvent>> {
    run_scenario_with(&mut |cl, s| kind.provision(cl, s, seed), seed, scenario)
}

/// [`run_scenario`] with an explicit provisioner: the scenario runs on
/// whatever machine/control-plane combination `prov` installs. `seed`
/// still drives the workload generators.
pub fn run_scenario_with(prov: Provision, seed: u64, scenario: &str) -> Option<Vec<TraceEvent>> {
    let session = TraceSession::new();
    let known = run_scenario_sim_with(prov, seed, scenario, FaultPlan::new());
    let rec = session.finish();
    known.map(|_| rec.into_events())
}

/// Run `scenario` with `extra` faults layered on top of the scenario's own
/// plan, and return the finished simulation for post-run inspection. The
/// convergence oracle uses this to inject a [`FaultKind::PlaneCrash`] at
/// every tick boundary and then compare the steady state reached against
/// the no-crash run's. `extra` must not carry bus/watch/device faults — a
/// second machine-level install would replace the scenario's own plan.
pub fn run_scenario_sim(
    kind: SystemKind,
    seed: u64,
    scenario: &str,
    extra: FaultPlan,
) -> Option<(Simulation<Cluster>, usize)> {
    run_scenario_sim_with(
        &mut |cl, s| kind.provision(cl, s, seed),
        seed,
        scenario,
        extra,
    )
}

/// [`run_scenario_sim`] with an explicit provisioner (see [`Provision`]).
pub fn run_scenario_sim_with(
    prov: Provision,
    seed: u64,
    scenario: &str,
    extra: FaultPlan,
) -> Option<(Simulation<Cluster>, usize)> {
    Some(match scenario {
        "mixed8" => mixed8(prov, seed, extra),
        "unresponsive_flush" => unresponsive_flush(prov, seed, extra),
        "store_hammer" => store_hammer(prov, seed, extra),
        "device_stall" => device_stall(prov, seed, extra),
        "plane_crash" => plane_crash(prov, seed, extra),
        "lossy_bus" => lossy_bus(prov, seed, extra),
        "node_crash" | "net_partition" => {
            let (sim, _tier, idx) = run_cluster_scenario(prov, seed, scenario, extra)?;
            (sim, idx)
        }
        _ => return None,
    })
}

/// Run a cluster-tier scenario and return the tier alongside the finished
/// simulation, for post-run inspection (steady-state digests, ownership
/// checks). `extra` is installed on the tier, so the cluster convergence
/// oracle can layer [`FaultKind::NodeCrash`] / [`FaultKind::ControllerCrash`]
/// events on top of the scenario's own plan. Returns `None` for scenarios
/// that are not cluster-tier ones.
#[allow(clippy::type_complexity)]
pub fn run_cluster_scenario(
    prov: Provision,
    seed: u64,
    scenario: &str,
    extra: FaultPlan,
) -> Option<(Simulation<Cluster>, Rc<RefCell<ClusterTier>>, usize)> {
    let plan = match scenario {
        // Node 1 dies at 1 s (well past one lease TTL) and reboots 800 ms
        // later; a transient network-delay window stresses the retry path
        // while the rejoined node is being reconciled.
        "node_crash" => FaultPlan::new()
            .with(
                FaultWindow::always(),
                FaultKind::NodeCrash {
                    node: 1,
                    at: SimTime::from_millis(1000),
                    recover_after: SimDuration::from_millis(800),
                },
            )
            .with(
                FaultWindow::new(SimTime::from_millis(3000), SimTime::from_millis(4000)),
                FaultKind::NetDelay {
                    extra: SimDuration::from_millis(2),
                },
            ),
        // Node 2 is cut off from everyone for 1.5 s while the rest of the
        // network drops every 9th, duplicates every 7th and reorders
        // delivery batches: the controller declares it dead and fails its
        // domains over; the partitioned node keeps serving; after heal the
        // duplicate copies are reconciled away make-before-break.
        "net_partition" => FaultPlan::new()
            .with(
                FaultWindow::new(SimTime::from_millis(1000), SimTime::from_millis(2500)),
                FaultKind::NetPartition { group: 1 << 2 },
            )
            .with(
                FaultWindow::new(SimTime::from_millis(1000), SimTime::from_millis(3500)),
                FaultKind::NetUnreliable {
                    drop_1_in: 9,
                    dup_1_in: 7,
                    reorder: true,
                },
            ),
        _ => return None,
    };
    let (mut sim, idx) = sim_with(prov);
    let (cl, s) = sim.parts_mut();
    // Two more IOrchestra nodes alongside the provisioned machine: the
    // provisioner seam stays single-shot so the policy-equivalence oracle
    // can still swap machine 0's plane.
    let m1 = SystemKind::IOrchestra.provision(cl, s, seed ^ 1);
    let m2 = SystemKind::IOrchestra.provision(cl, s, seed ^ 2);
    let tier = ClusterTier::install(cl, s, &[idx, m1, m2], ClusterConfig::default());
    {
        let mut t = tier.borrow_mut();
        for i in 0..8u32 {
            t.submit_domain(VmSpec::new(1 + i % 2, 1).with_disk_gb(8));
        }
        t.install_faults(s, &plan);
        t.install_faults(s, &extra);
    }
    sim.run_until(SimTime::from_secs(10));
    Some((sim, tier, idx))
}

fn sim_with(prov: Provision) -> (Simulation<Cluster>, usize) {
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let idx = prov(cl, s);
    (sim, idx)
}

/// Stock (slow) writeback clocks: only the collaborative flush can drain
/// dirty pages within the few simulated seconds a scenario runs.
fn slow_wb(g: &mut GuestConfig) {
    g.wb.periodic_interval = SimDuration::from_secs(30);
    g.wb.dirty_expire = SimDuration::from_secs(60);
}

/// Dirty `mb` MiB of page cache in `dom` (a buffered write, no sync).
fn dirty_mb(cl: &mut Cluster, s: &mut Sched, idx: usize, dom: DomainId, mb: u64) {
    let file = cl
        .machine_mut(idx)
        .kernel_mut(dom)
        .unwrap()
        .create_file((4 * mb) << 20)
        .unwrap();
    cl.submit_op(
        s,
        idx,
        dom,
        0,
        FileOp::Write {
            file,
            offset: 0,
            len: mb << 20,
        },
        None,
    );
}

/// A reader VM with a small request queue and deep readahead — the
/// congestion-query workhorse from the fault suite.
fn greedy_reader(cl: &mut Cluster, s: &mut Sched, idx: usize, seed: u64, rec: &Rec) -> DomainId {
    let dom = cl.create_domain(s, idx, VmSpec::new(4, 4).with_disk_gb(20), |g| {
        g.queue.nr_requests = 64;
        g.readahead_chunks = 16;
    });
    spawn_multistream(
        cl,
        s,
        VmRef { machine: idx, dom },
        MultiStreamParams {
            streams: 8,
            file_size: 1 << 30,
            read_size: 4 << 20,
            first_vcpu: 0,
            seed,
        },
        Rc::clone(rec),
    );
    dom
}

/// The 8-domain showcase: three greedy readers (congestion queries →
/// release / confirm decisions), three slow-writeback dirty writers
/// (collaborative flush decisions), one store hammer (quarantine), and
/// one light reader for background traffic.
fn mixed8(prov: Provision, seed: u64, extra: FaultPlan) -> (Simulation<Cluster>, usize) {
    let (mut sim, idx) = sim_with(prov);
    let (cl, s) = sim.parts_mut();
    let rec = recorder(SimTime::ZERO);
    for v in 0..3u64 {
        greedy_reader(cl, s, idx, seed ^ v, &rec);
    }
    for mb in [16u64, 12, 8] {
        let dom = cl.create_domain(s, idx, VmSpec::new(1, 2).with_disk_gb(8), slow_wb);
        dirty_mb(cl, s, idx, dom, mb);
    }
    let evil = cl.create_domain(s, idx, VmSpec::new(1, 1).with_disk_gb(8), |_| {});
    let light = cl.create_domain(s, idx, VmSpec::new(2, 2).with_disk_gb(8), |_| {});
    spawn_multistream(
        cl,
        s,
        VmRef {
            machine: idx,
            dom: light,
        },
        MultiStreamParams {
            streams: 2,
            file_size: 256 << 20,
            read_size: 1 << 20,
            first_vcpu: 0,
            seed: seed ^ 7,
        },
        Rc::clone(&rec),
    );
    let plan = FaultPlan::new().with(
        FaultWindow::new(SimTime::ZERO, SimTime::from_millis(1500)),
        FaultKind::StoreHammer {
            dom: evil.0,
            period: SimDuration::from_micros(200),
        },
    );
    cl.install_faults(s, idx, plan);
    cl.install_faults(s, idx, extra);
    // Phase 1: readers saturate the device (congestion queries, release /
    // confirm decisions) while the hammer earns its quarantine.
    sim.run_until(SimTime::from_millis(1200));
    // Phase 2: stop the readers so the device drains and goes quiet —
    // Algorithm 1 only flushes an idle device — and let the collaborative
    // flush work through the dirty writers.
    rec.borrow_mut().stopped = true;
    sim.run_until(SimTime::from_millis(4000));
    (sim, idx)
}

/// Mirror of `unresponsive_guest_flush_falls_back_and_quarantines`.
fn unresponsive_flush(
    prov: Provision,
    _seed: u64,
    extra: FaultPlan,
) -> (Simulation<Cluster>, usize) {
    let (mut sim, idx) = sim_with(prov);
    let (cl, s) = sim.parts_mut();
    let slacker = cl.create_domain(s, idx, VmSpec::new(1, 2).with_disk_gb(8), slow_wb);
    let _healthy = cl.create_domain(s, idx, VmSpec::new(1, 2).with_disk_gb(8), slow_wb);
    dirty_mb(cl, s, idx, slacker, 16);
    dirty_mb(cl, s, idx, _healthy, 8);
    let plan = FaultPlan::new().with(
        FaultWindow::always(),
        FaultKind::IgnoreFlushNow { dom: slacker.0 },
    );
    cl.install_faults(s, idx, plan);
    cl.install_faults(s, idx, extra);
    sim.run_until(SimTime::from_secs(8));
    (sim, idx)
}

/// Mirror of `store_hammer_is_quarantined_and_operator_clear_restores`
/// (without the operator clear — the quarantine decision is the point).
fn store_hammer(prov: Provision, seed: u64, extra: FaultPlan) -> (Simulation<Cluster>, usize) {
    let (mut sim, idx) = sim_with(prov);
    let (cl, s) = sim.parts_mut();
    let evil = cl.create_domain(s, idx, VmSpec::new(1, 1).with_disk_gb(8), |_| {});
    let good = cl.create_domain(s, idx, VmSpec::new(2, 2).with_disk_gb(8), |_| {});
    let rec = recorder(SimTime::ZERO);
    spawn_multistream(
        cl,
        s,
        VmRef {
            machine: idx,
            dom: good,
        },
        MultiStreamParams {
            streams: 2,
            file_size: 256 << 20,
            read_size: 1 << 20,
            first_vcpu: 0,
            seed,
        },
        Rc::clone(&rec),
    );
    let plan = FaultPlan::new().with(
        FaultWindow::new(SimTime::ZERO, SimTime::from_millis(1500)),
        FaultKind::StoreHammer {
            dom: evil.0,
            period: SimDuration::from_micros(200),
        },
    );
    cl.install_faults(s, idx, plan);
    cl.install_faults(s, idx, extra);
    sim.run_until(SimTime::from_secs(2));
    (sim, idx)
}

/// Mirror of `device_stall_is_survived`.
fn device_stall(prov: Provision, seed: u64, extra: FaultPlan) -> (Simulation<Cluster>, usize) {
    let (mut sim, idx) = sim_with(prov);
    let (cl, s) = sim.parts_mut();
    let dom = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(20), |_| {});
    let rec = recorder(SimTime::ZERO);
    spawn_multistream(
        cl,
        s,
        VmRef { machine: idx, dom },
        MultiStreamParams {
            streams: 4,
            file_size: 1 << 30,
            read_size: 1 << 20,
            first_vcpu: 0,
            seed,
        },
        Rc::clone(&rec),
    );
    let plan = FaultPlan::new().with(
        FaultWindow::new(SimTime::from_millis(200), SimTime::from_millis(600)),
        FaultKind::DeviceStall,
    );
    cl.install_faults(s, idx, plan);
    cl.install_faults(s, idx, extra);
    sim.run_until(SimTime::from_millis(2500));
    (sim, idx)
}

/// dom0's management plane crashes at 1.1 s — after the store hammer has
/// earned its quarantine — and recovers 400 ms later: the quarantine set,
/// health counters and any in-flight flush must be rebuilt from the store
/// (`plane_crash` / `plane_recover` decisions bracket the outage).
fn plane_crash(prov: Provision, seed: u64, extra: FaultPlan) -> (Simulation<Cluster>, usize) {
    let (mut sim, idx) = sim_with(prov);
    let (cl, s) = sim.parts_mut();
    let rec = recorder(SimTime::ZERO);
    greedy_reader(cl, s, idx, seed, &rec);
    for mb in [16u64, 8] {
        let dom = cl.create_domain(s, idx, VmSpec::new(1, 2).with_disk_gb(8), slow_wb);
        dirty_mb(cl, s, idx, dom, mb);
    }
    let evil = cl.create_domain(s, idx, VmSpec::new(1, 1).with_disk_gb(8), |_| {});
    let crash_at = SimTime::from_millis(1100);
    let recover_after = SimDuration::from_millis(400);
    let plan = FaultPlan::new()
        .with(
            FaultWindow::new(SimTime::ZERO, SimTime::from_millis(800)),
            FaultKind::StoreHammer {
                dom: evil.0,
                period: SimDuration::from_micros(200),
            },
        )
        .with(
            FaultWindow::new(crash_at, crash_at + recover_after),
            FaultKind::PlaneCrash {
                at: crash_at,
                recover_after,
            },
        );
    cl.install_faults(s, idx, plan);
    cl.install_faults(s, idx, extra);
    // Phase 1: reader traffic plus the hammer, then the outage itself.
    sim.run_until(SimTime::from_millis(1800));
    // Phase 2: quiesce the reader so the recovered plane can drain the
    // dirty writers through the collaborative flush.
    rec.borrow_mut().stopped = true;
    sim.run_until(SimTime::from_secs(6));
    (sim, idx)
}

/// XenBus drops every 7th, duplicates every 5th and reorders each delivery
/// batch: dropped `flush_now` commands retry through the timeout path, and
/// duplicated commands are discarded by the guests' epoch cursors
/// (`stale_command` decisions in the dump).
fn lossy_bus(prov: Provision, seed: u64, extra: FaultPlan) -> (Simulation<Cluster>, usize) {
    let (mut sim, idx) = sim_with(prov);
    let (cl, s) = sim.parts_mut();
    let rec = recorder(SimTime::ZERO);
    greedy_reader(cl, s, idx, seed, &rec);
    for mb in [16u64, 8] {
        let dom = cl.create_domain(s, idx, VmSpec::new(1, 2).with_disk_gb(8), slow_wb);
        dirty_mb(cl, s, idx, dom, mb);
    }
    let plan = FaultPlan::new().with(
        FaultWindow::always(),
        FaultKind::BusUnreliable {
            drop_1_in: 7,
            dup_1_in: 5,
            reorder: true,
        },
    );
    cl.install_faults(s, idx, plan);
    cl.install_faults(s, idx, extra);
    sim.run_until(SimTime::from_millis(1200));
    rec.borrow_mut().stopped = true;
    sim.run_until(SimTime::from_secs(6));
    (sim, idx)
}
