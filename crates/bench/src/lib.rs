//! # iorch-bench — experiment harnesses for every table and figure
//!
//! One runner function per experiment family ([`runner`]); the
//! declarative layer ([`exp`]) registers every paper figure/table as a
//! named [`exp::Spec`] — axes, repeats, spans and smoke/full profiles as
//! data — executed by one engine that renders console tables and writes
//! per-figure JSON/CSV artifacts. Each `exp_*` `[[bench]]` target is a
//! thin shim over [`exp::bench_main`], and the `experiments` binary
//! drives the same registry from the command line. Runs are
//! deterministic given a seed; durations are scaled down from the
//! paper's 10-minute/1-hour runs to seconds of simulated time (the
//! steady-state shapes emerge well before that — see EXPERIMENTS.md).

pub mod exp;
pub mod runner;
pub mod timing;
pub mod tracereplay;

pub use runner::*;
