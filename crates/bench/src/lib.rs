//! # iorch-bench — experiment harnesses for every table and figure
//!
//! One runner function per experiment family; each `[[bench]]` target
//! (see `benches/`) sweeps the paper's parameter axis and prints the same
//! rows/series the paper reports. Runs are deterministic given a seed;
//! durations are scaled down from the paper's 10-minute/1-hour runs to
//! seconds of simulated time (the steady-state shapes emerge well before
//! that — see EXPERIMENTS.md).

pub mod runner;
pub mod timing;
pub mod tracereplay;

pub use runner::*;
