//! A small wall-clock timing harness (no external bench framework).
//!
//! Replaces the `criterion` dev-dependency so the whole workspace builds
//! offline. Deliberately minimal: warm up, then run batches of the closure
//! against `std::time::Instant` until a measurement budget is spent, and
//! report mean nanoseconds per iteration. That is enough to (a) print
//! comparable micro-benchmark numbers and (b) compute the seed-vs-now
//! speedup ratios in `BENCH_hotpath.json`, where both sides are measured
//! by this same harness in the same process.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark name.
    pub name: String,
    /// Iterations measured (after warmup).
    pub iters: u64,
    /// Wall-clock time across all measured iterations.
    pub elapsed: Duration,
}

impl Sample {
    /// Mean nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iters.max(1) as f64
    }

    /// Print a one-line report (criterion-ish format).
    pub fn report(&self) {
        println!(
            "{:<44} {:>12.1} ns/iter  ({} iters in {:.1?})",
            self.name,
            self.ns_per_iter(),
            self.iters,
            self.elapsed
        );
    }
}

/// Timing configuration: how long to warm up and how long to measure.
#[derive(Clone, Copy, Debug)]
pub struct Timer {
    /// Warmup budget (results discarded).
    pub warmup: Duration,
    /// Measurement budget.
    pub measure: Duration,
}

impl Default for Timer {
    fn default() -> Self {
        Timer {
            warmup: Duration::from_millis(200),
            measure: Duration::from_millis(800),
        }
    }
}

impl Timer {
    /// Short budgets for smoke runs (also used under `cargo test`).
    pub fn quick() -> Self {
        Timer {
            warmup: Duration::from_millis(20),
            measure: Duration::from_millis(80),
        }
    }

    /// Honour `IORCH_BENCH_QUICK=1` for fast smoke runs.
    pub fn from_env() -> Self {
        if std::env::var_os("IORCH_BENCH_QUICK").is_some() {
            Timer::quick()
        } else {
            Timer::default()
        }
    }

    /// Measure `f`, returning the sample. The closure's return value goes
    /// through [`black_box`] so the work is not optimized away.
    pub fn time<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Sample {
        // Warmup, also calibrating a batch size that makes one batch last
        // roughly 1/50th of the measurement budget (so the Instant reads
        // stay off the hot path without starving the loop of samples).
        let mut batch: u64 = 1;
        let warm_start = Instant::now();
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if warm_start.elapsed() >= self.warmup {
                let target = self.measure / 50;
                if dt < target && batch < u64::MAX / 2 {
                    let scale = (target.as_nanos() as f64 / dt.as_nanos().max(1) as f64).min(128.0);
                    batch = ((batch as f64 * scale) as u64).max(batch + 1);
                }
                break;
            }
            if dt < Duration::from_millis(5) && batch < u64::MAX / 2 {
                batch *= 2;
            }
        }
        // Measurement.
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < self.measure {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            elapsed += t0.elapsed();
            iters += batch;
        }
        Sample {
            name: name.to_string(),
            iters,
            elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let t = Timer {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        };
        let mut acc = 0u64;
        let s = t.time("spin", || {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            acc
        });
        assert!(s.iters > 0);
        assert!(s.ns_per_iter() > 0.0);
        assert!(s.elapsed >= Duration::from_millis(5));
    }
}
