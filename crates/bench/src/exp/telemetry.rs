//! Live-telemetry experiment glue: a bursty YCSB1 run with a
//! [`TelemetryHub`] fed from both live streams — application op
//! latencies via `recorder_live`, and device/decision events via the
//! trace tap ([`iorch_simcore::trace::TapSession`]).
//!
//! The determinism contract (DESIGN.md §12) is load-bearing here: the
//! tap and hub are pure observers, so running with telemetry attached
//! produces the exact same simulation — byte-identical traces, identical
//! histograms — as running without. `tests/experiment_determinism.rs`
//! enforces this against the tracereplay scenarios.

use std::cell::RefCell;
use std::rc::Rc;

use iorch_metrics::{LiveReport, TelemetryHub};
use iorch_simcore::trace::TapSession;
use iorch_simcore::SimDuration;
use iorch_workloads::{recorder_live, spawn_ycsb, YcsbParams};
use iorchestra::SystemKind;

use crate::runner::{make_vm, single_machine, RunCfg};

/// Run the Fig. 12-style bursty YCSB1 scenario (2-VM store, 50 ms
/// bursts) with live telemetry attached: a hub cutting windows every
/// `cadence`, fed by the workload recorder and the trace tap. Each
/// completed window is printed as a `[telemetry …]` line. Returns the
/// report stream and the measured op count.
pub fn telemetry_run(
    kind: SystemKind,
    rate: f64,
    cadence: SimDuration,
    slo: SimDuration,
    cfg: RunCfg,
) -> (Vec<LiveReport>, u64) {
    let hub = Rc::new(RefCell::new(
        TelemetryHub::new(cadence, Some(slo))
            .with_sink(Box::new(|r: &LiveReport| println!("{}", r.render()))),
    ));
    let (mut sim, idx) = single_machine(kind, cfg.seed);
    let a = make_vm(&mut sim, idx, 2, 4, 20);
    let b = make_vm(&mut sim, idx, 2, 4, 20);
    let rec = recorder_live(cfg.record_after(), Rc::clone(&hub));
    {
        let (cl, s) = sim.parts_mut();
        let p = YcsbParams::ycsb1(rate, cfg.seed ^ 0xbb).with_burst(SimDuration::from_millis(50));
        spawn_ycsb(cl, s, &[a, b], None, p, Rc::clone(&rec));
    }
    // The tap feeds device dispatch/complete and control-plane decisions
    // into the hub. It observes; it never mutates the simulation.
    let tap_hub = Rc::clone(&hub);
    let tap = TapSession::new(Box::new(move |t, kind| {
        tap_hub.borrow_mut().on_trace(t, kind);
    }));
    sim.run_until(cfg.horizon());
    drop(tap);
    hub.borrow_mut().finish(sim.now());
    let ops = rec.borrow().ops;
    let reports = hub.borrow().reports().to_vec();
    (reports, ops)
}
