//! Shared repo-root benchmark-artifact emission for the perf gates.
//!
//! `BENCH_hotpath.json` and `BENCH_scale.json` used to be (or would have
//! been) hand-rolled `format!` JSON; both now render through the same
//! [`Figure`] model as every experiment artifact (schema `iorch-exp/v1`)
//! and are self-checked against [`validate_artifact`] before they touch
//! disk, so `experiments validate` accepts them and a schema drift fails
//! the emitting gate itself rather than the downstream validation step.

use std::path::{Path, PathBuf};

use super::{validate_artifact, Figure};

/// The repository root (two levels above the bench crate), where the
/// `BENCH_*.json` gate artifacts live.
pub fn repo_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// Render `figure` as a schema-validated `iorch-exp/v1` artifact and
/// write it to `<repo root>/<file>`. Panics (failing the calling gate) if
/// the rendering does not pass the same validator `experiments validate`
/// applies, or if the write fails.
pub fn write_root_artifact(
    file: &str,
    figure: &Figure,
    experiment: &str,
    profile: &str,
    seed: u64,
) -> PathBuf {
    let text = figure.to_json(experiment, profile, seed);
    validate_artifact(&text)
        .unwrap_or_else(|e| panic!("{file}: generated artifact fails its own schema: {e}"));
    let path = repo_root().join(file);
    std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "fails its own schema")]
    fn zero_sample_artifacts_never_reach_disk() {
        let mut f = Figure::new("g", "gate", "case", "ns", vec!["v".into()]);
        f.row("x", vec![1.0]);
        // samples left at 0: the validator must reject it before the write.
        write_root_artifact("BENCH_should_not_exist.json", &f, "gate", "smoke", 7);
    }
}
