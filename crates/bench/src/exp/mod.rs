//! Declarative experiment runner: experiments as data, executed by one
//! engine (DESIGN.md §12).
//!
//! Each paper figure/table is a [`Spec`] in [`registry`]: a name, the
//! system variants it compares, its load-point axes, repeat count and
//! warmup/measure spans — at two sizes (`smoke` for gates, `full` for
//! regenerating EXPERIMENTS.md). The engine resolves a spec against a
//! profile and seed, invokes the family run function, renders the same
//! console tables the old hand-rolled benches printed, and writes
//! per-figure JSON + CSV artifacts (plus a `summary.json`) into a run
//! directory. Artifacts are byte-deterministic for a `(spec, profile,
//! seed)` triple; `tier1.sh` gates on that via the smoke sweep and the
//! `experiment_determinism` suite.
//!
//! Environment knobs (read by [`bench_main`], i.e. the `exp_*` shims):
//! `IORCH_EXP_PROFILE` (`smoke`|`full`, default `full`), `IORCH_EXP_SEED`
//! (default 42), `IORCH_EXP_OUT` (default `target/experiments`).

mod cluster;
mod families;
mod figure;
pub mod gate;
mod json;
mod scale;
mod telemetry;

pub use figure::{json_num, json_str, FigRow, Figure};
pub use json::{parse, validate_artifact, Json};
pub use telemetry::telemetry_run;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::runner::RunCfg;
use iorch_metrics::Table;
use iorch_simcore::SimDuration;

/// Which size of a spec to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Profile {
    /// Seconds-long gate runs with reduced axes (tier1, goldens).
    Smoke,
    /// The paper-scale sweep that regenerates EXPERIMENTS.md columns.
    Full,
}

impl Profile {
    /// Lower-case name as used in artifacts and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Smoke => "smoke",
            Profile::Full => "full",
        }
    }

    /// Parse a CLI/env profile name.
    pub fn parse(s: &str) -> Option<Profile> {
        match s {
            "smoke" => Some(Profile::Smoke),
            "full" => Some(Profile::Full),
            _ => None,
        }
    }
}

/// One size of an experiment, as pure data.
#[derive(Clone, Copy, Debug)]
pub struct RunProfile {
    /// Warm-up span discarded from recordings, in ms.
    pub warmup_ms: u64,
    /// Measured span, in ms.
    pub measure_ms: u64,
    /// Seeded repeats pooled per data point (seed, seed+1000, …).
    pub repeats: u32,
    /// Primary load-point axis; meaning is per-experiment (clients,
    /// req/s, machines, VMs, λ/min, I/O threads…).
    pub axis: &'static [f64],
    /// Secondary axis for grid sweeps (req/s, dirty ratios, burst ms…).
    pub axis2: &'static [f64],
}

/// A named experiment: everything the engine needs, as data plus one run
/// function.
pub struct Spec {
    /// Registry name (also the artifact subdirectory).
    pub name: &'static str,
    /// Human title.
    pub title: &'static str,
    /// System variants compared (labels from `SystemKind::label`).
    pub systems: &'static [&'static str],
    /// Figure ids this experiment emits (full profile; smoke may emit a
    /// subset for parameter-ablation figures).
    pub figures: &'static [&'static str],
    /// Gate-sized profile.
    pub smoke: RunProfile,
    /// Paper-sized profile.
    pub full: RunProfile,
    /// Latency SLO used by live telemetry, if the experiment has one.
    pub slo: Option<SimDuration>,
    /// This spec measures wall-clock time (`std::time::Instant`), so its
    /// artifacts are *not* byte-deterministic across runs. Timing specs
    /// are excluded from `experiments run all` and from the golden
    /// determinism sweeps — they must be run by name (the tier-1 script
    /// does), and they gate on thresholds instead of byte identity.
    pub timing: bool,
    /// Trailing note printed after the tables (paper shapes).
    pub notes: &'static str,
    /// The family function: resolves the context into figures.
    pub run: fn(&Ctx) -> Vec<Figure>,
}

/// A resolved `(spec, profile, seed)` execution context.
pub struct Ctx<'a> {
    /// The spec being run.
    pub spec: &'a Spec,
    /// Which profile was selected.
    pub profile: Profile,
    /// Base seed.
    pub seed: u64,
    /// The resolved [`RunProfile`].
    pub p: RunProfile,
}

impl Ctx<'_> {
    /// `RunCfg` for the base seed.
    pub fn cfg(&self) -> RunCfg {
        self.cfg_seeded(self.seed)
    }

    /// `RunCfg` for an explicit seed (repeat pooling).
    pub fn cfg_seeded(&self, seed: u64) -> RunCfg {
        RunCfg::new(seed)
            .with_warmup(SimDuration::from_millis(self.p.warmup_ms))
            .with_measure(SimDuration::from_millis(self.p.measure_ms))
    }

    /// The repeat seeds: `seed + 1000*i` (so base seed 42 with 3 repeats
    /// reproduces the historical 42/1042/2042 pooling).
    pub fn seeds(&self) -> Vec<u64> {
        (0..self.p.repeats.max(1) as u64)
            .map(|i| self.seed + 1000 * i)
            .collect()
    }

    /// True when running the gate-sized profile.
    pub fn is_smoke(&self) -> bool {
        self.profile == Profile::Smoke
    }
}

/// All named experiments, in EXPERIMENTS.md order.
pub fn registry() -> &'static [Spec] {
    families::REGISTRY
}

/// Look up a spec by name.
pub fn find(name: &str) -> Option<&'static Spec> {
    registry().iter().find(|s| s.name == name)
}

/// Run one spec and write its artifacts under `out/<name>/`. Returns the
/// figures (also rendered to stdout unless `quiet`).
pub fn run_spec(
    spec: &Spec,
    profile: Profile,
    seed: u64,
    out: &Path,
    quiet: bool,
) -> std::io::Result<Vec<Figure>> {
    let p = match profile {
        Profile::Smoke => spec.smoke,
        Profile::Full => spec.full,
    };
    let ctx = Ctx {
        spec,
        profile,
        seed,
        p,
    };
    let figures = (spec.run)(&ctx);
    assert!(
        !figures.is_empty(),
        "experiment {} produced no figures",
        spec.name
    );
    write_artifacts(spec, &ctx, &figures, out)?;
    if !quiet {
        for f in &figures {
            print!("{}", render_table(f));
        }
        if !spec.notes.is_empty() {
            println!("{}", spec.notes);
        }
    }
    Ok(figures)
}

/// Render a figure as the aligned console table the old benches printed.
pub fn render_table(f: &Figure) -> String {
    let mut headers: Vec<&str> = vec![f.x_axis.as_str()];
    headers.extend(f.columns.iter().map(String::as_str));
    let mut t = Table::new(f.title.clone(), &headers);
    for r in &f.rows {
        let mut row = vec![r.x.clone()];
        row.extend(r.values.iter().map(|v| fmt_value(&f.unit, *v)));
        t.row(row);
    }
    t.render()
}

/// Unit-aware cell formatting for the console tables. Artifacts keep the
/// full-precision values; this only affects display.
pub fn fmt_value(unit: &str, v: f64) -> String {
    match unit {
        "ratio" => format!("{v:.3}"),
        "%" => format!("{v:.1}%"),
        "count" => format!("{v:.0}"),
        _ => format!("{v:.1}"),
    }
}

fn write_artifacts(spec: &Spec, ctx: &Ctx, figures: &[Figure], out: &Path) -> std::io::Result<()> {
    let dir = out.join(spec.name);
    std::fs::create_dir_all(&dir)?;
    for f in figures {
        std::fs::write(
            dir.join(format!("{}.json", f.id)),
            f.to_json(spec.name, ctx.profile.name(), ctx.seed),
        )?;
        std::fs::write(dir.join(format!("{}.csv", f.id)), f.to_csv())?;
    }
    std::fs::write(dir.join("summary.json"), render_summary(spec, ctx, figures))?;
    Ok(())
}

fn render_summary(spec: &Spec, ctx: &Ctx, figures: &[Figure]) -> String {
    let mut s = String::with_capacity(512);
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"iorch-exp-summary/v1\",");
    let _ = writeln!(s, "  \"experiment\": {},", json_str(spec.name));
    let _ = writeln!(s, "  \"title\": {},", json_str(spec.title));
    let _ = writeln!(s, "  \"profile\": {},", json_str(ctx.profile.name()));
    let _ = writeln!(s, "  \"seed\": {},", ctx.seed);
    let _ = writeln!(s, "  \"repeats\": {},", ctx.p.repeats);
    let _ = writeln!(s, "  \"warmup_ms\": {},", ctx.p.warmup_ms);
    let _ = writeln!(s, "  \"measure_ms\": {},", ctx.p.measure_ms);
    let systems: Vec<String> = spec.systems.iter().map(|x| json_str(x)).collect();
    let _ = writeln!(s, "  \"systems\": [{}],", systems.join(", "));
    let total: u64 = figures.iter().map(|f| f.samples).sum();
    let _ = writeln!(s, "  \"total_samples\": {total},");
    s.push_str("  \"figures\": [\n");
    for (i, f) in figures.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"figure\": {}, \"rows\": {}, \"columns\": {}, \"samples\": {}}}",
            json_str(&f.id),
            f.rows.len(),
            f.columns.len(),
            f.samples
        );
        s.push_str(if i + 1 == figures.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Entry point for the `exp_*` bench shims: run the named experiments
/// with profile/seed/outdir taken from the environment.
pub fn bench_main(names: &[&str]) {
    let profile = std::env::var("IORCH_EXP_PROFILE")
        .ok()
        .and_then(|v| Profile::parse(&v))
        .unwrap_or(Profile::Full);
    let seed = std::env::var("IORCH_EXP_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let out = PathBuf::from(
        std::env::var("IORCH_EXP_OUT").unwrap_or_else(|_| "target/experiments".into()),
    );
    for name in names {
        let spec = find(name).unwrap_or_else(|| panic!("unknown experiment {name:?}"));
        println!(
            "== {} [{} profile, seed {}] ==",
            spec.title,
            profile.name(),
            seed
        );
        run_spec(spec, profile, seed, &out, false).expect("artifact write failed");
    }
    println!("artifacts: {}", out.display());
}
