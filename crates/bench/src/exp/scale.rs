//! The `scale` experiment: control-tick cost vs domain count.
//!
//! The ROADMAP's enabling refactor for the multi-node tier demands that
//! the control plane's own steady-state cost be (near-)independent of the
//! number of *live* domains — O(changed), not O(live). This family
//! measures exactly that: the wall-clock cost of one `PolicyEngine` tick
//! at 16/128/1024 domains, in two variants per count:
//!
//! * **steady** — no guest activity at all after warm-up: every dirty set
//!   is empty, so a tick should cost the same at 1024 domains as at 16.
//!   The tier-1 gate asserts the last axis point stays within 4x of the
//!   first (1024 vs 16 under the shipped spec).
//! * **churn** — 1% of the domains (min 1) are destroyed and recreated
//!   between ticks, so slot recycling, slab resync and the per-domain
//!   bookkeeping for the churned slots are on the measured path. This
//!   variant is expected to scale with the domain count (the resync sweep
//!   is O(live) on a tick whose domain generation moved) and is reported
//!   for context, not gated.
//!
//! Because the measurement is `std::time::Instant` wall clock, this spec
//! is marked `timing: true`: excluded from `experiments run all` and the
//! golden byte-identity sweeps, run by name from `scripts/tier1.sh`, and
//! gated on the threshold above instead of byte identity. Besides the
//! per-run artifacts, the run emits `BENCH_scale.json` at the repo root
//! through the shared schema-validated gate emitter
//! ([`gate::write_root_artifact`]).

use std::time::Instant;

use iorch_hypervisor::{Cluster, ControlPlane, IoPathMode, MachineConfig, VmSpec};
use iorch_simcore::Simulation;
use iorchestra::{IOrchestraConfig, PolicyEngine};

use super::{gate, Ctx, Figure};

/// One harness: a Paravirt machine with `doms` idle domains and the full
/// IOrchestra policy engine held *outside* the machine, so ticks can be
/// driven (and timed) directly without scheduler dispatch on the path.
struct Harness {
    sim: Simulation<Cluster>,
    plane: PolicyEngine,
    idx: usize,
    ids: Vec<iorch_hypervisor::DomainId>,
}

fn vm() -> VmSpec {
    VmSpec::new(1, 1).with_disk_gb(1)
}

impl Harness {
    fn new(doms: u32, seed: u64) -> Self {
        let mut sim = Simulation::new(Cluster::new());
        let (cl, s) = sim.parts_mut();
        let idx = cl.add_machine(MachineConfig::paper_testbed(seed, IoPathMode::Paravirt));
        let mut plane = PolicyEngine::new(IOrchestraConfig::new(seed));
        let mut ids = Vec::with_capacity(doms as usize);
        for _ in 0..doms {
            let dom = cl.create_domain(s, idx, vm(), |_| {});
            plane.on_domain_created(cl.machine_mut(idx), s, dom);
            ids.push(dom);
        }
        Harness {
            sim,
            plane,
            idx,
            ids,
        }
    }

    fn tick(&mut self) {
        let (cl, s) = self.sim.parts_mut();
        self.plane.on_tick(cl.machine_mut(self.idx), s);
    }

    /// Destroy the `k` oldest domains and create `k` fresh ones (slot
    /// recycling keeps the machine's slot table at its high-water mark).
    fn churn(&mut self, k: usize) {
        let (cl, s) = self.sim.parts_mut();
        for _ in 0..k {
            let dom = self.ids.remove(0);
            self.plane
                .on_domain_destroyed(cl.machine_mut(self.idx), s, dom);
            cl.destroy_domain(s, self.idx, dom);
        }
        for _ in 0..k {
            let dom = cl.create_domain(s, self.idx, vm(), |_| {});
            self.plane
                .on_domain_created(cl.machine_mut(self.idx), s, dom);
            self.ids.push(dom);
        }
    }
}

/// Steady-state cost: warm up until the dirty sets drain, then time a
/// batch of ticks in one `Instant` span (per-tick clock reads would
/// dominate an O(1) tick). Returns mean ns/tick.
fn steady_ns(doms: u32, seed: u64, warmup: u32, ticks: u32) -> f64 {
    let mut h = Harness::new(doms, seed);
    for _ in 0..warmup {
        h.tick();
    }
    let t0 = Instant::now();
    for _ in 0..ticks {
        h.tick();
    }
    t0.elapsed().as_nanos() as f64 / ticks.max(1) as f64
}

/// Churn cost: 1% of the domains (min 1) are replaced between ticks,
/// outside the timed span — the measurement is the *tick* reacting to the
/// churn (slab resync, slot bookkeeping, health publication for the new
/// tenants), not the create/destroy machinery itself.
fn churn_ns(doms: u32, seed: u64, warmup: u32, ticks: u32) -> f64 {
    let k = (doms as usize / 100).max(1);
    let mut h = Harness::new(doms, seed);
    for _ in 0..warmup {
        h.tick();
    }
    let mut total = 0u128;
    for _ in 0..ticks {
        h.churn(k);
        let t0 = Instant::now();
        h.tick();
        total += t0.elapsed().as_nanos();
    }
    total as f64 / ticks.max(1) as f64
}

/// The family run function (see the module docs). Gate: the last axis
/// point's steady-state tick must stay within 4x of the first's.
pub(crate) fn run_scale(ctx: &Ctx) -> Vec<Figure> {
    let [warmup, steady_ticks, churn_ticks] = ctx.p.axis2 else {
        panic!("scale: axis2 must be [warmup_ticks, steady_ticks, churn_ticks]");
    };
    let (warmup, steady_ticks, churn_ticks) =
        (*warmup as u32, *steady_ticks as u32, *churn_ticks as u32);
    let mut f = Figure::new(
        "scale",
        "Control-tick cost vs domain count (steady state and 1% churn)",
        "domains",
        "ns",
        vec!["steady_ns_per_tick".into(), "churn_ns_per_tick".into()],
    );
    let mut steady = Vec::new();
    for &doms in ctx.p.axis {
        let doms = doms as u32;
        let s = steady_ns(doms, ctx.seed, warmup, steady_ticks);
        let c = churn_ns(doms, ctx.seed, warmup, churn_ticks);
        steady.push((doms, s));
        f.row(doms.to_string(), vec![s, c]);
        f.samples += (steady_ticks + churn_ticks) as u64;
    }
    let path = gate::write_root_artifact(
        "BENCH_scale.json",
        &f,
        ctx.spec.name,
        ctx.profile.name(),
        ctx.seed,
    );
    println!("wrote {}", path.display());
    let (d0, first) = steady[0];
    let (dn, last) = steady[steady.len() - 1];
    let ratio = last / first.max(1e-9);
    println!(
        "[scale gate] steady tick {d0} doms: {first:.0} ns, {dn} doms: {last:.0} ns \
         (ratio {ratio:.2}x, limit 4.00x)"
    );
    assert!(
        ratio <= 4.0,
        "scale gate: {dn}-domain steady-state tick ({last:.0} ns) exceeds 4x the \
         {d0}-domain tick ({first:.0} ns): ratio {ratio:.2}x"
    );
    vec![f]
}
