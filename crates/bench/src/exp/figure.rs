//! Figure data model and deterministic JSON/CSV artifact rendering.
//!
//! Every experiment produces [`Figure`]s — a titled grid of `rows ×
//! columns` float values over one swept axis. The JSON rendering is the
//! golden-summary surface: fixed key order, fixed row order, floats via
//! Rust's shortest-roundtrip `Display`, so the same run bytes out the
//! same artifact every time (the determinism suite diffs these files).

use std::fmt::Write as _;

/// One row of a figure: the x-axis value (already formatted) and one
/// value per column.
#[derive(Clone, Debug, PartialEq)]
pub struct FigRow {
    /// X-axis label (e.g. "150" clients, "99%", "baseline").
    pub x: String,
    /// One value per figure column.
    pub values: Vec<f64>,
}

/// A single figure/table of an experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct Figure {
    /// Stable artifact id (file stem), e.g. `fig4a`.
    pub id: String,
    /// Human title as printed above the rendered table.
    pub title: String,
    /// Name of the swept axis, e.g. `clients`.
    pub x_axis: String,
    /// Unit of the values: `ms`, `us`, `ratio`, `%`, `MB/s`, `mixed`.
    pub unit: String,
    /// Column (series) labels.
    pub columns: Vec<String>,
    /// Rows in sweep order.
    pub rows: Vec<FigRow>,
    /// Total measured samples (ops, arrivals, …) backing the figure.
    /// The schema validator rejects artifacts where this is zero.
    pub samples: u64,
}

impl Figure {
    /// New empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_axis: impl Into<String>,
        unit: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_axis: x_axis.into(),
            unit: unit.into(),
            columns,
            rows: Vec::new(),
            samples: 0,
        }
    }

    /// Append a row, asserting shape and finiteness (the determinism
    /// contract forbids NaN/inf from ever reaching an artifact).
    pub fn row(&mut self, x: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "figure {}: row width != column count",
            self.id
        );
        for v in &values {
            assert!(v.is_finite(), "figure {}: non-finite value {v}", self.id);
        }
        self.rows.push(FigRow {
            x: x.into(),
            values,
        });
    }

    /// Render the per-figure JSON artifact (schema `iorch-exp/v1`).
    pub fn to_json(&self, experiment: &str, profile: &str, seed: u64) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"iorch-exp/v1\",");
        let _ = writeln!(s, "  \"experiment\": {},", json_str(experiment));
        let _ = writeln!(s, "  \"profile\": {},", json_str(profile));
        let _ = writeln!(s, "  \"seed\": {seed},");
        let _ = writeln!(s, "  \"figure\": {},", json_str(&self.id));
        let _ = writeln!(s, "  \"title\": {},", json_str(&self.title));
        let _ = writeln!(s, "  \"x_axis\": {},", json_str(&self.x_axis));
        let _ = writeln!(s, "  \"unit\": {},", json_str(&self.unit));
        let _ = writeln!(s, "  \"samples\": {},", self.samples);
        let cols: Vec<String> = self.columns.iter().map(|c| json_str(c)).collect();
        let _ = writeln!(s, "  \"columns\": [{}],", cols.join(", "));
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let vals: Vec<String> = r.values.iter().map(|v| json_num(*v)).collect();
            let _ = write!(
                s,
                "    {{\"x\": {}, \"values\": [{}]}}",
                json_str(&r.x),
                vals.join(", ")
            );
            s.push_str(if i + 1 == self.rows.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Render the per-figure CSV artifact (same grid as the JSON).
    pub fn to_csv(&self) -> String {
        let mut s = String::with_capacity(512);
        let mut head = vec![csv_cell(&self.x_axis)];
        head.extend(self.columns.iter().map(|c| csv_cell(c)));
        s.push_str(&head.join(","));
        s.push('\n');
        for r in &self.rows {
            let mut row = vec![csv_cell(&r.x)];
            row.extend(r.values.iter().map(|v| json_num(*v)));
            s.push_str(&row.join(","));
            s.push('\n');
        }
        s
    }
}

/// JSON string literal with minimal escaping.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Deterministic JSON number: Rust's shortest-roundtrip `Display`, with
/// integral floats written with no fraction (JSON has one number type).
pub fn json_num(v: f64) -> String {
    assert!(v.is_finite(), "non-finite value in artifact: {v}");
    format!("{v}")
}

fn csv_cell(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_escaped() {
        let mut f = Figure::new(
            "t1",
            "A \"quoted\" title",
            "x",
            "us",
            vec!["a".into(), "b".into()],
        );
        f.row("1", vec![1.5, 2.0]);
        f.samples = 3;
        let j1 = f.to_json("exp", "smoke", 7);
        let j2 = f.to_json("exp", "smoke", 7);
        assert_eq!(j1, j2);
        assert!(j1.contains("\\\"quoted\\\""));
        assert!(j1.contains("\"values\": [1.5, 2]"));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let mut f = Figure::new("t", "t", "x", "us", vec!["a".into()]);
        f.row("1", vec![f64::NAN]);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut f = Figure::new("t", "t", "x", "us", vec!["a,b".into()]);
        f.row("1", vec![1.0]);
        assert_eq!(f.to_csv(), "x,\"a,b\"\n1,1\n");
    }
}
