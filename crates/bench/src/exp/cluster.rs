//! The `cluster` experiment: control-tier robustness across node counts.
//!
//! For each node count on the axis, a fleet of IOrchestra machines runs
//! under the cluster control tier with a full domain catalog, and three
//! fault mixes are injected in turn — a node crash/reboot, a network
//! partition on a lossy bus, and a controller crash. Each faulted run is
//! then stepped on a 100 ms grid until its steady-state digest
//! ([`ClusterTier::steady_digest`]) is byte-identical to the no-fault
//! run's, yielding a *measured convergence time* per `(nodes, fault)`
//! cell. The run gates on every cell converging within the horizon with
//! zero duplicated ownership, and emits `BENCH_cluster.json` at the repo
//! root through the shared schema-validated emitter
//! ([`gate::write_root_artifact`]).
//!
//! Everything here is simulated virtual time (`timing: false`), so the
//! artifact is byte-deterministic per `(profile, seed)` and swept by the
//! golden byte-identity gates like any other experiment.

use std::cell::RefCell;
use std::rc::Rc;

use iorch_hypervisor::{Cluster, VmSpec};
use iorch_simcore::{FaultKind, FaultPlan, FaultWindow, SimDuration, SimTime, Simulation};
use iorchestra::cluster::ClusterTier;
use iorchestra::{ClusterConfig, SystemKind};

use super::{gate, Ctx, Figure};

/// A provisioned fleet under the control tier.
struct Fleet {
    sim: Simulation<Cluster>,
    tier: Rc<RefCell<ClusterTier>>,
}

impl Fleet {
    fn new(nodes: u32, doms: u32, seed: u64, plan: &FaultPlan) -> Fleet {
        let mut sim = Simulation::new(Cluster::new());
        let (cl, s) = sim.parts_mut();
        let machines: Vec<usize> = (0..nodes)
            .map(|m| SystemKind::IOrchestra.provision(cl, s, seed ^ u64::from(m)))
            .collect();
        let tier = ClusterTier::install(cl, s, &machines, ClusterConfig::default());
        {
            let mut t = tier.borrow_mut();
            for i in 0..doms {
                t.submit_domain(VmSpec::new(1 + i % 2, 1).with_disk_gb(4));
            }
            t.install_faults(s, plan);
        }
        Fleet { sim, tier }
    }

    fn digest(&mut self) -> String {
        let (cl, _s) = self.sim.parts_mut();
        self.tier.borrow().steady_digest(cl)
    }

    fn violations(&mut self) -> usize {
        let (cl, _s) = self.sim.parts_mut();
        self.tier.borrow().ownership_violations(cl).len()
    }
}

/// The three fault mixes per node count: `(name, plan, fault_end_ms)`.
fn mixes(nodes: u32) -> Vec<(&'static str, FaultPlan, u64)> {
    let ms = SimTime::from_millis;
    vec![
        (
            "node_crash",
            FaultPlan::new().with(
                FaultWindow::always(),
                FaultKind::NodeCrash {
                    node: 1,
                    at: ms(1000),
                    recover_after: SimDuration::from_millis(700),
                },
            ),
            1700,
        ),
        (
            "net_partition",
            FaultPlan::new()
                .with(
                    FaultWindow::new(ms(1000), ms(2200)),
                    FaultKind::NetPartition {
                        group: 1u64 << (nodes - 1),
                    },
                )
                .with(
                    FaultWindow::new(ms(1000), ms(2600)),
                    FaultKind::NetUnreliable {
                        drop_1_in: 11,
                        dup_1_in: 9,
                        reorder: true,
                    },
                ),
            2600,
        ),
        (
            "controller_crash",
            FaultPlan::new().with(
                FaultWindow::always(),
                FaultKind::ControllerCrash {
                    at: ms(1200),
                    recover_after: SimDuration::from_millis(500),
                },
            ),
            1700,
        ),
    ]
}

/// The family run function (see the module docs). Gate: every
/// `(nodes, fault)` cell converges within the horizon with zero
/// duplicated ownership.
pub(crate) fn run_cluster(ctx: &Ctx) -> Vec<Figure> {
    let [doms_per_node] = ctx.p.axis2 else {
        panic!("cluster: axis2 must be [domains_per_node]");
    };
    let doms_per_node = *doms_per_node as u32;
    const HORIZON_MS: u64 = 10_000;
    let mut f = Figure::new(
        "cluster",
        "Cluster tier — convergence after node/network/controller faults",
        "nodes/fault",
        "mixed",
        vec![
            "converged".into(),
            "converge_ms".into(),
            "failovers".into(),
            "msgs_delivered".into(),
            "dup_ownership".into(),
        ],
    );
    for &n in ctx.p.axis {
        let nodes = n as u32;
        let doms = nodes * doms_per_node;
        let mut base = Fleet::new(nodes, doms, ctx.seed, &FaultPlan::new());
        base.sim.run_until(SimTime::from_millis(HORIZON_MS));
        let want = base.digest();
        assert_eq!(
            base.violations(),
            0,
            "cluster: no-fault run at {nodes} nodes has ownership violations"
        );
        for (mix, plan, fault_end_ms) in mixes(nodes) {
            let mut run = Fleet::new(nodes, doms, ctx.seed, &plan);
            run.sim.run_until(SimTime::from_millis(fault_end_ms));
            // Step on the controller-tick grid until the steady state is
            // byte-identical to the no-fault run's.
            let mut converge_ms = None;
            let mut t = fault_end_ms;
            while t <= HORIZON_MS {
                if run.digest() == want {
                    converge_ms = Some(t - fault_end_ms);
                    break;
                }
                t += 100;
                run.sim.run_until(SimTime::from_millis(t));
            }
            let converged = converge_ms.is_some();
            let dup = run.violations();
            let stats = run.tier.borrow().controller().stats();
            let bus = run.tier.borrow().bus_stats();
            f.row(
                format!("{nodes}/{mix}"),
                vec![
                    u64::from(converged) as f64,
                    converge_ms.unwrap_or(HORIZON_MS) as f64,
                    stats.failovers as f64,
                    bus.delivered as f64,
                    dup as f64,
                ],
            );
            f.samples += bus.delivered;
            assert!(
                converged,
                "cluster gate: {nodes} nodes / {mix} did not converge to the \
                 no-fault steady state within {HORIZON_MS} ms"
            );
            assert_eq!(
                dup, 0,
                "cluster gate: {nodes} nodes / {mix} left duplicated ownership"
            );
        }
    }
    let path = gate::write_root_artifact(
        "BENCH_cluster.json",
        &f,
        ctx.spec.name,
        ctx.profile.name(),
        ctx.seed,
    );
    println!("wrote {}", path.display());
    vec![f]
}
