//! The experiment registry: every paper figure/table as a [`Spec`].
//!
//! Full profiles replicate the historical `benches/exp_*.rs` parameters
//! and seeds exactly (grids, warmup/measure spans, repeat pooling), so
//! the measured columns in EXPERIMENTS.md remain regenerable from these
//! specs. Smoke profiles shrink the axes and spans to gate-sized runs
//! whose artifacts are byte-golden in `tier1.sh`.

use std::collections::HashMap;
use std::rc::Rc;

use iorch_hypervisor::{Cluster, IoPathMode, MachineConfig, VmSpec};
use iorch_metrics::{
    cdf_at_fractions, latency_improvement_pct, normalized, standard_grid,
    throughput_improvement_pct, LatencyHistogram,
};
use iorch_simcore::{SimDuration, SimTime, Simulation};
use iorch_workloads::{
    recorder, spawn_multistream, spawn_ycsb, MultiStreamParams, VmRef, YcsbParams,
};
use iorchestra::{
    FunctionSet, IOrchestraConfig, IOrchestraPlane, PolicyEngine, PolicySet, SystemKind,
};

use crate::exp::{telemetry_run, Ctx, Figure, RunProfile, Spec};
use crate::runner::{
    arrivals_run, bursty_run, congestion_run, cosched_run, fig4_run, flush_run, motivation_run,
    scaleout_run, FbKind, Fig4Out, RunCfg, ScaleApp,
};

const HEADLINE: &[&str] = &["Baseline", "SDC", "DIF", "IOrchestra"];

fn headline() -> [SystemKind; 4] {
    SystemKind::headline()
}

fn cols(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| s.to_string()).collect()
}

// ====================================================================
// §2 motivation
// ====================================================================

fn run_motivation(ctx: &Ctx) -> Vec<Figure> {
    let base = motivation_run(false, ctx.cfg());
    let iorch = motivation_run(true, ctx.cfg());
    let mut f = Figure::new(
        "motivation",
        "§2 motivation — reads entering the falsely-congested queue",
        "metric",
        "mixed",
        cols(&["Baseline", "IOrchestra (collaborative)"]),
    );
    f.row(
        "mean latency (ms)",
        vec![base.mean.as_millis_f64(), iorch.mean.as_millis_f64()],
    );
    f.row(
        "congestion entries",
        vec![
            base.congestion_entries as f64,
            iorch.congestion_entries as f64,
        ],
    );
    f.row(
        "releases granted",
        vec![base.bypass_grants as f64, iorch.bypass_grants as f64],
    );
    f.samples = base.ops + iorch.ops;
    vec![f]
}

// ====================================================================
// §5.1 — Figs. 4, 5, 6 (shared fig4_run family)
// ====================================================================

/// Memoized merged runs: the client sweep and the rate sweep share the
/// (150 clients, 1500 rps) corner, and Figs. 4a–4f all come from the same
/// simulations.
struct Fig4Memo<'a> {
    ctx: &'a Ctx<'a>,
    cache: HashMap<(String, u32, u64, u64), Rc<Fig4Out>>,
}

impl<'a> Fig4Memo<'a> {
    fn new(ctx: &'a Ctx<'a>) -> Self {
        Fig4Memo {
            ctx,
            cache: HashMap::new(),
        }
    }

    /// Merge the distributions of the spec's seeded repeats (the paper
    /// averages over repeated runs; merging histograms pools the samples).
    fn merged(&mut self, kind: SystemKind, clients: u32, r1: f64, r2: f64) -> Rc<Fig4Out> {
        let key = (
            kind.label().to_string(),
            clients,
            r1.to_bits(),
            r2.to_bits(),
        );
        if let Some(out) = self.cache.get(&key) {
            return Rc::clone(out);
        }
        let mut acc: Option<Fig4Out> = None;
        for seed in self.ctx.seeds() {
            let run = fig4_run(kind, clients, r1, r2, self.ctx.cfg_seeded(seed));
            match &mut acc {
                None => acc = Some(run),
                Some(acc) => {
                    acc.olio_total.merge(&run.olio_total);
                    acc.olio_web.merge(&run.olio_web);
                    acc.olio_db.merge(&run.olio_db);
                    acc.olio_file.merge(&run.olio_file);
                    acc.ycsb1.merge(&run.ycsb1);
                    acc.ycsb2.merge(&run.ycsb2);
                }
            }
        }
        let out = Rc::new(acc.unwrap());
        self.cache.insert(key, Rc::clone(&out));
        out
    }
}

fn run_fig4(ctx: &Ctx) -> Vec<Figure> {
    let mut memo = Fig4Memo::new(ctx);
    let headline_cols = cols(HEADLINE);
    let mut fig4a = Figure::new(
        "fig4a",
        "Fig. 4a — Olio mean latency (ms) vs clients",
        "clients",
        "ms",
        headline_cols.clone(),
    );
    let mut fig4d = Figure::new(
        "fig4d",
        "Fig. 4d — Olio 99.9th pct latency (ms) vs clients",
        "clients",
        "ms",
        headline_cols.clone(),
    );
    for &c in ctx.p.axis {
        let c = c as u32;
        let outs: Vec<Rc<Fig4Out>> = headline()
            .iter()
            .map(|k| memo.merged(*k, c, 1500.0, 1500.0))
            .collect();
        fig4a.row(
            c.to_string(),
            outs.iter()
                .map(|o| o.olio_total.mean().as_millis_f64())
                .collect(),
        );
        fig4d.row(
            c.to_string(),
            outs.iter()
                .map(|o| o.olio_total.p999().as_millis_f64())
                .collect(),
        );
        fig4a.samples += outs.iter().map(|o| o.olio_total.count()).sum::<u64>();
    }
    fig4d.samples = fig4a.samples;

    // (b, e) and (c, f): YCSB vs rate, Olio fixed at 150 clients.
    let mut figs_rate = [
        Figure::new(
            "fig4b",
            "Fig. 4b — YCSB1 mean latency (us) vs req/s",
            "req/s",
            "us",
            headline_cols.clone(),
        ),
        Figure::new(
            "fig4e",
            "Fig. 4e — YCSB1 99.9th pct latency (us) vs req/s",
            "req/s",
            "us",
            headline_cols.clone(),
        ),
        Figure::new(
            "fig4c",
            "Fig. 4c — YCSB2 mean latency (us) vs req/s",
            "req/s",
            "us",
            headline_cols.clone(),
        ),
        Figure::new(
            "fig4f",
            "Fig. 4f — YCSB2 99.9th pct latency (us) vs req/s",
            "req/s",
            "us",
            headline_cols.clone(),
        ),
    ];
    for &r in ctx.p.axis2 {
        let outs: Vec<Rc<Fig4Out>> = headline()
            .iter()
            .map(|k| memo.merged(*k, 150, r, r))
            .collect();
        let x = format!("{r:.0}");
        figs_rate[0].row(
            x.clone(),
            outs.iter()
                .map(|o| o.ycsb1.mean().as_micros_f64())
                .collect(),
        );
        figs_rate[1].row(
            x.clone(),
            outs.iter()
                .map(|o| o.ycsb1.p999().as_micros_f64())
                .collect(),
        );
        figs_rate[2].row(
            x.clone(),
            outs.iter()
                .map(|o| o.ycsb2.mean().as_micros_f64())
                .collect(),
        );
        figs_rate[3].row(
            x,
            outs.iter()
                .map(|o| o.ycsb2.p999().as_micros_f64())
                .collect(),
        );
        figs_rate[0].samples += outs.iter().map(|o| o.ycsb1.count()).sum::<u64>();
        figs_rate[2].samples += outs.iter().map(|o| o.ycsb2.count()).sum::<u64>();
    }
    figs_rate[1].samples = figs_rate[0].samples;
    figs_rate[3].samples = figs_rate[2].samples;
    let [b, e, c, f] = figs_rate;
    vec![fig4a, fig4d, b, e, c, f]
}

fn run_fig5_fig6(ctx: &Ctx) -> Vec<Figure> {
    let clients = ctx.p.axis[0] as u32;
    let rate = ctx.p.axis2[0];
    let base = fig4_run(SystemKind::Baseline, clients, rate, rate, ctx.cfg());
    let iorch = fig4_run(SystemKind::IOrchestra, clients, rate, rate, ctx.cfg());
    let grid = standard_grid();
    let mut out = Vec::new();
    let series: [(&str, String, &LatencyHistogram, &LatencyHistogram); 5] = [
        (
            "fig5a",
            format!("Fig. 5a — YCSB1 latency CDF @{rate:.0} req/s"),
            &base.ycsb1,
            &iorch.ycsb1,
        ),
        (
            "fig5b",
            format!("Fig. 5b — YCSB2 latency CDF @{rate:.0} req/s"),
            &base.ycsb2,
            &iorch.ycsb2,
        ),
        (
            "fig6a",
            "Fig. 6a — Olio web tier latency CDF".to_string(),
            &base.olio_web,
            &iorch.olio_web,
        ),
        (
            "fig6b",
            "Fig. 6b — Olio database tier latency CDF".to_string(),
            &base.olio_db,
            &iorch.olio_db,
        ),
        (
            "fig6c",
            "Fig. 6c — Olio file-server tier latency CDF".to_string(),
            &base.olio_file,
            &iorch.olio_file,
        ),
    ];
    for (id, title, b, i) in series {
        let mut f = Figure::new(
            id,
            title,
            "pct",
            "us",
            cols(&["Baseline (us)", "IOrchestra (us)"]),
        );
        let bp = cdf_at_fractions(b, &grid);
        let ip = cdf_at_fractions(i, &grid);
        for (bpt, ipt) in bp.iter().zip(&ip) {
            f.row(
                format!("{:.0}%", bpt.fraction * 100.0),
                vec![bpt.value.as_micros_f64(), ipt.value.as_micros_f64()],
            );
        }
        f.samples = b.count() + i.count();
        out.push(f);
    }
    // Fig. 6's headline numbers: per-tier mean improvement (the paper
    // reports 11.2% overall, 21.6% db, 19.8% file — I/O tiers improve
    // more than end-to-end because CPU time dilutes the total).
    let mut means = Figure::new(
        "fig6_means",
        "Fig. 6 — Olio mean latency by tier (ms) and improvement",
        "tier",
        "mixed",
        cols(&["Baseline (ms)", "IOrchestra (ms)", "improvement (%)"]),
    );
    let tiers: [(&str, &LatencyHistogram, &LatencyHistogram); 3] = [
        ("overall", &base.olio_total, &iorch.olio_total),
        ("database", &base.olio_db, &iorch.olio_db),
        ("file server", &base.olio_file, &iorch.olio_file),
    ];
    for (tier, b, i) in tiers {
        means.row(
            tier.to_string(),
            vec![
                b.mean().as_micros_f64() / 1000.0,
                i.mean().as_micros_f64() / 1000.0,
                latency_improvement_pct(b.mean(), i.mean()),
            ],
        );
        means.samples += b.count() + i.count();
    }
    out.push(means);
    out
}

// ====================================================================
// §5.2 — Fig. 7 scale-out
// ====================================================================

fn run_fig7(ctx: &Ctx) -> Vec<Figure> {
    let mut out = Vec::new();
    for (id, app, title) in [
        (
            "fig7a",
            ScaleApp::Blast,
            "Fig. 7a — mpiBLAST normalized mean I/O latency",
        ),
        (
            "fig7b",
            ScaleApp::Ycsb1,
            "Fig. 7b — YCSB1 normalized mean I/O latency",
        ),
    ] {
        let mut f = Figure::new(
            id,
            title,
            "machines",
            "ratio",
            cols(&["IOrchestra", "SDC", "DIF"]),
        );
        for &n in ctx.p.axis {
            let n = n as usize;
            let (base, bops) = scaleout_run(SystemKind::Baseline, n, app, ctx.cfg());
            let (io, iops) = scaleout_run(SystemKind::IOrchestra, n, app, ctx.cfg());
            let (sdc, sops) = scaleout_run(SystemKind::Sdc, n, app, ctx.cfg());
            let (dif, dops) = scaleout_run(SystemKind::Dif, n, app, ctx.cfg());
            f.row(
                n.to_string(),
                vec![
                    normalized(base, io),
                    normalized(base, sdc),
                    normalized(base, dif),
                ],
            );
            f.samples += bops + iops + sops + dops;
        }
        out.push(f);
    }
    out
}

// ====================================================================
// §5.3 — Fig. 8 + Table 2 flush
// ====================================================================

fn run_fig8(ctx: &Ctx) -> Vec<Figure> {
    let flush_only = SystemKind::IOrchestraWith(FunctionSet::flush_only());
    let ratio_cols: Vec<String> = ctx
        .p
        .axis2
        .iter()
        .map(|r| format!("{:.0}%", r * 100.0))
        .collect();
    let mut f = Figure::new(
        "fig8",
        "Fig. 8 — FS write-throughput improvement (IOrchestra flush vs baseline)",
        "VMs",
        "%",
        ratio_cols,
    );
    for &n in ctx.p.axis {
        let n = n as usize;
        let mut row = Vec::new();
        for &r in ctx.p.axis2 {
            let (base, bops) = flush_run(SystemKind::Baseline, n, r, ctx.cfg());
            let (io, iops) = flush_run(flush_only, n, r, ctx.cfg());
            row.push(throughput_improvement_pct(base, io));
            f.samples += bops + iops;
        }
        f.row(n.to_string(), row);
    }
    vec![f]
}

fn run_table2(ctx: &Ctx) -> Vec<Figure> {
    let mut f = Figure::new(
        "table2",
        "Table 2 — app-throughput improvement vs arrival rate λ (VMs/min)",
        "λ",
        "mixed",
        cols(&["Baseline (MB/s)", "IOrchestra (MB/s)", "improvement (%)"]),
    );
    for &l in ctx.p.axis {
        let base = arrivals_run(SystemKind::Baseline, l, ctx.cfg());
        let io = arrivals_run(SystemKind::IOrchestra, l, ctx.cfg());
        f.row(
            format!("{l:.0}"),
            vec![
                base.app_bps / 1e6,
                io.app_bps / 1e6,
                throughput_improvement_pct(base.app_bps, io.app_bps),
            ],
        );
        f.samples += base.arrived + io.arrived;
    }
    vec![f]
}

// ====================================================================
// §5.4 — Fig. 9 congestion control
// ====================================================================

fn run_fig9(ctx: &Ctx) -> Vec<Figure> {
    let cong_only = SystemKind::IOrchestraWith(FunctionSet::congestion_only());
    let mut f = Figure::new(
        "fig9",
        "Fig. 9 — normalized mean latency (IOrchestra congestion-only / baseline)",
        "VMs",
        "ratio",
        cols(&["FS", "WS", "VS"]),
    );
    for &n in ctx.p.axis {
        let n = n as usize;
        let mut row = Vec::new();
        for fb in [FbKind::Fs, FbKind::Ws, FbKind::Vs] {
            let (base, bops) = congestion_run(SystemKind::Baseline, fb, n, ctx.cfg());
            let (io, iops) = congestion_run(cong_only, fb, n, ctx.cfg());
            row.push(normalized(base, io));
            f.samples += bops + iops;
        }
        f.row(n.to_string(), row);
    }
    vec![f]
}

// ====================================================================
// §5.5 — Figs. 10a, 10b/10c, 11 co-scheduling
// ====================================================================

fn run_fig10a(ctx: &Ctx) -> Vec<Figure> {
    let mut f = Figure::new(
        "fig10a",
        "Fig. 10a — I/O throughput vs % of I/O threads (IOrchestra vs SDC)",
        "% io threads",
        "mixed",
        cols(&["SDC (MB/s)", "IOrchestra (MB/s)", "improvement (%)"]),
    );
    for &t in ctx.p.axis {
        let io_threads = t as u32;
        let (sdc, sops) = cosched_run(SystemKind::Sdc, io_threads, ctx.cfg());
        let (io, iops) = cosched_run(SystemKind::IOrchestra, io_threads, ctx.cfg());
        f.row(
            format!("{}%", io_threads * 10),
            vec![sdc / 1e6, io / 1e6, throughput_improvement_pct(sdc, io)],
        );
        f.samples += sops + iops;
    }
    vec![f]
}

fn run_fig10bc_fig11(ctx: &Ctx) -> Vec<Figure> {
    let mut b = Figure::new(
        "fig10b",
        "Fig. 10b — improvement in VMs completed vs λ",
        "λ",
        "%",
        cols(&["SDC", "IOrchestra"]),
    );
    let mut c = Figure::new(
        "fig10c",
        "Fig. 10c — average CPU utilization vs λ",
        "λ",
        "%",
        cols(&["Baseline", "SDC", "IOrchestra"]),
    );
    let mut f11 = Figure::new(
        "fig11",
        "Fig. 11 — I/O throughput improvement over baseline vs λ",
        "λ",
        "%",
        cols(&["SDC", "IOrchestra"]),
    );
    for &l in ctx.p.axis {
        let base = arrivals_run(SystemKind::Baseline, l, ctx.cfg());
        let sdc = arrivals_run(SystemKind::Sdc, l, ctx.cfg());
        let io = arrivals_run(SystemKind::IOrchestra, l, ctx.cfg());
        let imp = |x: u64| {
            if base.completed == 0 {
                0.0
            } else {
                (x as f64 - base.completed as f64) / base.completed as f64 * 100.0
            }
        };
        let x = format!("{l:.0}");
        b.row(x.clone(), vec![imp(sdc.completed), imp(io.completed)]);
        c.row(
            x.clone(),
            vec![
                base.cpu_utilization * 100.0,
                sdc.cpu_utilization * 100.0,
                io.cpu_utilization * 100.0,
            ],
        );
        f11.row(
            x,
            vec![
                throughput_improvement_pct(base.io_bps, sdc.io_bps),
                throughput_improvement_pct(base.io_bps, io.io_bps),
            ],
        );
        let n = base.arrived + sdc.arrived + io.arrived;
        b.samples += n;
        c.samples += n;
        f11.samples += n;
    }
    vec![b, c, f11]
}

// ====================================================================
// §5.6 — Fig. 12 bursty writes
// ====================================================================

fn run_fig12(ctx: &Ctx) -> Vec<Figure> {
    let mut out = Vec::new();
    for &burst_ms in ctx.p.axis2 {
        let burst_ms = burst_ms as u64;
        let mut f = Figure::new(
            format!("fig12_b{burst_ms}"),
            format!("Fig. 12 — YCSB1 99.9th pct latency (us), {burst_ms} ms bursts"),
            "req/s",
            "us",
            cols(HEADLINE),
        );
        for &r in ctx.p.axis {
            let mut row = Vec::new();
            for k in headline() {
                let h = bursty_run(k, r, SimDuration::from_millis(burst_ms), ctx.cfg());
                row.push(h.p999().as_micros_f64());
                f.samples += h.count();
            }
            f.row(format!("{r:.0}"), row);
        }
        out.push(f);
    }
    out
}

// ====================================================================
// Ablations (DESIGN.md §5)
// ====================================================================

/// Run the bursty-writes scenario under an arbitrary policy set — the
/// named-set sweep runs every plane the engine knows through here.
fn bursty_with_set(set: PolicySet, mode: IoPathMode, rate: f64, cfg: RunCfg) -> (f64, u64) {
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let idx = cl.add_machine(MachineConfig::paper_testbed(cfg.seed, mode));
    cl.install_control(s, idx, Box::new(PolicyEngine::new(set)));
    let wb = |g: &mut iorch_guestos::GuestConfig| {
        g.wb.periodic_interval = SimDuration::from_millis(1000);
        g.wb.dirty_expire = SimDuration::from_millis(3000);
    };
    let a = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(20), wb);
    let b = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(20), wb);
    let rec = recorder(cfg.record_after());
    let mut p = YcsbParams::ycsb1(rate, cfg.seed).with_burst(SimDuration::from_millis(50));
    p.memtable_flush_bytes = 2 << 20;
    spawn_ycsb(
        cl,
        s,
        &[
            VmRef {
                machine: idx,
                dom: a,
            },
            VmRef {
                machine: idx,
                dom: b,
            },
        ],
        None,
        p,
        Rc::clone(&rec),
    );
    sim.run_until(cfg.horizon());
    let r = rec.borrow();
    (r.hist.p999().as_micros_f64(), r.ops)
}

/// Same scenario with a custom-configured IOrchestra plane (full function
/// set unless restricted by `mk`).
fn bursty_with_cfg(
    mk: impl FnOnce(IOrchestraConfig) -> IOrchestraConfig,
    rate: f64,
    cfg: RunCfg,
) -> (f64, u64) {
    bursty_with_set(
        PolicySet::iorchestra(mk(IOrchestraConfig::new(cfg.seed))),
        IoPathMode::DedicatedCores { per_socket: true },
        rate,
        cfg,
    )
}

/// Fig. 10a-style cosched run with a tweaked plane (weight-update and DRR
/// ablations); matches the historical 1 s warm-up / 5 s measure spans.
fn cosched_with_cfg(mk: impl FnOnce(&mut IOrchestraConfig), seed: u64) -> (f64, u64) {
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let idx = cl.add_machine(MachineConfig::paper_testbed(
        seed,
        IoPathMode::DedicatedCores { per_socket: true },
    ));
    let mut pcfg = IOrchestraConfig::new(seed).with_functions(FunctionSet::cosched_only());
    mk(&mut pcfg);
    cl.install_control(s, idx, Box::new(IOrchestraPlane::new(pcfg)));
    let dom = cl.create_domain(s, idx, VmSpec::new(10, 10).with_disk_gb(60), |_| {});
    let rec = recorder(SimTime::from_secs(1));
    spawn_multistream(
        cl,
        s,
        VmRef { machine: idx, dom },
        MultiStreamParams {
            streams: 6,
            file_size: 2 << 30,
            read_size: 1 << 20,
            first_vcpu: 0,
            seed,
        },
        Rc::clone(&rec),
    );
    sim.run_until(SimTime::from_secs(6));
    let now = sim.now();
    let r = rec.borrow();
    (r.throughput_bps(now), r.ops)
}

fn run_ablation(ctx: &Ctx) -> Vec<Figure> {
    let rate = 600.0;
    let mut out = Vec::new();

    // Ablation 0: every named policy set on one engine. This is the only
    // figure the smoke profile (and `IORCH_ABLATION=named`) runs — the
    // tier-1 sweep pays for the set coverage, not the parameter grids.
    let mut t0 = Figure::new(
        "ablation_named",
        "Ablation — named policy sets (YCSB1 bursty p99.9, us)",
        "policy set",
        "us",
        cols(&["p99.9 (us)"]),
    );
    for name in [
        "baseline",
        "sdc",
        "dif",
        "flush_only",
        "congestion_only",
        "cosched_only",
        "iorchestra",
    ] {
        let set = PolicySet::named(name, ctx.seed).expect("known policy set");
        let mode = match name {
            "sdc" => IoPathMode::DedicatedCores { per_socket: false },
            "cosched_only" | "iorchestra" => IoPathMode::DedicatedCores { per_socket: true },
            _ => IoPathMode::Paravirt,
        };
        let (v, ops) = bursty_with_set(set, mode, rate, ctx.cfg());
        t0.row(name, vec![v]);
        t0.samples += ops;
    }
    out.push(t0);
    let named_only = ctx.is_smoke() || std::env::var("IORCH_ABLATION").as_deref() == Ok("named");
    if named_only {
        return out;
    }

    // Ablation 1: congestion wake interleave.
    let mut t1 = Figure::new(
        "ablation_interleave",
        "Ablation — congestion wake interleave (YCSB1 bursty p99.9, us)",
        "interleave",
        "us",
        cols(&["p99.9 (us)"]),
    );
    for (label, max_ms) in [
        ("none (thundering herd)", 0u64),
        ("0-25 ms", 25),
        ("0-99 ms (paper)", 99),
        ("0-400 ms", 400),
    ] {
        let (v, ops) = bursty_with_cfg(
            |mut c| {
                c.wake_interleave_max_ms = max_ms;
                c
            },
            rate,
            ctx.cfg(),
        );
        t1.row(label, vec![v]);
        t1.samples += ops;
    }
    out.push(t1);

    // Ablation 2: co-scheduler weight-update policy.
    let mut t2 = Figure::new(
        "ablation_weight",
        "Ablation — weight update policy (Fig. 10a setting, 60% io threads)",
        "policy",
        "mixed",
        cols(&["IOrchestra (MB/s)"]),
    );
    for (label, interval_ms, threshold) in [
        ("always (every tick)", 0u64, 0.0f64),
        ("1 s or >50% change (paper)", 1000, 0.5),
        ("never update", u64::MAX / 2_000_000, 1e18),
    ] {
        let (bps, ops) = cosched_with_cfg(
            |c| {
                c.weight_update_interval = SimDuration::from_millis(interval_ms.min(1 << 40));
                c.weight_change_threshold = threshold;
            },
            ctx.seed,
        );
        t2.row(label, vec![bps / 1e6]);
        t2.samples += ops;
    }
    out.push(t2);

    // Ablation 3: DRR round length (quantum scale).
    let mut t3 = Figure::new(
        "ablation_drr",
        "Ablation — DRR round length (quantum = BW_max * share * round)",
        "round",
        "mixed",
        cols(&["IOrchestra (MB/s)"]),
    );
    for (label, us) in [
        ("100 us", 100u64),
        ("1 ms (default)", 1000),
        ("10 ms", 10_000),
        ("100 ms", 100_000),
    ] {
        let (bps, ops) = cosched_with_cfg(
            |c| {
                c.drr_round = SimDuration::from_micros(us);
            },
            ctx.seed,
        );
        t3.row(label, vec![bps / 1e6]);
        t3.samples += ops;
    }
    out.push(t3);

    // Reference: headline systems on the same bursty load.
    let mut t4 = Figure::new(
        "ablation_reference",
        "Reference — headline systems on the same bursty load (p99.9, us)",
        "system",
        "us",
        cols(&["p99.9 (us)"]),
    );
    for k in headline() {
        let h = bursty_run(k, rate, SimDuration::from_millis(50), ctx.cfg());
        t4.row(k.label(), vec![h.p999().as_micros_f64()]);
        t4.samples += h.count();
    }
    out.push(t4);
    out
}

// ====================================================================
// Live telemetry (the 10th exp_* target)
// ====================================================================

fn run_telemetry(ctx: &Ctx) -> Vec<Figure> {
    let rate = ctx.p.axis[0];
    let cadence = SimDuration::from_millis(ctx.p.axis2[0] as u64);
    let slo = ctx.spec.slo.expect("telemetry spec declares an SLO");
    let (reports, ops) = telemetry_run(SystemKind::IOrchestra, rate, cadence, slo, ctx.cfg());
    let mut f = Figure::new(
        "telemetry",
        "Live telemetry — per-window p50/p99/SLO violations (YCSB1 bursty, IOrchestra)",
        "t (s)",
        "mixed",
        cols(&["ops", "p50 (us)", "p99 (us)", "SLO viol", "dev ops"]),
    );
    for r in &reports {
        f.row(
            format!("{:.3}", r.end.as_secs_f64()),
            vec![
                r.ops as f64,
                r.p50.as_micros_f64(),
                r.p99.as_micros_f64(),
                r.slo_violations as f64,
                r.dev_ops as f64,
            ],
        );
    }
    f.samples = ops;
    vec![f]
}

// ====================================================================
// The registry
// ====================================================================

const NONE: &[f64] = &[];

/// Every named experiment, in EXPERIMENTS.md order.
pub static REGISTRY: &[Spec] = &[
    Spec {
        name: "motivation",
        title: "§2 motivation: congestion avoidance on vs collaborative",
        systems: &["Baseline", "IOrchestra (congestion-only)"],
        figures: &["motivation"],
        smoke: RunProfile {
            warmup_ms: 300,
            measure_ms: 700,
            repeats: 1,
            axis: NONE,
            axis2: NONE,
        },
        full: RunProfile {
            warmup_ms: 1000,
            measure_ms: 5000,
            repeats: 1,
            axis: NONE,
            axis2: NONE,
        },
        slo: None,
        timing: false,
        notes: "paper: 220 ms -> 160 ms (27% improvement); the reproduction target is the \
                double-digit relative gap, not the absolute numbers.",
        run: run_motivation,
    },
    Spec {
        name: "fig4",
        title: "Fig. 4 — latency at different workload intensities (Olio + 2 stores)",
        systems: HEADLINE,
        figures: &["fig4a", "fig4d", "fig4b", "fig4e", "fig4c", "fig4f"],
        smoke: RunProfile {
            warmup_ms: 300,
            measure_ms: 700,
            repeats: 1,
            axis: &[50.0, 150.0],
            axis2: &[500.0, 1500.0],
        },
        full: RunProfile {
            warmup_ms: 2000,
            measure_ms: 6000,
            repeats: 3,
            axis: &[50.0, 100.0, 150.0, 200.0, 250.0, 300.0],
            axis2: &[500.0, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0],
        },
        slo: None,
        timing: false,
        notes: "paper shapes: IOrchestra lowest on every series; overall mean ~9% and 99.9th \
                ~12% below baseline; YCSB1 gains (13/16%) exceed YCSB2's.",
        run: run_fig4,
    },
    Spec {
        name: "fig5_fig6",
        title: "Figs. 5/6 — latency distributions at full load",
        systems: &["Baseline", "IOrchestra"],
        figures: &["fig5a", "fig5b", "fig6a", "fig6b", "fig6c", "fig6_means"],
        smoke: RunProfile {
            warmup_ms: 300,
            measure_ms: 700,
            repeats: 1,
            axis: &[100.0],
            axis2: &[1000.0],
        },
        full: RunProfile {
            warmup_ms: 2000,
            measure_ms: 6000,
            repeats: 1,
            axis: &[300.0],
            axis2: &[3000.0],
        },
        slo: None,
        timing: false,
        notes: "paper: mean improvements 11.2% (Olio), 21.6% (db tier), 19.8% (file tier); \
                I/O tiers improve more than end-to-end.",
        run: run_fig5_fig6,
    },
    Spec {
        name: "fig7",
        title: "Fig. 7 — normalized mean I/O latency vs cluster size",
        systems: HEADLINE,
        figures: &["fig7a", "fig7b"],
        smoke: RunProfile {
            warmup_ms: 500,
            measure_ms: 2500,
            repeats: 1,
            axis: &[1.0, 2.0],
            axis2: NONE,
        },
        full: RunProfile {
            warmup_ms: 1000,
            measure_ms: 3000,
            repeats: 1,
            axis: &[1.0, 2.0, 4.0, 6.0, 8.0],
            axis2: NONE,
        },
        slo: None,
        timing: false,
        notes: "paper shapes: IOrchestra ~0.87-0.90 across sizes (10.1% mpiBLAST, 12.9% \
                YCSB1 average gains).",
        run: run_fig7,
    },
    Spec {
        name: "fig8",
        title: "Fig. 8 — FS write-throughput improvement from the flush function",
        systems: &["Baseline", "IOrchestra (flush-only)"],
        figures: &["fig8"],
        smoke: RunProfile {
            warmup_ms: 500,
            measure_ms: 1500,
            repeats: 1,
            axis: &[2.0, 6.0],
            axis2: &[0.2, 0.4],
        },
        full: RunProfile {
            warmup_ms: 2000,
            measure_ms: 5000,
            repeats: 1,
            axis: &[2.0, 6.0, 10.0, 14.0, 20.0],
            axis2: &[0.10, 0.20, 0.30, 0.40],
        },
        slo: None,
        timing: false,
        notes: "paper shape: improvement grows with VM count and dirty ratio, peaking ~21% \
                at 20 VMs / 40%.",
        run: run_fig8,
    },
    Spec {
        name: "table2",
        title: "Table 2 — app-throughput improvement under dynamic VM arrivals",
        systems: &["Baseline", "IOrchestra"],
        figures: &["table2"],
        smoke: RunProfile {
            warmup_ms: 500,
            measure_ms: 3500,
            repeats: 1,
            axis: &[60.0, 90.0],
            axis2: NONE,
        },
        full: RunProfile {
            warmup_ms: 2000,
            measure_ms: 58000,
            repeats: 1,
            axis: &[4.0, 8.0, 12.0, 16.0, 20.0],
            axis2: NONE,
        },
        slo: None,
        timing: false,
        notes: "paper: 6.6 / 19.1 / 24.5 / 29.8 / 30.6 % — improvement grows with λ. The \
                smoke profile uses compressed spans with proportionally higher λ.",
        run: run_table2,
    },
    Spec {
        name: "fig9",
        title: "Fig. 9 — congestion control with FS / WS / VS",
        systems: &["Baseline", "IOrchestra (congestion-only)"],
        figures: &["fig9"],
        smoke: RunProfile {
            warmup_ms: 300,
            measure_ms: 700,
            repeats: 1,
            axis: &[2.0],
            axis2: NONE,
        },
        full: RunProfile {
            warmup_ms: 2000,
            measure_ms: 5000,
            repeats: 1,
            axis: &[2.0, 6.0, 10.0, 14.0, 20.0],
            axis2: NONE,
        },
        slo: None,
        timing: false,
        notes: "paper shape: FS benefits most (down to ~0.90); WS/VS closer to 1.0; all \
                curves approach 1.0 as the device becomes genuinely congested.",
        run: run_fig9,
    },
    Spec {
        name: "fig10a",
        title: "Fig. 10a — co-scheduling, mixed intensity in one big VM",
        systems: &["SDC", "IOrchestra"],
        figures: &["fig10a"],
        smoke: RunProfile {
            warmup_ms: 300,
            measure_ms: 700,
            repeats: 1,
            axis: &[2.0, 6.0],
            axis2: NONE,
        },
        full: RunProfile {
            warmup_ms: 1000,
            measure_ms: 5000,
            repeats: 1,
            axis: &[2.0, 4.0, 6.0, 8.0],
            axis2: NONE,
        },
        slo: None,
        timing: false,
        notes: "paper shape: 2-14% improvement, largest at moderate intensity (40-60%).",
        run: run_fig10a,
    },
    Spec {
        name: "fig10bc_fig11",
        title: "Figs. 10b/10c/11 — dynamic arrivals: completions, CPU, I/O throughput",
        systems: &["Baseline", "SDC", "IOrchestra"],
        figures: &["fig10b", "fig10c", "fig11"],
        smoke: RunProfile {
            warmup_ms: 500,
            measure_ms: 3500,
            repeats: 1,
            axis: &[60.0, 90.0],
            axis2: NONE,
        },
        full: RunProfile {
            warmup_ms: 2000,
            measure_ms: 118000,
            repeats: 1,
            axis: &[4.0, 8.0, 12.0, 16.0, 20.0],
            axis2: NONE,
        },
        slo: None,
        timing: false,
        notes: "paper shapes: IOrchestra's completed-VM gain grows with λ to ~6.6%; SDC's \
                I/O gain collapses at high λ while IOrchestra's roughly doubles it.",
        run: run_fig10bc_fig11,
    },
    Spec {
        name: "fig12",
        title: "Fig. 12 — YCSB1 tail latency under bursty writes",
        systems: HEADLINE,
        figures: &["fig12_b50", "fig12_b100"],
        smoke: RunProfile {
            warmup_ms: 300,
            measure_ms: 700,
            repeats: 1,
            axis: &[300.0, 600.0],
            axis2: &[50.0],
        },
        full: RunProfile {
            warmup_ms: 2000,
            measure_ms: 8000,
            repeats: 1,
            axis: &[200.0, 500.0, 1000.0, 1500.0, 2000.0, 3000.0],
            axis2: &[50.0, 100.0],
        },
        slo: None,
        timing: false,
        notes: "paper shape: the baseline tail blows past 1 ms at ~800 (50 ms bursts) and \
                ~500 req/s (100 ms); IOrchestra sustains the highest rate under 1 ms.",
        run: run_fig12,
    },
    Spec {
        name: "ablation",
        title: "Ablations of IOrchestra's design choices (DESIGN.md §5)",
        systems: &[
            "baseline",
            "sdc",
            "dif",
            "flush_only",
            "congestion_only",
            "cosched_only",
            "iorchestra",
        ],
        figures: &[
            "ablation_named",
            "ablation_interleave",
            "ablation_weight",
            "ablation_drr",
            "ablation_reference",
        ],
        smoke: RunProfile {
            warmup_ms: 300,
            measure_ms: 700,
            repeats: 1,
            axis: NONE,
            axis2: NONE,
        },
        full: RunProfile {
            warmup_ms: 2000,
            measure_ms: 8000,
            repeats: 1,
            axis: NONE,
            axis2: NONE,
        },
        slo: None,
        timing: false,
        notes: "smoke (and IORCH_ABLATION=named) runs only the named-set sweep; the \
                parameter ablations need the full profile.",
        run: run_ablation,
    },
    Spec {
        name: "telemetry",
        title: "Live telemetry — streaming p50/p99/SLO windows from a bursty run",
        systems: &["IOrchestra"],
        figures: &["telemetry"],
        smoke: RunProfile {
            warmup_ms: 300,
            measure_ms: 700,
            repeats: 1,
            axis: &[600.0],
            axis2: &[100.0],
        },
        full: RunProfile {
            warmup_ms: 2000,
            measure_ms: 8000,
            repeats: 1,
            axis: &[600.0],
            axis2: &[500.0],
        },
        slo: Some(SimDuration::from_millis(1)),
        timing: false,
        notes: "axis = YCSB1 req/s, axis2 = export cadence (ms); the run streams one \
                [telemetry] line per window (see DESIGN.md §12 for the determinism \
                contract: the tap never perturbs the RNG stream or trace identity).",
        run: run_telemetry,
    },
    Spec {
        name: "scale",
        title: "Control-plane scaling — tick cost at 16/128/1024 domains",
        systems: &["IOrchestra"],
        figures: &["scale"],
        smoke: RunProfile {
            warmup_ms: 0,
            measure_ms: 0,
            repeats: 1,
            axis: &[16.0, 128.0, 1024.0],
            axis2: &[16.0, 4096.0, 128.0],
        },
        full: RunProfile {
            warmup_ms: 0,
            measure_ms: 0,
            repeats: 1,
            axis: &[16.0, 128.0, 1024.0],
            axis2: &[32.0, 65536.0, 1024.0],
        },
        slo: None,
        timing: true,
        notes: "axis = live domains, axis2 = [warmup, steady, churn] tick counts; \
                measures wall-clock ns/tick (steady state and 1% tenant churn) and \
                emits BENCH_scale.json with the 4x steady-state scaling gate. \
                Wall-clock: excluded from `run all` and the golden sweeps.",
        run: crate::exp::scale::run_scale,
    },
    Spec {
        name: "cluster",
        title: "Cluster tier — fault convergence vs node count",
        systems: &["IOrchestra"],
        figures: &["cluster"],
        smoke: RunProfile {
            warmup_ms: 0,
            measure_ms: 0,
            repeats: 1,
            axis: &[3.0, 4.0],
            axis2: &[6.0],
        },
        full: RunProfile {
            warmup_ms: 0,
            measure_ms: 0,
            repeats: 1,
            axis: &[3.0, 4.0, 6.0, 8.0],
            axis2: &[8.0],
        },
        slo: None,
        timing: false,
        notes: "axis = node counts, axis2 = [domains per node]; each cell injects a \
                node crash, a lossy partition and a controller crash, measures the \
                time until the steady-state digest is byte-identical to the no-fault \
                run's, and gates on convergence with zero duplicated ownership. \
                Emits BENCH_cluster.json.",
        run: crate::exp::cluster::run_cluster,
    },
];
