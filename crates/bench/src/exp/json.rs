//! Minimal in-tree JSON parser and the artifact schema validator.
//!
//! The workspace builds fully offline with no external crates, so the
//! `experiments validate` gate carries its own parser: standard JSON
//! only (no NaN/Infinity tokens, no comments, no trailing commas), which
//! doubles as the finite-numbers check — a non-finite value cannot even
//! be expressed in the accepted grammar.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (f64 superset; always finite by construction).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (sorted map; duplicate keys rejected).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array value.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Json, String> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn lit(b: &[u8], pos: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut m = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(m));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        if m.insert(key.clone(), val).is_some() {
            return Err(format!("duplicate key {key:?}"));
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(m));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut a = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(a));
    }
    loop {
        a.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(a));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // '"'
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")
                            .map_err(String::from)?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u codepoint")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so valid).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    let n: f64 = s
        .parse()
        .map_err(|_| format!("invalid number {s:?} at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number {s:?}"));
    }
    Ok(Json::Num(n))
}

// ====================================================================
// Artifact schema validation
// ====================================================================

/// Validate one `iorch-exp/v1` figure artifact or `iorch-exp-summary/v1`
/// summary: required keys, finite numbers (guaranteed by the grammar),
/// row/column shape, nonzero sample counts.
pub fn validate_artifact(text: &str) -> Result<(), String> {
    let v = parse(text)?;
    let schema = v
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    match schema {
        "iorch-exp/v1" => validate_figure(&v),
        "iorch-exp-summary/v1" => validate_summary(&v),
        other => Err(format!("unknown schema {other:?}")),
    }
}

fn req_str(v: &Json, key: &str) -> Result<(), String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(|_| ())
        .ok_or(format!("missing or non-string {key:?}"))
}

fn req_count(v: &Json, key: &str) -> Result<f64, String> {
    let n = v
        .get(key)
        .and_then(Json::as_num)
        .ok_or(format!("missing or non-numeric {key:?}"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("{key:?} must be a non-negative integer, got {n}"));
    }
    Ok(n)
}

fn validate_figure(v: &Json) -> Result<(), String> {
    for k in ["experiment", "profile", "figure", "title", "x_axis", "unit"] {
        req_str(v, k)?;
    }
    req_count(v, "seed")?;
    let samples = req_count(v, "samples")?;
    if samples == 0.0 {
        return Err("zero sample count".into());
    }
    let cols = v
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or("missing \"columns\"")?;
    if cols.is_empty() || cols.iter().any(|c| c.as_str().is_none()) {
        return Err("\"columns\" must be a non-empty string array".into());
    }
    let rows = v
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing \"rows\"")?;
    if rows.is_empty() {
        return Err("empty \"rows\"".into());
    }
    for (i, r) in rows.iter().enumerate() {
        r.get("x")
            .and_then(Json::as_str)
            .ok_or(format!("row {i}: missing \"x\""))?;
        let vals = r
            .get("values")
            .and_then(Json::as_arr)
            .ok_or(format!("row {i}: missing \"values\""))?;
        if vals.len() != cols.len() {
            return Err(format!(
                "row {i}: {} values for {} columns",
                vals.len(),
                cols.len()
            ));
        }
        for (j, val) in vals.iter().enumerate() {
            val.as_num()
                .ok_or(format!("row {i} value {j}: not a number"))?;
        }
    }
    Ok(())
}

fn validate_summary(v: &Json) -> Result<(), String> {
    for k in ["experiment", "title", "profile"] {
        req_str(v, k)?;
    }
    req_count(v, "seed")?;
    req_count(v, "repeats")?;
    req_count(v, "warmup_ms")?;
    req_count(v, "measure_ms")?;
    let total = req_count(v, "total_samples")?;
    if total == 0.0 {
        return Err("zero total_samples".into());
    }
    let figs = v
        .get("figures")
        .and_then(Json::as_arr)
        .ok_or("missing \"figures\"")?;
    if figs.is_empty() {
        return Err("empty \"figures\"".into());
    }
    for (i, f) in figs.iter().enumerate() {
        req_str(f, "figure").map_err(|e| format!("figures[{i}]: {e}"))?;
        req_count(f, "rows").map_err(|e| format!("figures[{i}]: {e}"))?;
        req_count(f, "columns").map_err(|e| format!("figures[{i}]: {e}"))?;
        req_count(f, "samples").map_err(|e| format!("figures[{i}]: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_own_artifacts() {
        let mut f = crate::exp::Figure::new("f1", "title", "x", "us", vec!["a".into(), "b".into()]);
        f.row("1", vec![1.25, -3.0]);
        f.samples = 10;
        let text = f.to_json("exp", "smoke", 42);
        validate_artifact(&text).unwrap();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("figure").unwrap().as_str(), Some("f1"));
        assert_eq!(
            v.get("rows").unwrap().as_arr().unwrap()[0]
                .get("values")
                .unwrap()
                .as_arr()
                .unwrap()[0]
                .as_num(),
            Some(1.25)
        );
    }

    #[test]
    fn rejects_zero_samples_and_bad_shape() {
        let mut f = crate::exp::Figure::new("f1", "t", "x", "us", vec!["a".into()]);
        f.row("1", vec![1.0]);
        let text = f.to_json("exp", "smoke", 42);
        assert!(validate_artifact(&text)
            .unwrap_err()
            .contains("zero sample count"));
    }

    #[test]
    fn rejects_non_finite_tokens() {
        assert!(parse("{\"a\": NaN}").is_err());
        assert!(parse("{\"a\": Infinity}").is_err());
        assert!(parse("{\"a\": 1e999}").is_err());
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse("  {\"a\": [1, 2.5, {\"b\": \"x\\ny\"}], \"c\": null} ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_num(), Some(2.5));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Json::Null));
    }
}
