//! Replay a named fault scenario under the trace recorder and dump the
//! event timeline.
//!
//! ```text
//! tracedump [--system baseline|sdc|dif|iorchestra] [--seed N]
//!           [--scenario NAME] [--format timeline|decisions|chrome]
//!           [--list]
//! ```
//!
//! The output is a pure function of `(system, seed, scenario)`: two runs
//! with the same arguments produce byte-identical dumps. `--format
//! decisions` prints only the control-plane decision log; `--format
//! chrome` emits Chrome trace-event JSON for `about:tracing` / Perfetto.

use std::io::Write;
use std::process::ExitCode;

use iorch_bench::tracereplay::{parse_system, run_scenario, SCENARIOS};
use iorch_simcore::trace;
use iorchestra::SystemKind;

fn usage() -> ExitCode {
    eprintln!(
        "usage: tracedump [--system baseline|sdc|dif|iorchestra] [--seed N] \
         [--scenario NAME] [--format timeline|decisions|chrome] [--list]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut system = SystemKind::IOrchestra;
    let mut seed = 42u64;
    let mut scenario = String::from("mixed8");
    let mut format = String::from("timeline");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for (name, desc) in SCENARIOS {
                    println!("{name:20} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--system" => match args.next().as_deref().and_then(parse_system) {
                Some(k) => system = k,
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--scenario" => match args.next() {
                Some(v) => scenario = v,
                None => return usage(),
            },
            "--format" => match args.next() {
                Some(v) if ["timeline", "decisions", "chrome"].contains(&v.as_str()) => format = v,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    if !trace::COMPILED {
        eprintln!(
            "tracedump: the trace recorder is compiled out \
             (built with --cfg iorch_trace_off); rebuild without it"
        );
        return ExitCode::FAILURE;
    }
    let Some(events) = run_scenario(system, seed, &scenario) else {
        eprintln!("tracedump: unknown scenario {scenario:?} (try --list)");
        return ExitCode::FAILURE;
    };
    let out = match format.as_str() {
        "decisions" => trace::render_decision_log(&events),
        "chrome" => trace::chrome_json(&events),
        _ => trace::render_timeline(&events),
    };
    // Ignore a closed pipe (`tracedump | head`) instead of panicking.
    let _ = std::io::stdout().write_all(out.as_bytes());
    ExitCode::SUCCESS
}
