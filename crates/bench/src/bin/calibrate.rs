//! Quick calibration harness: prints headline numbers for each experiment
//! family so model constants can be tuned against the paper's shapes.
//! Not part of the reproduced figures — see `benches/` for those.

use iorch_bench::*;
use iorch_simcore::SimDuration;
use iorchestra::SystemKind;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let t0 = Instant::now();

    if which == "all" || which == "motivation" {
        let cfg = RunCfg::new(42).with_warmup(SimDuration::from_secs(1));
        let base = motivation_run(false, cfg);
        let iorch = motivation_run(true, cfg);
        println!(
            "[motivation] baseline mean={} entries={} | iorch mean={} grants={} | improvement {:.1}%",
            base.mean,
            base.congestion_entries,
            iorch.mean,
            iorch.bypass_grants,
            (1.0 - iorch.mean.as_secs_f64() / base.mean.as_secs_f64()) * 100.0
        );
    }

    if which == "all" || which == "fig4" {
        let mut kinds: Vec<SystemKind> = SystemKind::headline().to_vec();
        if which == "fig4" {
            kinds.push(SystemKind::IOrchestraWith(
                iorchestra::FunctionSet::flush_only(),
            ));
            kinds.push(SystemKind::IOrchestraWith(
                iorchestra::FunctionSet::congestion_only(),
            ));
            kinds.push(SystemKind::IOrchestraWith(
                iorchestra::FunctionSet::cosched_only(),
            ));
        }
        for kind in kinds {
            let seed: u64 = std::env::var("IORCH_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(42);
            let cfg = RunCfg::new(seed);
            let out = fig4_run(kind, 150, 1500.0, 1500.0, cfg);
            println!(
                "[fig4:{:<10}] olio mean={} p999={} n={} | y1 mean={} p999={} n={} | y2 mean={} p999={} n={}",
                kind.label(),
                out.olio_total.mean(),
                out.olio_total.p999(),
                out.olio_total.count(),
                out.ycsb1.mean(),
                out.ycsb1.p999(),
                out.ycsb1.count(),
                out.ycsb2.mean(),
                out.ycsb2.p999(),
                out.ycsb2.count(),
            );
        }
    }

    if which == "mode" {
        // Per-socket dedicated cores WITHOUT the cosched policy: isolates
        // the IoPathMode from the weight/quantum policy.
        use iorch_hypervisor::{Cluster, IoPathMode, MachineConfig};
        use iorch_simcore::Simulation;
        let mut sim = Simulation::new(Cluster::new());
        let (cl, s) = sim.parts_mut();
        let idx = cl.add_machine(MachineConfig::paper_testbed(
            42,
            IoPathMode::DedicatedCores { per_socket: true },
        ));
        cl.install_control(
            s,
            idx,
            Box::new(iorchestra::PolicyEngine::new(iorchestra::PolicySet::sdc())),
        );
        drop(sim);
        // Reuse fig4_run by provisioning through SystemKind is not possible
        // here; instead compare SDC (1 core) vs cosched-only with weight
        // pushes disabled via a huge update interval — see planes config.
        println!("(mode probe: inspect via cosched ablation below)");
    }

    if which == "all" || which == "flush" {
        for n in [8usize, 16, 20] {
            for ratio in [0.1f64, 0.4] {
                for kind in [
                    SystemKind::Baseline,
                    SystemKind::Dif,
                    SystemKind::IOrchestraWith(iorchestra::FunctionSet::flush_only()),
                ] {
                    let cfg = RunCfg::new(42);
                    let (bps, _ops) = flush_run(kind, n, ratio, cfg);
                    println!(
                        "[flush:{:<12}] {n:>2} VMs ratio={:.0}%: {:.1} MB/s",
                        kind.label(),
                        ratio * 100.0,
                        bps / 1e6
                    );
                }
            }
        }
    }

    if which == "all" || which == "cosched" {
        for kind in [SystemKind::Sdc, SystemKind::IOrchestra] {
            let cfg = RunCfg::new(42);
            let (bps, _ops) = cosched_run(kind, 6, cfg);
            println!(
                "[cosched:{:<10}] 60% io threads: {:.1} MB/s",
                kind.label(),
                bps / 1e6
            );
        }
    }

    if which == "all" || which == "bursty" {
        for kind in [SystemKind::Baseline, SystemKind::IOrchestra] {
            let cfg = RunCfg::new(42);
            let h = bursty_run(kind, 500.0, SimDuration::from_millis(50), cfg);
            println!(
                "[bursty:{:<10}] 500rps 50ms: mean={} p999={} n={}",
                kind.label(),
                h.mean(),
                h.p999(),
                h.count()
            );
        }
    }

    if which == "all" || which == "arrivals" {
        for kind in [
            SystemKind::Baseline,
            SystemKind::Sdc,
            SystemKind::IOrchestra,
        ] {
            let cfg = RunCfg::new(42).with_measure(SimDuration::from_secs(20));
            let out = arrivals_run(kind, 12.0, cfg);
            println!(
                "[arrivals:{:<10}] λ=12: completed={} arrived={} cpu={:.1}% w={:.1}MB/s io={:.1}MB/s",
                kind.label(),
                out.completed,
                out.arrived,
                out.cpu_utilization * 100.0,
                out.write_bps / 1e6,
                out.io_bps / 1e6
            );
        }
    }

    if which == "all" || which == "scaleout" {
        for kind in [SystemKind::Baseline, SystemKind::IOrchestra] {
            let cfg = RunCfg::new(42).with_measure(SimDuration::from_secs(4));
            let (m1, _) = scaleout_run(kind, 1, ScaleApp::Ycsb1, cfg);
            let (m4, _) = scaleout_run(kind, 4, ScaleApp::Ycsb1, cfg);
            println!(
                "[scaleout:{:<10}] ycsb1 n=1: {} n=4: {}",
                kind.label(),
                m1,
                m4
            );
        }
    }

    if which == "all" || which == "congestion" {
        for kind in [
            SystemKind::Baseline,
            SystemKind::IOrchestraWith(iorchestra::FunctionSet::congestion_only()),
        ] {
            let cfg = RunCfg::new(42);
            let (m, _) = congestion_run(kind, FbKind::Fs, 8, cfg);
            println!("[congestion:{:<12}] FS 8 VMs mean={}", kind.label(), m);
        }
    }

    eprintln!("(wall time: {:.1}s)", t0.elapsed().as_secs_f64());
}
