//! Hot-path benchmark gate: measures the optimized store/control-plane
//! fast paths against the frozen seed implementation
//! (`iorch_hypervisor::xenstore_legacy`) with one harness in one process,
//! and writes `BENCH_hotpath.json` at the repo root.
//!
//! Exits non-zero if the gate fails:
//!   * store write, store read, watch fan-out, batched fan-out, and
//!     per-tick control-plane cost must be at least 2x faster than the
//!     seed baseline;
//!   * scheduler churn (timer-wheel engine) must be at least 2x faster
//!     than the frozen binary-heap engine (`iorch_simcore::event_legacy`);
//!   * store-write cost must be sub-linear in non-matching watches
//!     (1 vs 256 watchers on disjoint subtrees within 1.5x).
//!
//! Run via `scripts/bench_hotpath.sh` (release build). Set
//! `IORCH_BENCH_QUICK=1` for a fast smoke run (same gate, noisier).

use iorch_bench::exp::{gate, Figure};
use iorch_bench::timing::{Sample, Timer};
use iorch_hypervisor::xenstore_legacy::XenStore as LegacyStore;
use iorch_hypervisor::{DomainId, Perms, XenStore, DOM0};
use iorch_simcore::event_legacy::Scheduler as LegacyScheduler;
use iorch_simcore::{SimDuration, Simulation};
use iorchestra::keys::{self, val, DomainKeys};

/// Domains the synthetic control plane manages.
const DOMS: u32 = 16;

fn setup_new(doms: u32) -> (XenStore, Vec<DomainKeys>) {
    let mut s = XenStore::new();
    let mut ks = Vec::new();
    for d in 1..=doms {
        let dom = DomainId(d);
        s.mkdir(DOM0, XenStore::domain_path(dom), Perms::private_to(dom))
            .unwrap();
        let k = DomainKeys::new(dom);
        s.write(dom, &k.has_dirty_pages, val::zero()).unwrap();
        s.write(dom, &k.nr_dirty, val::zero()).unwrap();
        ks.push(k);
    }
    s.take_events();
    (s, ks)
}

fn setup_legacy(doms: u32) -> LegacyStore {
    let mut s = LegacyStore::new();
    for d in 1..=doms {
        let dom = DomainId(d);
        s.mkdir(DOM0, &LegacyStore::domain_path(dom), Perms::private_to(dom))
            .unwrap();
        s.write(dom, &keys::has_dirty_pages(dom), "0".to_string())
            .unwrap();
        s.write(dom, &keys::nr_dirty(dom), "0".to_string()).unwrap();
    }
    s.take_events();
    s
}

struct Pair {
    name: &'static str,
    current: Sample,
    baseline: Sample,
}

impl Pair {
    fn speedup(&self) -> f64 {
        self.baseline.ns_per_iter() / self.current.ns_per_iter()
    }
    fn report(&self) {
        println!(
            "{:<24} current {:>9.1} ns/op   seed {:>9.1} ns/op   speedup {:>5.2}x",
            self.name,
            self.current.ns_per_iter(),
            self.baseline.ns_per_iter(),
            self.speedup()
        );
    }
}

/// Store write: the guest-publish path. Current uses a pre-parsed
/// `StorePath` + cached small-int values; seed formats the key string and
/// allocates the value on every write.
fn bench_store_write(t: &Timer) -> Pair {
    let (mut s, ks) = setup_new(1);
    let k = &ks[0];
    let dom = DomainId(1);
    let mut n = 0u64;
    let current = t.time("store_write/current", || {
        n = (n + 1) & 0xff;
        s.write(dom, &k.nr_dirty, val::uint(n)).unwrap();
    });
    s.take_events();

    let mut s = setup_legacy(1);
    let mut n = 0u64;
    let baseline = t.time("store_write/seed", || {
        n = (n + 1) & 0xff;
        s.write(dom, &keys::nr_dirty(dom), n.to_string()).unwrap();
    });
    s.take_events();
    Pair {
        name: "store_write",
        current,
        baseline,
    }
}

/// Store read: the manager-side poll. Current borrows through `read_ref`
/// with an interned path; seed formats the key and clones the value.
fn bench_store_read(t: &Timer) -> Pair {
    let (mut s, ks) = setup_new(1);
    let k = &ks[0];
    let dom = DomainId(1);
    s.write(dom, &k.nr_dirty, val::uint(42)).unwrap();
    let current = t.time("store_read/current", || {
        s.read_ref(DOM0, &k.nr_dirty).unwrap().len()
    });

    let mut s = setup_legacy(1);
    s.write(dom, &keys::nr_dirty(dom), "42".to_string())
        .unwrap();
    let baseline = t.time("store_read/seed", || {
        s.read(DOM0, &keys::nr_dirty(dom)).unwrap().len()
    });
    Pair {
        name: "store_read",
        current,
        baseline,
    }
}

/// Watch fan-out: a write under a watched subtree delivering to 8
/// watchers. Current shares one interned payload; seed clones the path
/// and value per subscriber.
fn bench_watch_fanout(t: &Timer) -> Pair {
    const WATCHERS: usize = 8;
    let (mut s, ks) = setup_new(1);
    let k = &ks[0];
    let dom = DomainId(1);
    for _ in 0..WATCHERS {
        s.watch(DOM0, &k.virt_dev);
    }
    let mut n = 0u64;
    let current = t.time("watch_fanout/current", || {
        n = (n + 1) & 0xff;
        s.write(dom, &k.nr_dirty, val::uint(n)).unwrap();
        // Drain-and-recycle, as the machine's delivery sweep does.
        let evs = s.take_events();
        let count = evs.len();
        s.recycle_events(evs);
        count
    });

    let mut s = setup_legacy(1);
    for _ in 0..WATCHERS {
        s.watch(DOM0, keys::nr_dirty(dom));
    }
    let mut n = 0u64;
    let baseline = t.time("watch_fanout/seed", || {
        n = (n + 1) & 0xff;
        s.write(dom, &keys::nr_dirty(dom), n.to_string()).unwrap();
        s.take_events().len()
    });
    Pair {
        name: "watch_fanout",
        current,
        baseline,
    }
}

/// One control-plane tick over 16 domains: republish `nr` for each (the
/// plane's periodic monitoring write) and drain events. Current goes
/// through `write_if_changed` with cached keys/values, so steady-state
/// ticks allocate nothing and publish nothing; seed re-formats and
/// re-fires every tick.
fn bench_control_tick(t: &Timer) -> Pair {
    let (mut s, ks) = setup_new(DOMS);
    for k in &ks {
        s.watch(DOM0, &k.virt_dev);
    }
    s.take_events();
    let current = t.time("control_tick/current", || {
        for (i, k) in ks.iter().enumerate() {
            let dom = DomainId(i as u32 + 1);
            s.write_if_changed(dom, &k.nr_dirty, val::uint(7)).unwrap();
        }
        s.take_events().len()
    });

    let mut s = setup_legacy(DOMS);
    for d in 1..=DOMS {
        s.watch(
            DOM0,
            format!("{}/virt-dev", LegacyStore::domain_path(DomainId(d))),
        );
    }
    s.take_events();
    let baseline = t.time("control_tick/seed", || {
        for d in 1..=DOMS {
            let dom = DomainId(d);
            s.write(dom, &keys::nr_dirty(dom), 7u64.to_string())
                .unwrap();
        }
        s.take_events().len()
    });
    Pair {
        name: "control_tick",
        current,
        baseline,
    }
}

/// Timers kept in flight per scheduler-churn cycle — the ROADMAP's
/// 1k-domain scale point, one timeout per domain.
const CHURN_TIMERS: u64 = 1024;

/// Scheduler churn: schedule-then-cancel timeout patterns at the
/// 1k-domain scale target, the shape that dominated the event engine's
/// cost. Current is the timer wheel (O(1) schedule, direct-slot cancel,
/// amortized O(1) pop); baseline is the frozen binary-heap engine with
/// its tombstone set (`iorch_simcore::event_legacy`), which pays O(log n)
/// sifts plus tombstone hashing at this depth. One cycle = 1024
/// schedules, 512 cancellations, drain to completion.
fn bench_scheduler_churn(t: &Timer) -> Pair {
    let mut sim: Simulation<u64> = Simulation::new(0u64);
    let current = t.time("scheduler_churn/current", || {
        let sched = sim.scheduler_mut();
        let mut tokens = Vec::with_capacity(CHURN_TIMERS as usize);
        for i in 0..CHURN_TIMERS {
            tokens.push(sched.schedule_in(SimDuration::from_micros(i + 1), move |w, _| *w += 1));
        }
        for tok in tokens.iter().step_by(2) {
            sched.cancel(*tok);
        }
        sim.run_to_completion();
        *sim.world()
    });

    let mut sched: LegacyScheduler<u64> = LegacyScheduler::new();
    let mut world = 0u64;
    let baseline = t.time("scheduler_churn/seed", || {
        let mut tokens = Vec::with_capacity(CHURN_TIMERS as usize);
        for i in 0..CHURN_TIMERS {
            tokens.push(sched.schedule_in(SimDuration::from_micros(i + 1), move |w, _| *w += 1));
        }
        for tok in tokens.iter().step_by(2) {
            sched.cancel(*tok);
        }
        while let Some((_, cb)) = sched.pop_next() {
            cb(&mut world, &mut sched);
        }
        world
    });
    Pair {
        name: "scheduler_churn",
        current,
        baseline,
    }
}

/// Batched watch delivery: 8 writes landing at the same sim instant under
/// an 8-watcher subtree. Current drains all 64 events in ONE sweep and
/// recycles the buffer (the machine's coalesced XenBus delivery); seed
/// pays one drain per write, growing a fresh `Vec` each time. One cycle =
/// 8 writes + delivery.
fn bench_watch_fanout_batched(t: &Timer) -> Pair {
    const WATCHERS: usize = 8;
    const WRITES: u64 = 8;
    let (mut s, ks) = setup_new(1);
    let k = &ks[0];
    let dom = DomainId(1);
    for _ in 0..WATCHERS {
        s.watch(DOM0, &k.virt_dev);
    }
    let mut n = 0u64;
    let current = t.time("watch_fanout_batched/current", || {
        for _ in 0..WRITES {
            n = (n + 1) & 0xff;
            s.write(dom, &k.nr_dirty, val::uint(n)).unwrap();
        }
        let evs = s.take_events();
        let count = evs.len();
        s.recycle_events(evs);
        count
    });

    let mut s = setup_legacy(1);
    for _ in 0..WATCHERS {
        s.watch(DOM0, keys::nr_dirty(dom));
    }
    let mut n = 0u64;
    let baseline = t.time("watch_fanout_batched/seed", || {
        let mut count = 0;
        for _ in 0..WRITES {
            n = (n + 1) & 0xff;
            s.write(dom, &keys::nr_dirty(dom), n.to_string()).unwrap();
            count += s.take_events().len();
        }
        count
    });
    Pair {
        name: "watch_fanout_batched",
        current,
        baseline,
    }
}

/// Store-write cost with 1 vs 256 watchers on disjoint subtrees: the
/// watch index must keep non-matching watches off the write path.
fn bench_watch_scaling(t: &Timer) -> (Sample, Sample, Pair) {
    fn run(t: &Timer, watchers: usize, name: &'static str) -> Sample {
        let (mut s, ks) = setup_new(1);
        let k = &ks[0];
        let dom = DomainId(1);
        for i in 0..watchers {
            s.watch(DOM0, format!("/spectators/w{i}"));
        }
        let mut n = 0u64;
        let sample = t.time(name, || {
            n = (n + 1) & 0xff;
            s.write(dom, &k.nr_dirty, val::uint(n)).unwrap();
        });
        assert!(!s.has_events(), "disjoint watchers must not fire");
        sample
    }
    fn run_legacy(t: &Timer, watchers: usize, name: &'static str) -> Sample {
        let mut s = setup_legacy(1);
        let dom = DomainId(1);
        for i in 0..watchers {
            s.watch(DOM0, format!("/spectators/w{i}"));
        }
        let mut n = 0u64;
        t.time(name, || {
            n = (n + 1) & 0xff;
            s.write(dom, &keys::nr_dirty(dom), n.to_string()).unwrap();
        })
    }
    let one = run(t, 1, "watch_scaling/current_1");
    let many = run(t, 256, "watch_scaling/current_256");
    // The 256-spectator case against the seed's linear scan, for context.
    let seed_many = run_legacy(t, 256, "watch_scaling/seed_256");
    let pair = Pair {
        name: "write_256_spectators",
        current: many.clone(),
        baseline: seed_many,
    };
    (one, many, pair)
}

fn main() {
    let t = Timer::from_env();
    println!(
        "hotpath bench: warmup {:?}, measure {:?} per case\n",
        t.warmup, t.measure
    );

    let write = bench_store_write(&t);
    let read = bench_store_read(&t);
    let fanout = bench_watch_fanout(&t);
    let batched = bench_watch_fanout_batched(&t);
    let tick = bench_control_tick(&t);
    let churn = bench_scheduler_churn(&t);
    let (scale_one, scale_many, scale_ctx) = bench_watch_scaling(&t);

    write.report();
    read.report();
    fanout.report();
    batched.report();
    tick.report();
    churn.report();
    scale_ctx.report();
    println!(
        "{:<24} 1 watcher {:>9.1} ns/op   256 disjoint {:>9.1} ns/op   ratio {:>5.2}x",
        "watch_scaling",
        scale_one.ns_per_iter(),
        scale_many.ns_per_iter(),
        scale_many.ns_per_iter() / scale_one.ns_per_iter()
    );

    let ratio = scale_many.ns_per_iter() / scale_one.ns_per_iter();
    // The artifact goes through the same schema-validated emitter as the
    // experiment registry (iorch-exp/v1): one row per case, columns
    // [current_ns, baseline_ns, ratio]. For the seed-comparison pairs
    // "ratio" is the speedup over the seed implementation; for the
    // watch_scaling row the baseline is the 1-watcher case and the ratio
    // is the 256-spectator penalty (gated ≤ 1.5x, lower is better).
    let mut fig = Figure::new(
        "hotpath",
        "Hot-path benchmark gate — optimized fast paths vs frozen seed",
        "case",
        "ns",
        vec!["current_ns".into(), "baseline_ns".into(), "ratio".into()],
    );
    for p in [&write, &read, &fanout, &batched, &tick, &churn, &scale_ctx] {
        fig.row(
            p.name,
            vec![
                p.current.ns_per_iter(),
                p.baseline.ns_per_iter(),
                p.speedup(),
            ],
        );
        fig.samples += p.current.iters + p.baseline.iters;
    }
    fig.row(
        "watch_scaling",
        vec![scale_many.ns_per_iter(), scale_one.ns_per_iter(), ratio],
    );
    fig.samples += scale_one.iters;
    let profile = if std::env::var_os("IORCH_BENCH_QUICK").is_some() {
        "quick"
    } else {
        "full"
    };
    // Seedless wall-clock measurement; the schema's seed slot is 0.
    let path = gate::write_root_artifact("BENCH_hotpath.json", &fig, "hotpath", profile, 0);
    println!("\nwrote {}", path.display());

    // The gate.
    let mut failed = Vec::new();
    for p in [&write, &read, &fanout, &batched, &tick, &churn] {
        if p.speedup() < 2.0 {
            failed.push(format!("{}: speedup {:.2}x < 2.0x", p.name, p.speedup()));
        }
    }
    if ratio > 1.5 {
        failed.push(format!(
            "watch_scaling: 256-watcher ratio {ratio:.2}x > 1.5x"
        ));
    }
    if failed.is_empty() {
        println!("GATE PASS");
    } else {
        for f in &failed {
            println!("GATE FAIL: {f}");
        }
        std::process::exit(1);
    }
}
