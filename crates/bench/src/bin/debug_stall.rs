//! Temporary debugging harness for the motivation-scenario stall.

use std::rc::Rc;

use iorch_hypervisor::{Cluster, VmSpec};
use iorch_simcore::{SimTime, Simulation};
use iorch_workloads::{recorder, spawn_multistream, MultiStreamParams, VmRef};
use iorchestra::SystemKind;

fn main() {
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let idx = SystemKind::Baseline.provision(cl, s, 42);
    let mut doms = Vec::new();
    let rec = recorder(SimTime::ZERO);
    for v in 0..2u64 {
        let dom = cl.create_domain(s, idx, VmSpec::new(4, 4).with_disk_gb(20), |g| {
            g.queue.nr_requests = 64;
            g.queue.bypass_hard_limit = 512;
            g.readahead_chunks = 16;
        });
        doms.push(dom);
        let vm = VmRef { machine: idx, dom };
        spawn_multistream(
            cl,
            s,
            vm,
            MultiStreamParams {
                streams: 8,
                file_size: 1 << 30,
                read_size: 4 << 20,
                first_vcpu: 0,
                seed: 42 ^ v,
            },
            Rc::clone(&rec),
        );
    }
    let dom = doms[0];
    for step_ms in [1u64, 2, 5, 10, 20, 50, 100, 500] {
        sim.run_until(SimTime::from_millis(step_ms));
        let m = sim.world().machine(idx);
        let d = m.domain(dom).unwrap();
        let k = &d.kernel;
        eprintln!(
            "t={step_ms}ms ops={} reads={} blocked_ops={} congested={} entries={} host_q={} host_if={} io_done={}",
            rec.borrow().ops,
            k.stats().reads,
            k.stats().congestion_blocked_ops,
            k.queue_congested(),
            k.congestion_entries(),
            m.storage.queue_depth(),
            m.storage.in_flight(),
            m.io_latency(dom).map(|h| h.count()).unwrap_or(0),
        );
    }
}
