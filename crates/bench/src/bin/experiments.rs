//! CLI driver for the declarative experiment registry.
//!
//! ```text
//! experiments list
//! experiments run <name>|all [--profile smoke|full] [--seed N] [--out DIR] [--quiet]
//! experiments validate <DIR|FILE>
//! ```
//!
//! `run` executes named experiments and writes per-figure JSON/CSV
//! artifacts plus a summary under `<out>/<experiment>/`. `run all` skips
//! wall-clock (`timing`) specs — those only run when named. `validate`
//! checks every `.json` artifact under a directory (or one artifact
//! file, e.g. `BENCH_scale.json`) against the `iorch-exp/v1` schema
//! (required keys, finite numbers, nonzero sample counts) — the tier-1
//! gate runs a smoke sweep and then validates it.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use iorch_bench::exp::{self, Profile};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  experiments list\n  experiments run <name>|all [--profile smoke|full] \
         [--seed N] [--out DIR] [--quiet]\n  experiments validate <DIR|FILE>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            for s in exp::registry() {
                println!("{:<16} {}", s.name, s.title);
            }
            ExitCode::SUCCESS
        }
        Some("run") => run(&args[1..]),
        Some("validate") => match args.get(1) {
            Some(dir) => validate(Path::new(dir)),
            None => usage(),
        },
        _ => usage(),
    }
}

fn run(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let mut profile = Profile::Smoke;
    let mut seed = 42u64;
    let mut out = PathBuf::from("target/experiments");
    let mut quiet = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--profile" => {
                i += 1;
                match args.get(i).map(String::as_str).and_then(Profile::parse) {
                    Some(p) => profile = p,
                    None => return usage(),
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) => seed = v,
                    None => return usage(),
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(v) => out = PathBuf::from(v),
                    None => return usage(),
                }
            }
            "--quiet" => quiet = true,
            _ => return usage(),
        }
        i += 1;
    }
    let specs: Vec<&exp::Spec> = if name == "all" {
        // Timing specs measure wall clock and are not byte-deterministic;
        // they only run when named explicitly (tier1 names them).
        exp::registry().iter().filter(|s| !s.timing).collect()
    } else {
        match exp::find(name) {
            Some(s) => vec![s],
            None => {
                eprintln!("unknown experiment {name:?}; `experiments list` shows the registry");
                return ExitCode::FAILURE;
            }
        }
    };
    for spec in specs {
        if !quiet {
            println!(
                "== {} [{} profile, seed {seed}] ==",
                spec.title,
                profile.name()
            );
        }
        if let Err(e) = exp::run_spec(spec, profile, seed, &out, quiet) {
            eprintln!("{}: artifact write failed: {e}", spec.name);
            return ExitCode::FAILURE;
        }
    }
    println!("artifacts: {}", out.display());
    ExitCode::SUCCESS
}

fn validate(dir: &Path) -> ExitCode {
    let mut files = Vec::new();
    if dir.is_file() {
        // Single-artifact mode, e.g. `experiments validate BENCH_scale.json`.
        files.push(dir.to_path_buf());
    } else if let Err(e) = collect_json(dir, &mut files) {
        eprintln!("cannot read {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    files.sort();
    if files.is_empty() {
        eprintln!("no .json artifacts under {}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut bad = 0;
    for f in &files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {}: {e}", f.display());
                bad += 1;
                continue;
            }
        };
        match exp::validate_artifact(&text) {
            Ok(()) => {}
            Err(e) => {
                eprintln!("FAIL {}: {e}", f.display());
                bad += 1;
            }
        }
    }
    println!(
        "validated {} artifacts under {}: {} bad",
        files.len(),
        dir.display(),
        bad
    );
    if bad == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn collect_json(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_json(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "json") {
            out.push(path);
        }
    }
    Ok(())
}
