//! Experiment runner functions — one per experiment family.

use std::cell::RefCell;
use std::rc::Rc;

use iorch_hypervisor::{Cluster, VmSpec};
use iorch_metrics::LatencyHistogram;
use iorch_netsim::{NetParams, Network, NodeId};
use iorch_simcore::{SimDuration, SimTime, Simulation};
use iorch_workloads::{
    recorder, spawn_arrivals, spawn_blast, spawn_cloud9, spawn_fileserver, spawn_multistream,
    spawn_olio, spawn_videoserver, spawn_webserver, spawn_ycsb, ArrivalParams, BlastParams,
    Cloud9Params, FsParams, MultiStreamParams, OlioParams, OlioRecorders, VmRef, VsParams,
    WsParams, YcsbParams,
};
use iorchestra::SystemKind;

/// Common run settings.
#[derive(Clone, Copy, Debug)]
pub struct RunCfg {
    /// Seed for every RNG in the run.
    pub seed: u64,
    /// Warm-up span discarded from recordings.
    pub warmup: SimDuration,
    /// Measured span.
    pub measure: SimDuration,
}

impl RunCfg {
    /// Quick default: 2 s warm-up, 6 s measured.
    pub fn new(seed: u64) -> Self {
        RunCfg {
            seed,
            warmup: SimDuration::from_secs(2),
            measure: SimDuration::from_secs(6),
        }
    }

    /// Override the measured span.
    pub fn with_measure(mut self, d: SimDuration) -> Self {
        self.measure = d;
        self
    }

    /// Override the warm-up span.
    pub fn with_warmup(mut self, d: SimDuration) -> Self {
        self.warmup = d;
        self
    }

    /// End of the run: warm-up plus measured span.
    pub fn horizon(&self) -> SimTime {
        SimTime::ZERO + self.warmup + self.measure
    }

    /// Instant recorders start keeping samples (end of warm-up).
    pub fn record_after(&self) -> SimTime {
        SimTime::ZERO + self.warmup
    }
}

/// Build a one-machine simulation running `kind`.
pub fn single_machine(kind: SystemKind, seed: u64) -> (Simulation<Cluster>, usize) {
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    // Debug hook: IORCH_MODE2 provisions per-socket cores with the stock
    // control plane, to separate the I/O-path mode from the policies.
    if std::env::var("IORCH_MODE2").is_ok() && kind == SystemKind::IOrchestra {
        let idx = cl.add_machine(iorch_hypervisor::MachineConfig::paper_testbed(
            seed,
            iorch_hypervisor::IoPathMode::DedicatedCores { per_socket: true },
        ));
        cl.install_control(
            s,
            idx,
            Box::new(iorchestra::PolicyEngine::new(iorchestra::PolicySet::sdc())),
        );
        return (sim, idx);
    }
    let idx = kind.provision(cl, s, seed);
    (sim, idx)
}

pub(crate) fn make_vm(
    sim: &mut Simulation<Cluster>,
    idx: usize,
    vcpus: u32,
    mem_gb: u64,
    disk_gb: u64,
) -> VmRef {
    let (cl, s) = sim.parts_mut();
    let dom = cl.create_domain(
        s,
        idx,
        VmSpec::new(vcpus, mem_gb).with_disk_gb(disk_gb),
        scaled_writeback,
    );
    VmRef { machine: idx, dom }
}

/// Scale the Linux writeback clocks to the compressed run durations: the
/// paper's 10-minute runs see many periodic-flusher (5 s) and dirty-expire
/// (30 s) cycles; a 6–10 s simulated run needs proportionally faster
/// clocks to exercise the same mechanisms.
fn scaled_writeback(g: &mut iorch_guestos::GuestConfig) {
    g.wb.periodic_interval = SimDuration::from_millis(1000);
    g.wb.dirty_expire = SimDuration::from_millis(3000);
}

// ====================================================================
// §2 motivation: falsely triggered congestion avoidance
// ====================================================================

/// Output of the motivation experiment.
#[derive(Clone, Copy, Debug)]
pub struct MotivationOut {
    /// Mean latency of the large sequential reads.
    pub mean: SimDuration,
    /// Congestion-avoidance activations observed.
    pub congestion_entries: u64,
    /// Collaborative releases granted.
    pub bypass_grants: u64,
    /// Probe reads recorded in the measured window (sample count).
    pub ops: u64,
}

/// §2: two VMs run threads of large sequential reads whose pipeline depth
/// sits above the 7/8 threshold, so stock congestion avoidance keeps
/// firing although the array has headroom. The measured latency is that
/// of read operations *submitted into that falsely-congested queue* —
/// under the baseline they sleep in `congestion_wait`; under IOrchestra's
/// collaborative control they are released immediately.
pub fn motivation_run(collaborative: bool, cfg: RunCfg) -> MotivationOut {
    use iorch_guestos::FileOp;
    let kind = if collaborative {
        SystemKind::IOrchestraWith(iorchestra::FunctionSet::congestion_only())
    } else {
        SystemKind::Baseline
    };
    let (mut sim, idx) = single_machine(kind, cfg.seed);
    let rec = recorder(cfg.record_after());
    let bg = recorder(cfg.record_after());
    for v in 0..2u64 {
        let (cl, s) = sim.parts_mut();
        let dom = cl.create_domain(s, idx, VmSpec::new(4, 4).with_disk_gb(20), |g| {
            // A shallow descriptor pool (common SSD tuning) plus deep
            // sequential readahead: the streams' natural pipeline depth
            // sits just above the 7/8 threshold, so stock congestion
            // avoidance triggers although the array has ample headroom —
            // exactly the §2 situation.
            g.queue.nr_requests = 16;
            g.queue.bypass_hard_limit = 256;
            g.readahead_chunks = 16;
        });
        let vm = VmRef { machine: idx, dom };
        let p = MultiStreamParams {
            streams: 3,
            // Working set beyond the 3 GiB page cache: reads always reach
            // the device, as with the paper's 8 x 1 GiB files.
            file_size: 2 << 30,
            read_size: 4 << 20,
            first_vcpu: 0,
            seed: cfg.seed ^ v,
        };
        spawn_multistream(cl, s, vm, p, Rc::clone(&bg));
        // The measured submitters: a modest open-loop stream of reads
        // entering the same falsely-congested request queue.
        let probe_file = cl
            .machine_mut(idx)
            .kernel_mut(dom)
            .unwrap()
            .create_file(1 << 30)
            .unwrap();
        let rec2 = Rc::clone(&rec);
        let mut prng = iorch_simcore::SimRng::new(cfg.seed ^ 0x9999 ^ v);
        s.schedule_every(
            SimDuration::from_micros(5000),
            move |cl: &mut Cluster, s| {
                let offset = prng.below((1 << 30) - (64 << 10));
                let started = s.now();
                let r3 = Rc::clone(&rec2);
                cl.submit_op(
                    s,
                    idx,
                    dom,
                    3,
                    FileOp::Read {
                        file: probe_file,
                        offset,
                        len: 64 << 10,
                    },
                    Some(Box::new(move |_, s, _| {
                        let now = s.now();
                        r3.borrow_mut()
                            .record(now, now.saturating_since(started), 64 << 10);
                    })),
                );
                !rec2.borrow().stopped
            },
        );
    }
    let outcome = sim.run_until(cfg.horizon());
    if std::env::var("IORCH_PROBE").is_ok() {
        eprintln!(
            "  [motivation probe] outcome={outcome:?} now={} ops={}",
            sim.now(),
            rec.borrow().ops
        );
        let m = sim.world().machine(idx);
        for dom in m.domains() {
            let k = &m.domain(dom).unwrap().kernel;
            eprintln!(
                "  dom{} congested={} stats={:?}",
                dom.0,
                k.queue_congested(),
                k.stats()
            );
        }
        eprintln!(
            "  host qdepth={} inflight={}",
            m.storage.queue_depth(),
            m.storage.in_flight()
        );
    }
    let mean = rec.borrow().hist.mean();
    let ops = rec.borrow().ops;
    let m = sim.world().machine(idx);
    let (mut entries, mut grants) = (0, 0);
    for dom in m.domains() {
        let k = &m.domain(dom).unwrap().kernel;
        entries += k.congestion_entries();
        grants += k.bypass_grants();
    }
    MotivationOut {
        mean,
        congestion_entries: entries,
        bypass_grants: grants,
        ops,
    }
}

// ====================================================================
// §5.1 — Fig. 4/5/6: Olio + two Cassandra stores, concurrently
// ====================================================================

/// Everything one §5.1 run produces (feeds Figs. 4, 5 and 6).
pub struct Fig4Out {
    /// Olio end-to-end latency.
    pub olio_total: LatencyHistogram,
    /// Olio web-tier latency.
    pub olio_web: LatencyHistogram,
    /// Olio database-tier latency.
    pub olio_db: LatencyHistogram,
    /// Olio file-server-tier latency.
    pub olio_file: LatencyHistogram,
    /// YCSB1 (update-heavy store) op latency.
    pub ycsb1: LatencyHistogram,
    /// YCSB2 (read-mostly store) op latency.
    pub ycsb2: LatencyHistogram,
}

/// One §5.1 run: Olio (3 VMs) + YCSB1 store (2 VMs) + YCSB2 store (2 VMs)
/// on one host, all concurrent, as in the paper.
pub fn fig4_run(
    kind: SystemKind,
    olio_clients: u32,
    ycsb1_rate: f64,
    ycsb2_rate: f64,
    cfg: RunCfg,
) -> Fig4Out {
    let (mut sim, idx) = single_machine(kind, cfg.seed);
    // Olio tier VMs.
    let web = make_vm(&mut sim, idx, 2, 4, 10);
    let db = make_vm(&mut sim, idx, 2, 4, 60);
    let file = make_vm(&mut sim, idx, 2, 4, 40);
    // Two Cassandra stores, two data-node VMs each.
    let y1a = make_vm(&mut sim, idx, 2, 4, 20);
    let y1b = make_vm(&mut sim, idx, 2, 4, 20);
    let y2a = make_vm(&mut sim, idx, 2, 4, 20);
    let y2b = make_vm(&mut sim, idx, 2, 4, 20);

    let olio_recs = OlioRecorders::new(cfg.record_after());
    let rec1 = recorder(cfg.record_after());
    let rec2 = recorder(cfg.record_after());
    {
        let (cl, s) = sim.parts_mut();
        let p = OlioParams {
            clients: olio_clients,
            seed: cfg.seed ^ 0x01,
            ..OlioParams::default()
        };
        spawn_olio(cl, s, web, db, file, p, olio_recs.clone());
        // Memtable flush threshold scaled with the compressed run length
        // so flush bursts occur at the paper's cadence.
        let mut p1 = YcsbParams::ycsb1(ycsb1_rate, cfg.seed ^ 0x02);
        p1.memtable_flush_bytes = 2 << 20;
        let mut p2 = YcsbParams::ycsb2(ycsb2_rate, cfg.seed ^ 0x03);
        p2.memtable_flush_bytes = 2 << 20;
        spawn_ycsb(cl, s, &[y1a, y1b], None, p1, Rc::clone(&rec1));
        spawn_ycsb(cl, s, &[y2a, y2b], None, p2, Rc::clone(&rec2));
    }
    sim.run_until(cfg.horizon());
    if std::env::var("IORCH_PROBE").is_ok() {
        let m = sim.world().machine(idx);
        for dom in m.domains() {
            let h = m.io_latency(dom);
            eprintln!(
                "  dom{} io_lat mean={:?} n={} bytes={}MB",
                dom.0,
                h.map(|h| h.mean()),
                h.map(|h| h.count()).unwrap_or(0),
                m.io_bytes(dom) >> 20
            );
        }
        for c in &m.iocores {
            eprintln!(
                "  iocore sk{} processed={} Lavg={} backlog={}",
                c.socket(),
                c.processed_count(),
                c.avg_latency(),
                c.backlog()
            );
        }
    }
    let olio_total = olio_recs.total.borrow().hist.clone();
    let olio_web = olio_recs.web.borrow().hist.clone();
    let olio_db = olio_recs.db.borrow().hist.clone();
    let olio_file = olio_recs.file.borrow().hist.clone();
    let ycsb1 = rec1.borrow().hist.clone();
    let ycsb2 = rec2.borrow().hist.clone();
    Fig4Out {
        olio_total,
        olio_web,
        olio_db,
        olio_file,
        ycsb1,
        ycsb2,
    }
}

// ====================================================================
// §5.2 — Fig. 7: scale-out (mpiBLAST / YCSB1 over 1–8 machines)
// ====================================================================

/// Which scale-out application to measure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScaleApp {
    /// mpiBLAST partitioned scan.
    Blast,
    /// YCSB1 multi-node store.
    Ycsb1,
}

/// One Fig. 7 point: `machines` hosts, each with a Cloud9 VM, an
/// mpiBLAST worker VM and a YCSB1 node VM; returns the mean I/O latency
/// of the measured app plus its recorded op count.
pub fn scaleout_run(
    kind: SystemKind,
    machines: usize,
    app: ScaleApp,
    cfg: RunCfg,
) -> (SimDuration, u64) {
    let mut sim = Simulation::new(Cluster::new());
    let net = Rc::new(RefCell::new(Network::new(
        machines + 1,
        NetParams::default(),
    )));
    let master_net = NodeId(machines);
    let mut blast_vms = Vec::new();
    let mut ycsb_vms = Vec::new();
    let mut net_ids = Vec::new();
    for m in 0..machines {
        let (cl, s) = sim.parts_mut();
        let idx = kind.provision(cl, s, cfg.seed.wrapping_add(m as u64));
        let b = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(20), |_| {});
        let y = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(20), |_| {});
        let c = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(10), |_| {});
        blast_vms.push(VmRef {
            machine: idx,
            dom: b,
        });
        ycsb_vms.push(VmRef {
            machine: idx,
            dom: y,
        });
        let cvm = VmRef {
            machine: idx,
            dom: c,
        };
        let rec = recorder(cfg.record_after());
        spawn_cloud9(
            cl,
            s,
            cvm,
            Cloud9Params {
                seed: cfg.seed ^ m as u64,
                ..Cloud9Params::default()
            },
            rec,
        );
        net_ids.push(NodeId(m));
    }
    let blast_rec = recorder(cfg.record_after());
    let ycsb_rec = recorder(cfg.record_after());
    {
        let (cl, s) = sim.parts_mut();
        spawn_blast(
            cl,
            s,
            &blast_vms,
            Some((Rc::clone(&net), net_ids.clone(), master_net)),
            BlastParams {
                scan_per_query: (32 << 20) / machines as u64,
                seed: cfg.seed ^ 0xb1a57,
                ..BlastParams::default()
            },
            Rc::clone(&blast_rec),
        );
        spawn_ycsb(
            cl,
            s,
            &ycsb_vms,
            Some((Rc::clone(&net), net_ids)),
            YcsbParams::ycsb1(1500.0, cfg.seed ^ 0x9c5b),
            Rc::clone(&ycsb_rec),
        );
    }
    sim.run_until(cfg.horizon());
    let r = match app {
        ScaleApp::Blast => blast_rec.borrow(),
        ScaleApp::Ycsb1 => ycsb_rec.borrow(),
    };
    (r.hist.mean(), r.ops)
}

// ====================================================================
// §5.3 — Fig. 8 + Table 2: flushing dirty pages
// ====================================================================

/// One Fig. 8 point: `n_vms` FS VMs (1 VCPU / 1 GB) at a given dirty
/// ratio; returns aggregate write throughput in bytes/s (device-level)
/// plus the recorded op count across all VMs.
pub fn flush_run(kind: SystemKind, n_vms: usize, dirty_ratio: f64, cfg: RunCfg) -> (f64, u64) {
    let (mut sim, idx) = single_machine(kind, cfg.seed);
    let mut recs = Vec::new();
    for v in 0..n_vms {
        let (cl, s) = sim.parts_mut();
        let dom = cl.create_domain(s, idx, VmSpec::new(1, 1).with_disk_gb(6), |g| {
            g.wb.dirty_ratio = dirty_ratio;
            g.wb.background_ratio = dirty_ratio / 2.0;
            // Compressed writeback clocks (see scaled_writeback). Expiry
            // stays long relative to the waves so the dirty pile a VM
            // accumulates is governed by the background ratio — the axis
            // the figure sweeps.
            g.wb.periodic_interval = SimDuration::from_millis(1000);
            g.wb.dirty_expire = SimDuration::from_millis(8000);
        });
        let vm = VmRef { machine: idx, dom };
        let rec = recorder(cfg.record_after());
        // Write working set ~2.3 GB per VM: over twice the 1 GB memory
        // (paper §5.3), so reads miss and dirty data exceeds what the
        // cache can hold clean. Request waves with think time make the
        // aggregate demand fluctuate, leaving the idle windows Algorithm 1
        // exploits; the baseline's expire-driven flush storms land at
        // arbitrary times and collide with later waves.
        let p = FsParams {
            threads: 1,
            pool: 9_000,
            file_size: 256 << 10,
            op_cpu: SimDuration::from_millis(2),
            read_recent: None,
            burst: Some((60, SimDuration::from_millis(400))),
            seed: cfg.seed ^ v as u64,
            ..FsParams::default()
        };
        spawn_fileserver(cl, s, vm, p, Rc::clone(&rec));
        recs.push(rec);
    }
    sim.run_until(cfg.horizon());
    if std::env::var("IORCH_PROBE").is_ok() {
        let m = sim.world().machine(idx);
        let (rb, wb) = m.storage.monitor().byte_counts();
        eprintln!(
            "  [flush probe] dev reads={}MB writes={}MB qdepth={} congested={}",
            rb >> 20,
            wb >> 20,
            m.storage.queue_depth(),
            m.storage.is_congested()
        );
        for dom in m.domains().take(3) {
            let k = &m.domain(dom).unwrap().kernel;
            eprintln!(
                "  dom{} dirty_pages={} stats={:?}",
                dom.0,
                k.dirty_pages(),
                k.stats()
            );
        }
    }
    // Aggregate FS payload write throughput over the measured window.
    let now = sim.now();
    let bps = recs.iter().map(|r| r.borrow().throughput_bps(now)).sum();
    let ops = recs.iter().map(|r| r.borrow().ops).sum();
    (bps, ops)
}

/// Output of an arrival-process run (Table 2, Figs. 10b/10c/11).
#[derive(Clone, Copy, Debug)]
pub struct ArrivalOut {
    /// VMs completed within the horizon.
    pub completed: u64,
    /// VMs that arrived.
    pub arrived: u64,
    /// Average machine CPU utilization.
    pub cpu_utilization: f64,
    /// Device-level write throughput over the whole run, bytes/s.
    pub write_bps: f64,
    /// Device-level total I/O throughput over the whole run, bytes/s.
    pub io_bps: f64,
    /// Application payload throughput of completed VMs, bytes/s — the
    /// Table 2 metric (the paper measures app-level write throughput; at
    /// our compressed scale the device-level number degenerates because
    /// baseline guests often depart before their dirt is ever flushed).
    pub app_bps: f64,
}

/// One dynamic-arrival run at λ VMs/minute (§5.3's Table 2 setting; also
/// §5.5's Figs. 10b/10c/11).
pub fn arrivals_run(kind: SystemKind, lambda_per_min: f64, cfg: RunCfg) -> ArrivalOut {
    let (mut sim, idx) = single_machine(kind, cfg.seed);
    let horizon = cfg.horizon();
    let stats = {
        let (cl, s) = sim.parts_mut();
        let p = ArrivalParams {
            lambda_per_min,
            fs_bytes: 256 << 20,
            ycsb_ops: 20_000,
            cloud9_cpu_secs: 4.0,
            seed: cfg.seed,
            ..ArrivalParams::default()
        };
        spawn_arrivals(cl, s, idx, p, horizon)
    };
    sim.run_until(horizon);
    let now = sim.now();
    let m = sim.world().machine(idx);
    let (rbytes, wbytes) = m.storage.monitor().byte_counts();
    let span = now.as_secs_f64().max(1e-9);
    let st = stats.borrow();
    ArrivalOut {
        completed: st.completed,
        arrived: st.arrived,
        cpu_utilization: m.utilization(now),
        write_bps: wbytes as f64 / span,
        io_bps: (rbytes + wbytes) as f64 / span,
        app_bps: st.payload_bytes as f64 / span,
    }
}

// ====================================================================
// §5.4 — Fig. 9: congestion control with FS / WS / VS
// ====================================================================

/// The FileBench workload measured in Fig. 9.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FbKind {
    /// File server.
    Fs,
    /// Web server.
    Ws,
    /// Video server.
    Vs,
}

/// One Fig. 9 point: `n_vms` 1-VCPU/1-GB VMs all running the same
/// FileBench workload; returns the mean op latency and the op count.
pub fn congestion_run(
    kind: SystemKind,
    fb: FbKind,
    n_vms: usize,
    cfg: RunCfg,
) -> (SimDuration, u64) {
    let (mut sim, idx) = single_machine(kind, cfg.seed);
    let rec = recorder(cfg.record_after());
    for v in 0..n_vms {
        let (cl, s) = sim.parts_mut();
        let dom = cl.create_domain(s, idx, VmSpec::new(1, 1).with_disk_gb(8), |g| {
            g.queue.nr_requests = 64;
        });
        let vm = VmRef { machine: idx, dom };
        let seed = cfg.seed ^ (v as u64) << 8;
        match fb {
            FbKind::Fs => spawn_fileserver(
                cl,
                s,
                vm,
                FsParams {
                    threads: 2,
                    pool: 8_000,
                    seed,
                    ..FsParams::default()
                },
                Rc::clone(&rec),
            ),
            FbKind::Ws => spawn_webserver(
                cl,
                s,
                vm,
                WsParams {
                    threads: 2,
                    seed,
                    ..WsParams::default()
                },
                Rc::clone(&rec),
            ),
            FbKind::Vs => spawn_videoserver(
                cl,
                s,
                vm,
                VsParams {
                    readers: 2,
                    seed,
                    ..VsParams::default()
                },
                Rc::clone(&rec),
            ),
        }
    }
    sim.run_until(cfg.horizon());
    let r = rec.borrow();
    (r.hist.mean(), r.ops)
}

// ====================================================================
// §5.5 — Fig. 10a: big cross-socket VM, mixed CPU/I/O intensity
// ====================================================================

/// One Fig. 10a point: a 10-VCPU/10-GB VM running `io_threads` multi-
/// stream readers (pinned to the first VCPUs, which land on socket 0)
/// and `10 - io_threads` Cloud9 threads; returns I/O throughput in
/// bytes/s and the recorded op count.
pub fn cosched_run(kind: SystemKind, io_threads: u32, cfg: RunCfg) -> (f64, u64) {
    let (mut sim, idx) = single_machine(kind, cfg.seed);
    let vm = make_vm(&mut sim, idx, 10, 10, 60);
    let rec = recorder(cfg.record_after());
    {
        let (cl, s) = sim.parts_mut();
        spawn_multistream(
            cl,
            s,
            vm,
            MultiStreamParams {
                streams: io_threads,
                file_size: 2 << 30,
                read_size: 1 << 20,
                first_vcpu: 0,
                seed: cfg.seed ^ 0x10,
            },
            Rc::clone(&rec),
        );
        let cpu_threads = 10 - io_threads;
        if cpu_threads > 0 {
            spawn_cloud9(
                cl,
                s,
                vm,
                Cloud9Params {
                    threads: cpu_threads,
                    first_vcpu: io_threads,
                    seed: cfg.seed ^ 0x11,
                    ..Cloud9Params::default()
                },
                recorder(cfg.record_after()),
            );
        }
    }
    sim.run_until(cfg.horizon());
    let now = sim.now();
    let r = rec.borrow();
    (r.throughput_bps(now), r.ops)
}

// ====================================================================
// §5.6 — Fig. 12: bursty writes
// ====================================================================

/// One Fig. 12 point: YCSB1 on a 2-VM store with synchronized bursts;
/// returns the op latency histogram (the figure reports the 99.9th pct).
pub fn bursty_run(
    kind: SystemKind,
    rate: f64,
    burst_len: SimDuration,
    cfg: RunCfg,
) -> LatencyHistogram {
    let (mut sim, idx) = single_machine(kind, cfg.seed);
    let a = make_vm(&mut sim, idx, 2, 4, 20);
    let b = make_vm(&mut sim, idx, 2, 4, 20);
    let rec = recorder(cfg.record_after());
    {
        let (cl, s) = sim.parts_mut();
        let p = YcsbParams::ycsb1(rate, cfg.seed ^ 0xbb).with_burst(burst_len);
        spawn_ycsb(cl, s, &[a, b], None, p, Rc::clone(&rec));
    }
    sim.run_until(cfg.horizon());
    let h = rec.borrow().hist.clone();
    h
}

/// Convenience: mean latency of a histogram in a chosen unit string for
/// the bench tables.
pub fn hist_mean_us(h: &LatencyHistogram) -> f64 {
    h.mean().as_micros_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny smoke runs keeping unit-test time low; the real sweeps live in
    /// `benches/` and the integration tests.
    fn tiny() -> RunCfg {
        RunCfg::new(7)
            .with_warmup(SimDuration::from_millis(300))
            .with_measure(SimDuration::from_millis(700))
    }

    #[test]
    fn motivation_smoke() {
        let base = motivation_run(false, tiny());
        assert!(base.mean > SimDuration::ZERO);
    }

    #[test]
    fn ycsb_bursty_smoke() {
        let h = bursty_run(
            SystemKind::Baseline,
            300.0,
            SimDuration::from_millis(50),
            tiny(),
        );
        assert!(h.count() > 0, "bursty run must record ops");
    }

    #[test]
    fn congestion_smoke() {
        let (m, ops) = congestion_run(SystemKind::Baseline, FbKind::Ws, 2, tiny());
        assert!(m > SimDuration::ZERO);
        assert!(ops > 0);
    }

    #[test]
    fn single_machine_provisions() {
        for kind in SystemKind::headline() {
            let (sim, idx) = single_machine(kind, 1);
            assert_eq!(sim.world().machines.len(), idx + 1);
        }
    }

    /// `DomainId` sanity for the arrival framework.
    #[test]
    fn arrival_smoke() {
        let out = arrivals_run(SystemKind::Baseline, 30.0, tiny());
        assert!(out.cpu_utilization >= 0.0);
        let _ = out.arrived;
    }
}
