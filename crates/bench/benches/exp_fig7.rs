//! Fig. 7 — normalized mean I/O latency of mpiBLAST and YCSB1 at
//! different cluster sizes (1–8 machines), under SDC / DIF / IOrchestra
//! relative to Baseline.

use iorch_bench::{scaleout_run, RunCfg, ScaleApp};
use iorch_metrics::{fmt_ratio, normalized, Table};
use iorch_simcore::SimDuration;
use iorchestra::SystemKind;

fn main() {
    let machines = [1usize, 2, 4, 6, 8];
    let cfg = RunCfg::new(42)
        .with_warmup(SimDuration::from_secs(1))
        .with_measure(SimDuration::from_secs(3));
    for (app, title) in [
        (
            ScaleApp::Blast,
            "Fig. 7a — mpiBLAST normalized mean I/O latency",
        ),
        (
            ScaleApp::Ycsb1,
            "Fig. 7b — YCSB1 normalized mean I/O latency",
        ),
    ] {
        let mut t = Table::new(title, &["machines", "IOrchestra", "SDC", "DIF"]);
        for &n in &machines {
            let base = scaleout_run(SystemKind::Baseline, n, app, cfg);
            let io = scaleout_run(SystemKind::IOrchestra, n, app, cfg);
            let sdc = scaleout_run(SystemKind::Sdc, n, app, cfg);
            let dif = scaleout_run(SystemKind::Dif, n, app, cfg);
            t.row(vec![
                n.to_string(),
                fmt_ratio(normalized(base, io)),
                fmt_ratio(normalized(base, sdc)),
                fmt_ratio(normalized(base, dif)),
            ]);
        }
        print!("{}", t.render());
    }
    println!(
        "paper shapes: IOrchestra ~0.87-0.90 across sizes (10.1% mpiBLAST, 12.9% YCSB1 \
         average gains); YCSB1 absolute latency grows with machines from inter-node \
         traffic while mpiBLAST's gain stays stable."
    );
}
