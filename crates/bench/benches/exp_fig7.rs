//! Fig. 7 scale-out — thin shim over the declarative runner (`fig7`).

fn main() {
    iorch_bench::exp::bench_main(&["fig7"]);
}
