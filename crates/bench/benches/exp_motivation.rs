//! §2 motivation experiment: falsely triggered congestion avoidance.
//!
//! Two VMs run streams of large sequential reads whose pipeline depth
//! keeps the request queue above the 7/8 threshold, so stock Linux
//! congestion avoidance fires although the host array has headroom. The
//! measured latency is that of reads submitted into the falsely-congested
//! queue: baseline submitters sleep in `congestion_wait`; IOrchestra's
//! collaborative control releases them. The paper reports 220 ms → 160 ms
//! (27% of the baseline); the reproduction target is that double-digit
//! relative gap, not the absolute numbers (different op sizes).

use iorch_bench::{motivation_run, RunCfg};
use iorch_metrics::{fmt_ms, fmt_pct, Table};
use iorch_simcore::SimDuration;

fn main() {
    println!("== §2 motivation: congestion avoidance on vs collaborative ==");
    let mut table = Table::new(
        "Mean latency of reads entering the falsely-congested queue",
        &["system", "mean (ms)", "congestion entries", "releases"],
    );
    let cfg = RunCfg::new(42)
        .with_warmup(SimDuration::from_secs(1))
        .with_measure(SimDuration::from_secs(5));
    let base = motivation_run(false, cfg);
    let iorch = motivation_run(true, cfg);
    table.row(vec![
        "Baseline (stock congestion avoidance)".into(),
        fmt_ms(base.mean),
        base.congestion_entries.to_string(),
        "-".into(),
    ]);
    table.row(vec![
        "IOrchestra (collaborative)".into(),
        fmt_ms(iorch.mean),
        iorch.congestion_entries.to_string(),
        iorch.bypass_grants.to_string(),
    ]);
    print!("{}", table.render());
    let imp = (base.mean.as_secs_f64() - iorch.mean.as_secs_f64()) / base.mean.as_secs_f64();
    println!(
        "improvement: {} (paper: 220 ms -> 160 ms, 27%)",
        fmt_pct(imp * 100.0)
    );
}
