//! §2 motivation experiment — thin shim over the declarative runner
//! (`iorch_bench::exp`, experiment `motivation`).

fn main() {
    iorch_bench::exp::bench_main(&["motivation"]);
}
