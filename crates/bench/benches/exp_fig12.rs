//! Fig. 12 bursty writes — thin shim over the declarative runner
//! (`fig12`).

fn main() {
    iorch_bench::exp::bench_main(&["fig12"]);
}
