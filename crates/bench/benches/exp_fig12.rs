//! Fig. 12 — YCSB1 99.9th-percentile latency under bursty writes with
//! synchronized burst periods of 50 and 100 ms (peak rate 10× average),
//! for Baseline / SDC / DIF / IOrchestra.

use iorch_bench::{bursty_run, RunCfg};
use iorch_metrics::{fmt_us, Table};
use iorch_simcore::SimDuration;
use iorchestra::SystemKind;

fn main() {
    let systems = SystemKind::headline();
    let rates = [200.0f64, 500.0, 1000.0, 1500.0, 2000.0, 3000.0];
    let cfg = RunCfg::new(42)
        .with_warmup(SimDuration::from_secs(2))
        .with_measure(SimDuration::from_secs(8));
    for burst_ms in [50u64, 100] {
        let mut t = Table::new(
            format!("Fig. 12 — YCSB1 99.9th pct latency (us), {burst_ms} ms bursts"),
            &["req/s", "Baseline", "SDC", "DIF", "IOrchestra"],
        );
        for &r in &rates {
            let mut row = vec![format!("{r:.0}")];
            for k in systems {
                let h = bursty_run(k, r, SimDuration::from_millis(burst_ms), cfg);
                row.push(fmt_us(h.p999()));
            }
            t.row(row);
        }
        print!("{}", t.render());
    }
    println!(
        "paper shape: the baseline tail blows past 1 ms at ~800 (50 ms bursts) and \
         ~500 req/s (100 ms); DIF beats SDC on this write-heavy load; IOrchestra \
         sustains the highest rate under 1 ms (average gain ~31.8%)."
    );
}
