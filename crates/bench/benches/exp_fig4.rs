//! Fig. 4 (a–f) — thin shim over the declarative runner (`fig4`).

fn main() {
    iorch_bench::exp::bench_main(&["fig4"]);
}
