//! Fig. 4 (a–f): latency at different workload intensities and
//! applications — Olio + two Cassandra stores (YCSB1, YCSB2) running
//! concurrently on one host under Baseline / SDC / DIF / IOrchestra.
//!
//! (a,d) Olio mean and 99.9th-percentile latency vs number of clients;
//! (b,e) YCSB1 vs requests/second; (c,f) YCSB2 vs requests/second.

use iorch_bench::{fig4_run, Fig4Out, RunCfg};
use iorch_metrics::{fmt_ms, fmt_us, LatencyHistogram, Table};
use iorchestra::SystemKind;

/// Merge the distributions of several seeded runs (the paper averages
/// over repeated runs; merging histograms pools the samples).
fn fig4_merged(kind: SystemKind, clients: u32, r1: f64, r2: f64) -> Fig4Out {
    let mut out: Option<Fig4Out> = None;
    for seed in [42u64, 1042, 2042] {
        let run = fig4_run(kind, clients, r1, r2, RunCfg::new(seed));
        match &mut out {
            None => out = Some(run),
            Some(acc) => {
                acc.olio_total.merge(&run.olio_total);
                acc.olio_web.merge(&run.olio_web);
                acc.olio_db.merge(&run.olio_db);
                acc.olio_file.merge(&run.olio_file);
                acc.ycsb1.merge(&run.ycsb1);
                acc.ycsb2.merge(&run.ycsb2);
            }
        }
    }
    out.unwrap()
}

fn main() {
    let systems = SystemKind::headline();

    // --- (a, d): Olio vs clients, stores fixed at 1500 rps ---
    let clients = [50u32, 100, 150, 200, 250, 300];
    let mut mean_t = Table::new(
        "Fig. 4a — Olio mean latency (ms) vs clients",
        &["clients", "Baseline", "SDC", "DIF", "IOrchestra"],
    );
    let mut tail_t = Table::new(
        "Fig. 4d — Olio 99.9th pct latency (ms) vs clients",
        &["clients", "Baseline", "SDC", "DIF", "IOrchestra"],
    );
    for &c in &clients {
        let outs: Vec<LatencyHistogram> = systems
            .iter()
            .map(|k| fig4_merged(*k, c, 1500.0, 1500.0).olio_total)
            .collect();
        let mut mrow = vec![c.to_string()];
        let mut trow = vec![c.to_string()];
        for h in &outs {
            mrow.push(fmt_ms(h.mean()));
            trow.push(fmt_ms(h.p999()));
        }
        mean_t.row(mrow);
        tail_t.row(trow);
    }
    print!("{}", mean_t.render());
    print!("{}", tail_t.render());

    // --- (b, e) and (c, f): YCSB vs rate, Olio fixed at 150 clients ---
    let rates = [500.0f64, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0];
    for (name_mean, name_tail, pick) in [
        (
            "Fig. 4b — YCSB1 mean latency (us) vs req/s",
            "Fig. 4e — YCSB1 99.9th pct latency (us) vs req/s",
            0usize,
        ),
        (
            "Fig. 4c — YCSB2 mean latency (us) vs req/s",
            "Fig. 4f — YCSB2 99.9th pct latency (us) vs req/s",
            1usize,
        ),
    ] {
        let mut mean_t = Table::new(
            name_mean,
            &["req/s", "Baseline", "SDC", "DIF", "IOrchestra"],
        );
        let mut tail_t = Table::new(
            name_tail,
            &["req/s", "Baseline", "SDC", "DIF", "IOrchestra"],
        );
        for &r in &rates {
            let outs: Vec<LatencyHistogram> = systems
                .iter()
                .map(|k| {
                    let out = fig4_merged(*k, 150, r, r);
                    if pick == 0 {
                        out.ycsb1
                    } else {
                        out.ycsb2
                    }
                })
                .collect();
            let mut mrow = vec![format!("{r:.0}")];
            let mut trow = vec![format!("{r:.0}")];
            for h in &outs {
                mrow.push(fmt_us(h.mean()));
                trow.push(fmt_us(h.p999()));
            }
            mean_t.row(mrow);
            tail_t.row(trow);
        }
        print!("{}", mean_t.render());
        print!("{}", tail_t.render());
    }
    println!(
        "paper shapes: IOrchestra lowest on every series; overall mean ~9% and 99.9th ~12% \
         below baseline; YCSB1 gains (13/16%) exceed YCSB2's; SDC helps means via lower \
         per-request overhead, DIF helps the write-heavy store."
    );
}
