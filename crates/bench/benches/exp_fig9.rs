//! Fig. 9 congestion control — thin shim over the declarative runner
//! (`fig9`).

fn main() {
    iorch_bench::exp::bench_main(&["fig9"]);
}
