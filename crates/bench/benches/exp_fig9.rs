//! Fig. 9 — latency of FS / WS / VS normalized to baseline at various VM
//! counts, with only the collaborative congestion-control function
//! enabled.

use iorch_bench::{congestion_run, FbKind, RunCfg};
use iorch_metrics::{fmt_ratio, normalized, Table};
use iorch_simcore::SimDuration;
use iorchestra::{FunctionSet, SystemKind};

fn main() {
    let vm_counts = [2usize, 6, 10, 14, 20];
    let cong_only = SystemKind::IOrchestraWith(FunctionSet::congestion_only());
    let mut t = Table::new(
        "Fig. 9 — normalized mean latency (IOrchestra congestion-only / baseline)",
        &["VMs", "FS", "WS", "VS"],
    );
    let cfg = RunCfg::new(42)
        .with_warmup(SimDuration::from_secs(2))
        .with_measure(SimDuration::from_secs(5));
    for &n in &vm_counts {
        let mut row = vec![n.to_string()];
        for fb in [FbKind::Fs, FbKind::Ws, FbKind::Vs] {
            let base = congestion_run(SystemKind::Baseline, fb, n, cfg);
            let io = congestion_run(cong_only, fb, n, cfg);
            row.push(fmt_ratio(normalized(base, io)));
        }
        t.row(row);
    }
    print!("{}", t.render());
    println!(
        "paper shape: FS benefits most (down to ~0.90 — small mixed requests falsely \
         trigger congestion avoidance); WS/VS closer to 1.0; all curves approach 1.0 \
         as VM count grows and the device becomes genuinely congested."
    );
}
