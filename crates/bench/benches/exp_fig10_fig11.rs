//! Fig. 10 — inter-domain I/O co-scheduling: (a) I/O-throughput
//! improvement at various I/O-thread intensities in a 10-VCPU
//! cross-socket VM; (b) improvement in completed VMs under dynamic
//! arrivals; (c) average CPU utilization vs arrival rate.
//! Fig. 11 — I/O-throughput improvement at various arrival rates
//! (SDC vs IOrchestra, both relative to baseline).

use iorch_bench::{arrivals_run, cosched_run, RunCfg};
use iorch_metrics::{fmt_pct, throughput_improvement_pct, Table};
use iorch_simcore::SimDuration;
use iorchestra::SystemKind;

fn main() {
    // --- Fig. 10a: mixed intensity in one big VM ---
    let cfg = RunCfg::new(42)
        .with_warmup(SimDuration::from_secs(1))
        .with_measure(SimDuration::from_secs(5));
    let mut t = Table::new(
        "Fig. 10a — I/O throughput improvement vs %% of I/O threads (IOrchestra vs SDC)",
        &["% io threads", "SDC MB/s", "IOrchestra MB/s", "improvement"],
    );
    for io_threads in [2u32, 4, 6, 8] {
        let sdc = cosched_run(SystemKind::Sdc, io_threads, cfg);
        let io = cosched_run(SystemKind::IOrchestra, io_threads, cfg);
        t.row(vec![
            format!("{}%", io_threads * 10),
            format!("{:.1}", sdc / 1e6),
            format!("{:.1}", io / 1e6),
            fmt_pct(throughput_improvement_pct(sdc, io)),
        ]);
    }
    print!("{}", t.render());
    println!(
        "paper shape: 2-14% improvement, largest at moderate intensity (40-60%) where \
         single-core SDC is most unbalanced.\n"
    );

    // --- Fig. 10b/10c + Fig. 11: dynamic arrivals ---
    let lambdas = [4.0f64, 8.0, 12.0, 16.0, 20.0];
    let acfg = RunCfg::new(42)
        .with_warmup(SimDuration::from_secs(2))
        .with_measure(SimDuration::from_secs(118));
    let mut b = Table::new(
        "Fig. 10b — improvement in VMs completed vs λ",
        &["λ", "SDC", "IOrchestra"],
    );
    let mut c = Table::new(
        "Fig. 10c — average CPU utilization vs λ",
        &["λ", "baseline", "SDC", "IOrchestra"],
    );
    let mut f11 = Table::new(
        "Fig. 11 — I/O throughput improvement over baseline vs λ",
        &["λ", "SDC", "IOrchestra"],
    );
    for &l in &lambdas {
        let base = arrivals_run(SystemKind::Baseline, l, acfg);
        let sdc = arrivals_run(SystemKind::Sdc, l, acfg);
        let io = arrivals_run(SystemKind::IOrchestra, l, acfg);
        let imp = |x: u64| {
            if base.completed == 0 {
                0.0
            } else {
                (x as f64 - base.completed as f64) / base.completed as f64 * 100.0
            }
        };
        b.row(vec![
            format!("{l:.0}"),
            fmt_pct(imp(sdc.completed)),
            fmt_pct(imp(io.completed)),
        ]);
        c.row(vec![
            format!("{l:.0}"),
            fmt_pct(base.cpu_utilization * 100.0),
            fmt_pct(sdc.cpu_utilization * 100.0),
            fmt_pct(io.cpu_utilization * 100.0),
        ]);
        f11.row(vec![
            format!("{l:.0}"),
            fmt_pct(throughput_improvement_pct(base.io_bps, sdc.io_bps)),
            fmt_pct(throughput_improvement_pct(base.io_bps, io.io_bps)),
        ]);
    }
    print!("{}", b.render());
    println!("paper shape: IOrchestra's completed-VM gain grows with λ to ~6.6%; SDC lags.\n");
    print!("{}", c.render());
    println!(
        "paper shape: baseline lowest at small λ (no spinning core); at high λ baseline \
         and IOrchestra exceed SDC, whose single-socket restriction strands capacity.\n"
    );
    print!("{}", f11.render());
    println!("paper shape: SDC's gain collapses at high λ; IOrchestra's roughly doubles it.");
}
