//! Figs. 10/11 co-scheduling — thin shim over the declarative runner
//! (`fig10a` and `fig10bc_fig11`).

fn main() {
    iorch_bench::exp::bench_main(&["fig10a", "fig10bc_fig11"]);
}
