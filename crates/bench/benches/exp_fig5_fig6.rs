//! Fig. 5 — YCSB1/YCSB2 latency distributions at 3000 req/s, baseline vs
//! IOrchestra. Fig. 6 — per-tier latency distributions of Olio (web /
//! database / file server) at full load.

use iorch_bench::{fig4_run, Fig4Out, RunCfg};
use iorch_metrics::{cdf_at_fractions, fmt_us, standard_grid, LatencyHistogram, Table};
use iorchestra::SystemKind;

fn cdf_table(title: &str, base: &LatencyHistogram, iorch: &LatencyHistogram) -> Table {
    let grid = standard_grid();
    let b = cdf_at_fractions(base, &grid);
    let i = cdf_at_fractions(iorch, &grid);
    let mut t = Table::new(title, &["pct", "Baseline (us)", "IOrchestra (us)"]);
    for (bp, ip) in b.iter().zip(&i) {
        t.row(vec![
            format!("{:.0}%", bp.fraction * 100.0),
            fmt_us(bp.value),
            fmt_us(ip.value),
        ]);
    }
    t
}

fn main() {
    let cfg = RunCfg::new(42);
    let base: Fig4Out = fig4_run(SystemKind::Baseline, 300, 3000.0, 3000.0, cfg);
    let iorch: Fig4Out = fig4_run(SystemKind::IOrchestra, 300, 3000.0, 3000.0, cfg);

    // Fig. 5: store latency CDFs at 3000 req/s.
    print!(
        "{}",
        cdf_table(
            "Fig. 5a — YCSB1 latency CDF @3000 req/s",
            &base.ycsb1,
            &iorch.ycsb1
        )
        .render()
    );
    print!(
        "{}",
        cdf_table(
            "Fig. 5b — YCSB2 latency CDF @3000 req/s",
            &base.ycsb2,
            &iorch.ycsb2
        )
        .render()
    );

    // Fig. 6: Olio per-tier CDFs.
    print!(
        "{}",
        cdf_table(
            "Fig. 6a — Olio web tier latency CDF",
            &base.olio_web,
            &iorch.olio_web
        )
        .render()
    );
    print!(
        "{}",
        cdf_table(
            "Fig. 6b — Olio database tier latency CDF",
            &base.olio_db,
            &iorch.olio_db
        )
        .render()
    );
    print!(
        "{}",
        cdf_table(
            "Fig. 6c — Olio file-server tier latency CDF",
            &base.olio_file,
            &iorch.olio_file
        )
        .render()
    );

    let imp = |b: &LatencyHistogram, i: &LatencyHistogram| {
        (b.mean().as_secs_f64() - i.mean().as_secs_f64()) / b.mean().as_secs_f64() * 100.0
    };
    println!(
        "mean improvements — overall Olio: {:.1}%  db tier: {:.1}%  file tier: {:.1}%  \
         (paper: 11.2%, 21.6%, 19.8%; I/O tiers improve more than end-to-end)",
        imp(&base.olio_total, &iorch.olio_total),
        imp(&base.olio_db, &iorch.olio_db),
        imp(&base.olio_file, &iorch.olio_file),
    );
}
