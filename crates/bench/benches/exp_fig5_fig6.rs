//! Figs. 5/6 latency distributions — thin shim over the declarative
//! runner (`fig5_fig6`).

fn main() {
    iorch_bench::exp::bench_main(&["fig5_fig6"]);
}
