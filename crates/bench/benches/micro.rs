//! Micro-benchmarks for the hot data structures: system-store operations,
//! the event queue, the latency histogram, the DRR poller and the WFQ host
//! queue. Runs on the in-tree [`iorch_bench::timing`] harness (no external
//! bench framework); set `IORCH_BENCH_QUICK=1` for a fast smoke run.

use std::hint::black_box;

use iorch_bench::timing::Timer;
use iorch_hypervisor::{CoreId, DomainId, IoCore, IoCoreParams, Perms, XenStore, DOM0};
use iorch_metrics::LatencyHistogram;
use iorch_simcore::{Scheduler, SimDuration, SimTime, Simulation};
use iorch_storage::{IoKind, IoRequest, RequestId, StreamId, WfqQueue};

fn bench_store(t: &Timer) {
    {
        let mut store = XenStore::new();
        store
            .mkdir(DOM0, "/local/domain/1", Perms::private_to(DomainId(1)))
            .unwrap();
        t.time("xenstore_write_read", || {
            store
                .write(DomainId(1), "/local/domain/1/virt-dev/nr", "12345")
                .unwrap();
            black_box(store.read(DOM0, "/local/domain/1/virt-dev/nr").unwrap());
        })
        .report();
    }
    {
        let mut store = XenStore::new();
        store
            .mkdir(DOM0, "/local/domain/1", Perms::private_to(DomainId(1)))
            .unwrap();
        store.watch(DOM0, "/local");
        store.watch(DomainId(1), "/local/domain/1");
        t.time("xenstore_watch_fire", || {
            store
                .write(DomainId(1), "/local/domain/1/virt-dev/congested", "1")
                .unwrap();
            black_box(store.take_events());
        })
        .report();
    }
}

fn bench_event_queue(t: &Timer) {
    t.time("scheduler_1k_events", || {
        let mut sim = Simulation::new(0u64);
        for i in 0..1000u64 {
            sim.scheduler_mut().schedule_at(
                SimTime::from_nanos(i * 997 % 50_000),
                |w: &mut u64, _s: &mut Scheduler<u64>| *w += 1,
            );
        }
        sim.run_to_completion();
        black_box(*sim.world())
    })
    .report();
}

fn bench_histogram(t: &Timer) {
    {
        let mut h = LatencyHistogram::new();
        let mut x = 1u64;
        t.time("histogram_record", || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(SimDuration::from_nanos(x >> 40));
        })
        .report();
    }
    {
        let mut h = LatencyHistogram::new();
        for i in 0..100_000u64 {
            h.record(SimDuration::from_nanos(i * 37 % 10_000_000));
        }
        t.time("histogram_p999", || black_box(h.p999())).report();
    }
}

fn bench_drr(t: &Timer) {
    t.time("iocore_drr_cycle", || {
        let mut core = IoCore::new(0, CoreId(0), IoCoreParams::default());
        for i in 0..64u64 {
            core.enqueue(
                DomainId((i % 4) as u32),
                IoRequest {
                    id: RequestId(i),
                    kind: IoKind::Read,
                    stream: StreamId((i % 4) as u32),
                    offset: i * (1 << 20),
                    len: 64 << 10,
                    submitted: SimTime::ZERO,
                },
                false,
                SimTime::ZERO,
            );
        }
        let mut now = SimTime::ZERO;
        while let Some(done) = core.start_next(now) {
            now = done;
            black_box(core.finish(now));
        }
    })
    .report();
}

fn bench_wfq(t: &Timer) {
    t.time("wfq_enqueue_dequeue", || {
        let mut q = WfqQueue::new();
        for s in 0..8u32 {
            q.set_weight(StreamId(s), 100 + s * 50);
        }
        for i in 0..256u64 {
            q.enqueue(IoRequest {
                id: RequestId(i),
                kind: IoKind::Write,
                stream: StreamId((i % 8) as u32),
                offset: i * (1 << 20),
                len: 64 << 10,
                submitted: SimTime::ZERO,
            });
        }
        while let Some(r) = q.dequeue() {
            black_box(r);
        }
    })
    .report();
}

fn main() {
    let t = Timer::from_env();
    bench_store(&t);
    bench_event_queue(&t);
    bench_histogram(&t);
    bench_drr(&t);
    bench_wfq(&t);
}
