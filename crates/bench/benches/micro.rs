//! Criterion micro-benchmarks for the hot data structures: system-store
//! operations, the event queue, the latency histogram, the DRR poller and
//! the WFQ host queue.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iorch_hypervisor::{CoreId, DomainId, IoCore, IoCoreParams, Perms, XenStore, DOM0};
use iorch_metrics::LatencyHistogram;
use iorch_simcore::{Scheduler, SimDuration, SimTime, Simulation};
use iorch_storage::{IoKind, IoRequest, RequestId, StreamId, WfqQueue};

fn bench_store(c: &mut Criterion) {
    c.bench_function("xenstore_write_read", |b| {
        let mut store = XenStore::new();
        store
            .mkdir(DOM0, "/local/domain/1", Perms::private_to(DomainId(1)))
            .unwrap();
        b.iter(|| {
            store
                .write(DomainId(1), "/local/domain/1/virt-dev/nr", "12345")
                .unwrap();
            black_box(store.read(DOM0, "/local/domain/1/virt-dev/nr").unwrap());
        });
    });
    c.bench_function("xenstore_watch_fire", |b| {
        let mut store = XenStore::new();
        store
            .mkdir(DOM0, "/local/domain/1", Perms::private_to(DomainId(1)))
            .unwrap();
        store.watch(DOM0, "/local");
        store.watch(DomainId(1), "/local/domain/1");
        b.iter(|| {
            store
                .write(DomainId(1), "/local/domain/1/virt-dev/congested", "1")
                .unwrap();
            black_box(store.take_events());
        });
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("scheduler_1k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(0u64);
            for i in 0..1000u64 {
                sim.scheduler_mut().schedule_at(
                    SimTime::from_nanos(i * 997 % 50_000),
                    |w: &mut u64, _s: &mut Scheduler<u64>| *w += 1,
                );
            }
            sim.run_to_completion();
            black_box(*sim.world())
        });
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram_record", |b| {
        let mut h = LatencyHistogram::new();
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(SimDuration::from_nanos(x >> 40));
        });
    });
    c.bench_function("histogram_p999", |b| {
        let mut h = LatencyHistogram::new();
        for i in 0..100_000u64 {
            h.record(SimDuration::from_nanos(i * 37 % 10_000_000));
        }
        b.iter(|| black_box(h.p999()));
    });
}

fn bench_drr(c: &mut Criterion) {
    c.bench_function("iocore_drr_cycle", |b| {
        b.iter(|| {
            let mut core = IoCore::new(0, CoreId(0), IoCoreParams::default());
            for i in 0..64u64 {
                core.enqueue(
                    DomainId((i % 4) as u32),
                    IoRequest {
                        id: RequestId(i),
                        kind: IoKind::Read,
                        stream: StreamId((i % 4) as u32),
                        offset: i * (1 << 20),
                        len: 64 << 10,
                        submitted: SimTime::ZERO,
                    },
                    false,
                    SimTime::ZERO,
                );
            }
            let mut now = SimTime::ZERO;
            while let Some(done) = core.start_next(now) {
                now = done;
                black_box(core.finish(now));
            }
        });
    });
}

fn bench_wfq(c: &mut Criterion) {
    c.bench_function("wfq_enqueue_dequeue", |b| {
        b.iter(|| {
            let mut q = WfqQueue::new();
            for s in 0..8u32 {
                q.set_weight(StreamId(s), 100 + s * 50);
            }
            for i in 0..256u64 {
                q.enqueue(IoRequest {
                    id: RequestId(i),
                    kind: IoKind::Write,
                    stream: StreamId((i % 8) as u32),
                    offset: i * (1 << 20),
                    len: 64 << 10,
                    submitted: SimTime::ZERO,
                });
            }
            while let Some(r) = q.dequeue() {
                black_box(r);
            }
        });
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_store, bench_event_queue, bench_histogram, bench_drr, bench_wfq
);
criterion_main!(micro);
