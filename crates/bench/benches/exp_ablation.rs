//! Design-choice ablations (DESIGN.md §5) — thin shim over the
//! declarative runner (`ablation`). `IORCH_ABLATION=named` restricts the
//! run to the named-policy-set sweep, as tier1.sh uses it.

fn main() {
    iorch_bench::exp::bench_main(&["ablation"]);
}
