//! Ablations of IOrchestra's design choices (DESIGN.md §5):
//!
//! * the flush idleness threshold (paper: bandwidth < 1/10 of capacity);
//! * the congestion wake interleave (paper: uniform 0–99 ms);
//! * the co-scheduler weight-update policy (paper: 1 s period or >50%
//!   ratio change);
//! * the DRR quantum round length.

use std::rc::Rc;

use iorch_bench::{bursty_run, RunCfg};
use iorch_hypervisor::{Cluster, VmSpec};
use iorch_metrics::{fmt_pct, fmt_us, Table};
use iorch_simcore::{SimDuration, SimTime, Simulation};
use iorch_workloads::{recorder, spawn_ycsb, VmRef, YcsbParams};
use iorchestra::{
    FunctionSet, IOrchestraConfig, IOrchestraPlane, PolicyEngine, PolicySet, SystemKind,
};

/// Run the bursty-writes scenario with a custom-configured IOrchestra
/// plane (full function set unless restricted).
fn bursty_with_cfg(mk: impl FnOnce(IOrchestraConfig) -> IOrchestraConfig, rate: f64) -> f64 {
    bursty_with_set(
        PolicySet::iorchestra(mk(IOrchestraConfig::new(42))),
        iorch_hypervisor::IoPathMode::DedicatedCores { per_socket: true },
        rate,
    )
}

/// Run the bursty-writes scenario under an arbitrary policy set — the
/// named-set sweep runs every plane the engine knows through here.
fn bursty_with_set(set: PolicySet, mode: iorch_hypervisor::IoPathMode, rate: f64) -> f64 {
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let idx = cl.add_machine(iorch_hypervisor::MachineConfig::paper_testbed(42, mode));
    cl.install_control(s, idx, Box::new(PolicyEngine::new(set)));
    let a = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(20), |g| {
        g.wb.periodic_interval = SimDuration::from_millis(1000);
        g.wb.dirty_expire = SimDuration::from_millis(3000);
    });
    let b = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(20), |g| {
        g.wb.periodic_interval = SimDuration::from_millis(1000);
        g.wb.dirty_expire = SimDuration::from_millis(3000);
    });
    let rec = recorder(SimTime::from_secs(2));
    let mut p = YcsbParams::ycsb1(rate, 42).with_burst(SimDuration::from_millis(50));
    p.memtable_flush_bytes = 2 << 20;
    spawn_ycsb(
        cl,
        s,
        &[
            VmRef {
                machine: idx,
                dom: a,
            },
            VmRef {
                machine: idx,
                dom: b,
            },
        ],
        None,
        p,
        Rc::clone(&rec),
    );
    sim.run_until(SimTime::from_secs(10));
    let v = rec.borrow().hist.p999().as_micros_f64();
    v
}

fn main() {
    let rate = 600.0;

    // --- Ablation 0: every named policy set on one engine ---
    // (`IORCH_ABLATION=named` runs only this table; tier1.sh uses it to
    // sweep the policy sets without paying for the parameter ablations.)
    let mut t0 = Table::new(
        "Ablation — named policy sets (YCSB1 bursty p99.9, us)",
        &["policy set", "p99.9 (us)"],
    );
    for name in [
        "baseline",
        "sdc",
        "dif",
        "flush_only",
        "congestion_only",
        "cosched_only",
        "iorchestra",
    ] {
        let set = PolicySet::named(name, 42).expect("known policy set");
        let mode = match name {
            "sdc" => iorch_hypervisor::IoPathMode::DedicatedCores { per_socket: false },
            "cosched_only" | "iorchestra" => {
                iorch_hypervisor::IoPathMode::DedicatedCores { per_socket: true }
            }
            _ => iorch_hypervisor::IoPathMode::Paravirt,
        };
        let v = bursty_with_set(set, mode, rate);
        t0.row(vec![name.into(), format!("{v:.1}")]);
    }
    print!("{}", t0.render());
    if std::env::var("IORCH_ABLATION").as_deref() == Ok("named") {
        return;
    }

    // --- Ablation 1: congestion wake interleave ---
    let mut t1 = Table::new(
        "Ablation — congestion wake interleave (YCSB1 bursty p99.9, us)",
        &["interleave", "p99.9 (us)"],
    );
    for (label, max_ms) in [
        // 0 = no interleave at all: every sleeper wakes at the same
        // instant (the true thundering herd; no RNG draw either).
        ("none (thundering herd)", 0u64),
        ("0-25 ms", 25),
        ("0-99 ms (paper)", 99),
        ("0-400 ms", 400),
    ] {
        let v = bursty_with_cfg(
            |mut c| {
                c.wake_interleave_max_ms = max_ms;
                c
            },
            rate,
        );
        t1.row(vec![label.into(), format!("{v:.1}")]);
    }
    print!("{}", t1.render());

    // --- Ablation 2: co-scheduler update policy ---
    let mut t2 = Table::new(
        "Ablation — weight update policy (Fig. 10a setting, 60% io threads)",
        &["policy", "IOrchestra MB/s"],
    );
    for (label, interval_ms, threshold) in [
        ("always (every tick)", 0u64, 0.0f64),
        ("1 s or >50% change (paper)", 1000, 0.5),
        ("never update", u64::MAX / 2_000_000, 1e18),
    ] {
        // Reuse cosched_run but with a tweaked plane via SystemKind is not
        // parameterizable; build directly.
        let mut sim = Simulation::new(Cluster::new());
        let (cl, s) = sim.parts_mut();
        let idx = cl.add_machine(iorch_hypervisor::MachineConfig::paper_testbed(
            42,
            iorch_hypervisor::IoPathMode::DedicatedCores { per_socket: true },
        ));
        let mut pcfg = IOrchestraConfig::new(42).with_functions(FunctionSet::cosched_only());
        pcfg.weight_update_interval = SimDuration::from_millis(interval_ms.min(1 << 40));
        pcfg.weight_change_threshold = threshold;
        cl.install_control(s, idx, Box::new(IOrchestraPlane::new(pcfg)));
        let dom = cl.create_domain(s, idx, VmSpec::new(10, 10).with_disk_gb(60), |_| {});
        let vm = VmRef { machine: idx, dom };
        let rec = recorder(SimTime::from_secs(1));
        iorch_workloads::spawn_multistream(
            cl,
            s,
            vm,
            iorch_workloads::MultiStreamParams {
                streams: 6,
                file_size: 2 << 30,
                read_size: 1 << 20,
                first_vcpu: 0,
                seed: 42,
            },
            Rc::clone(&rec),
        );
        sim.run_until(SimTime::from_secs(6));
        let now = sim.now();
        let bps = rec.borrow().throughput_bps(now);
        t2.row(vec![label.into(), format!("{:.1}", bps / 1e6)]);
    }
    print!("{}", t2.render());

    // --- Ablation 3: DRR round length (quantum scale) ---
    let mut t3 = Table::new(
        "Ablation — DRR round length (quantum = BW_max * share * round)",
        &["round", "IOrchestra MB/s"],
    );
    for (label, us) in [
        ("100 us", 100u64),
        ("1 ms (default)", 1000),
        ("10 ms", 10_000),
        ("100 ms", 100_000),
    ] {
        let mut sim = Simulation::new(Cluster::new());
        let (cl, s) = sim.parts_mut();
        let idx = cl.add_machine(iorch_hypervisor::MachineConfig::paper_testbed(
            42,
            iorch_hypervisor::IoPathMode::DedicatedCores { per_socket: true },
        ));
        let mut pcfg = IOrchestraConfig::new(42).with_functions(FunctionSet::cosched_only());
        pcfg.drr_round = SimDuration::from_micros(us);
        cl.install_control(s, idx, Box::new(IOrchestraPlane::new(pcfg)));
        let dom = cl.create_domain(s, idx, VmSpec::new(10, 10).with_disk_gb(60), |_| {});
        let rec = recorder(SimTime::from_secs(1));
        iorch_workloads::spawn_multistream(
            cl,
            s,
            VmRef { machine: idx, dom },
            iorch_workloads::MultiStreamParams {
                streams: 6,
                file_size: 2 << 30,
                read_size: 1 << 20,
                first_vcpu: 0,
                seed: 42,
            },
            Rc::clone(&rec),
        );
        sim.run_until(SimTime::from_secs(6));
        let now = sim.now();
        let bps = rec.borrow().throughput_bps(now);
        t3.row(vec![label.into(), format!("{:.1}", bps / 1e6)]);
    }
    print!("{}", t3.render());

    // --- Reference point: headline systems on the same bursty load ---
    let mut t4 = Table::new(
        "Reference — headline systems on the same bursty load (p99.9, us)",
        &["system", "p99.9"],
    );
    for k in SystemKind::headline() {
        let h = bursty_run(
            k,
            rate,
            SimDuration::from_millis(50),
            RunCfg::new(42).with_measure(SimDuration::from_secs(8)),
        );
        t4.row(vec![k.label().into(), fmt_us(h.p999())]);
    }
    print!("{}", t4.render());
    let _ = fmt_pct(0.0);
}
