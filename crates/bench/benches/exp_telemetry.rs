//! Live-telemetry demo — thin shim over the declarative runner
//! (`telemetry`): streams one `[telemetry …]` p50/p99/SLO line per
//! cadence window while the bursty YCSB1 run executes.

fn main() {
    iorch_bench::exp::bench_main(&["telemetry"]);
}
