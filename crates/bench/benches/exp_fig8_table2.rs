//! Fig. 8 — FS write-throughput improvement from the flush function at
//! various VM counts and dirty-page ratios (flush-only IOrchestra vs
//! baseline). Table 2 — write-throughput improvement under dynamic VM
//! arrivals at rates λ = 4..20 VMs/minute.

use iorch_bench::{arrivals_run, flush_run, RunCfg};
use iorch_metrics::{fmt_pct, throughput_improvement_pct, Table};
use iorch_simcore::SimDuration;
use iorchestra::{FunctionSet, SystemKind};

fn main() {
    // --- Fig. 8: VM count x dirty ratio grid ---
    let vm_counts = [2usize, 6, 10, 14, 20];
    let ratios = [0.10f64, 0.20, 0.30, 0.40];
    let flush_only = SystemKind::IOrchestraWith(FunctionSet::flush_only());
    let mut t = Table::new(
        "Fig. 8 — FS write-throughput improvement (IOrchestra flush vs baseline)",
        &["VMs", "10%", "20%", "30%", "40%"],
    );
    let cfg = RunCfg::new(42)
        .with_warmup(SimDuration::from_secs(2))
        .with_measure(SimDuration::from_secs(5));
    for &n in &vm_counts {
        let mut row = vec![n.to_string()];
        for &r in &ratios {
            let base = flush_run(SystemKind::Baseline, n, r, cfg);
            let io = flush_run(flush_only, n, r, cfg);
            row.push(fmt_pct(throughput_improvement_pct(base, io)));
        }
        t.row(row);
    }
    print!("{}", t.render());
    println!(
        "paper shape: improvement grows with VM count and dirty ratio, \
         peaking ~21% at 20 VMs / 40%; ~12.7% average across ratios at 20 VMs.\n"
    );

    // --- Table 2: arrival-rate sweep ---
    let lambdas = [4.0f64, 8.0, 12.0, 16.0, 20.0];
    // Metric note: the paper reports aggregate (application-level) write
    // throughput of the dynamic mix; we report completed-VM payload
    // throughput — at compressed time scales the raw device-write number
    // degenerates (baseline guests often depart with their dirt never
    // flushed, which is itself a durability observation).
    let mut t2 = Table::new(
        "Table 2 — app-throughput improvement vs arrival rate λ (VMs/min)",
        &["λ", "baseline MB/s", "IOrchestra MB/s", "improvement"],
    );
    let acfg = RunCfg::new(42)
        .with_warmup(SimDuration::from_secs(2))
        .with_measure(SimDuration::from_secs(58));
    for &l in &lambdas {
        let base = arrivals_run(SystemKind::Baseline, l, acfg);
        let io = arrivals_run(SystemKind::IOrchestra, l, acfg);
        t2.row(vec![
            format!("{l:.0}"),
            format!("{:.1}", base.app_bps / 1e6),
            format!("{:.1}", io.app_bps / 1e6),
            fmt_pct(throughput_improvement_pct(base.app_bps, io.app_bps)),
        ]);
    }
    print!("{}", t2.render());
    println!(
        "paper: 6.6 / 19.1 / 24.5 / 29.8 / 30.6 % — improvement grows with λ as the \
         dynamic mix leaves more idle bandwidth for proactive flushing."
    );
}
