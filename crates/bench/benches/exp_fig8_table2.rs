//! Fig. 8 + Table 2 flushing — thin shim over the declarative runner
//! (`fig8` and `table2`).

fn main() {
    iorch_bench::exp::bench_main(&["fig8", "table2"]);
}
