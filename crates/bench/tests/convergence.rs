//! The convergence oracle — the headline robustness contract.
//!
//! For each named fault scenario, crash/restart the control plane at every
//! tick boundary of the scenario's active phase and assert that the
//! post-recovery steady state (quarantine set, control-channel idleness,
//! drained page caches) converges to the no-crash run's. The store is the
//! plane's state of record, so losing process memory at *any* tick must
//! not change where the system ends up.
//!
//! Also here: the epoch-protocol proof that a duplicated (or stale)
//! command is discarded by the guest's epoch cursor rather than executed
//! or acked twice.

use iorch_bench::tracereplay::run_scenario_sim;
use iorch_hypervisor::{Cluster, DOM0};
use iorch_simcore::{
    gen, trace, FaultKind, FaultPlan, FaultWindow, SimDuration, SimTime, Simulation,
};
use iorchestra::{keys, SystemKind};

/// One domain's converged facts. Control-channel values are normalized to
/// idleness booleans (the epoch stamps themselves legitimately differ
/// between a crash run and the no-crash run), and a quarantined domain is
/// reduced to its quarantine flag — it is outside collaboration, so its
/// channel values are unspecified.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DomFacts {
    dom: u32,
    quarantined: bool,
    flush_idle: bool,
    release_idle: bool,
    congestion_idle: bool,
    dirty_drained: bool,
}

fn steady_state(sim: &mut Simulation<Cluster>, idx: usize) -> Vec<DomFacts> {
    let (cl, _s) = sim.parts_mut();
    let m = cl.machine_mut(idx);
    let mut out = Vec::new();
    let doms: Vec<_> = m.domains().collect();
    for dom in doms {
        let flag = |m: &iorch_hypervisor::Machine, path: String| {
            m.store
                .read_ref(DOM0, path.as_str())
                .map(|v| v == "1")
                .unwrap_or(false)
        };
        let idle = |m: &iorch_hypervisor::Machine, path: String| {
            m.store
                .read_ref(DOM0, path.as_str())
                .map(|v| v == "0")
                .unwrap_or(true)
        };
        let quarantined = flag(m, keys::state_quarantined(dom));
        if quarantined {
            out.push(DomFacts {
                dom: dom.0,
                quarantined: true,
                flush_idle: true,
                release_idle: true,
                congestion_idle: true,
                dirty_drained: true,
            });
            continue;
        }
        let facts = DomFacts {
            dom: dom.0,
            quarantined: false,
            flush_idle: idle(m, keys::flush_now(dom)),
            release_idle: idle(m, keys::release_request(dom)),
            congestion_idle: idle(m, keys::congested(dom)),
            dirty_drained: m
                .kernel_mut(dom)
                .map(|k| k.dirty_pages() == 0)
                .unwrap_or(true),
        };
        out.push(facts);
    }
    out
}

/// Crash the plane at every tick boundary in `ticks` (100 ms tick, 250 ms
/// outage) and require the steady state to match the no-crash run's.
fn assert_converges(
    scenario: &str,
    seed_base: u64,
    seeds: usize,
    ticks: std::ops::RangeInclusive<u64>,
) {
    gen::for_each_seed(seed_base, seeds, |seed, _rng| {
        let (mut base, idx) =
            run_scenario_sim(SystemKind::IOrchestra, seed, scenario, FaultPlan::new())
                .expect("known scenario");
        let want = steady_state(&mut base, idx);
        assert!(!want.is_empty(), "{scenario}: no domains to converge on");
        for tick in ticks.clone() {
            let at = SimTime::from_millis(tick * 100);
            let recover_after = SimDuration::from_millis(250);
            let plan = FaultPlan::new().with(
                FaultWindow::new(at, at + recover_after),
                FaultKind::PlaneCrash { at, recover_after },
            );
            let (mut sim, idx2) = run_scenario_sim(SystemKind::IOrchestra, seed, scenario, plan)
                .expect("known scenario");
            let got = steady_state(&mut sim, idx2);
            assert_eq!(
                got, want,
                "{scenario} seed {seed}: crash at tick {tick} did not converge"
            );
        }
    });
}

// The five sweeps below are heavy (dozens of full scenario runs each), so
// the default debug `cargo test` skips them; `scripts/tier1.sh` runs them
// in release with `--include-ignored`.

#[test]
#[ignore = "heavy sweep; run in release by scripts/tier1.sh"]
fn mixed8_converges_from_a_crash_at_every_tick() {
    assert_converges("mixed8", 0xC0_0001, 2, 1..=20);
}

#[test]
#[ignore = "heavy sweep; run in release by scripts/tier1.sh"]
fn unresponsive_flush_converges_from_a_crash_at_every_tick() {
    assert_converges("unresponsive_flush", 0xC0_0002, 2, 1..=45);
}

#[test]
#[ignore = "heavy sweep; run in release by scripts/tier1.sh"]
fn store_hammer_converges_from_a_crash_at_every_tick() {
    assert_converges("store_hammer", 0xC0_0003, 2, 1..=18);
}

#[test]
#[ignore = "heavy sweep; run in release by scripts/tier1.sh"]
fn plane_crash_scenario_converges_with_a_second_crash_at_every_tick() {
    assert_converges("plane_crash", 0xC0_0004, 2, 1..=20);
}

#[test]
#[ignore = "heavy sweep; run in release by scripts/tier1.sh"]
fn lossy_bus_converges_from_a_crash_at_every_tick() {
    assert_converges("lossy_bus", 0xC0_0005, 2, 1..=20);
}

/// The epoch protocol's idempotence proof: with every XenBus delivery
/// duplicated, each command's second copy must be discarded by the guest's
/// epoch cursor (a `stale_command` decision), never executed or acked a
/// second time — and the collaborative flush still drains every domain.
#[test]
fn duplicated_commands_are_discarded_by_epoch() {
    if !trace::COMPILED {
        return;
    }
    let session = trace::TraceSession::new();
    let (mut sim, idx) = {
        let mut sim = Simulation::new(Cluster::new());
        let (cl, s) = sim.parts_mut();
        let idx = SystemKind::IOrchestra.provision(cl, s, 11);
        let plan = FaultPlan::new().with(
            FaultWindow::always(),
            FaultKind::BusUnreliable {
                drop_1_in: 0,
                dup_1_in: 1, // duplicate *every* delivery
                reorder: false,
            },
        );
        cl.install_faults(s, idx, plan);
        (sim, idx)
    };
    {
        let (cl, s) = sim.parts_mut();
        use iorch_guestos::FileOp;
        use iorch_hypervisor::VmSpec;
        for mb in [16u64, 8] {
            let dom = cl.create_domain(s, idx, VmSpec::new(1, 2).with_disk_gb(8), |g| {
                g.wb.periodic_interval = SimDuration::from_secs(30);
                g.wb.dirty_expire = SimDuration::from_secs(60);
            });
            let file = cl
                .machine_mut(idx)
                .kernel_mut(dom)
                .unwrap()
                .create_file((4 * mb) << 20)
                .unwrap();
            cl.submit_op(
                s,
                idx,
                dom,
                0,
                FileOp::Write {
                    file,
                    offset: 0,
                    len: mb << 20,
                },
                None,
            );
        }
    }
    sim.run_until(SimTime::from_secs(6));
    let events = session.finish().into_events();
    let decisions = trace::render_decision_log(&events);
    let timeline = trace::render_timeline(&events);
    assert!(
        timeline.contains("xenbus_dup"),
        "the bus fault must actually duplicate deliveries"
    );
    let flushes = decisions.matches("decision flush_now").count();
    let stale = decisions.matches("decision stale_command").count();
    let acks = decisions.matches("decision flush_ack").count();
    assert!(flushes >= 1, "no flush command was ever issued");
    assert!(
        stale >= flushes,
        "every duplicated command must be discarded as stale \
         (flushes={flushes}, stale={stale})"
    );
    assert!(
        acks <= flushes,
        "a duplicated command was acked twice (flushes={flushes}, acks={acks})"
    );
    // The protocol still works under 2x bus traffic: every domain drains.
    let (cl, _s) = sim.parts_mut();
    let m = cl.machine_mut(idx);
    let doms: Vec<_> = m.domains().collect();
    for dom in doms {
        assert_eq!(
            m.kernel_mut(dom).map(|k| k.dirty_pages()),
            Some(0),
            "dom {} failed to drain under a duplicating bus",
            dom.0
        );
    }
}
