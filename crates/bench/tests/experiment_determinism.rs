//! Golden-summary regression suite for the declarative experiment
//! runner (DESIGN.md §12).
//!
//! Every named experiment at its smoke profile must emit byte-identical
//! artifact JSON/CSV across two runs, seed-swept over {7, 42, 1337} —
//! the determinism contract every future scale/policy PR gates on. A
//! cheap subset runs in the debug suite; the exhaustive sweep is
//! `#[ignore]`d here and run in release by `tier1.sh`. The suite also
//! enforces the live-telemetry non-interference contract: installing a
//! trace tap must not change a single trace event.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::Path;
use std::rc::Rc;

use iorch_bench::exp::{self, Profile};
use iorch_bench::tracereplay::run_scenario;
use iorch_bench::RunCfg;
use iorch_simcore::trace::{self, TapSession};
use iorch_simcore::SimDuration;
use iorchestra::SystemKind;

/// Read every file under `dir` (recursively) as `relative path → bytes`.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path.strip_prefix(root).unwrap().display().to_string();
                out.insert(rel, std::fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

/// Run `name` twice at the smoke profile under `seed`; assert the
/// artifact trees are byte-identical, schema-valid, and non-trivial.
fn assert_golden(name: &str, seed: u64) {
    let spec = exp::find(name).unwrap_or_else(|| panic!("unknown experiment {name}"));
    let d1 = tmp(&format!("golden_{name}_{seed}_a"));
    let d2 = tmp(&format!("golden_{name}_{seed}_b"));
    exp::run_spec(spec, Profile::Smoke, seed, &d1, true).unwrap();
    exp::run_spec(spec, Profile::Smoke, seed, &d2, true).unwrap();
    let s1 = snapshot(&d1);
    let s2 = snapshot(&d2);
    assert!(
        s1.len() >= 3,
        "{name}@{seed}: expected json+csv+summary, got {} files",
        s1.len()
    );
    assert_eq!(
        s1.keys().collect::<Vec<_>>(),
        s2.keys().collect::<Vec<_>>(),
        "{name}@{seed}: file sets differ between runs"
    );
    for (rel, bytes) in &s1 {
        assert_eq!(
            bytes, &s2[rel],
            "{name}@{seed}: artifact {rel} differs between identical runs"
        );
        if rel.ends_with(".json") {
            let text = std::str::from_utf8(bytes).unwrap();
            exp::validate_artifact(text)
                .unwrap_or_else(|e| panic!("{name}@{seed}: {rel} fails schema: {e}"));
        }
    }
}

/// Debug-suite subset: the cheapest families, one seed. The exhaustive
/// seed-swept sweep below is release-gated via tier1.sh.
#[test]
fn smoke_goldens_subset() {
    for name in ["motivation", "fig9", "telemetry"] {
        assert_golden(name, 7);
    }
}

/// Every named experiment × seeds {7, 42, 1337} × two runs. Heavy:
/// release-only via `tier1.sh -- --include-ignored`.
#[test]
#[ignore = "exhaustive seed sweep; run in release via tier1.sh"]
fn smoke_goldens_all_experiments_seed_swept() {
    for spec in exp::registry() {
        if spec.timing {
            // Wall-clock specs (e.g. `scale`) are not byte-deterministic;
            // they gate on thresholds from tier1.sh instead.
            continue;
        }
        for seed in [7u64, 42, 1337] {
            assert_golden(spec.name, seed);
        }
    }
}

/// Installing a live-telemetry tap must not perturb the simulation: the
/// recorded trace of a faulted scenario is byte-identical with and
/// without a tap observing it, and the tap does observe real events.
#[test]
fn telemetry_tap_does_not_perturb_traces() {
    if !trace::COMPILED {
        return; // nothing to compare with tracing compiled out
    }
    for scenario in ["mixed8", "device_stall"] {
        let plain = run_scenario(SystemKind::IOrchestra, 7, scenario).unwrap();
        let seen = Rc::new(RefCell::new(0u64));
        let tapped = {
            let seen = Rc::clone(&seen);
            let _tap = TapSession::new(Box::new(move |_, _| *seen.borrow_mut() += 1));
            run_scenario(SystemKind::IOrchestra, 7, scenario).unwrap()
        };
        assert!(
            *seen.borrow() > 0,
            "{scenario}: tap saw no events despite tracing being compiled in"
        );
        assert_eq!(
            plain.len(),
            tapped.len(),
            "{scenario}: event count changed under the tap"
        );
        assert_eq!(
            plain, tapped,
            "{scenario}: trace events changed under the tap"
        );
    }
}

/// The telemetry report stream itself is deterministic: same seed, same
/// windows, byte-identical rendering.
#[test]
fn telemetry_report_stream_is_deterministic() {
    let cfg = RunCfg::new(7)
        .with_warmup(SimDuration::from_millis(300))
        .with_measure(SimDuration::from_millis(700));
    let run = || {
        let (reports, ops) = exp::telemetry_run(
            SystemKind::IOrchestra,
            600.0,
            SimDuration::from_millis(100),
            SimDuration::from_millis(1),
            cfg,
        );
        let lines: Vec<String> = reports.iter().map(|r| r.render()).collect();
        (lines, ops)
    };
    let (l1, ops1) = run();
    let (l2, ops2) = run();
    assert!(ops1 > 0, "telemetry run recorded no ops");
    assert!(!l1.is_empty(), "telemetry run cut no windows");
    assert_eq!(ops1, ops2);
    assert_eq!(l1, l2);
}
