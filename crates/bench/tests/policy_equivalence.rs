//! Policy-redesign byte-identity oracle: every control plane the paper
//! compares, re-expressed as a [`PolicySet`] on the [`PolicyEngine`],
//! must reproduce the pre-redesign hand-fused plane's trace **byte for
//! byte** — same timeline, same decision log — across all tracedump
//! scenarios. The frozen pre-redesign planes live in `iorchestra::legacy`
//! and exist only so this file can diff against them.

use iorch_bench::tracereplay::{run_scenario_with, SCENARIOS};
use iorch_hypervisor::{Cluster, ControlPlane, IoPathMode, MachineConfig, Sched};
use iorch_simcore::trace;
use iorchestra::legacy::{LegacyBaselinePlane, LegacyDifPlane, LegacyIOrchestraPlane};
use iorchestra::{FunctionSet, IOrchestraConfig, PolicyEngine, PolicySet};

/// Every plane variant under test: the paper's full system, its three
/// single-function ablations, and the comparison systems.
const VARIANTS: &[&str] = &[
    "full",
    "flush_only",
    "congestion_only",
    "cosched_only",
    "baseline",
    "sdc",
    "dif",
];

/// I/O path a variant pairs with (mirrors `SystemKind::io_mode`).
fn io_mode(variant: &str) -> IoPathMode {
    match variant {
        "baseline" | "dif" | "flush_only" | "congestion_only" => IoPathMode::Paravirt,
        "sdc" => IoPathMode::DedicatedCores { per_socket: false },
        "full" | "cosched_only" => IoPathMode::DedicatedCores { per_socket: true },
        _ => unreachable!("unknown variant {variant}"),
    }
}

fn functions(variant: &str) -> FunctionSet {
    match variant {
        "full" => FunctionSet::all(),
        "flush_only" => FunctionSet::flush_only(),
        "congestion_only" => FunctionSet::congestion_only(),
        "cosched_only" => FunctionSet::cosched_only(),
        _ => unreachable!("{variant} is not an iorchestra variant"),
    }
}

/// The frozen pre-redesign plane for a variant.
fn legacy_plane(variant: &str, seed: u64) -> Box<dyn ControlPlane> {
    match variant {
        "baseline" => Box::new(LegacyBaselinePlane::baseline()),
        "sdc" => Box::new(LegacyBaselinePlane::sdc()),
        "dif" => Box::new(LegacyDifPlane::new()),
        v => Box::new(LegacyIOrchestraPlane::new(
            IOrchestraConfig::new(seed).with_functions(functions(v)),
        )),
    }
}

/// The same plane expressed as a policy set on the engine.
fn engine_plane(variant: &str, seed: u64) -> Box<dyn ControlPlane> {
    let set = match variant {
        "baseline" => PolicySet::baseline(),
        "sdc" => PolicySet::sdc(),
        "dif" => PolicySet::dif(),
        v => PolicySet::iorchestra(IOrchestraConfig::new(seed).with_functions(functions(v))),
    };
    Box::new(PolicyEngine::new(set))
}

/// Run `scenario` under `plane` and return `(timeline, decision log)`.
fn replay(
    plane: Box<dyn ControlPlane>,
    mode: IoPathMode,
    seed: u64,
    scenario: &str,
) -> (String, String) {
    let mut plane = Some(plane);
    let events = run_scenario_with(
        &mut |cl: &mut Cluster, s: &mut Sched| {
            let idx = cl.add_machine(MachineConfig::paper_testbed(seed, mode));
            cl.install_control(s, idx, plane.take().expect("provisioner runs once"));
            idx
        },
        seed,
        scenario,
    )
    .expect("known scenario");
    (
        trace::render_timeline(&events),
        trace::render_decision_log(&events),
    )
}

/// Assert byte identity for one `(variant, seed, scenario)` cell.
fn assert_equivalent(variant: &str, seed: u64, scenario: &str) {
    let mode = io_mode(variant);
    let (legacy_tl, legacy_dl) = replay(legacy_plane(variant, seed), mode, seed, scenario);
    let (engine_tl, engine_dl) = replay(engine_plane(variant, seed), mode, seed, scenario);
    assert!(
        engine_tl == legacy_tl,
        "{variant}/{scenario}/seed {seed}: engine timeline diverged from the legacy plane\n\
         --- first difference ---\n{}",
        first_diff(&legacy_tl, &engine_tl),
    );
    assert_eq!(
        engine_dl, legacy_dl,
        "{variant}/{scenario}/seed {seed}: decision logs diverged"
    );
}

/// The first differing line pair, for a readable failure message.
fn first_diff(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("line {}:\n  legacy: {la}\n  engine: {lb}", i + 1);
        }
    }
    format!(
        "line counts differ: legacy {} vs engine {}",
        a.lines().count(),
        b.lines().count()
    )
}

/// Debug-suite slice: the showcase scenario under every variant, and the
/// full system under every scenario, one seed each.
#[test]
fn engine_matches_legacy_planes_on_the_showcase() {
    if !trace::COMPILED {
        return; // built with --cfg iorch_trace_off
    }
    for variant in VARIANTS {
        assert_equivalent(variant, 42, "mixed8");
    }
}

#[test]
fn engine_matches_legacy_full_system_on_every_scenario() {
    if !trace::COMPILED {
        return;
    }
    for (scenario, _) in SCENARIOS {
        if *scenario == "mixed8" {
            continue; // covered above
        }
        assert_equivalent("full", 42, scenario);
    }
}

/// Exhaustive seed-swept sweep: every variant × every scenario × several
/// seeds. Too heavy for the debug suite; tier1.sh runs it in release with
/// `--include-ignored`.
#[test]
#[ignore = "exhaustive sweep; run in release via tier1.sh"]
fn engine_matches_legacy_planes_everywhere() {
    if !trace::COMPILED {
        return;
    }
    for seed in [7u64, 42, 1337] {
        for variant in VARIANTS {
            for (scenario, _) in SCENARIOS {
                assert_equivalent(variant, seed, scenario);
            }
        }
    }
}
