//! The trace layer's core contract: a replay is a pure function of
//! `(system, seed, scenario)` — two runs produce byte-identical dumps —
//! and the showcase scenario actually exercises every decision family
//! the paper's algorithms emit.

use iorch_bench::tracereplay::{parse_system, run_scenario};
use iorch_simcore::trace;
use iorchestra::SystemKind;

#[test]
fn mixed8_replay_is_byte_identical_and_shows_the_decisions() {
    if !trace::COMPILED {
        return; // built with --cfg iorch_trace_off
    }
    let seed = 42;
    let a = run_scenario(SystemKind::IOrchestra, seed, "mixed8").unwrap();
    let b = run_scenario(SystemKind::IOrchestra, seed, "mixed8").unwrap();
    assert!(!a.is_empty());
    assert_eq!(
        trace::render_timeline(&a),
        trace::render_timeline(&b),
        "same (system, seed, scenario) must give a byte-identical timeline"
    );
    assert_eq!(trace::chrome_json(&a), trace::chrome_json(&b));

    // The full request lifecycle is visible in one dump...
    let timeline = trace::render_timeline(&a);
    for needle in [
        "ring_push",
        "drr_visit",
        "device dispatch",
        "device complete",
        "block_complete",
        "store_write",
        "xenbus_deliver",
    ] {
        assert!(timeline.contains(needle), "{needle} missing from timeline");
    }
    // ...and so is every decision family Algorithms 1–3 emit.
    let decisions = trace::render_decision_log(&a);
    for needle in [
        "flush_now",
        "flush_ack",
        "release_granted",
        "congestion_confirmed",
        "quarantine",
        "weight_push",
    ] {
        assert!(
            decisions.contains(needle),
            "{needle} missing from decision log"
        );
    }
}

#[test]
fn every_scenario_replays_identically_under_every_system() {
    if !trace::COMPILED {
        return;
    }
    for (scenario, _) in iorch_bench::tracereplay::SCENARIOS {
        if *scenario == "mixed8" {
            continue; // covered (more deeply) above; keep runtime down
        }
        for name in ["baseline", "iorchestra"] {
            let kind = parse_system(name).unwrap();
            let a = run_scenario(kind, 7, scenario).unwrap();
            let b = run_scenario(kind, 7, scenario).unwrap();
            assert_eq!(
                trace::render_timeline(&a),
                trace::render_timeline(&b),
                "{name}/{scenario} diverged between two replays"
            );
        }
    }
}

#[test]
fn unknown_scenarios_and_systems_are_rejected() {
    assert!(run_scenario(SystemKind::IOrchestra, 1, "nope").is_none());
    assert!(parse_system("xen").is_none());
}
