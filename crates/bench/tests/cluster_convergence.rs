//! The cluster-wide convergence oracle — ISSUE 10's headline contract.
//!
//! For each cluster-tier fault scenario (`node_crash`, `net_partition`),
//! additionally crash the controller — and then each node in turn — at
//! every tick boundary of the scenario's active phase, and require the
//! recovered steady state ([`ClusterTier::steady_digest`]) to be
//! byte-identical to the no-extra-fault run's. The durable catalog plus
//! heartbeat-carried ground truth are the cluster's state of record, so
//! losing any single participant's volatile state at *any* instant must
//! not change where the cluster ends up.
//!
//! [`ClusterTier::steady_digest`]: iorchestra::ClusterTier::steady_digest

use iorch_bench::tracereplay::run_cluster_scenario;
use iorch_hypervisor::{Cluster, Sched};
use iorch_simcore::{FaultKind, FaultPlan, FaultWindow, SimDuration, SimTime};
use iorchestra::SystemKind;

/// Run `scenario` with `extra` layered on the tier and return the
/// steady-state digest plus any ownership violations.
fn digest_of(seed: u64, scenario: &str, extra: FaultPlan) -> (String, Vec<String>) {
    let (mut sim, tier, _idx) = run_cluster_scenario(
        &mut |cl: &mut Cluster, s: &mut Sched| SystemKind::IOrchestra.provision(cl, s, seed),
        seed,
        scenario,
        extra,
    )
    .expect("known cluster scenario");
    let (cl, _s) = sim.parts_mut();
    let t = tier.borrow();
    (t.steady_digest(cl), t.ownership_violations(cl))
}

/// Crash the controller, then each of the three nodes, at every tick in
/// `ticks` (100 ms grid, 400 ms outage) and require byte-identity with
/// the no-extra-fault digest.
fn assert_cluster_converges(scenario: &str, seed: u64, ticks: std::ops::RangeInclusive<u64>) {
    let (want, violations) = digest_of(seed, scenario, FaultPlan::new());
    assert!(
        violations.is_empty(),
        "{scenario} seed {seed}: base run has ownership violations: {violations:?}"
    );
    assert!(
        want.contains("up=true"),
        "{scenario} seed {seed}: no live node in the base steady state"
    );
    for tick in ticks {
        let at = SimTime::from_millis(tick * 100);
        let recover_after = SimDuration::from_millis(400);
        let mut crashes = vec![FaultKind::ControllerCrash { at, recover_after }];
        for node in 0..3u32 {
            crashes.push(FaultKind::NodeCrash {
                node,
                at,
                recover_after,
            });
        }
        for kind in crashes {
            let extra = FaultPlan::new().with(FaultWindow::always(), kind);
            let (got, violations) = digest_of(seed, scenario, extra.clone());
            assert!(
                violations.is_empty(),
                "{scenario} seed {seed}: {kind:?} at tick {tick} left violations: {violations:?}"
            );
            assert_eq!(
                got, want,
                "{scenario} seed {seed}: {kind:?} at tick {tick} did not converge"
            );
        }
    }
}

// Heavy sweeps (hundreds of full scenario replays): the default debug
// `cargo test` skips them; `scripts/tier1.sh` runs them in release with
// `--include-ignored`. The tick ranges cover each scenario's fault-active
// phase plus the reconciliation tail after heal.

#[test]
#[ignore = "heavy sweep; run in release by scripts/tier1.sh"]
fn node_crash_scenario_converges_from_any_crash_at_every_tick() {
    for seed in [7, 42, 1337] {
        assert_cluster_converges("node_crash", seed, 5..=45);
    }
}

#[test]
#[ignore = "heavy sweep; run in release by scripts/tier1.sh"]
fn net_partition_scenario_converges_from_any_crash_at_every_tick() {
    for seed in [7, 42, 1337] {
        assert_cluster_converges("net_partition", seed, 5..=45);
    }
}

/// Debug-suite slice of the sweep: a handful of crash instants per
/// scenario at one seed, so plain `cargo test` still exercises the oracle
/// end to end.
#[test]
fn cluster_convergence_smoke() {
    for scenario in ["node_crash", "net_partition"] {
        let (want, violations) = digest_of(7, scenario, FaultPlan::new());
        assert!(violations.is_empty(), "{scenario}: {violations:?}");
        for tick in [12u64, 19, 31] {
            let at = SimTime::from_millis(tick * 100);
            let recover_after = SimDuration::from_millis(400);
            for kind in [
                FaultKind::ControllerCrash { at, recover_after },
                FaultKind::NodeCrash {
                    node: 1,
                    at,
                    recover_after,
                },
            ] {
                let extra = FaultPlan::new().with(FaultWindow::always(), kind);
                let (got, violations) = digest_of(7, scenario, extra);
                assert!(
                    violations.is_empty(),
                    "{scenario} tick {tick}: {violations:?}"
                );
                assert_eq!(got, want, "{scenario}: {kind:?} at tick {tick} diverged");
            }
        }
    }
}
