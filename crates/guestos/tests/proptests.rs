//! Randomized tests for guest-kernel invariants: page-cache dirty
//! accounting, congestion hysteresis, VFS allocation, chunk coalescing.
//! Driven by the in-tree generators (`iorch_simcore::gen`) with a fixed
//! seed sweep — no external property-test crate.

use iorch_guestos::{
    coalesce_chunks, congestion_off_threshold, congestion_on_threshold, GuestQueue,
    GuestQueueParams, PageCache, Submit, Vfs, CHUNK_PAGES,
};
use iorch_simcore::{gen, SimTime};
use iorch_storage::{IoKind, IoRequest, RequestId, StreamId};

const CASES: usize = 64;

/// Dirty accounting is conserved: after flushing everything and completing
/// all writebacks, dirty and writeback counts are zero and every touched
/// chunk is still resident (nothing lost).
#[test]
fn dirty_accounting_conservation() {
    gen::for_each_seed(0x60_0001, CASES, |seed, rng| {
        let ops = gen::vec_between(rng, 1, 300, |r| (r.below(200), r.chance(0.5)));
        let mut pc = PageCache::new(100_000 * CHUNK_PAGES);
        for (i, &(chunk, write)) in ops.iter().enumerate() {
            if write {
                pc.mark_dirty(chunk, SimTime::from_millis(i as u64));
            } else {
                pc.insert_clean(chunk);
            }
            // Invariant: dirty + writeback never exceeds resident.
            assert!(
                pc.dirty_pages() + pc.writeback_pages() <= pc.resident_pages(),
                "seed {seed}"
            );
        }
        let batch = pc.take_dirty_batch(usize::MAX, None);
        assert_eq!(pc.dirty_pages(), 0, "seed {seed}");
        for c in &batch {
            pc.writeback_done(*c);
        }
        assert_eq!(pc.writeback_pages(), 0, "seed {seed}");
        for &(chunk, _) in &ops {
            assert!(pc.contains(chunk), "seed {seed}");
        }
    });
}

/// take_dirty_batch returns oldest-first without duplicates.
#[test]
fn dirty_batch_oldest_first() {
    gen::for_each_seed(0x60_0002, CASES, |seed, rng| {
        let chunks = gen::vec_between(rng, 1, 200, |r| r.below(1000));
        let mut pc = PageCache::new(1_000_000 * CHUNK_PAGES);
        let mut first_seen = std::collections::HashMap::new();
        for (i, &c) in chunks.iter().enumerate() {
            pc.mark_dirty(c, SimTime::from_millis(i as u64));
            first_seen.entry(c).or_insert(i);
        }
        let batch = pc.take_dirty_batch(usize::MAX, None);
        let mut uniq = std::collections::HashSet::new();
        for c in &batch {
            assert!(uniq.insert(*c), "duplicate in batch (seed {seed})");
        }
        // Oldest-first by first dirty time.
        for w in batch.windows(2) {
            assert!(first_seen[&w[0]] <= first_seen[&w[1]], "seed {seed}");
        }
    });
}

/// Congestion hysteresis: the flag can only be on when allocation ever
/// crossed 7/8, and it always clears below 13/16.
#[test]
fn congestion_hysteresis() {
    gen::for_each_seed(0x60_0003, CASES, |seed, rng| {
        let nr = 16 + rng.below(512 - 16) as usize;
        let submit_batches = gen::vec_between(rng, 1, 40, |r| 1 + r.below(39) as usize);
        let params = GuestQueueParams {
            nr_requests: nr,
            max_merged_len: 0,
            ..GuestQueueParams::default()
        };
        let mut q = GuestQueue::new(params);
        let on = congestion_on_threshold(nr);
        let off = congestion_off_threshold(nr);
        assert!(off <= on, "seed {seed}");
        let mut id = 0u64;
        for (round, batch) in submit_batches.iter().enumerate() {
            for _ in 0..*batch {
                let req = IoRequest {
                    id: RequestId(id),
                    kind: IoKind::Read,
                    stream: StreamId(0),
                    offset: id * (1 << 22),
                    len: 4096,
                    submitted: SimTime::ZERO,
                };
                id += 1;
                if q.submit(req, SimTime::ZERO) == Submit::Accepted {
                    q.take_dispatchable(SimTime::ZERO, true);
                }
            }
            for ev in q.poll_events() {
                if ev == iorch_guestos::QueueEvent::CongestionWouldEnter {
                    q.enter_congestion(SimTime::ZERO);
                }
            }
            if q.is_congested() {
                assert!(
                    q.allocated() >= off,
                    "congested below off threshold (seed {seed})"
                );
            }
            // Drain a few and verify clearing.
            if round % 2 == 1 {
                let n = q.allocated();
                q.on_complete(n, SimTime::ZERO);
                assert!(!q.is_congested(), "seed {seed}");
                assert_eq!(q.allocated(), 0, "seed {seed}");
            }
        }
    });
}

/// Event-dedup invariant: across arbitrary interleavings of submissions,
/// completions, answers (enter/grant) and revokes, at most one
/// `CongestionWouldEnter` is ever outstanding (unanswered), and a new one
/// is only raised after the previous was answered or voided by falling
/// below the off threshold.
#[test]
fn at_most_one_unanswered_congestion_query() {
    gen::for_each_seed(0x60_0006, CASES, |seed, rng| {
        let nr = 16 + rng.below(256 - 16) as usize;
        let params = GuestQueueParams {
            nr_requests: nr,
            max_merged_len: 0,
            ..GuestQueueParams::default()
        };
        let mut q = GuestQueue::new(params);
        let off = congestion_off_threshold(nr);
        let mut id = 0u64;
        let mut unanswered = 0u32;
        for _ in 0..400 {
            match rng.below(10) {
                // Submit a burst (the common case — drives threshold
                // crossings).
                0..=5 => {
                    for _ in 0..=rng.below(16) {
                        let req = IoRequest {
                            id: RequestId(id),
                            kind: IoKind::Read,
                            stream: StreamId(0),
                            offset: id * (1 << 22),
                            len: 4096,
                            submitted: SimTime::ZERO,
                        };
                        id += 1;
                        if q.submit(req, SimTime::ZERO) == Submit::Accepted {
                            q.take_dispatchable(SimTime::ZERO, true);
                        }
                    }
                }
                // Complete a few.
                6 | 7 => {
                    let n = (rng.below(32) as usize).min(q.allocated());
                    q.take_dispatchable(SimTime::ZERO, true);
                    let n = n.min(q.allocated());
                    q.on_complete(n, SimTime::ZERO);
                    if q.allocated() < off {
                        unanswered = 0;
                    }
                }
                // Answer with baseline sleep.
                8 => {
                    q.enter_congestion(SimTime::ZERO);
                    unanswered = 0;
                }
                // Answer with a release, then sometimes revoke it.
                _ => {
                    q.grant_bypass(SimTime::ZERO);
                    unanswered = 0;
                    if rng.chance(0.5) {
                        q.revoke_bypass(SimTime::ZERO);
                    }
                }
            }
            for ev in q.poll_events() {
                if ev == iorch_guestos::QueueEvent::CongestionWouldEnter {
                    unanswered += 1;
                }
            }
            assert!(
                unanswered <= 1,
                "{unanswered} unanswered congestion queries (seed {seed})"
            );
        }
    });
}

/// VFS: allocations never overlap and deletes make space reusable.
#[test]
fn vfs_no_overlap() {
    gen::for_each_seed(0x60_0004, CASES, |seed, rng| {
        let sizes = gen::vec_between(rng, 1, 50, |r| 1 + r.below(9_999));
        let total: u64 = sizes.iter().sum();
        let mut vfs = Vfs::new(total * 2);
        let mut files = Vec::new();
        for &sz in &sizes {
            files.push((vfs.create(sz).unwrap(), sz));
        }
        // Translate start and end of each file; ranges must not overlap.
        let mut ranges: Vec<(u64, u64)> = files
            .iter()
            .map(|&(f, sz)| {
                let start = vfs.translate(f, 0, 1).unwrap();
                (start, start + sz)
            })
            .collect();
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping extents (seed {seed})");
        }
        // Delete everything; a file of the total size then fits.
        for (f, _) in files {
            vfs.delete(f).unwrap();
        }
        assert!(vfs.create(total * 2).is_ok(), "seed {seed}");
    });
}

/// Coalescing covers exactly the input chunk set with run lengths within
/// the cap.
#[test]
fn coalesce_exact_cover() {
    gen::for_each_seed(0x60_0005, CASES, |seed, rng| {
        let chunks = gen::vec_between(rng, 0, 200, |r| r.below(500));
        let cap = 1 + rng.below(31) as usize;
        let runs = coalesce_chunks(chunks.clone(), cap);
        let mut covered = std::collections::BTreeSet::new();
        for (start, count) in &runs {
            assert!(*count as usize <= cap, "seed {seed}");
            for c in *start..start + count {
                assert!(covered.insert(c), "chunk covered twice (seed {seed})");
            }
        }
        let expect: std::collections::BTreeSet<u64> = chunks.into_iter().collect();
        assert_eq!(covered, expect, "seed {seed}");
    });
}
