//! Property-based tests for guest-kernel invariants: page-cache dirty
//! accounting, congestion hysteresis, VFS allocation, chunk coalescing.

use proptest::prelude::*;

use iorch_guestos::{
    coalesce_chunks, congestion_off_threshold, congestion_on_threshold, GuestQueue,
    GuestQueueParams, PageCache, Submit, Vfs, CHUNK_PAGES,
};
use iorch_simcore::SimTime;
use iorch_storage::{IoKind, IoRequest, RequestId, StreamId};

proptest! {
    /// Dirty accounting is conserved: after flushing everything and
    /// completing all writebacks, dirty and writeback counts are zero and
    /// every touched chunk is still resident (nothing lost).
    #[test]
    fn dirty_accounting_conservation(ops in proptest::collection::vec((0u64..200, any::<bool>()), 1..300)) {
        let mut pc = PageCache::new(100_000 * CHUNK_PAGES);
        for (i, &(chunk, write)) in ops.iter().enumerate() {
            if write {
                pc.mark_dirty(chunk, SimTime::from_millis(i as u64));
            } else {
                pc.insert_clean(chunk);
            }
            // Invariant: dirty + writeback never exceeds resident.
            prop_assert!(pc.dirty_pages() + pc.writeback_pages() <= pc.resident_pages());
        }
        let batch = pc.take_dirty_batch(usize::MAX, None);
        prop_assert_eq!(pc.dirty_pages(), 0);
        for c in &batch {
            pc.writeback_done(*c);
        }
        prop_assert_eq!(pc.writeback_pages(), 0);
        for &(chunk, _) in &ops {
            prop_assert!(pc.contains(chunk));
        }
    }

    /// take_dirty_batch returns oldest-first without duplicates.
    #[test]
    fn dirty_batch_oldest_first(chunks in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut pc = PageCache::new(1_000_000 * CHUNK_PAGES);
        let mut first_seen = std::collections::HashMap::new();
        for (i, &c) in chunks.iter().enumerate() {
            pc.mark_dirty(c, SimTime::from_millis(i as u64));
            first_seen.entry(c).or_insert(i);
        }
        let batch = pc.take_dirty_batch(usize::MAX, None);
        let mut uniq = std::collections::HashSet::new();
        for c in &batch {
            prop_assert!(uniq.insert(*c), "duplicate in batch");
        }
        // Oldest-first by first dirty time.
        for w in batch.windows(2) {
            prop_assert!(first_seen[&w[0]] <= first_seen[&w[1]]);
        }
    }

    /// Congestion hysteresis: the flag can only be on when allocation ever
    /// crossed 7/8, and it always clears below 13/16.
    #[test]
    fn congestion_hysteresis(nr in 16usize..512, submit_batches in proptest::collection::vec(1usize..40, 1..40)) {
        let params = GuestQueueParams {
            nr_requests: nr,
            max_merged_len: 0,
            ..GuestQueueParams::default()
        };
        let mut q = GuestQueue::new(params);
        let on = congestion_on_threshold(nr);
        let off = congestion_off_threshold(nr);
        prop_assert!(off <= on);
        let mut id = 0u64;
        for (round, batch) in submit_batches.iter().enumerate() {
            for _ in 0..*batch {
                let req = IoRequest {
                    id: RequestId(id),
                    kind: IoKind::Read,
                    stream: StreamId(0),
                    offset: id * (1 << 22),
                    len: 4096,
                    submitted: SimTime::ZERO,
                };
                id += 1;
                if q.submit(req, SimTime::ZERO) == Submit::Accepted {
                    q.take_dispatchable(SimTime::ZERO, true);
                }
            }
            for ev in q.poll_events() {
                if ev == iorch_guestos::QueueEvent::CongestionWouldEnter {
                    q.enter_congestion();
                }
            }
            if q.is_congested() {
                prop_assert!(q.allocated() >= off, "congested below off threshold");
            }
            // Drain a few and verify clearing.
            if round % 2 == 1 {
                let n = q.allocated();
                q.on_complete(n);
                prop_assert!(!q.is_congested());
                prop_assert_eq!(q.allocated(), 0);
            }
        }
    }

    /// VFS: allocations never overlap and deletes make space reusable.
    #[test]
    fn vfs_no_overlap(sizes in proptest::collection::vec(1u64..10_000, 1..50)) {
        let total: u64 = sizes.iter().sum();
        let mut vfs = Vfs::new(total * 2);
        let mut files = Vec::new();
        for &sz in &sizes {
            files.push((vfs.create(sz).unwrap(), sz));
        }
        // Translate start and end of each file; ranges must not overlap.
        let mut ranges: Vec<(u64, u64)> = files
            .iter()
            .map(|&(f, sz)| {
                let start = vfs.translate(f, 0, 1).unwrap();
                (start, start + sz)
            })
            .collect();
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlapping extents");
        }
        // Delete everything; a file of the total size then fits.
        for (f, _) in files {
            vfs.delete(f).unwrap();
        }
        prop_assert!(vfs.create(total * 2).is_ok());
    }

    /// Coalescing covers exactly the input chunk set with run lengths
    /// within the cap.
    #[test]
    fn coalesce_exact_cover(chunks in proptest::collection::vec(0u64..500, 0..200), cap in 1usize..32) {
        let runs = coalesce_chunks(chunks.clone(), cap);
        let mut covered = std::collections::BTreeSet::new();
        for (start, count) in &runs {
            prop_assert!(*count as usize <= cap);
            for c in *start..start + count {
                prop_assert!(covered.insert(c), "chunk covered twice");
            }
        }
        let expect: std::collections::BTreeSet<u64> = chunks.into_iter().collect();
        prop_assert_eq!(covered, expect);
    }
}
