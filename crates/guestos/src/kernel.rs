//! The guest kernel: VFS + page cache + writeback + request queue composed
//! into one passive state machine.
//!
//! The hypervisor's machine event loop drives it through four entry points
//! — [`GuestKernel::start_op`], [`GuestKernel::on_block_complete`],
//! [`GuestKernel::on_timer`] and the collaborative hooks
//! ([`enter_congestion`](GuestKernel::enter_congestion),
//! [`grant_bypass`](GuestKernel::grant_bypass),
//! [`remote_sync`](GuestKernel::remote_sync)) — and collects block requests
//! for the frontend ring, completed file operations, and edge-triggered
//! [`KernelSignal`]s from [`GuestKernel::take_outputs`].

use std::collections::{HashMap, VecDeque};

use iorch_simcore::trace::TraceEventKind;
use iorch_simcore::{trace_event, SimTime};
use iorch_storage::{IoKind, IoRequest, RequestId, RequestIdAlloc, StreamId};

use crate::pagecache::{chunks_of, ChunkIdx, PageCache, CHUNK_PAGES, CHUNK_SIZE, PAGE_SIZE};
use crate::queue::{GuestQueue, GuestQueueParams, QueueEvent, Submit};
use crate::vfs::{FileId, Vfs, VfsError};
use crate::writeback::{coalesce_chunks, run_to_bytes, Writeback, WritebackParams};

/// Identifies a file operation in flight inside one guest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct OpId(pub u64);

/// A file-level operation submitted by a workload.
#[derive(Clone, Copy, Debug)]
pub enum FileOp {
    /// Read `len` bytes at `offset`.
    Read {
        /// Target file.
        file: FileId,
        /// Byte offset within the file.
        offset: u64,
        /// Byte count.
        len: u64,
    },
    /// Write `len` bytes at `offset` (buffered; completes when the pages
    /// are dirtied unless the writer is throttled).
    Write {
        /// Target file.
        file: FileId,
        /// Byte offset within the file.
        offset: u64,
        /// Byte count.
        len: u64,
    },
    /// `sync()`: flush all dirty pages; completes when they hit the disk.
    Sync,
}

/// What kind of op completed (for per-class accounting).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpClass {
    /// A read.
    Read,
    /// A buffered write.
    Write,
    /// A sync barrier.
    Sync,
}

/// A finished file operation.
#[derive(Clone, Copy, Debug)]
pub struct CompletedOp {
    /// The operation.
    pub op: OpId,
    /// When it was submitted (latency = completion time − this).
    pub started: SimTime,
    /// Operation class.
    pub class: OpClass,
}

/// Edge-triggered notifications for the collaboration layer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelSignal {
    /// The request queue crossed 7/8 of its limit: Linux would enable
    /// congestion avoidance. The policy layer must answer with
    /// [`GuestKernel::enter_congestion`] (baseline) or
    /// [`GuestKernel::grant_bypass`] (collaborative release).
    CongestionQuery,
    /// The queue fell below 13/16 and the congestion flag cleared.
    CongestionCleared,
    /// `has_dirty_pages` transitioned (the store value in paper Alg. 1).
    DirtyStatusChanged(
        /// New value of `has_dirty_pages`.
        bool,
    ),
    /// A [`GuestKernel::remote_sync`] (IOrchestra `flush_now`) finished.
    RemoteSyncCompleted,
}

/// Static configuration of one guest.
#[derive(Clone, Copy, Debug)]
pub struct GuestConfig {
    /// Guest memory in bytes; the page cache gets `cache_fraction` of it.
    pub mem_bytes: u64,
    /// Fraction of memory usable as page cache.
    pub cache_fraction: f64,
    /// Virtual disk size in bytes.
    pub vdisk_size: u64,
    /// Storage-layer stream id for this guest's virtual disk.
    pub stream: StreamId,
    /// Request-queue tunables.
    pub queue: GuestQueueParams,
    /// Writeback tunables.
    pub wb: WritebackParams,
    /// Chunks to prefetch on sequential reads.
    pub readahead_chunks: u64,
}

impl GuestConfig {
    /// A guest with the given memory and disk, defaults elsewhere.
    pub fn new(mem_bytes: u64, vdisk_size: u64, stream: StreamId) -> Self {
        GuestConfig {
            mem_bytes,
            cache_fraction: 0.75,
            vdisk_size,
            stream,
            queue: GuestQueueParams {
                // The kernel coalesces before submission; queue-level
                // merging is disabled to keep request ownership exact.
                max_merged_len: 0,
                ..GuestQueueParams::default()
            },
            wb: WritebackParams::default(),
            readahead_chunks: 4,
        }
    }

    fn cache_pages(&self) -> u64 {
        (((self.mem_bytes as f64 * self.cache_fraction) / PAGE_SIZE as f64) as u64)
            .max(4 * CHUNK_PAGES)
    }
}

#[derive(Clone, Debug)]
enum ReqOwner {
    /// Read filling these missing chunks for an op.
    OpRead { op: OpId, chunks: Vec<ChunkIdx> },
    /// Prefetch filling these chunks; nobody waits.
    Readahead { chunks: Vec<ChunkIdx> },
    /// Writeback of these chunks; `sync_op` waits if it was a sync() op,
    /// `remote` marks IOrchestra `flush_now` work.
    Writeback {
        chunks: Vec<ChunkIdx>,
        sync_op: Option<OpId>,
        remote: bool,
    },
}

#[derive(Clone, Copy, Debug)]
struct OpState {
    started: SimTime,
    pending: usize,
    class: OpClass,
}

#[derive(Clone, Debug)]
struct PendingSubmit {
    req: IoRequest,
    owner: ReqOwner,
}

/// Everything the kernel produced since the last drain.
#[derive(Debug, Default)]
pub struct KernelOutputs {
    /// Block requests to push into the frontend ring.
    pub to_ring: Vec<IoRequest>,
    /// Completed file operations.
    pub completed: Vec<CompletedOp>,
    /// Edge-triggered signals.
    pub signals: Vec<KernelSignal>,
}

/// Cumulative kernel statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelStats {
    /// Read ops started.
    pub reads: u64,
    /// Write ops started.
    pub writes: u64,
    /// Sync ops started.
    pub syncs: u64,
    /// Chunk-granularity cache hits.
    pub cache_hit_chunks: u64,
    /// Chunk-granularity cache misses.
    pub cache_miss_chunks: u64,
    /// Ops that had to sleep on a congested queue.
    pub congestion_blocked_ops: u64,
    /// Write ops throttled on the dirty ratio.
    pub throttled_writes: u64,
}

/// Fault-injection misbehaviour modes for a guest driver (all off by
/// default). Set by the hypervisor's fault installer on a clock schedule;
/// the flags model a buggy or adversarial paravirtual driver rather than a
/// different kernel, so all other guest behaviour is unchanged.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct Misbehavior {
    /// Ignore `flush_now` commands: [`GuestKernel::remote_sync`] does
    /// nothing and never emits [`KernelSignal::RemoteSyncCompleted`].
    pub ignore_flush_now: bool,
    /// Ignore `release_request` grants: [`GuestKernel::grant_bypass`] does
    /// nothing, so the guest stays asleep until queue hysteresis clears.
    pub ignore_release_request: bool,
    /// The guest's store-facing driver is hammering the system store with
    /// junk writes (enacted by the hypervisor, which owns the store).
    pub hammer_store: bool,
}

/// The simulated guest kernel.
pub struct GuestKernel {
    cfg: GuestConfig,
    vfs: Vfs,
    cache: PageCache,
    queue: GuestQueue,
    wb: Writeback,
    ids: RequestIdAlloc,
    next_op: u64,
    ops: HashMap<OpId, OpState>,
    owners: HashMap<RequestId, ReqOwner>,
    blocked: VecDeque<PendingSubmit>,
    throttled: VecDeque<(OpId, SimTime)>,
    last_read_pos: HashMap<FileId, u64>,
    remote_sync_inflight: usize,
    /// Set when a synchronous submitter (read / sync) is about to block —
    /// Linux flushes the plug list on `io_schedule`, so these requests
    /// must not wait out the plug timer.
    unplug_now: bool,
    /// When blocked submitters may resume after an un-congestion (the
    /// wake-delay timer).
    blocked_wake_at: Option<SimTime>,
    /// Future instant at which the oldest throttled writer's pause ends
    /// (None when no timer is needed).
    throttle_timer_at: Option<SimTime>,
    had_dirty: bool,
    misbehavior: Misbehavior,
    /// Newest `flush_now` command epoch this driver has accepted. Epochs
    /// stamp control commands so a recovering (re-issuing) management
    /// plane and a duplicating XenBus are both safe: a command whose epoch
    /// is ≤ the last accepted one is discarded. Lives in the guest — it
    /// must survive a dom0 plane crash.
    flush_epoch_seen: u64,
    /// Newest `release_request` grant epoch accepted (same protocol).
    release_epoch_seen: u64,
    out: KernelOutputs,
    stats: KernelStats,
}

impl GuestKernel {
    /// Boot a guest kernel at time `now`.
    pub fn new(cfg: GuestConfig, now: SimTime) -> Self {
        let mut queue = GuestQueue::new(cfg.queue);
        queue.set_trace_tag(cfg.stream.0);
        GuestKernel {
            vfs: Vfs::new(cfg.vdisk_size),
            cache: PageCache::new(cfg.cache_pages()),
            queue,
            wb: Writeback::new(cfg.wb, now),
            ids: RequestIdAlloc::new(),
            next_op: 0,
            ops: HashMap::new(),
            owners: HashMap::new(),
            blocked: VecDeque::new(),
            throttled: VecDeque::new(),
            last_read_pos: HashMap::new(),
            remote_sync_inflight: 0,
            unplug_now: false,
            blocked_wake_at: None,
            throttle_timer_at: None,
            had_dirty: false,
            misbehavior: Misbehavior::default(),
            flush_epoch_seen: 0,
            release_epoch_seen: 0,
            out: KernelOutputs::default(),
            stats: KernelStats::default(),
            cfg,
        }
    }

    /// The storage stream this guest's virtual disk maps to.
    pub fn stream(&self) -> StreamId {
        self.cfg.stream
    }

    /// The guest configuration.
    pub fn config(&self) -> &GuestConfig {
        &self.cfg
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Current misbehaviour modes (fault injection).
    pub fn misbehavior(&self) -> Misbehavior {
        self.misbehavior
    }

    /// Set misbehaviour modes (fault injection).
    pub fn set_misbehavior(&mut self, m: Misbehavior) {
        self.misbehavior = m;
    }

    /// Offer a `flush_now` command epoch to the driver. Returns `true`
    /// and remembers it if it is newer than anything seen; a stale or
    /// duplicate epoch returns `false` and must be discarded by the
    /// caller (re-acking is safe — acks are idempotent).
    pub fn accept_flush_epoch(&mut self, epoch: u64) -> bool {
        if epoch > self.flush_epoch_seen {
            self.flush_epoch_seen = epoch;
            true
        } else {
            false
        }
    }

    /// Newest `flush_now` epoch accepted so far (0 = none).
    pub fn flush_epoch_seen(&self) -> u64 {
        self.flush_epoch_seen
    }

    /// Offer a `release_request` grant epoch to the driver; same
    /// semantics as [`GuestKernel::accept_flush_epoch`].
    pub fn accept_release_epoch(&mut self, epoch: u64) -> bool {
        if epoch > self.release_epoch_seen {
            self.release_epoch_seen = epoch;
            true
        } else {
            false
        }
    }

    /// Newest `release_request` epoch accepted so far (0 = none).
    pub fn release_epoch_seen(&self) -> u64 {
        self.release_epoch_seen
    }

    /// Dirty pages (`bdi_writeback.nr` analogue).
    pub fn dirty_pages(&self) -> u64 {
        self.cache.dirty_pages()
    }

    /// Is the request queue currently congested (submitters sleeping)?
    pub fn queue_congested(&self) -> bool {
        self.queue.is_congested()
    }

    /// Times the congestion flag was set.
    pub fn congestion_entries(&self) -> u64 {
        self.queue.congestion_entries()
    }

    /// Times a collaborative bypass was granted.
    pub fn bypass_grants(&self) -> u64 {
        self.queue.bypass_grants()
    }

    /// Create a file on the virtual disk.
    pub fn create_file(&mut self, size: u64) -> Result<FileId, VfsError> {
        self.vfs.create(size)
    }

    /// Delete a file (drops its dirty pages; callers sync first if needed).
    pub fn delete_file(&mut self, file: FileId) -> Result<(), VfsError> {
        self.vfs.delete(file)
    }

    /// Size of a file.
    pub fn file_size(&self, file: FileId) -> Result<u64, VfsError> {
        self.vfs.size_of(file)
    }

    /// Earliest internal deadline (plug timer or periodic flusher); the
    /// machine schedules [`GuestKernel::on_timer`] here.
    pub fn next_deadline(&self) -> SimTime {
        let mut t = self.wb.next_wakeup();
        if let Some(p) = self.queue.plug_deadline() {
            t = t.min(p);
        }
        if let Some(w) = self.blocked_wake_at {
            t = t.min(w);
        }
        if let Some(at) = self.throttle_timer_at {
            // Re-check throttled writers when their pause expires. (Only a
            // future deadline: a past-due writer still gated on pressure
            // is woken by writeback completions, not by a spinning timer.)
            t = t.min(at);
        }
        t
    }

    /// Drain accumulated outputs.
    pub fn take_outputs(&mut self) -> KernelOutputs {
        std::mem::take(&mut self.out)
    }

    /// The op a block request belongs to, if any (readahead and background
    /// writeback have no waiting op). The hypervisor uses this to attribute
    /// a ring request to the VCPU that issued the op.
    pub fn op_of_request(&self, id: RequestId) -> Option<OpId> {
        match self.owners.get(&id)? {
            ReqOwner::OpRead { op, .. } => Some(*op),
            ReqOwner::Writeback { sync_op, .. } => *sync_op,
            ReqOwner::Readahead { .. } => None,
        }
    }

    fn alloc_op(&mut self, started: SimTime, class: OpClass, pending: usize) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += 1;
        if pending == 0 {
            self.out.completed.push(CompletedOp {
                op: id,
                started,
                class,
            });
        } else {
            self.ops.insert(
                id,
                OpState {
                    started,
                    pending,
                    class,
                },
            );
        }
        id
    }

    fn op_progress(&mut self, op: OpId, n: usize) {
        if let Some(state) = self.ops.get_mut(&op) {
            state.pending = state.pending.saturating_sub(n);
            if state.pending == 0 {
                let state = self.ops.remove(&op).unwrap();
                self.out.completed.push(CompletedOp {
                    op,
                    started: state.started,
                    class: state.class,
                });
            }
        }
    }

    /// Submit a file operation; its completion appears in the outputs.
    pub fn start_op(&mut self, op: FileOp, now: SimTime) -> OpId {
        let id = match op {
            FileOp::Read { file, offset, len } => self.start_read(file, offset, len, now),
            FileOp::Write { file, offset, len } => self.start_write(file, offset, len, now),
            FileOp::Sync => self.start_sync(now),
        };
        self.housekeeping(now);
        id
    }

    fn start_read(&mut self, file: FileId, offset: u64, len: u64, now: SimTime) -> OpId {
        self.stats.reads += 1;
        let len = len.max(1);
        let disk_off = match self.vfs.translate(file, offset, len) {
            Ok(o) => o,
            Err(_) => {
                debug_assert!(false, "read out of bounds");
                return self.alloc_op(now, OpClass::Read, 0);
            }
        };
        // Partition the range into cached and missing chunks.
        let mut missing: Vec<ChunkIdx> = Vec::new();
        for c in chunks_of(disk_off, len) {
            if self.cache.contains(c) {
                self.cache.touch(c);
                self.stats.cache_hit_chunks += 1;
            } else {
                self.stats.cache_miss_chunks += 1;
                missing.push(c);
            }
        }
        // Sequential readahead.
        let sequential = self.last_read_pos.get(&file).copied() == Some(offset);
        self.last_read_pos.insert(file, offset + len);
        // Linux aborts readahead when the device looks congested; under a
        // collaborative bypass the host has said it is not, so the
        // prefetch pipeline is kept alive.
        let ra_allowed = self.queue.bypass_active()
            || (!self.queue.is_congested()
                && self.queue.allocated()
                    < crate::queue::congestion_on_threshold(self.cfg.queue.nr_requests));
        let mut ra_chunks: Vec<ChunkIdx> = Vec::new();
        if sequential && ra_allowed && self.cfg.readahead_chunks > 0 {
            let file_size = self.vfs.size_of(file).unwrap_or(0);
            let next = offset + len;
            let ra_len =
                (self.cfg.readahead_chunks * CHUNK_SIZE).min(file_size.saturating_sub(next));
            if ra_len > 0 {
                if let Ok(ra_off) = self.vfs.translate(file, next, ra_len) {
                    for c in chunks_of(ra_off, ra_len) {
                        if !self.cache.contains(c) && !missing.contains(&c) {
                            ra_chunks.push(c);
                        }
                    }
                }
            }
        }
        let runs = coalesce_chunks(missing, 8);
        if !runs.is_empty() {
            // The reader is about to block on these requests.
            self.unplug_now = true;
        }
        let op = self.alloc_op(now, OpClass::Read, runs.len());
        for run in runs {
            let (off, rlen) = run_to_bytes(run);
            let chunks: Vec<ChunkIdx> = (run.0..run.0 + run.1).collect();
            self.submit_block(
                IoKind::Read,
                off,
                rlen,
                ReqOwner::OpRead { op, chunks },
                now,
            );
        }
        for run in coalesce_chunks(ra_chunks, 8) {
            let (off, rlen) = run_to_bytes(run);
            let chunks: Vec<ChunkIdx> = (run.0..run.0 + run.1).collect();
            self.submit_block(IoKind::Read, off, rlen, ReqOwner::Readahead { chunks }, now);
        }
        op
    }

    fn start_write(&mut self, file: FileId, offset: u64, len: u64, now: SimTime) -> OpId {
        self.stats.writes += 1;
        let len = len.max(1);
        let disk_off = match self.vfs.translate(file, offset, len) {
            Ok(o) => o,
            Err(_) => {
                debug_assert!(false, "write out of bounds");
                return self.alloc_op(now, OpClass::Write, 0);
            }
        };
        for c in chunks_of(disk_off, len) {
            self.cache.mark_dirty(c, now);
        }
        // Crossing the background ratio kicks the flusher without waiting
        // for the periodic timer.
        if self.wb.background_needed(&self.cache) {
            let taken = self.wb.on_background(&mut self.cache);
            self.issue_writeback(taken, None, false, now);
        }
        if self.wb.should_throttle(&self.cache) {
            // Writer throttling: the op completes only when dirty pressure
            // drops (balance_dirty_pages).
            self.stats.throttled_writes += 1;
            let op = self.alloc_op(now, OpClass::Write, 1);
            self.throttled
                .push_back((op, now + self.cfg.wb.throttle_pause));
            op
        } else {
            self.alloc_op(now, OpClass::Write, 0)
        }
    }

    fn start_sync(&mut self, now: SimTime) -> OpId {
        self.stats.syncs += 1;
        let taken = self.wb.on_sync(&mut self.cache);
        if !taken.is_empty() {
            trace_event!(
                now,
                TraceEventKind::WritebackIssue {
                    dom: self.cfg.stream.0,
                    pages: taken.len() as u64 * CHUNK_PAGES,
                    remote: false,
                }
            );
        }
        let runs = coalesce_chunks(taken, 16);
        if !runs.is_empty() {
            self.unplug_now = true;
        }
        let op = self.alloc_op(now, OpClass::Sync, runs.len());
        for run in runs {
            let (off, rlen) = run_to_bytes(run);
            let chunks: Vec<ChunkIdx> = (run.0..run.0 + run.1).collect();
            self.submit_block(
                IoKind::Write,
                off,
                rlen,
                ReqOwner::Writeback {
                    chunks,
                    sync_op: Some(op),
                    remote: false,
                },
                now,
            );
        }
        op
    }

    /// IOrchestra `flush_now`: trigger `sync()` remotely (paper Alg. 1).
    /// Emits [`KernelSignal::RemoteSyncCompleted`] when the data is on disk.
    pub fn remote_sync(&mut self, now: SimTime) {
        if self.misbehavior.ignore_flush_now {
            // Fault injection: the driver drops the command on the floor —
            // no writeback, and crucially no completion ack.
            return;
        }
        let taken = self.wb.on_sync(&mut self.cache);
        if taken.is_empty() {
            self.out.signals.push(KernelSignal::RemoteSyncCompleted);
            self.housekeeping(now);
            return;
        }
        trace_event!(
            now,
            TraceEventKind::WritebackIssue {
                dom: self.cfg.stream.0,
                pages: taken.len() as u64 * CHUNK_PAGES,
                remote: true,
            }
        );
        self.unplug_now = true;
        for run in coalesce_chunks(taken, 16) {
            let (off, rlen) = run_to_bytes(run);
            let chunks: Vec<ChunkIdx> = (run.0..run.0 + run.1).collect();
            self.remote_sync_inflight += 1;
            self.submit_block(
                IoKind::Write,
                off,
                rlen,
                ReqOwner::Writeback {
                    chunks,
                    sync_op: None,
                    remote: true,
                },
                now,
            );
        }
        self.housekeeping(now);
    }

    fn issue_writeback(
        &mut self,
        chunks: Vec<ChunkIdx>,
        sync_op: Option<OpId>,
        remote: bool,
        now: SimTime,
    ) {
        if !chunks.is_empty() {
            trace_event!(
                now,
                TraceEventKind::WritebackIssue {
                    dom: self.cfg.stream.0,
                    pages: chunks.len() as u64 * CHUNK_PAGES,
                    remote,
                }
            );
        }
        for run in coalesce_chunks(chunks, 16) {
            let (off, rlen) = run_to_bytes(run);
            let chunks: Vec<ChunkIdx> = (run.0..run.0 + run.1).collect();
            if remote {
                self.remote_sync_inflight += 1;
            }
            self.submit_block(
                IoKind::Write,
                off,
                rlen,
                ReqOwner::Writeback {
                    chunks,
                    sync_op,
                    remote,
                },
                now,
            );
        }
    }

    fn submit_block(&mut self, kind: IoKind, offset: u64, len: u64, owner: ReqOwner, now: SimTime) {
        let req = IoRequest {
            id: self.ids.alloc(),
            kind,
            stream: self.cfg.stream,
            offset,
            len,
            submitted: now,
        };
        match self.queue.submit(req, now) {
            Submit::Accepted => {
                self.owners.insert(req.id, owner);
            }
            Submit::Blocked => {
                if matches!(owner, ReqOwner::OpRead { .. }) {
                    self.stats.congestion_blocked_ops += 1;
                }
                self.blocked.push_back(PendingSubmit { req, owner });
            }
        }
    }

    /// A block request this guest issued completed at the device.
    pub fn on_block_complete(&mut self, id: RequestId, now: SimTime) {
        self.queue.on_complete(1, now);
        if let Some(owner) = self.owners.remove(&id) {
            match owner {
                ReqOwner::OpRead { op, chunks } => {
                    for c in chunks {
                        self.cache.insert_clean(c);
                    }
                    self.op_progress(op, 1);
                }
                ReqOwner::Readahead { chunks } => {
                    for c in chunks {
                        self.cache.insert_clean(c);
                    }
                }
                ReqOwner::Writeback {
                    chunks,
                    sync_op,
                    remote,
                } => {
                    for c in chunks {
                        self.wb.on_chunk_done(&mut self.cache, c);
                    }
                    if let Some(op) = sync_op {
                        self.op_progress(op, 1);
                    }
                    if remote {
                        self.remote_sync_inflight -= 1;
                        if self.remote_sync_inflight == 0 {
                            self.out.signals.push(KernelSignal::RemoteSyncCompleted);
                        }
                    }
                    // Window room may have opened for more background work.
                    if self.wb.background_needed(&self.cache) {
                        let taken = self.wb.on_background(&mut self.cache);
                        self.issue_writeback(taken, None, false, now);
                    }
                }
            }
        }
        self.housekeeping(now);
    }

    /// Fire internal timers (plug deadline, periodic flusher).
    pub fn on_timer(&mut self, now: SimTime) {
        if now >= self.wb.next_wakeup() {
            let taken = self.wb.on_periodic(&mut self.cache, now);
            self.issue_writeback(taken, None, false, now);
        }
        self.housekeeping(now);
    }

    /// Baseline response to [`KernelSignal::CongestionQuery`]: sleep
    /// submitters until the off threshold.
    pub fn enter_congestion(&mut self, now: SimTime) {
        self.queue.enter_congestion(now);
    }

    /// Collaborative response: the host is not congested; unplug and keep
    /// submitting (paper Alg. 2's `release_request`).
    pub fn grant_bypass(&mut self, now: SimTime) {
        if self.misbehavior.ignore_release_request {
            // Fault injection: the driver never acts on the grant; the
            // guest stays asleep until normal queue hysteresis wakes it.
            return;
        }
        self.queue.grant_bypass(now);
        self.housekeeping(now);
    }

    /// The host became congested after all; stop bypassing. Runs
    /// housekeeping so a re-raised congestion query (queue still at/above
    /// the on threshold) surfaces as a signal immediately instead of
    /// waiting for the next submission.
    pub fn revoke_bypass(&mut self, now: SimTime) {
        self.queue.revoke_bypass(now);
        self.housekeeping(now);
    }

    fn housekeeping(&mut self, now: SimTime) {
        // 1. Queue events -> signals.
        for ev in self.queue.poll_events() {
            match ev {
                QueueEvent::CongestionWouldEnter => {
                    self.out.signals.push(KernelSignal::CongestionQuery);
                }
                QueueEvent::Uncongested => {
                    self.out.signals.push(KernelSignal::CongestionCleared);
                }
            }
        }
        // 2. Retry blocked submissions FIFO while the queue accepts them —
        // but only a wake-delay after the congestion cleared (waking the
        // sleeping process costs a context switch and VCPU scheduling).
        if self.queue.is_congested() {
            // Re-congested before the wake fired: void the pending wake (a
            // stale past deadline would spin the kernel timer forever).
            self.blocked_wake_at = None;
        }
        if !self.blocked.is_empty() && !self.queue.is_congested() {
            match self.blocked_wake_at {
                None => {
                    self.blocked_wake_at = Some(now + self.cfg.queue.wake_delay);
                }
                Some(wake_at) if now >= wake_at => {
                    self.blocked_wake_at = None;
                    while let Some(pending) = self.blocked.pop_front() {
                        match self.queue.submit(pending.req, now) {
                            Submit::Accepted => {
                                self.owners.insert(pending.req.id, pending.owner);
                            }
                            Submit::Blocked => {
                                self.blocked.push_front(pending);
                                break;
                            }
                        }
                    }
                }
                Some(_) => {}
            }
        }
        // Queue events may have fired again during retries.
        for ev in self.queue.poll_events() {
            match ev {
                QueueEvent::CongestionWouldEnter => {
                    self.out.signals.push(KernelSignal::CongestionQuery);
                }
                QueueEvent::Uncongested => {
                    self.out.signals.push(KernelSignal::CongestionCleared);
                }
            }
        }
        // 3. Wake throttled writers: only after their minimum pause AND
        // once pressure has drained below the hysteresis point.
        while let Some(&(op, earliest)) = self.throttled.front() {
            if now >= earliest && self.wb.may_wake_throttled(&self.cache) {
                self.throttled.pop_front();
                self.op_progress(op, 1);
            } else {
                break;
            }
        }
        // Arm the pause timer only for a future expiry; past-due writers
        // gated on pressure are re-checked on writeback completions.
        self.throttle_timer_at = self
            .throttled
            .front()
            .map(|&(_, earliest)| earliest)
            .filter(|&e| e > now);
        // 4. Dispatch unplugged requests to the ring.
        let force = std::mem::take(&mut self.unplug_now);
        let batch = self.queue.take_dispatchable(now, force);
        self.out.to_ring.extend(batch);
        // 5. Dirty-status edge for the system store.
        let has_dirty = self.cache.dirty_pages() > 0;
        if has_dirty != self.had_dirty {
            self.had_dirty = has_dirty;
            self.out
                .signals
                .push(KernelSignal::DirtyStatusChanged(has_dirty));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iorch_simcore::SimDuration;

    fn cfg() -> GuestConfig {
        // 64 MiB memory, 1 GiB disk.
        GuestConfig::new(64 << 20, 1 << 30, StreamId(1))
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Drive all ring requests to completion instantly (ideal device).
    fn complete_all(k: &mut GuestKernel, now: SimTime) -> usize {
        let mut n = 0;
        loop {
            let out = k.take_outputs();
            if out.to_ring.is_empty() {
                break;
            }
            for r in out.to_ring {
                k.on_block_complete(r.id, now);
                n += 1;
            }
        }
        n
    }

    #[test]
    fn command_epochs_are_monotonic_per_channel() {
        let mut k = GuestKernel::new(cfg(), t(0));
        assert_eq!(k.flush_epoch_seen(), 0);
        assert!(k.accept_flush_epoch(1), "first command accepted");
        assert!(!k.accept_flush_epoch(1), "duplicate discarded");
        assert!(!k.accept_flush_epoch(0), "stale (pre-crash) discarded");
        assert!(k.accept_flush_epoch(5), "gaps are fine: newer wins");
        assert!(!k.accept_flush_epoch(4));
        assert_eq!(k.flush_epoch_seen(), 5);
        // The two command channels keep independent cursors.
        assert_eq!(k.release_epoch_seen(), 0);
        assert!(k.accept_release_epoch(2));
        assert!(!k.accept_release_epoch(2));
        assert_eq!(k.release_epoch_seen(), 2);
        assert_eq!(k.flush_epoch_seen(), 5);
    }

    #[test]
    fn cold_read_misses_then_hits() {
        let mut k = GuestKernel::new(cfg(), t(0));
        let f = k.create_file(10 << 20).unwrap();
        let op1 = k.start_op(
            FileOp::Read {
                file: f,
                offset: 0,
                len: CHUNK_SIZE,
            },
            t(0),
        );
        // Miss: op pending; the blocking reader unplugs immediately.
        let out = k.take_outputs();
        assert!(out.completed.is_empty());
        assert_eq!(out.to_ring.len(), 1);
        k.on_block_complete(out.to_ring[0].id, t(1));
        let out = k.take_outputs();
        assert_eq!(out.completed.len(), 1);
        assert_eq!(out.completed[0].op, op1);
        assert_eq!(out.completed[0].class, OpClass::Read);
        // Second read of the same range: pure cache hit, instant.
        let op2 = k.start_op(
            FileOp::Read {
                file: f,
                offset: 0,
                len: CHUNK_SIZE,
            },
            t(2),
        );
        let out = k.take_outputs();
        assert_eq!(out.completed.len(), 1);
        assert_eq!(out.completed[0].op, op2);
        assert!(k.stats().cache_hit_chunks >= 1);
    }

    #[test]
    fn sequential_reads_trigger_readahead() {
        let mut k = GuestKernel::new(cfg(), t(0));
        let f = k.create_file(10 << 20).unwrap();
        k.start_op(
            FileOp::Read {
                file: f,
                offset: 0,
                len: CHUNK_SIZE,
            },
            t(0),
        );
        // Second sequential read announces the pattern.
        k.start_op(
            FileOp::Read {
                file: f,
                offset: CHUNK_SIZE,
                len: CHUNK_SIZE,
            },
            t(1),
        );
        k.on_timer(k.next_deadline());
        let out = k.take_outputs();
        // Demand chunks 0,1 plus 4 readahead chunks => >= 2 requests and
        // total bytes > 2 chunks.
        let total: u64 = out.to_ring.iter().map(|r| r.len).sum();
        assert!(total > 2 * CHUNK_SIZE, "total={total}");
    }

    #[test]
    fn buffered_write_completes_instantly_and_dirties() {
        let mut k = GuestKernel::new(cfg(), t(0));
        let f = k.create_file(10 << 20).unwrap();
        let op = k.start_op(
            FileOp::Write {
                file: f,
                offset: 0,
                len: 4 * CHUNK_SIZE,
            },
            t(0),
        );
        let out = k.take_outputs();
        assert_eq!(out.completed.len(), 1);
        assert_eq!(out.completed[0].op, op);
        assert_eq!(k.dirty_pages(), 4 * CHUNK_PAGES);
        assert!(out
            .signals
            .contains(&KernelSignal::DirtyStatusChanged(true)));
    }

    #[test]
    fn sync_flushes_and_completes_when_durable() {
        let mut k = GuestKernel::new(cfg(), t(0));
        let f = k.create_file(10 << 20).unwrap();
        k.start_op(
            FileOp::Write {
                file: f,
                offset: 0,
                len: 8 * CHUNK_SIZE,
            },
            t(0),
        );
        k.take_outputs();
        let sync = k.start_op(FileOp::Sync, t(1));
        // Not complete until the writeback requests finish — but the sync
        // barrier dispatched them to the ring immediately.
        let out = k.take_outputs();
        assert!(out.completed.is_empty());
        assert_eq!(k.dirty_pages(), 0); // moved to writeback
        assert!(!out.to_ring.is_empty());
        let ids: Vec<RequestId> = out.to_ring.iter().map(|r| r.id).collect();
        for id in ids {
            k.on_block_complete(id, t(5));
        }
        let out = k.take_outputs();
        assert_eq!(out.completed.len(), 1);
        assert_eq!(out.completed[0].op, sync);
        assert_eq!(out.completed[0].class, OpClass::Sync);
    }

    #[test]
    fn remote_sync_signals_completion() {
        let mut k = GuestKernel::new(cfg(), t(0));
        let f = k.create_file(10 << 20).unwrap();
        k.start_op(
            FileOp::Write {
                file: f,
                offset: 0,
                len: 4 * CHUNK_SIZE,
            },
            t(0),
        );
        k.take_outputs();
        k.remote_sync(t(1));
        k.on_timer(k.next_deadline());
        let out = k.take_outputs();
        let mut signals = out.signals.clone();
        assert!(!out.to_ring.is_empty());
        for r in out.to_ring {
            k.on_block_complete(r.id, t(2));
        }
        signals.extend(k.take_outputs().signals);
        assert!(signals.contains(&KernelSignal::RemoteSyncCompleted));
        // Dirty status must have gone back to false at some point.
        assert!(signals.contains(&KernelSignal::DirtyStatusChanged(false)));
    }

    #[test]
    fn remote_sync_with_nothing_dirty_completes_immediately() {
        let mut k = GuestKernel::new(cfg(), t(0));
        k.remote_sync(t(0));
        let out = k.take_outputs();
        assert!(out.signals.contains(&KernelSignal::RemoteSyncCompleted));
    }

    #[test]
    fn dirty_ratio_throttles_writers() {
        let mut c = cfg();
        c.wb.dirty_ratio = 0.05;
        c.wb.background_ratio = 0.04;
        let mut k = GuestKernel::new(c, t(0));
        let f = k.create_file(100 << 20).unwrap();
        // Dirty far past 5% of a 48 MiB cache (~2.4 MiB) in one op.
        let op = k.start_op(
            FileOp::Write {
                file: f,
                offset: 0,
                len: 8 << 20,
            },
            t(0),
        );
        let out = k.take_outputs();
        assert!(out.completed.is_empty(), "writer must be throttled");
        assert_eq!(k.stats().throttled_writes, 1);
        // Let writeback complete; the writer wakes.
        k.on_timer(k.next_deadline());
        let mut done = false;
        for _ in 0..100 {
            let out = k.take_outputs();
            for r in out.to_ring {
                k.on_block_complete(r.id, t(10));
            }
            if out.completed.iter().any(|c| c.op == op) {
                done = true;
                break;
            }
            k.on_timer(k.next_deadline());
        }
        assert!(done, "throttled writer never woke");
    }

    #[test]
    fn congestion_query_emitted_and_baseline_blocks() {
        let mut k = GuestKernel::new(cfg(), t(0));
        let f = k.create_file(512 << 20).unwrap();
        // Issue far more single-chunk random reads than nr_requests,
        // accumulating the dispatched ring requests for later completion.
        let mut signalled = false;
        let mut ring: Vec<RequestId> = Vec::new();
        for i in 0..120 {
            k.start_op(
                FileOp::Read {
                    file: f,
                    offset: (i * 331) % 8000 * CHUNK_SIZE,
                    len: CHUNK_SIZE,
                },
                t(0),
            );
            let out = k.take_outputs();
            ring.extend(out.to_ring.iter().map(|r| r.id));
            if out.signals.contains(&KernelSignal::CongestionQuery) {
                signalled = true;
                k.enter_congestion(t(0));
            }
        }
        assert!(signalled, "congestion query never fired");
        assert!(k.queue_congested());
        // Further ops get blocked (descriptor starvation).
        let before = k.stats().congestion_blocked_ops;
        k.start_op(
            FileOp::Read {
                file: f,
                offset: 123 * CHUNK_SIZE,
                len: CHUNK_SIZE,
            },
            t(1),
        );
        assert!(k.stats().congestion_blocked_ops > before);
        // Completing requests un-congests and the blocked op proceeds.
        for id in ring {
            k.on_block_complete(id, t(2));
        }
        complete_all(&mut k, t(2));
        assert!(!k.queue_congested());
    }

    #[test]
    fn bypass_avoids_blocking() {
        let mut k = GuestKernel::new(cfg(), t(0));
        let f = k.create_file(512 << 20).unwrap();
        for i in 0..200 {
            k.start_op(
                FileOp::Read {
                    file: f,
                    offset: (i * 331) % 8000 * CHUNK_SIZE,
                    len: CHUNK_SIZE,
                },
                t(0),
            );
            let out = k.take_outputs();
            if out.signals.contains(&KernelSignal::CongestionQuery) {
                k.grant_bypass(t(0));
            }
        }
        assert!(!k.queue_congested());
        assert_eq!(k.stats().congestion_blocked_ops, 0);
        assert!(k.bypass_grants() >= 1);
    }

    #[test]
    fn periodic_writeback_flushes_expired() {
        let mut c = cfg();
        c.wb.periodic_interval = SimDuration::from_millis(100);
        c.wb.dirty_expire = SimDuration::from_millis(200);
        let mut k = GuestKernel::new(c, t(0));
        let f = k.create_file(10 << 20).unwrap();
        k.start_op(
            FileOp::Write {
                file: f,
                offset: 0,
                len: CHUNK_SIZE,
            },
            t(0),
        );
        k.take_outputs();
        // Before expiry: periodic runs but flushes nothing (below bg ratio).
        k.on_timer(t(100));
        assert_eq!(k.dirty_pages(), CHUNK_PAGES);
        // After expiry.
        k.on_timer(t(300));
        assert_eq!(k.dirty_pages(), 0);
        let out = k.take_outputs();
        assert!(!out.to_ring.is_empty() || !k.queue_congested());
    }

    #[test]
    fn next_deadline_tracks_plug_and_flusher() {
        let mut c = cfg();
        // Make background writeback trip on a small write.
        c.wb.background_ratio = 0.01;
        c.wb.dirty_ratio = 0.5;
        let mut k = GuestKernel::new(c, t(0));
        // Initially only the periodic flusher.
        assert_eq!(
            k.next_deadline(),
            SimTime::ZERO + k.wb.params().periodic_interval
        );
        let f = k.create_file(10 << 20).unwrap();
        // Synchronous reads unplug immediately and leave no plug deadline…
        k.start_op(
            FileOp::Read {
                file: f,
                offset: 0,
                len: CHUNK_SIZE,
            },
            t(0),
        );
        k.take_outputs();
        assert_eq!(
            k.next_deadline(),
            SimTime::ZERO + k.wb.params().periodic_interval
        );
        // …but background writeback requests wait out the 3 ms plug timer.
        k.start_op(
            FileOp::Write {
                file: f,
                offset: 1 << 20,
                len: 8 * CHUNK_SIZE,
            },
            t(0),
        );
        assert_eq!(k.next_deadline(), t(3));
    }
}
