//! Guest page cache with dirty-page accounting.
//!
//! Pages are tracked in 64 KiB chunks (16 × 4 KiB pages) keyed by virtual-
//! disk chunk index. The dirty counters reproduce what Linux exposes via
//! `bdi_writeback.nr` — the quantity a guest publishes to the system store
//! as `has_dirty_pages` under IOrchestra (paper §3.1).

use std::collections::{BTreeMap, HashMap};

use iorch_simcore::SimTime;

/// Bytes per page (x86 default).
pub const PAGE_SIZE: u64 = 4096;
/// Pages per cache chunk.
pub const CHUNK_PAGES: u64 = 16;
/// Bytes per cache chunk.
pub const CHUNK_SIZE: u64 = PAGE_SIZE * CHUNK_PAGES;

/// Index of a chunk on the virtual disk.
pub type ChunkIdx = u64;

/// Convert a byte range to the chunks it covers.
pub fn chunks_of(offset: u64, len: u64) -> impl Iterator<Item = ChunkIdx> {
    let first = offset / CHUNK_SIZE;
    let last = if len == 0 {
        first
    } else {
        (offset + len - 1) / CHUNK_SIZE
    };
    first..=last
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ChunkState {
    Clean,
    Dirty,
    /// Writeback submitted, not yet completed.
    Writeback,
    /// Re-dirtied while writeback is in flight.
    DirtyWriteback,
}

#[derive(Clone, Copy, Debug)]
struct Chunk {
    state: ChunkState,
    lru_stamp: u64,
    dirtied_at: SimTime,
}

/// LRU page cache with dirty tracking at chunk granularity.
#[derive(Clone, Debug)]
pub struct PageCache {
    capacity_pages: u64,
    chunks: HashMap<ChunkIdx, Chunk>,
    lru: BTreeMap<u64, ChunkIdx>,
    dirty_order: BTreeMap<(SimTime, ChunkIdx), ()>,
    next_stamp: u64,
    dirty_chunks: u64,
    writeback_chunks: u64,
}

impl PageCache {
    /// Cache with room for `capacity_pages` 4 KiB pages.
    pub fn new(capacity_pages: u64) -> Self {
        assert!(
            capacity_pages >= CHUNK_PAGES,
            "cache smaller than one chunk"
        );
        PageCache {
            capacity_pages,
            chunks: HashMap::new(),
            lru: BTreeMap::new(),
            dirty_order: BTreeMap::new(),
            next_stamp: 0,
            dirty_chunks: 0,
            writeback_chunks: 0,
        }
    }

    fn stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }

    fn touch_lru(&mut self, idx: ChunkIdx) {
        let new_stamp = self.stamp();
        if let Some(c) = self.chunks.get_mut(&idx) {
            self.lru.remove(&c.lru_stamp);
            c.lru_stamp = new_stamp;
            self.lru.insert(new_stamp, idx);
        }
    }

    /// Whether a chunk is resident (hit).
    pub fn contains(&self, idx: ChunkIdx) -> bool {
        self.chunks.contains_key(&idx)
    }

    /// Record a read hit, refreshing LRU position.
    pub fn touch(&mut self, idx: ChunkIdx) {
        self.touch_lru(idx);
    }

    /// Total resident pages.
    pub fn resident_pages(&self) -> u64 {
        self.chunks.len() as u64 * CHUNK_PAGES
    }

    /// Dirty pages, the `bdi_writeback.nr` analogue (includes chunks that
    /// were re-dirtied during writeback, excludes pure writeback).
    pub fn dirty_pages(&self) -> u64 {
        self.dirty_chunks * CHUNK_PAGES
    }

    /// Pages currently under writeback.
    pub fn writeback_pages(&self) -> u64 {
        self.writeback_chunks * CHUNK_PAGES
    }

    /// Dirty pages as a fraction of cache capacity (the guest's
    /// `dirty_ratio` input).
    pub fn dirty_fraction(&self) -> f64 {
        self.dirty_pages() as f64 / self.capacity_pages as f64
    }

    /// Dirty **plus writeback** pages as a fraction of capacity — what
    /// Linux's `balance_dirty_pages` throttles writers against.
    pub fn unstable_fraction(&self) -> f64 {
        (self.dirty_pages() + self.writeback_pages()) as f64 / self.capacity_pages as f64
    }

    /// Capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// True when the resident set exceeds capacity (eviction pressure).
    pub fn over_capacity(&self) -> bool {
        self.resident_pages() > self.capacity_pages
    }

    /// Insert a chunk as clean (read miss fill). Evicts clean LRU chunks to
    /// stay within capacity; dirty/writeback chunks are never evicted.
    /// Returns the evicted chunk indices.
    pub fn insert_clean(&mut self, idx: ChunkIdx) -> Vec<ChunkIdx> {
        if self.chunks.contains_key(&idx) {
            self.touch_lru(idx);
            return Vec::new();
        }
        let stamp = self.stamp();
        self.chunks.insert(
            idx,
            Chunk {
                state: ChunkState::Clean,
                lru_stamp: stamp,
                dirtied_at: SimTime::ZERO,
            },
        );
        self.lru.insert(stamp, idx);
        self.evict_to_capacity(idx)
    }

    fn evict_to_capacity(&mut self, protect: ChunkIdx) -> Vec<ChunkIdx> {
        let mut evicted = Vec::new();
        while self.resident_pages() > self.capacity_pages {
            // Find the least-recently-used *clean* chunk, never the one
            // being inserted right now (it is in use by the caller).
            let victim = self
                .lru
                .iter()
                .map(|(_, &i)| i)
                .find(|&i| i != protect && self.chunks[&i].state == ChunkState::Clean);
            match victim {
                Some(i) => {
                    let c = self.chunks.remove(&i).unwrap();
                    self.lru.remove(&c.lru_stamp);
                    evicted.push(i);
                }
                // All remaining chunks are dirty or in writeback; the cache
                // temporarily exceeds capacity (Linux allows this up to the
                // dirty limits; the kernel reacts by throttling writers).
                None => break,
            }
        }
        evicted
    }

    /// Mark a chunk dirty at `now` (write). Inserts it if absent. Returns
    /// any chunks evicted to make room.
    pub fn mark_dirty(&mut self, idx: ChunkIdx, now: SimTime) -> Vec<ChunkIdx> {
        let stamp = self.stamp();
        let mut evicted = Vec::new();
        match self.chunks.get_mut(&idx) {
            Some(c) => {
                self.lru.remove(&c.lru_stamp);
                c.lru_stamp = stamp;
                self.lru.insert(stamp, idx);
                match c.state {
                    ChunkState::Clean => {
                        c.state = ChunkState::Dirty;
                        c.dirtied_at = now;
                        self.dirty_order.insert((now, idx), ());
                        self.dirty_chunks += 1;
                    }
                    ChunkState::Dirty | ChunkState::DirtyWriteback => {}
                    ChunkState::Writeback => {
                        c.state = ChunkState::DirtyWriteback;
                        c.dirtied_at = now;
                        self.dirty_order.insert((now, idx), ());
                        self.dirty_chunks += 1;
                        self.writeback_chunks -= 1;
                    }
                }
            }
            None => {
                self.chunks.insert(
                    idx,
                    Chunk {
                        state: ChunkState::Dirty,
                        lru_stamp: stamp,
                        dirtied_at: now,
                    },
                );
                self.lru.insert(stamp, idx);
                self.dirty_order.insert((now, idx), ());
                self.dirty_chunks += 1;
                evicted = self.evict_to_capacity(idx);
            }
        }
        evicted
    }

    /// Take up to `max_chunks` dirty chunks, oldest first, transitioning
    /// them to writeback. If `expired_before` is given, only chunks dirtied
    /// strictly before it are taken (the `dirty_expire` path).
    pub fn take_dirty_batch(
        &mut self,
        max_chunks: usize,
        expired_before: Option<SimTime>,
    ) -> Vec<ChunkIdx> {
        let mut taken = Vec::new();
        while taken.len() < max_chunks {
            let candidate = self.dirty_order.keys().next().copied();
            let Some((dirtied_at, idx)) = candidate else {
                break;
            };
            if let Some(limit) = expired_before {
                if dirtied_at >= limit {
                    break;
                }
            }
            self.dirty_order.remove(&(dirtied_at, idx));
            let c = self.chunks.get_mut(&idx).expect("dirty chunk must exist");
            debug_assert!(matches!(
                c.state,
                ChunkState::Dirty | ChunkState::DirtyWriteback
            ));
            c.state = ChunkState::Writeback;
            self.dirty_chunks -= 1;
            self.writeback_chunks += 1;
            taken.push(idx);
        }
        taken
    }

    /// Writeback of a chunk completed. If it was re-dirtied meanwhile it
    /// stays dirty; otherwise it becomes clean (and evictable).
    pub fn writeback_done(&mut self, idx: ChunkIdx) {
        if let Some(c) = self.chunks.get_mut(&idx) {
            match c.state {
                ChunkState::Writeback => {
                    c.state = ChunkState::Clean;
                    self.writeback_chunks -= 1;
                }
                ChunkState::DirtyWriteback => {
                    // Already re-flagged dirty by mark_dirty; nothing to do.
                    c.state = ChunkState::Dirty;
                }
                _ => {}
            }
        }
    }

    /// Age of the oldest dirty chunk at `now`, if any.
    pub fn oldest_dirty_age(&self, now: SimTime) -> Option<iorch_simcore::SimDuration> {
        self.dirty_order
            .keys()
            .next()
            .map(|&(t, _)| now.saturating_since(t))
    }

    /// Drop every chunk for a teardown (no writeback; caller must have
    /// synced first if durability matters).
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.lru.clear();
        self.dirty_order.clear();
        self.dirty_chunks = 0;
        self.writeback_chunks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn chunks_of_ranges() {
        let v: Vec<u64> = chunks_of(0, CHUNK_SIZE).collect();
        assert_eq!(v, vec![0]);
        let v: Vec<u64> = chunks_of(0, CHUNK_SIZE + 1).collect();
        assert_eq!(v, vec![0, 1]);
        let v: Vec<u64> = chunks_of(CHUNK_SIZE - 1, 2).collect();
        assert_eq!(v, vec![0, 1]);
        let v: Vec<u64> = chunks_of(3 * CHUNK_SIZE, 0).collect();
        assert_eq!(v, vec![3]);
    }

    #[test]
    fn insert_and_hit() {
        let mut pc = PageCache::new(1024);
        assert!(!pc.contains(5));
        pc.insert_clean(5);
        assert!(pc.contains(5));
        assert_eq!(pc.resident_pages(), CHUNK_PAGES);
        assert_eq!(pc.dirty_pages(), 0);
    }

    #[test]
    fn lru_eviction_order() {
        // Capacity of exactly 2 chunks.
        let mut pc = PageCache::new(2 * CHUNK_PAGES);
        pc.insert_clean(1);
        pc.insert_clean(2);
        pc.touch(1); // 2 is now LRU
        let evicted = pc.insert_clean(3);
        assert_eq!(evicted, vec![2]);
        assert!(pc.contains(1) && pc.contains(3));
    }

    #[test]
    fn dirty_chunks_resist_eviction() {
        let mut pc = PageCache::new(2 * CHUNK_PAGES);
        pc.mark_dirty(1, t(0));
        pc.mark_dirty(2, t(1));
        let evicted = pc.insert_clean(3);
        // Nothing evictable: both resident chunks are dirty; cache exceeds
        // capacity instead.
        assert!(evicted.is_empty());
        assert!(pc.over_capacity());
        assert_eq!(pc.dirty_pages(), 2 * CHUNK_PAGES);
    }

    #[test]
    fn dirty_accounting_through_writeback() {
        let mut pc = PageCache::new(1024);
        pc.mark_dirty(7, t(0));
        pc.mark_dirty(8, t(1));
        assert_eq!(pc.dirty_pages(), 2 * CHUNK_PAGES);
        let batch = pc.take_dirty_batch(10, None);
        assert_eq!(batch, vec![7, 8]); // oldest first
        assert_eq!(pc.dirty_pages(), 0);
        assert_eq!(pc.writeback_pages(), 2 * CHUNK_PAGES);
        pc.writeback_done(7);
        pc.writeback_done(8);
        assert_eq!(pc.writeback_pages(), 0);
        assert!(pc.contains(7) && pc.contains(8)); // stay cached, now clean
    }

    #[test]
    fn redirty_during_writeback() {
        let mut pc = PageCache::new(1024);
        pc.mark_dirty(7, t(0));
        let batch = pc.take_dirty_batch(10, None);
        assert_eq!(batch, vec![7]);
        // Re-dirty while in flight.
        pc.mark_dirty(7, t(5));
        assert_eq!(pc.dirty_pages(), CHUNK_PAGES);
        pc.writeback_done(7);
        // Still dirty: the new write must be flushed again.
        assert_eq!(pc.dirty_pages(), CHUNK_PAGES);
        let batch = pc.take_dirty_batch(10, None);
        assert_eq!(batch, vec![7]);
        pc.writeback_done(7);
        assert_eq!(pc.dirty_pages(), 0);
    }

    #[test]
    fn expired_filter() {
        let mut pc = PageCache::new(1024);
        pc.mark_dirty(1, t(0));
        pc.mark_dirty(2, t(100));
        let batch = pc.take_dirty_batch(10, Some(t(50)));
        assert_eq!(batch, vec![1]);
        assert_eq!(pc.dirty_pages(), CHUNK_PAGES);
    }

    #[test]
    fn dirty_fraction_and_age() {
        let mut pc = PageCache::new(10 * CHUNK_PAGES);
        pc.mark_dirty(1, t(10));
        pc.mark_dirty(2, t(20));
        assert!((pc.dirty_fraction() - 0.2).abs() < 1e-9);
        let age = pc.oldest_dirty_age(t(110)).unwrap();
        assert_eq!(age, iorch_simcore::SimDuration::from_millis(100));
        assert!(PageCache::new(1024).oldest_dirty_age(t(0)).is_none());
    }

    #[test]
    fn mark_dirty_existing_clean_chunk() {
        let mut pc = PageCache::new(1024);
        pc.insert_clean(3);
        assert_eq!(pc.dirty_pages(), 0);
        pc.mark_dirty(3, t(1));
        assert_eq!(pc.dirty_pages(), CHUNK_PAGES);
        // Marking again does not double-count.
        pc.mark_dirty(3, t(2));
        assert_eq!(pc.dirty_pages(), CHUNK_PAGES);
    }

    #[test]
    fn clear_resets_everything() {
        let mut pc = PageCache::new(1024);
        pc.mark_dirty(1, t(0));
        pc.insert_clean(2);
        pc.clear();
        assert_eq!(pc.resident_pages(), 0);
        assert_eq!(pc.dirty_pages(), 0);
        assert!(!pc.contains(1));
    }
}
