//! Minimal file layer: files are contiguous extents on the guest's virtual
//! disk address space. Workloads speak `(file, offset, len)`; the kernel
//! translates to virtual-disk byte offsets, which the hypervisor later
//! shifts into the host device's address space.

use std::collections::BTreeMap;

/// Identifies a file inside one guest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FileId(pub u64);

#[derive(Clone, Copy, Debug)]
struct FileMeta {
    start: u64,
    size: u64,
}

/// A first-fit extent allocator plus the file table.
#[derive(Clone, Debug)]
pub struct Vfs {
    disk_size: u64,
    files: BTreeMap<FileId, FileMeta>,
    // Free extents keyed by start offset -> length; coalesced on free.
    free: BTreeMap<u64, u64>,
    next_id: u64,
}

/// Errors from file operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VfsError {
    /// No contiguous free extent large enough.
    NoSpace,
    /// Unknown file id.
    NotFound,
    /// Access beyond end of file.
    OutOfBounds,
}

impl Vfs {
    /// A filesystem over a virtual disk of `disk_size` bytes.
    pub fn new(disk_size: u64) -> Self {
        let mut free = BTreeMap::new();
        if disk_size > 0 {
            free.insert(0, disk_size);
        }
        Vfs {
            disk_size,
            files: BTreeMap::new(),
            free,
            next_id: 0,
        }
    }

    /// Virtual-disk size in bytes.
    pub fn disk_size(&self) -> u64 {
        self.disk_size
    }

    /// Number of live files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Total bytes allocated to files.
    pub fn used_bytes(&self) -> u64 {
        self.files.values().map(|f| f.size).sum()
    }

    /// Create a file of `size` bytes (first-fit).
    pub fn create(&mut self, size: u64) -> Result<FileId, VfsError> {
        assert!(size > 0, "zero-sized files are not modelled");
        let slot = self
            .free
            .iter()
            .find(|(_, &len)| len >= size)
            .map(|(&start, &len)| (start, len));
        let (start, len) = slot.ok_or(VfsError::NoSpace)?;
        self.free.remove(&start);
        if len > size {
            self.free.insert(start + size, len - size);
        }
        let id = FileId(self.next_id);
        self.next_id += 1;
        self.files.insert(id, FileMeta { start, size });
        Ok(id)
    }

    /// Delete a file, returning its extent to the free list (coalescing
    /// with neighbours).
    pub fn delete(&mut self, id: FileId) -> Result<(), VfsError> {
        let meta = self.files.remove(&id).ok_or(VfsError::NotFound)?;
        let mut start = meta.start;
        let mut len = meta.size;
        // Coalesce with the previous free extent if adjacent.
        if let Some((&prev_start, &prev_len)) = self.free.range(..start).next_back() {
            if prev_start + prev_len == start {
                self.free.remove(&prev_start);
                start = prev_start;
                len += prev_len;
            }
        }
        // Coalesce with the next free extent if adjacent.
        if let Some((&next_start, &next_len)) = self.free.range(start..).next() {
            if start + len == next_start {
                self.free.remove(&next_start);
                len += next_len;
            }
        }
        self.free.insert(start, len);
        Ok(())
    }

    /// File size in bytes.
    pub fn size_of(&self, id: FileId) -> Result<u64, VfsError> {
        self.files
            .get(&id)
            .map(|m| m.size)
            .ok_or(VfsError::NotFound)
    }

    /// Translate a file-relative range to a virtual-disk byte offset.
    pub fn translate(&self, id: FileId, offset: u64, len: u64) -> Result<u64, VfsError> {
        let meta = self.files.get(&id).ok_or(VfsError::NotFound)?;
        if offset + len > meta.size {
            return Err(VfsError::OutOfBounds);
        }
        Ok(meta.start + offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_translate() {
        let mut vfs = Vfs::new(1 << 20);
        let a = vfs.create(4096).unwrap();
        let b = vfs.create(8192).unwrap();
        assert_ne!(a, b);
        assert_eq!(vfs.translate(a, 0, 4096).unwrap(), 0);
        assert_eq!(vfs.translate(b, 100, 10).unwrap(), 4096 + 100);
        assert_eq!(vfs.file_count(), 2);
        assert_eq!(vfs.used_bytes(), 12288);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut vfs = Vfs::new(1 << 20);
        let a = vfs.create(4096).unwrap();
        assert_eq!(vfs.translate(a, 4000, 200), Err(VfsError::OutOfBounds));
        assert_eq!(vfs.translate(FileId(99), 0, 1), Err(VfsError::NotFound));
    }

    #[test]
    fn no_space_when_full() {
        let mut vfs = Vfs::new(10_000);
        vfs.create(8_000).unwrap();
        assert_eq!(vfs.create(4_000), Err(VfsError::NoSpace));
        // But a smaller file still fits.
        assert!(vfs.create(2_000).is_ok());
    }

    #[test]
    fn delete_coalesces_free_space() {
        let mut vfs = Vfs::new(12_000);
        let a = vfs.create(4_000).unwrap();
        let b = vfs.create(4_000).unwrap();
        let c = vfs.create(4_000).unwrap();
        // Free the middle, then the first: they must coalesce so a
        // 8000-byte file fits again.
        vfs.delete(b).unwrap();
        vfs.delete(a).unwrap();
        let d = vfs.create(8_000).unwrap();
        assert_eq!(vfs.translate(d, 0, 1).unwrap(), 0);
        // Freeing everything coalesces back to one extent of the full disk.
        vfs.delete(c).unwrap();
        vfs.delete(d).unwrap();
        let e = vfs.create(12_000).unwrap();
        assert_eq!(vfs.translate(e, 0, 1).unwrap(), 0);
    }

    #[test]
    fn delete_unknown_file() {
        let mut vfs = Vfs::new(1 << 20);
        assert_eq!(vfs.delete(FileId(5)), Err(VfsError::NotFound));
    }

    #[test]
    fn reuse_after_delete_first_fit() {
        let mut vfs = Vfs::new(20_000);
        let a = vfs.create(5_000).unwrap();
        let _b = vfs.create(5_000).unwrap();
        vfs.delete(a).unwrap();
        // New small file lands in the freed hole (first fit).
        let c = vfs.create(1_000).unwrap();
        assert_eq!(vfs.translate(c, 0, 1).unwrap(), 0);
    }
}
