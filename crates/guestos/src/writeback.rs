//! Writeback (flusher-thread) policy state.
//!
//! Mirrors the Linux knobs the paper manipulates: background writeback
//! starts at `background_ratio` dirty, writers are throttled at
//! `dirty_ratio` (the paper sweeps 10–40%), a periodic flusher wakes every
//! `periodic_interval`, and pages older than `dirty_expire` are flushed
//! regardless. The `sync()` path drains everything — this is what
//! IOrchestra's `flush_now` triggers remotely via the system store.

use iorch_simcore::{SimDuration, SimTime};

use crate::pagecache::{ChunkIdx, PageCache, CHUNK_SIZE};

/// Writeback tunables.
#[derive(Clone, Copy, Debug)]
pub struct WritebackParams {
    /// Start background writeback above this dirty fraction.
    pub background_ratio: f64,
    /// Throttle writers at this dirty fraction (Linux `dirty_ratio`).
    pub dirty_ratio: f64,
    /// Periodic flusher wakeup (Linux `dirty_writeback_centisecs` = 5 s).
    pub periodic_interval: SimDuration,
    /// Age at which dirty pages must be flushed (Linux 30 s; shortened in
    /// simulation configs to exercise the path).
    pub dirty_expire: SimDuration,
    /// Max chunks handed to the block layer per flusher wakeup.
    pub batch_chunks: usize,
    /// Max chunks in flight to the device at once (writeback window).
    pub max_inflight_chunks: usize,
    /// Minimum sleep for a throttled writer (`balance_dirty_pages` pauses
    /// are coarse timed sleeps in Linux 3.5 — in a VM the bandwidth
    /// estimate behind them is wrong, so pauses routinely overshoot).
    pub throttle_pause: SimDuration,
}

impl Default for WritebackParams {
    fn default() -> Self {
        WritebackParams {
            background_ratio: 0.10,
            dirty_ratio: 0.20,
            periodic_interval: SimDuration::from_secs(5),
            dirty_expire: SimDuration::from_secs(30),
            // The flusher pushes work into the block layer until the
            // request queue itself pushes back (congestion avoidance) —
            // the window only guards against unbounded memory, so it is
            // large (Linux limits per-inode work, not global in-flight).
            batch_chunks: 1024, // 64 MiB per wakeup
            max_inflight_chunks: 4096,
            throttle_pause: SimDuration::from_millis(25),
        }
    }
}

/// Flusher-thread state: periodic schedule plus the in-flight window.
#[derive(Clone, Debug)]
pub struct Writeback {
    params: WritebackParams,
    next_wakeup: SimTime,
    inflight_chunks: usize,
    flushed_chunks: u64,
}

impl Writeback {
    /// New flusher starting its periodic clock at `now`.
    pub fn new(params: WritebackParams, now: SimTime) -> Self {
        assert!(params.background_ratio < params.dirty_ratio);
        Writeback {
            next_wakeup: now + params.periodic_interval,
            params,
            inflight_chunks: 0,
            flushed_chunks: 0,
        }
    }

    /// The parameters in force.
    pub fn params(&self) -> &WritebackParams {
        &self.params
    }

    /// When the periodic flusher should next run.
    pub fn next_wakeup(&self) -> SimTime {
        self.next_wakeup
    }

    /// Chunks currently in flight to the device.
    pub fn inflight(&self) -> usize {
        self.inflight_chunks
    }

    /// Total chunks ever submitted for writeback.
    pub fn flushed_chunks(&self) -> u64 {
        self.flushed_chunks
    }

    /// Should writers be throttled right now? Counts dirty **and**
    /// writeback pages, as Linux's `balance_dirty_pages` does — otherwise
    /// moving pages into writeback would instantly unthrottle writers.
    pub fn should_throttle(&self, cache: &PageCache) -> bool {
        cache.unstable_fraction() >= self.params.dirty_ratio
    }

    /// May a throttled writer resume? Linux drains below the midpoint of
    /// the background and dirty thresholds before releasing writers
    /// (hysteresis), so bigger ratios mean deeper drains.
    pub fn may_wake_throttled(&self, cache: &PageCache) -> bool {
        let wake_at = (self.params.background_ratio + self.params.dirty_ratio) / 2.0;
        cache.unstable_fraction() < wake_at
    }

    /// Is background writeback warranted?
    pub fn background_needed(&self, cache: &PageCache) -> bool {
        cache.dirty_fraction() > self.params.background_ratio
    }

    fn window_room(&self) -> usize {
        self.params
            .max_inflight_chunks
            .saturating_sub(self.inflight_chunks)
    }

    /// Periodic flusher body: flush expired chunks, then (if above the
    /// background ratio) more of the oldest dirty chunks, bounded by the
    /// batch size and the in-flight window. Advances the periodic clock.
    pub fn on_periodic(&mut self, cache: &mut PageCache, now: SimTime) -> Vec<ChunkIdx> {
        self.next_wakeup = now + self.params.periodic_interval;
        let budget = self.params.batch_chunks.min(self.window_room());
        if budget == 0 {
            return Vec::new();
        }
        let expire_limit = now - self.params.dirty_expire;
        let mut taken = cache.take_dirty_batch(budget, Some(expire_limit));
        if self.background_needed(cache) {
            let extra = budget - taken.len();
            taken.extend(cache.take_dirty_batch(extra, None));
        }
        self.inflight_chunks += taken.len();
        self.flushed_chunks += taken.len() as u64;
        taken
    }

    /// Background kick (called when a write crosses the background ratio,
    /// without waiting for the periodic timer).
    pub fn on_background(&mut self, cache: &mut PageCache) -> Vec<ChunkIdx> {
        if !self.background_needed(cache) {
            return Vec::new();
        }
        let budget = self.params.batch_chunks.min(self.window_room());
        let taken = cache.take_dirty_batch(budget, None);
        self.inflight_chunks += taken.len();
        self.flushed_chunks += taken.len() as u64;
        taken
    }

    /// `sync()`: take *all* dirty chunks regardless of window (the window
    /// only limits steady-state writeback; sync is a barrier operation).
    pub fn on_sync(&mut self, cache: &mut PageCache) -> Vec<ChunkIdx> {
        let taken = cache.take_dirty_batch(usize::MAX, None);
        self.inflight_chunks += taken.len();
        self.flushed_chunks += taken.len() as u64;
        taken
    }

    /// A writeback chunk completed at the device.
    pub fn on_chunk_done(&mut self, cache: &mut PageCache, idx: ChunkIdx) {
        cache.writeback_done(idx);
        self.inflight_chunks = self.inflight_chunks.saturating_sub(1);
    }
}

/// Coalesce sorted chunk indices into `(start_chunk, chunk_count)` runs of
/// at most `max_chunks` — writeback issues one big sequential request per
/// run instead of one request per 64 KiB chunk.
pub fn coalesce_chunks(mut chunks: Vec<ChunkIdx>, max_chunks: usize) -> Vec<(ChunkIdx, u64)> {
    assert!(max_chunks >= 1);
    chunks.sort_unstable();
    chunks.dedup();
    let mut runs = Vec::new();
    let mut iter = chunks.into_iter();
    let Some(first) = iter.next() else {
        return runs;
    };
    let mut start = first;
    let mut count = 1u64;
    for c in iter {
        if c == start + count && (count as usize) < max_chunks {
            count += 1;
        } else {
            runs.push((start, count));
            start = c;
            count = 1;
        }
    }
    runs.push((start, count));
    runs
}

/// Convert a chunk run into `(byte_offset, byte_len)` on the virtual disk.
pub fn run_to_bytes(run: (ChunkIdx, u64)) -> (u64, u64) {
    (run.0 * CHUNK_SIZE, run.1 * CHUNK_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagecache::CHUNK_PAGES;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn small_params() -> WritebackParams {
        WritebackParams {
            background_ratio: 0.10,
            dirty_ratio: 0.20,
            periodic_interval: SimDuration::from_millis(500),
            dirty_expire: SimDuration::from_millis(3000),
            batch_chunks: 8,
            max_inflight_chunks: 16,
            throttle_pause: SimDuration::from_millis(5),
        }
    }

    #[test]
    fn periodic_flushes_only_expired_when_below_background() {
        let mut wb = Writeback::new(small_params(), t(0));
        let mut pc = PageCache::new(100 * CHUNK_PAGES);
        pc.mark_dirty(1, t(0));
        pc.mark_dirty(2, t(4000));
        // At t=4s, chunk 1 (age 4s) is expired, chunk 2 (age 0) is not, and
        // dirty fraction 2% is below background.
        let taken = wb.on_periodic(&mut pc, t(4000));
        assert_eq!(taken, vec![1]);
        assert_eq!(wb.next_wakeup(), t(4500));
    }

    #[test]
    fn periodic_flushes_more_above_background() {
        let mut wb = Writeback::new(small_params(), t(0));
        let mut pc = PageCache::new(100 * CHUNK_PAGES);
        for i in 0..15 {
            pc.mark_dirty(i, t(i)); // 15% dirty > 10% background
        }
        let taken = wb.on_periodic(&mut pc, t(100));
        // Nothing expired, but background kicks in, bounded by batch = 8.
        assert_eq!(taken.len(), 8);
        assert_eq!(wb.inflight(), 8);
    }

    #[test]
    fn window_limits_inflight() {
        let mut wb = Writeback::new(small_params(), t(0));
        let mut pc = PageCache::new(100 * CHUNK_PAGES);
        for i in 0..40 {
            pc.mark_dirty(i, t(0));
        }
        let a = wb.on_background(&mut pc);
        let b = wb.on_background(&mut pc);
        let c = wb.on_background(&mut pc);
        assert_eq!(a.len() + b.len() + c.len(), 16); // window cap
        wb.on_chunk_done(&mut pc, a[0]);
        let d = wb.on_background(&mut pc);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn sync_ignores_window() {
        let mut wb = Writeback::new(small_params(), t(0));
        let mut pc = PageCache::new(1000 * CHUNK_PAGES);
        for i in 0..50 {
            pc.mark_dirty(i, t(0));
        }
        let taken = wb.on_sync(&mut pc);
        assert_eq!(taken.len(), 50);
        assert_eq!(pc.dirty_pages(), 0);
    }

    #[test]
    fn throttle_threshold() {
        let wb = Writeback::new(small_params(), t(0));
        let mut pc = PageCache::new(100 * CHUNK_PAGES);
        for i in 0..19 {
            pc.mark_dirty(i, t(0));
        }
        assert!(!wb.should_throttle(&pc)); // 19% < 20%
        pc.mark_dirty(19, t(0));
        assert!(wb.should_throttle(&pc)); // 20%
    }

    #[test]
    fn coalesce_runs() {
        let runs = coalesce_chunks(vec![5, 1, 2, 3, 9, 10, 2], 8);
        assert_eq!(runs, vec![(1, 3), (5, 1), (9, 2)]);
    }

    #[test]
    fn coalesce_respects_max() {
        let runs = coalesce_chunks((0..20).collect(), 8);
        assert_eq!(runs, vec![(0, 8), (8, 8), (16, 4)]);
    }

    #[test]
    fn coalesce_empty() {
        assert!(coalesce_chunks(vec![], 8).is_empty());
    }

    #[test]
    fn run_byte_conversion() {
        assert_eq!(run_to_bytes((2, 3)), (2 * CHUNK_SIZE, 3 * CHUNK_SIZE));
    }
}
