//! Guest block-layer request queue with Linux's congestion-avoidance state
//! machine and plug/unplug batching.
//!
//! Linux holds `nr_requests` (128) request descriptors per queue. When the
//! allocated count reaches **7/8** of the limit the queue is marked
//! congested and submitting processes are put to sleep; when it drops below
//! **13/16** the congestion flag clears and sleepers are woken (paper §3.2).
//! Under IOrchestra the guest first *asks the host* whether the device is
//! actually congested; if not, the queue is unplugged/flushed and submission
//! continues (`release_request`), avoiding the falsely-triggered sleep.

use std::collections::VecDeque;

use iorch_simcore::trace::TraceEventKind;
use iorch_simcore::{trace_event, SimDuration, SimTime};
use iorch_storage::{IoKind, IoRequest};

/// Linux default queue depth.
pub const NR_REQUESTS: usize = 128;

/// Congestion ON at `7/8 * nr_requests` allocated descriptors.
#[inline]
pub fn congestion_on_threshold(nr_requests: usize) -> usize {
    nr_requests * 7 / 8
}

/// Congestion OFF below `13/16 * nr_requests` allocated descriptors.
#[inline]
pub fn congestion_off_threshold(nr_requests: usize) -> usize {
    nr_requests * 13 / 16
}

/// Tunables for the guest queue.
#[derive(Clone, Copy, Debug)]
pub struct GuestQueueParams {
    /// Request descriptor limit (`nr_requests`).
    pub nr_requests: usize,
    /// Dispatch when this many requests are plugged.
    pub plug_max: usize,
    /// ... or when the oldest plugged request is this old.
    pub plug_delay: SimDuration,
    /// Guest-level elevator merge size cap.
    pub max_merged_len: u64,
    /// Hard ceiling on allocation while the collaborative bypass is active.
    pub bypass_hard_limit: usize,
    /// Delay between the congestion flag clearing and blocked submitters
    /// actually resuming (context switch + VCPU scheduling of the woken
    /// process — the sleep cost §3.2 attributes to congestion avoidance).
    pub wake_delay: SimDuration,
}

impl Default for GuestQueueParams {
    fn default() -> Self {
        GuestQueueParams {
            nr_requests: NR_REQUESTS,
            plug_max: 16,
            plug_delay: SimDuration::from_millis(3),
            max_merged_len: 512 * 1024,
            bypass_hard_limit: NR_REQUESTS * 4,
            wake_delay: SimDuration::from_millis(1),
        }
    }
}

/// Result of a submission attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Submit {
    /// Request accepted into the queue.
    Accepted,
    /// Queue congested: the submitting process must sleep.
    Blocked,
}

/// Edge-triggered events the kernel consumes after each queue interaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueEvent {
    /// Allocation crossed the 7/8 threshold; the congestion-avoidance
    /// function is being called. Baseline: enter congestion. IOrchestra:
    /// ask the host first.
    CongestionWouldEnter,
    /// Allocation fell below 13/16; sleepers may be woken.
    Uncongested,
}

/// The guest request queue.
#[derive(Clone, Debug)]
pub struct GuestQueue {
    params: GuestQueueParams,
    /// Plugged/queued requests not yet pushed to the frontend ring.
    queued: VecDeque<IoRequest>,
    /// Descriptors owned by requests dispatched to the ring but not completed.
    dispatched: usize,
    congested: bool,
    /// Collaborative bypass: ignore the descriptor limit until allocation
    /// falls below the off threshold again.
    bypass: bool,
    /// Latch: a [`QueueEvent::CongestionWouldEnter`] has been raised and
    /// not yet answered (`enter_congestion`/`grant_bypass`) nor voided by
    /// allocation dropping below the off threshold. Prevents duplicate
    /// host queries per plug batch.
    query_outstanding: bool,
    plug_deadline: Option<SimTime>,
    events: Vec<QueueEvent>,
    /// Domain tag stamped on trace events (the guest's stream id).
    tag: u32,
    // Statistics.
    congestion_entries: u64,
    bypass_grants: u64,
    merged: u64,
}

impl GuestQueue {
    /// New empty queue.
    pub fn new(params: GuestQueueParams) -> Self {
        assert!(params.nr_requests >= 16);
        GuestQueue {
            params,
            queued: VecDeque::new(),
            dispatched: 0,
            congested: false,
            bypass: false,
            query_outstanding: false,
            plug_deadline: None,
            events: Vec::new(),
            congestion_entries: 0,
            bypass_grants: 0,
            merged: 0,
            tag: 0,
        }
    }

    /// Set the domain tag stamped on this queue's trace events.
    pub fn set_trace_tag(&mut self, tag: u32) {
        self.tag = tag;
    }

    /// Allocated descriptors: plugged + dispatched-not-completed.
    pub fn allocated(&self) -> usize {
        self.queued.len() + self.dispatched
    }

    /// Whether the congestion flag is set (submitters sleep).
    pub fn is_congested(&self) -> bool {
        self.congested
    }

    /// Whether the collaborative bypass is active.
    pub fn bypass_active(&self) -> bool {
        self.bypass
    }

    /// Times the congestion flag was set.
    pub fn congestion_entries(&self) -> u64 {
        self.congestion_entries
    }

    /// Times a collaborative bypass was granted.
    pub fn bypass_grants(&self) -> u64 {
        self.bypass_grants
    }

    /// Requests absorbed by guest-level merging.
    pub fn merged_count(&self) -> u64 {
        self.merged
    }

    /// Drain edge-triggered events.
    pub fn poll_events(&mut self) -> Vec<QueueEvent> {
        std::mem::take(&mut self.events)
    }

    /// Try to submit a request at `now`.
    pub fn submit(&mut self, req: IoRequest, now: SimTime) -> Submit {
        if self.congested {
            trace_event!(
                now,
                TraceEventKind::QueueBlocked {
                    dom: self.tag,
                    req: req.id.0,
                }
            );
            return Submit::Blocked;
        }
        if self.bypass && self.allocated() >= self.params.bypass_hard_limit {
            // Even collaboration has a ceiling; fall back to blocking.
            trace_event!(
                now,
                TraceEventKind::QueueBlocked {
                    dom: self.tag,
                    req: req.id.0,
                }
            );
            return Submit::Blocked;
        }
        // Elevator back-merge into the plugged tail.
        if let Some(tail) = self.queued.back_mut() {
            if tail.can_back_merge(&req) && tail.len + req.len <= self.params.max_merged_len {
                tail.len += req.len;
                self.merged += 1;
                trace_event!(
                    now,
                    TraceEventKind::QueueMerge {
                        dom: self.tag,
                        req: req.id.0,
                        len: req.len,
                    }
                );
                return Submit::Accepted;
            }
        }
        if self.queued.is_empty() {
            self.plug_deadline = Some(now + self.params.plug_delay);
        }
        trace_event!(
            now,
            TraceEventKind::QueueSubmit {
                dom: self.tag,
                req: req.id.0,
                write: matches!(req.kind, IoKind::Write),
                len: req.len,
            }
        );
        self.queued.push_back(req);
        let on = congestion_on_threshold(self.params.nr_requests);
        if !self.bypass && !self.congested && !self.query_outstanding && self.allocated() >= on {
            // Latch until answered or allocation falls below the off
            // threshold: one unanswered query at a time.
            self.query_outstanding = true;
            self.events.push(QueueEvent::CongestionWouldEnter);
            trace_event!(
                now,
                TraceEventKind::CongestionQuery {
                    dom: self.tag,
                    allocated: self.allocated() as u32,
                }
            );
        }
        Submit::Accepted
    }

    /// Baseline answer to [`QueueEvent::CongestionWouldEnter`]: set the
    /// congestion flag; submitters sleep until the off threshold.
    pub fn enter_congestion(&mut self, now: SimTime) {
        // The outstanding query is answered either way.
        self.query_outstanding = false;
        if !self.congested {
            self.congested = true;
            self.congestion_entries += 1;
            trace_event!(now, TraceEventKind::CongestionEnter { dom: self.tag });
        }
    }

    /// Collaborative answer: the host is *not* congested, so unplug and
    /// keep the pipe full instead of sleeping (`release_request`). Clears
    /// an active congestion flag and wakes sleepers — the paper's "notify
    /// VMi to flush devj's request queue; congested = 0".
    pub fn grant_bypass(&mut self, now: SimTime) {
        self.query_outstanding = false;
        if self.congested {
            self.congested = false;
            self.events.push(QueueEvent::Uncongested);
            trace_event!(now, TraceEventKind::CongestionClear { dom: self.tag });
        }
        if !self.bypass {
            self.bypass = true;
            self.bypass_grants += 1;
            trace_event!(now, TraceEventKind::BypassGrant { dom: self.tag });
        }
        // An explicit unplug comes with the release.
        self.plug_deadline = Some(SimTime::ZERO);
    }

    /// The host *became* congested while a bypass was active; revert to
    /// normal congestion behaviour. If allocation still sits at/above the
    /// on threshold the congestion-avoidance query is re-raised — without
    /// it a full queue would neither sleep nor re-query until the next
    /// submission.
    pub fn revoke_bypass(&mut self, now: SimTime) {
        let was_active = self.bypass;
        self.bypass = false;
        let on = congestion_on_threshold(self.params.nr_requests);
        let requery = !self.congested && !self.query_outstanding && self.allocated() >= on;
        if requery {
            self.query_outstanding = true;
            self.events.push(QueueEvent::CongestionWouldEnter);
        }
        if was_active {
            trace_event!(
                now,
                TraceEventKind::BypassRevoke {
                    dom: self.tag,
                    requery,
                }
            );
        }
    }

    /// Earliest plug deadline, for the kernel's timer scheduling.
    pub fn plug_deadline(&self) -> Option<SimTime> {
        if self.queued.is_empty() {
            None
        } else {
            self.plug_deadline
        }
    }

    /// Pop requests that should go to the frontend ring now: everything if
    /// unplugged (deadline passed, batch full, bypass, or explicit sync).
    pub fn take_dispatchable(&mut self, now: SimTime, force_unplug: bool) -> Vec<IoRequest> {
        let unplug = force_unplug
            || self.bypass
            || self.queued.len() >= self.params.plug_max
            || self.plug_deadline.is_some_and(|d| now >= d);
        if !unplug {
            return Vec::new();
        }
        let batch: Vec<IoRequest> = self.queued.drain(..).collect();
        if !batch.is_empty() {
            trace_event!(
                now,
                TraceEventKind::Unplug {
                    dom: self.tag,
                    batch: batch.len() as u32,
                    forced: force_unplug,
                }
            );
        }
        self.dispatched += batch.len();
        self.plug_deadline = None;
        batch
    }

    /// A dispatched request completed; frees its descriptor and may clear
    /// congestion / bypass.
    ///
    /// # Panics
    ///
    /// Freeing more descriptors than are dispatched (a double completion)
    /// is a simulator invariant violation and aborts the run — in every
    /// build profile, after recording a
    /// [`TraceEventKind::DescriptorUnderflow`] event.
    pub fn on_complete(&mut self, n: usize, now: SimTime) {
        if n > self.dispatched {
            trace_event!(
                now,
                TraceEventKind::DescriptorUnderflow {
                    dom: self.tag,
                    dispatched: self.dispatched as u32,
                    completed: n as u32,
                }
            );
            panic!(
                "descriptor underflow on dom {}: completed {} with {} dispatched \
                 (double completion)",
                self.tag, n, self.dispatched
            );
        }
        self.dispatched -= n;
        let off = congestion_off_threshold(self.params.nr_requests);
        if self.allocated() < off {
            // Any unanswered congestion query is void below the off
            // threshold — the condition it asked about no longer holds.
            self.query_outstanding = false;
            if self.congested {
                self.congested = false;
                self.events.push(QueueEvent::Uncongested);
                trace_event!(now, TraceEventKind::CongestionClear { dom: self.tag });
            }
            if self.bypass {
                self.bypass = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iorch_storage::{IoKind, RequestId, StreamId};

    fn req(id: u64, offset: u64) -> IoRequest {
        IoRequest {
            id: RequestId(id),
            kind: IoKind::Read,
            stream: StreamId(0),
            offset,
            len: 4096,
            submitted: SimTime::ZERO,
        }
    }

    fn fill(q: &mut GuestQueue, n: usize, start_id: u64) {
        for i in 0..n {
            let r = req(start_id + i as u64, (start_id + i as u64) * 1_000_000);
            assert_eq!(q.submit(r, SimTime::ZERO), Submit::Accepted);
            // Keep the plug list drained so descriptors count as dispatched.
            q.take_dispatchable(SimTime::ZERO, true);
        }
    }

    #[test]
    fn thresholds_match_linux_ratios() {
        assert_eq!(congestion_on_threshold(128), 112);
        assert_eq!(congestion_off_threshold(128), 104);
    }

    #[test]
    fn crossing_on_threshold_emits_event() {
        let mut q = GuestQueue::new(GuestQueueParams::default());
        fill(&mut q, 111, 0);
        assert!(q.poll_events().is_empty());
        assert_eq!(
            q.submit(req(200, 500 << 20), SimTime::ZERO),
            Submit::Accepted
        );
        assert_eq!(q.poll_events(), vec![QueueEvent::CongestionWouldEnter]);
    }

    #[test]
    fn baseline_congestion_blocks_then_uncongests() {
        let mut q = GuestQueue::new(GuestQueueParams::default());
        fill(&mut q, 112, 0);
        q.poll_events();
        q.enter_congestion(SimTime::ZERO);
        assert!(q.is_congested());
        assert_eq!(
            q.submit(req(300, 600 << 20), SimTime::ZERO),
            Submit::Blocked
        );
        // Complete down to 104 allocated: still congested (off is *below* 104).
        q.on_complete(8, SimTime::ZERO);
        assert!(q.is_congested());
        // One more completion: 103 < 104 -> uncongested.
        q.on_complete(1, SimTime::ZERO);
        assert!(!q.is_congested());
        assert_eq!(q.poll_events(), vec![QueueEvent::Uncongested]);
        assert_eq!(
            q.submit(req(301, 700 << 20), SimTime::ZERO),
            Submit::Accepted
        );
        assert_eq!(q.congestion_entries(), 1);
    }

    #[test]
    fn bypass_keeps_accepting_past_limit() {
        let mut q = GuestQueue::new(GuestQueueParams::default());
        fill(&mut q, 112, 0);
        q.poll_events();
        q.grant_bypass(SimTime::ZERO);
        assert!(q.bypass_active());
        // Can now go far past nr_requests without blocking or re-signalling.
        for i in 0..100 {
            assert_eq!(
                q.submit(req(400 + i, (400 + i) * 1_000_000), SimTime::ZERO),
                Submit::Accepted
            );
            q.take_dispatchable(SimTime::ZERO, true);
        }
        assert!(q.poll_events().is_empty());
        assert_eq!(q.bypass_grants(), 1);
    }

    #[test]
    fn bypass_hard_limit_still_blocks() {
        let mut q = GuestQueue::new(GuestQueueParams::default());
        fill(&mut q, 112, 0);
        q.grant_bypass(SimTime::ZERO);
        fill(&mut q, 512 - 112, 1000);
        assert_eq!(
            q.submit(req(9999, 999 << 20), SimTime::ZERO),
            Submit::Blocked
        );
    }

    #[test]
    fn bypass_clears_below_off_threshold() {
        let mut q = GuestQueue::new(GuestQueueParams::default());
        fill(&mut q, 120, 0);
        q.grant_bypass(SimTime::ZERO);
        q.on_complete(20, SimTime::ZERO); // 100 < 104
        assert!(!q.bypass_active());
    }

    #[test]
    fn congestion_query_latched_until_answered() {
        let mut q = GuestQueue::new(GuestQueueParams::default());
        fill(&mut q, 112, 0);
        assert_eq!(q.poll_events(), vec![QueueEvent::CongestionWouldEnter]);
        // Further submissions at/above the threshold must NOT re-raise the
        // query while it is unanswered (the old code duplicated it per
        // plug-batch submission).
        fill(&mut q, 3, 500);
        assert!(q.poll_events().is_empty());
        // Answering re-arms the latch...
        q.enter_congestion(SimTime::ZERO);
        q.on_complete(12, SimTime::ZERO); // 103 < 104: uncongest + re-arm
        assert_eq!(q.poll_events(), vec![QueueEvent::Uncongested]);
        // ...so crossing the threshold again raises exactly one new query.
        fill(&mut q, 9, 600);
        assert_eq!(q.poll_events(), vec![QueueEvent::CongestionWouldEnter]);
    }

    #[test]
    fn query_voided_by_falling_below_off_threshold() {
        let mut q = GuestQueue::new(GuestQueueParams::default());
        fill(&mut q, 112, 0);
        q.poll_events();
        // Unanswered query, then the queue drains below 13/16 on its own.
        q.on_complete(9, SimTime::ZERO); // 103 < 104
                                         // A fresh crossing must produce a fresh query.
        fill(&mut q, 9, 700);
        assert_eq!(q.poll_events(), vec![QueueEvent::CongestionWouldEnter]);
    }

    #[test]
    fn revoke_bypass_requeries_when_still_full() {
        let mut q = GuestQueue::new(GuestQueueParams::default());
        fill(&mut q, 112, 0);
        q.poll_events();
        q.grant_bypass(SimTime::ZERO);
        fill(&mut q, 30, 800); // well past the on threshold, bypassing
        assert!(q.poll_events().is_empty());
        q.revoke_bypass(SimTime::ZERO);
        assert!(!q.bypass_active());
        // Allocation (142) >= on (112): the query must be re-raised.
        assert_eq!(q.poll_events(), vec![QueueEvent::CongestionWouldEnter]);
        // And latched: revoking again does not duplicate it.
        q.revoke_bypass(SimTime::ZERO);
        assert!(q.poll_events().is_empty());
    }

    #[test]
    fn revoke_bypass_quiet_when_below_threshold() {
        let mut q = GuestQueue::new(GuestQueueParams::default());
        fill(&mut q, 50, 0);
        q.grant_bypass(SimTime::ZERO);
        q.poll_events();
        q.revoke_bypass(SimTime::ZERO);
        assert!(q.poll_events().is_empty());
    }

    #[test]
    #[should_panic(expected = "descriptor underflow")]
    fn double_completion_is_a_hard_error() {
        let mut q = GuestQueue::new(GuestQueueParams::default());
        fill(&mut q, 4, 0);
        q.on_complete(5, SimTime::ZERO);
    }

    #[test]
    fn plugging_batches_until_deadline() {
        let mut q = GuestQueue::new(GuestQueueParams::default());
        q.submit(req(0, 0), SimTime::ZERO);
        q.submit(req(1, 10 << 20), SimTime::ZERO);
        // Too early, not enough requests.
        assert!(q
            .take_dispatchable(SimTime::from_millis(1), false)
            .is_empty());
        // Deadline (3 ms) reached.
        let batch = q.take_dispatchable(SimTime::from_millis(3), false);
        assert_eq!(batch.len(), 2);
        assert_eq!(q.allocated(), 2); // now dispatched
    }

    #[test]
    fn plug_bursts_dispatch_at_batch_size() {
        let mut q = GuestQueue::new(GuestQueueParams::default());
        for i in 0..16 {
            q.submit(req(i, i * 1_000_000), SimTime::ZERO);
        }
        let batch = q.take_dispatchable(SimTime::ZERO, false);
        assert_eq!(batch.len(), 16);
    }

    #[test]
    fn contiguous_submissions_merge() {
        let mut q = GuestQueue::new(GuestQueueParams::default());
        q.submit(req(0, 0), SimTime::ZERO);
        let mut r = req(1, 4096);
        q.submit(r, SimTime::ZERO);
        r = req(2, 8192);
        q.submit(r, SimTime::ZERO);
        assert_eq!(q.merged_count(), 2);
        let batch = q.take_dispatchable(SimTime::ZERO, true);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].len, 3 * 4096);
    }

    #[test]
    fn plug_deadline_reported_for_timer() {
        let mut q = GuestQueue::new(GuestQueueParams::default());
        assert!(q.plug_deadline().is_none());
        q.submit(req(0, 0), SimTime::from_millis(10));
        assert_eq!(q.plug_deadline(), Some(SimTime::from_millis(13)));
        q.take_dispatchable(SimTime::from_millis(13), false);
        assert!(q.plug_deadline().is_none());
    }
}
