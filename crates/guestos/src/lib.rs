//! # iorch-guestos — simulated Linux guest I/O stack
//!
//! The guest-side half of the semantic gap. Each VM in the reproduction
//! runs one [`GuestKernel`], a faithful-in-structure model of the Linux 3.5
//! code paths the paper patches:
//!
//! * [`Vfs`] — files as extents on the virtual disk;
//! * [`PageCache`] — chunked LRU cache with dirty accounting
//!   (`bdi_writeback.nr`);
//! * [`Writeback`] — background/periodic/expire flushing, writer
//!   throttling at `dirty_ratio`, and the `sync()` barrier that
//!   IOrchestra's `flush_now` triggers remotely (paper §3.1);
//! * [`GuestQueue`] — the request queue with Linux's exact congestion
//!   hysteresis (on at 7/8 of `nr_requests`, off below 13/16) and the
//!   collaborative `release_request` bypass (paper §3.2);
//! * [`GuestKernel`] — the composition, driven by the hypervisor machine
//!   through timers, block completions and collaborative hooks.

#![warn(missing_docs)]

mod kernel;
mod pagecache;
mod queue;
mod vfs;
mod writeback;

pub use kernel::{
    CompletedOp, FileOp, GuestConfig, GuestKernel, KernelOutputs, KernelSignal, KernelStats,
    Misbehavior, OpClass, OpId,
};
pub use pagecache::{chunks_of, ChunkIdx, PageCache, CHUNK_PAGES, CHUNK_SIZE, PAGE_SIZE};
pub use queue::{
    congestion_off_threshold, congestion_on_threshold, GuestQueue, GuestQueueParams, QueueEvent,
    Submit, NR_REQUESTS,
};
pub use vfs::{FileId, Vfs, VfsError};
pub use writeback::{coalesce_chunks, run_to_bytes, Writeback, WritebackParams};
