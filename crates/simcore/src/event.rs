//! The event scheduler at the heart of the discrete-event engine.
//!
//! [`Scheduler`] keeps the pending events of a world `M` in a
//! **hierarchical timer wheel**: 11 levels of 64 slots each, with slot
//! width 64^k nanoseconds at level `k`. Level 0 resolves single
//! nanoseconds inside the clock's current 64 ns block; each higher level
//! covers 64x more time, and the top levels form the far-future overflow —
//! together the wheel spans the entire `u64` nanosecond range, so nothing
//! ever falls off the horizon. An event is filed at the first level whose
//! digit differs between its deadline and the current clock (one
//! `leading_zeros`, O(1)); as the clock advances into an occupied slot,
//! the slot's events **cascade** down to finer levels, each event moving
//! at most once per level over its whole life (amortized O(1) per event).
//!
//! Entries live in a slab arena and each slot is an intrusive doubly
//! linked FIFO through it, so cancellation is a true O(1) unlink — the
//! token carries the slab index, no tombstone set, no scan, no shifting —
//! and slots grow without per-slot allocations. Events at equal
//! timestamps fire in the order they were scheduled: scheduling appends
//! at a slot's tail, cascades re-file in list order, and a level-0 slot
//! holds exactly one timestamp, so the stable (time, sequence) tie-break
//! of the original binary-heap engine is kept bit-for-bit. That heap
//! engine is frozen as [`crate::event_legacy`] and a randomized
//! differential oracle (`tests/scheduler_differential.rs`) pins the
//! firing order of the two implementations to each other.
//!
//! Periodic events are built on top with a shared cancellation flag; a
//! cancelled periodic's already-queued tick is dropped without firing,
//! without advancing the clock and without counting as executed (the
//! legacy engine popped it as a dead event — a documented wart).

use std::cell::Cell;
use std::rc::Rc;

use crate::time::{SimDuration, SimTime};

/// A callback scheduled to run at a simulated instant. It receives the world
/// and the scheduler so it can mutate state and schedule follow-up events.
pub type Callback<M> = Box<dyn FnOnce(&mut M, &mut Scheduler<M>)>;

/// Identifies a scheduled event so it can be cancelled before firing.
///
/// The token records the event's slab index alongside its sequence
/// number, which lets [`Scheduler::cancel`] unlink the entry from its
/// wheel slot in O(1) — the sequence number guards against the slab cell
/// having been reused by a later event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventToken {
    seq: u64,
    idx: u32,
}

/// Handle to a periodic event; dropping it does **not** cancel the event,
/// call [`PeriodicHandle::cancel`] (or
/// [`Scheduler::cancel_periodic`] to also remove the queued tick from the
/// wheel immediately) explicitly.
#[derive(Clone, Debug)]
pub struct PeriodicHandle {
    cancelled: Rc<Cell<bool>>,
    /// Token of the currently queued tick, maintained by the tick chain so
    /// [`Scheduler::cancel_periodic`] can remove it in place.
    queued: Rc<Cell<Option<EventToken>>>,
}

impl PeriodicHandle {
    /// Stop the periodic event. The already-queued tick is dropped lazily
    /// by the scheduler without firing, without advancing the clock and
    /// without counting as executed.
    pub fn cancel(&self) {
        self.cancelled.set(true);
    }
    /// Whether the periodic event has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.get()
    }
}

/// 6 bits per wheel level: 64 slots.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// 11 levels x 6 bits = 66 bits >= the full u64 nanosecond range. Levels
/// 0..=6 are the "near future" (up to ~73 simulated minutes of relative
/// delay); levels 7..=10 are the far-future overflow.
const LEVELS: usize = 11;

/// Null link in the intrusive slot lists / slab free list.
const NIL: u32 = u32::MAX;

/// The wheel level at which an event with deadline `when` is filed while
/// the clock reads `cursor`: the position of the most significant 6-bit
/// digit in which the two differ.
#[inline]
fn level_for(cursor: u64, when: u64) -> usize {
    let x = cursor ^ when;
    if x == 0 {
        0
    } else {
        (63 - x.leading_zeros() as usize) / LEVEL_BITS as usize
    }
}

/// The slot within `level` for deadline `when`: the level's 6-bit digit.
#[inline]
fn slot_for(when: u64, level: usize) -> usize {
    ((when >> (LEVEL_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
}

struct Entry<M> {
    time: SimTime,
    seq: u64,
    /// Shared cancellation flag of a periodic tick; `None` for one-shot
    /// events. A set flag makes the entry dead: it is purged on sight
    /// instead of fired.
    guard: Option<Rc<Cell<bool>>>,
    cb: Callback<M>,
    /// Intrusive links within the entry's current wheel slot.
    prev: u32,
    next: u32,
    /// Where the entry is currently filed, so unlink never has to
    /// recompute (or mis-compute) its slot.
    lvl: u8,
    slot: u8,
}

impl<M> Entry<M> {
    #[inline]
    fn is_dead(&self) -> bool {
        self.guard.as_ref().is_some_and(|g| g.get())
    }
}

/// Slab cell: a live entry, or a link in the free list.
enum Node<M> {
    Used(Entry<M>),
    Free(u32),
}

/// Head/tail of one slot's intrusive FIFO.
#[derive(Clone, Copy)]
struct Slot {
    head: u32,
    tail: u32,
}

impl Slot {
    const EMPTY: Slot = Slot {
        head: NIL,
        tail: NIL,
    };
}

struct Level {
    /// Bit `i` set iff slot `i` is non-empty.
    occupied: u64,
    slots: [Slot; SLOTS],
}

impl Level {
    const EMPTY: Level = Level {
        occupied: 0,
        slots: [Slot::EMPTY; SLOTS],
    };
}

/// Timer-wheel priority queue of simulated events over a world `M`.
pub struct Scheduler<M> {
    now: SimTime,
    next_seq: u64,
    executed: u64,
    /// Entries currently filed in the wheel (including dead periodic
    /// ticks not yet purged).
    len: usize,
    /// Entries carrying a periodic-cancellation guard; when zero the
    /// purge scan is skipped entirely on the hot path.
    guarded: usize,
    /// Entry storage; slots link through it, freed cells chain from
    /// `free_head`.
    arena: Vec<Node<M>>,
    free_head: u32,
    levels: Box<[Level; LEVELS]>,
}

impl<M> Default for Scheduler<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Scheduler<M> {
    /// Empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            next_seq: 0,
            executed: 0,
            len: 0,
            guarded: 0,
            arena: Vec::new(),
            free_head: NIL,
            levels: Box::new([Level::EMPTY; LEVELS]),
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still filed in the wheel (including the dead tick
    /// of a flag-cancelled periodic until it is lazily purged).
    #[inline]
    pub fn pending(&self) -> usize {
        self.len
    }

    // ---- slab + intrusive-list primitives ----

    #[inline]
    fn entry(&self, idx: u32) -> &Entry<M> {
        match &self.arena[idx as usize] {
            Node::Used(e) => e,
            Node::Free(_) => unreachable!("dangling wheel link"),
        }
    }

    #[inline]
    fn entry_mut(&mut self, idx: u32) -> &mut Entry<M> {
        match &mut self.arena[idx as usize] {
            Node::Used(e) => e,
            Node::Free(_) => unreachable!("dangling wheel link"),
        }
    }

    #[inline]
    fn alloc(&mut self, e: Entry<M>) -> u32 {
        if self.free_head == NIL {
            self.arena.push(Node::Used(e));
            (self.arena.len() - 1) as u32
        } else {
            let idx = self.free_head;
            match std::mem::replace(&mut self.arena[idx as usize], Node::Used(e)) {
                Node::Free(next) => self.free_head = next,
                Node::Used(_) => unreachable!("free head points at a live entry"),
            }
            idx
        }
    }

    /// Release a slab cell, returning its entry.
    #[inline]
    fn release(&mut self, idx: u32) -> Entry<M> {
        let node = std::mem::replace(&mut self.arena[idx as usize], Node::Free(self.free_head));
        self.free_head = idx;
        match node {
            Node::Used(e) => e,
            Node::Free(_) => unreachable!("double free in wheel slab"),
        }
    }

    /// Append entry `idx` at the tail of `(lvl, slot)` (FIFO order).
    #[inline]
    fn link_tail(&mut self, lvl: usize, slot: usize, idx: u32) {
        let s = self.levels[lvl].slots[slot & (SLOTS - 1)];
        {
            let e = self.entry_mut(idx);
            e.prev = s.tail;
            e.next = NIL;
            e.lvl = lvl as u8;
            e.slot = slot as u8;
        }
        if s.tail == NIL {
            self.levels[lvl].occupied |= 1u64 << slot;
            self.levels[lvl].slots[slot & (SLOTS - 1)] = Slot {
                head: idx,
                tail: idx,
            };
        } else {
            self.entry_mut(s.tail).next = idx;
            self.levels[lvl].slots[slot & (SLOTS - 1)].tail = idx;
        }
    }

    /// Detach entry `idx` from its slot (O(1) via the stored links).
    #[inline]
    fn unlink(&mut self, idx: u32) {
        let (lvl, slot, prev, next) = {
            let e = self.entry(idx);
            (e.lvl as usize, e.slot as usize, e.prev, e.next)
        };
        if prev == NIL {
            self.levels[lvl].slots[slot & (SLOTS - 1)].head = next;
        } else {
            self.entry_mut(prev).next = next;
        }
        if next == NIL {
            self.levels[lvl].slots[slot & (SLOTS - 1)].tail = prev;
        } else {
            self.entry_mut(next).prev = prev;
        }
        if self.levels[lvl].slots[slot & (SLOTS - 1)].head == NIL {
            self.levels[lvl].occupied &= !(1u64 << slot);
        }
    }

    /// File an entry relative to `cursor` (the clock position the wheel
    /// invariants are anchored to). Does not touch the counters.
    #[inline]
    fn insert_raw(&mut self, cursor: u64, entry: Entry<M>) -> u32 {
        let when = entry.time.as_nanos();
        debug_assert!(when >= cursor);
        let lvl = level_for(cursor, when);
        let slot = slot_for(when, lvl);
        let idx = self.alloc(entry);
        self.link_tail(lvl, slot, idx);
        idx
    }

    #[inline]
    fn new_entry(
        &mut self,
        at: SimTime,
        guard: Option<Rc<Cell<bool>>>,
        cb: Callback<M>,
    ) -> (Entry<M>, u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        (
            Entry {
                time: at,
                seq,
                guard,
                cb,
                prev: NIL,
                next: NIL,
                lvl: 0,
                slot: 0,
            },
            seq,
        )
    }

    /// Schedule `cb` at absolute time `at`. Scheduling in the past is a bug
    /// in the caller; the event is clamped to "now" in release builds.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        cb: impl FnOnce(&mut M, &mut Scheduler<M>) + 'static,
    ) -> EventToken {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let (entry, seq) = self.new_entry(at, None, Box::new(cb));
        let idx = self.insert_raw(self.now.as_nanos(), entry);
        self.len += 1;
        EventToken { seq, idx }
    }

    /// Schedule `cb` after a relative delay.
    #[inline]
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        cb: impl FnOnce(&mut M, &mut Scheduler<M>) + 'static,
    ) -> EventToken {
        self.schedule_at(self.now + delay, cb)
    }

    /// Schedule `cb` to run at the current instant, after all events already
    /// queued for this instant.
    #[inline]
    pub fn schedule_now(
        &mut self,
        cb: impl FnOnce(&mut M, &mut Scheduler<M>) + 'static,
    ) -> EventToken {
        self.schedule_at(self.now, cb)
    }

    /// Internal: schedule a periodic tick carrying its cancellation guard.
    fn schedule_guarded(
        &mut self,
        at: SimTime,
        guard: Rc<Cell<bool>>,
        cb: impl FnOnce(&mut M, &mut Scheduler<M>) + 'static,
    ) -> EventToken {
        let at = at.max(self.now);
        let (entry, seq) = self.new_entry(at, Some(guard), Box::new(cb));
        let idx = self.insert_raw(self.now.as_nanos(), entry);
        self.len += 1;
        self.guarded += 1;
        EventToken { seq, idx }
    }

    /// Cancel a pending event by unlinking it from its wheel slot in
    /// O(1). Cancelling an already-fired or already-cancelled event is a
    /// no-op (returns false) — and unlike the legacy engine, a fired
    /// event's token can never spuriously report `true`.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        match self.arena.get(token.idx as usize) {
            Some(Node::Used(e)) if e.seq == token.seq => {}
            _ => return false,
        }
        self.unlink(token.idx);
        let e = self.release(token.idx);
        self.len -= 1;
        if e.guard.is_some() {
            self.guarded -= 1;
        }
        true
    }

    /// Cancel a periodic event **and** remove its queued tick from the
    /// wheel immediately (a plain [`PeriodicHandle::cancel`] leaves the
    /// dead tick to be purged lazily). Returns whether a queued tick was
    /// removed.
    pub fn cancel_periodic(&mut self, handle: &PeriodicHandle) -> bool {
        handle.cancelled.set(true);
        match handle.queued.take() {
            Some(tok) => self.cancel(tok),
            None => false,
        }
    }

    /// Drop every pending event while keeping the wheel's allocations, so
    /// a driver can reuse one scheduler across runs without reallocating.
    /// The clock and counters are left untouched; see [`Scheduler::reset`]
    /// to also rewind them.
    pub fn clear_pending(&mut self) {
        self.arena.clear();
        self.free_head = NIL;
        for level in self.levels.iter_mut() {
            if level.occupied != 0 {
                *level = Level::EMPTY;
            }
        }
        self.len = 0;
        self.guarded = 0;
    }

    /// Rewind to an empty scheduler at time zero, retaining allocations.
    pub fn reset(&mut self) {
        self.clear_pending();
        self.now = SimTime::ZERO;
        self.next_seq = 0;
        self.executed = 0;
    }

    /// Schedule a periodic callback firing every `interval`, starting one
    /// interval from now. The callback returns `true` to keep going or
    /// `false` to stop; the returned handle cancels it externally.
    pub fn schedule_every(
        &mut self,
        interval: SimDuration,
        f: impl FnMut(&mut M, &mut Scheduler<M>) -> bool + 'static,
    ) -> PeriodicHandle
    where
        M: 'static,
    {
        assert!(
            !interval.is_zero(),
            "zero-interval periodic event would live-lock the simulation"
        );
        let cancelled = Rc::new(Cell::new(false));
        let queued = Rc::new(Cell::new(None));
        let handle = PeriodicHandle {
            cancelled: Rc::clone(&cancelled),
            queued: Rc::clone(&queued),
        };
        fn tick<M: 'static, F>(
            mut f: F,
            interval: SimDuration,
            cancelled: Rc<Cell<bool>>,
            queued: Rc<Cell<Option<EventToken>>>,
            m: &mut M,
            s: &mut Scheduler<M>,
        ) where
            F: FnMut(&mut M, &mut Scheduler<M>) -> bool + 'static,
        {
            if cancelled.get() {
                queued.set(None);
                return;
            }
            if f(m, s) && !cancelled.get() {
                let at = s.now() + interval;
                let guard = Rc::clone(&cancelled);
                let q = Rc::clone(&queued);
                let tok = s.schedule_guarded(at, guard, move |m, s| {
                    tick(f, interval, cancelled, queued, m, s)
                });
                q.set(Some(tok));
            } else {
                queued.set(None);
            }
        }
        let at = self.now + interval;
        let guard = Rc::clone(&cancelled);
        let q = Rc::clone(&queued);
        let tok = self.schedule_guarded(at, guard, move |m, s| {
            tick(f, interval, cancelled, queued, m, s)
        });
        q.set(Some(tok));
        handle
    }

    /// Lowest occupied (level, slot) at or after the cursor position, or
    /// `None` if the wheel is empty. By the wheel invariants this slot
    /// holds the globally earliest pending event.
    #[inline]
    fn next_occupied(&self, cursor: u64) -> Option<(usize, usize)> {
        for (lvl, level) in self.levels.iter().enumerate() {
            if level.occupied == 0 {
                continue;
            }
            let idx = slot_for(cursor, lvl);
            let masked = level.occupied & (!0u64 << idx);
            if masked != 0 {
                return Some((lvl, masked.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Remove dead (flag-cancelled periodic) entries from a slot. Returns
    /// `true` if the slot is now empty (bit already cleared).
    fn purge_slot(&mut self, lvl: usize, slot: usize) -> bool {
        let mut i = self.levels[lvl].slots[slot & (SLOTS - 1)].head;
        while i != NIL {
            let e = self.entry(i);
            let next = e.next;
            if e.is_dead() {
                self.unlink(i);
                self.release(i);
                self.len -= 1;
                self.guarded -= 1;
            }
            i = next;
        }
        self.levels[lvl].occupied & (1u64 << slot) == 0
    }

    /// Earliest deadline within `(lvl, slot)` (full list walk — only used
    /// on coarse levels, where a slot spans many timestamps).
    fn slot_min_time(&self, lvl: usize, slot: usize) -> u64 {
        let mut min = u64::MAX;
        let mut i = self.levels[lvl].slots[slot & (SLOTS - 1)].head;
        debug_assert!(i != NIL, "occupied slot is empty");
        while i != NIL {
            let e = self.entry(i);
            min = min.min(e.time.as_nanos());
            i = e.next;
        }
        min
    }

    /// Time of the next pending (live) event, if any.
    pub fn peek_next_time(&mut self) -> Option<SimTime> {
        let cursor = self.now.as_nanos();
        loop {
            let (lvl, slot) = self.next_occupied(cursor)?;
            if self.guarded > 0 && self.purge_slot(lvl, slot) {
                continue;
            }
            return if lvl == 0 {
                // A level-0 slot resolves a single nanosecond: every entry
                // shares one exact timestamp.
                Some(
                    self.entry(self.levels[0].slots[slot & (SLOTS - 1)].head)
                        .time,
                )
            } else {
                Some(SimTime::from_nanos(self.slot_min_time(lvl, slot)))
            };
        }
    }

    /// Pop the next event, advancing the clock to its timestamp.
    /// Returns `None` when the queue is empty.
    pub(crate) fn pop_next(&mut self) -> Option<(SimTime, Callback<M>)> {
        let mut cursor = self.now.as_nanos();
        loop {
            let (lvl, slot) = self.next_occupied(cursor)?;
            if self.guarded > 0 && self.purge_slot(lvl, slot) {
                continue;
            }
            if lvl == 0 {
                return Some(self.fire_head(0, slot));
            }
            let s = self.levels[lvl].slots[slot & (SLOTS - 1)];
            if s.head == s.tail {
                // Singleton coarse slot: popping its only entry leaves
                // nothing stale behind, and every other slot keeps its
                // level invariant relative to the new clock (levels below
                // `lvl` were empty — that is how the search got here — and
                // levels at or above it share all the digits the clock
                // jump changes). Skip the cascade entirely.
                return Some(self.fire_head(lvl, slot));
            }
            // Cascade: the earliest pending event lives in this coarse
            // slot. Move the cursor to the slot's earliest deadline and
            // re-file every entry relative to it — each lands at a
            // strictly lower level (they all share this slot's 64^lvl
            // block with the new cursor), the earliest at level 0. FIFO
            // order within equal timestamps is preserved because the
            // re-file walks in list order.
            cursor = self.slot_min_time(lvl, slot);
            self.levels[lvl].slots[slot & (SLOTS - 1)] = Slot::EMPTY;
            self.levels[lvl].occupied &= !(1u64 << slot);
            let mut i = s.head;
            while i != NIL {
                let e = self.entry(i);
                let next = e.next;
                let when = e.time.as_nanos();
                let lv = level_for(cursor, when);
                let sl = slot_for(when, lv);
                self.link_tail(lv, sl, i);
                i = next;
            }
            if self.guarded == 0 {
                // The minimum landed at level 0, slot `cursor & 63`, at
                // the head (re-filed in FIFO order into a level that was
                // empty). Fire it directly instead of re-searching.
                return Some(self.fire_head(0, cursor as usize & (SLOTS - 1)));
            }
        }
    }

    /// Pop and fire the head entry of `(lvl, slot)`; the caller
    /// guarantees it is the earliest live pending event.
    #[inline]
    fn fire_head(&mut self, lvl: usize, slot: usize) -> (SimTime, Callback<M>) {
        let idx = self.levels[lvl].slots[slot & (SLOTS - 1)].head;
        self.unlink(idx);
        let e = self.release(idx);
        self.len -= 1;
        if e.guard.is_some() {
            self.guarded -= 1;
        }
        debug_assert!(e.time >= self.now);
        self.now = e.time;
        self.executed += 1;
        (e.time, e.cb)
    }

    /// Advance the clock with no event to fire (used by drivers that run
    /// to a horizon past the next event). The caller guarantees no
    /// pending event has a deadline at or before `t`. Coarse slots whose
    /// range the cursor enters are cascaded so the wheel's level
    /// invariants stay anchored to the clock.
    pub(crate) fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now);
        if self.len > 0 {
            let cursor = t.as_nanos();
            for lvl in 1..LEVELS {
                let slot = slot_for(cursor, lvl);
                if self.levels[lvl].occupied & (1u64 << slot) == 0 {
                    continue;
                }
                // The cursor moved inside this coarse slot's range;
                // re-file its entries at finer levels. All deadlines here
                // are strictly after `t` (the caller's contract plus the
                // lazy-purge invariant), and none can land back in a
                // cursor slot: their first differing digit from `t` picks
                // both the new level and a different slot index there.
                let s = self.levels[lvl].slots[slot & (SLOTS - 1)];
                self.levels[lvl].slots[slot & (SLOTS - 1)] = Slot::EMPTY;
                self.levels[lvl].occupied &= !(1u64 << slot);
                let mut i = s.head;
                while i != NIL {
                    let e = self.entry(i);
                    let next = e.next;
                    let when = e.time.as_nanos();
                    debug_assert!(when >= cursor);
                    let lv = level_for(cursor, when);
                    let sl = slot_for(when, lv);
                    self.link_tail(lv, sl, i);
                    i = next;
                }
            }
        }
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(sched: &mut Scheduler<Vec<u32>>, world: &mut Vec<u32>) {
        while let Some((_, cb)) = sched.pop_next() {
            cb(world, sched);
        }
    }

    #[test]
    fn fires_in_time_order() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        s.schedule_at(SimTime::from_millis(3), |w, _| w.push(3));
        s.schedule_at(SimTime::from_millis(1), |w, _| w.push(1));
        s.schedule_at(SimTime::from_millis(2), |w, _| w.push(2));
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert_eq!(world, vec![1, 2, 3]);
        assert_eq!(s.now(), SimTime::from_millis(3));
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        for i in 0..100 {
            s.schedule_at(SimTime::from_millis(5), move |w, _| w.push(i));
        }
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert_eq!(world, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_survives_multi_level_cascades() {
        // A batch at one far-future instant crosses several wheel levels
        // before firing; the cascades must keep scheduling order.
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        for i in 0..100 {
            s.schedule_at(SimTime::from_secs(40), move |w, _| w.push(i));
        }
        // Stepping stones force cascades at intermediate cursors.
        for ms in [1u64, 70, 4_100, 26_200] {
            s.schedule_at(SimTime::from_millis(ms), |_, _| {});
        }
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert_eq!(world, (0..100).collect::<Vec<_>>());
        assert_eq!(s.now(), SimTime::from_secs(40));
    }

    #[test]
    fn events_can_schedule_events() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        s.schedule_in(SimDuration::from_millis(1), |w, s| {
            w.push(1);
            s.schedule_in(SimDuration::from_millis(1), |w, _| w.push(2));
        });
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert_eq!(world, vec![1, 2]);
        assert_eq!(s.now(), SimTime::from_millis(2));
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        let tok = s.schedule_in(SimDuration::from_millis(1), |w, _| w.push(1));
        s.schedule_in(SimDuration::from_millis(2), |w, _| w.push(2));
        assert!(s.cancel(tok));
        assert!(!s.cancel(tok), "double cancel reports false");
        assert_eq!(s.pending(), 1, "cancel removes the entry in place");
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert_eq!(world, vec![2]);
    }

    #[test]
    fn cancel_unknown_token_is_noop() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        let bogus = EventToken { seq: 99, idx: 7 };
        assert!(!s.cancel(bogus));
    }

    #[test]
    fn cancel_with_reused_slab_cell_is_noop() {
        // A fired event's slab cell may be reused by a newer event; the
        // old token's sequence number must not match it.
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        let old = s.schedule_in(SimDuration::from_millis(1), |w, _| w.push(1));
        let mut world = Vec::new();
        let (_, cb) = s.pop_next().unwrap();
        cb(&mut world, &mut s);
        // This reuses the freed cell.
        s.schedule_in(SimDuration::from_millis(2), |w, _| w.push(2));
        assert!(!s.cancel(old), "stale token must not kill the new event");
        drain(&mut s, &mut world);
        assert_eq!(world, vec![1, 2]);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        // Unlike the legacy engine (which could lazily report true), a
        // fired event's token is always a clean no-op — even while other
        // events are still pending.
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        let tok = s.schedule_in(SimDuration::from_millis(1), |w, _| w.push(1));
        s.schedule_in(SimDuration::from_millis(5), |w, _| w.push(2));
        let mut world = Vec::new();
        let (_, cb) = s.pop_next().unwrap();
        cb(&mut world, &mut s);
        assert_eq!(world, vec![1]);
        assert!(!s.cancel(tok), "cancel after fire must be a no-op");
        assert_eq!(s.pending(), 1);
        drain(&mut s, &mut world);
        assert_eq!(world, vec![1, 2]);
    }

    #[test]
    fn cancel_from_middle_of_coarse_slot() {
        // Several far-future events share one coarse slot; cancelling the
        // middle one must unlink exactly it.
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        let base = SimTime::from_secs(10);
        let t0 = s.schedule_at(base, |w, _| w.push(0));
        let t1 = s.schedule_at(base + SimDuration::from_nanos(1), |w, _| w.push(1));
        let t2 = s.schedule_at(base + SimDuration::from_nanos(2), |w, _| w.push(2));
        assert!(s.cancel(t1));
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert_eq!(world, vec![0, 2]);
        assert!(!s.cancel(t0));
        assert!(!s.cancel(t2));
    }

    #[test]
    fn drain_empties_all_wheel_levels() {
        // One event per wheel level, including the far-future overflow
        // levels, plus the last representable instant.
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        let mut times: Vec<u64> = (0..super::LEVELS)
            .map(|lvl| 3u64 << (super::LEVEL_BITS as usize * lvl))
            .collect();
        times.push(u64::MAX);
        for (i, &t) in times.iter().enumerate() {
            s.schedule_at(SimTime::from_nanos(t), move |w, _| w.push(i as u32));
        }
        assert_eq!(s.pending(), times.len());
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert_eq!(world, (0..times.len() as u32).collect::<Vec<_>>());
        assert_eq!(s.pending(), 0);
        assert_eq!(s.now(), SimTime::from_nanos(u64::MAX));
        assert_eq!(s.events_executed(), times.len() as u64);
    }

    #[test]
    fn far_future_past_near_wheel_horizon_cascades() {
        // An event beyond the near-future wheels (level >= 7, i.e. more
        // than 64^7 ns away) must cascade down through the overflow
        // levels and still interleave correctly with near events
        // scheduled later.
        let far = 5u64 << (super::LEVEL_BITS as usize * 8);
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(far), |w, _| w.push(99));
        s.schedule_at(SimTime::from_millis(1), move |w, s| {
            w.push(1);
            s.schedule_at(SimTime::from_nanos(far), |w, _| w.push(100));
        });
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        // Equal far timestamps keep scheduling order across the cascade.
        assert_eq!(world, vec![1, 99, 100]);
        assert_eq!(s.now(), SimTime::from_nanos(far));
    }

    #[test]
    fn zero_duration_self_reschedule_does_not_livelock() {
        // A chain of schedule_now self-reschedules at one instant must
        // make progress through the slot FIFO and terminate.
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        fn step(w: &mut Vec<u32>, s: &mut Scheduler<Vec<u32>>) {
            let n = w.len() as u32;
            w.push(n);
            if n < 999 {
                s.schedule_now(step);
            }
        }
        s.schedule_now(step);
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert_eq!(world.len(), 1000);
        assert_eq!(s.now(), SimTime::ZERO, "instant chain must not move time");
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn periodic_runs_until_false() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        s.schedule_every(SimDuration::from_millis(10), |w, _| {
            w.push(w.len() as u32);
            w.len() < 5
        });
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert_eq!(world, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.now(), SimTime::from_millis(50));
    }

    #[test]
    fn periodic_handle_cancels() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        let handle = s.schedule_every(SimDuration::from_millis(1), |w, _| {
            w.push(0);
            true
        });
        // Cancel after the third tick via a one-shot event.
        let h2 = handle.clone();
        s.schedule_at(SimTime::from_micros(3500), move |_, _| h2.cancel());
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert!(handle.is_cancelled());
        assert_eq!(world.len(), 3);
        // The dead 4 ms tick was purged, not fired: the clock stopped at
        // the cancelling event, and only 3 ticks + 1 cancel executed.
        assert_eq!(s.now(), SimTime::from_micros(3500));
        assert_eq!(s.events_executed(), 4);
    }

    #[test]
    fn periodic_cancel_then_advance_fires_nothing() {
        // Regression for the legacy wart: the queued tick of a cancelled
        // periodic must not fire, advance the clock, or count as
        // executed.
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        let handle = s.schedule_every(SimDuration::from_millis(10), |w, _| {
            w.push(0);
            true
        });
        handle.cancel();
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert!(world.is_empty());
        assert_eq!(s.now(), SimTime::ZERO, "dead tick must not advance time");
        assert_eq!(s.events_executed(), 0);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn cancel_periodic_removes_queued_tick_immediately() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        let handle = s.schedule_every(SimDuration::from_millis(10), |w, _| {
            w.push(0);
            true
        });
        assert_eq!(s.pending(), 1);
        assert!(s.cancel_periodic(&handle));
        assert_eq!(s.pending(), 0, "queued tick removed in place");
        assert!(handle.is_cancelled());
        assert!(!s.cancel_periodic(&handle), "second cancel is a no-op");
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert!(world.is_empty());
        assert_eq!(s.now(), SimTime::ZERO);
    }

    #[test]
    fn schedule_now_runs_after_current_instant_queue() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        s.schedule_at(SimTime::ZERO, |w, s| {
            w.push(1);
            s.schedule_now(|w, _| w.push(3));
        });
        s.schedule_at(SimTime::ZERO, |w, _| w.push(2));
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert_eq!(world, vec![1, 2, 3]);
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        let tok = s.schedule_in(SimDuration::from_millis(1), |_, _| {});
        s.schedule_in(SimDuration::from_millis(5), |_, _| {});
        s.cancel(tok);
        assert_eq!(s.peek_next_time(), Some(SimTime::from_millis(5)));
    }

    #[test]
    fn schedule_after_horizon_advance_keeps_tie_break() {
        // The clock is advanced into the middle of a coarse slot's range
        // by a horizon (no event fired); an event then scheduled at the
        // same timestamp as an older pending one must still fire second.
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(5_000), |w, _| w.push(1));
        s.advance_to(SimTime::from_nanos(4_995));
        s.schedule_at(SimTime::from_nanos(5_000), |w, _| w.push(2));
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert_eq!(world, vec![1, 2]);
    }

    #[test]
    fn reset_reuses_scheduler() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        for i in 0..10u64 {
            s.schedule_at(SimTime::from_millis(i), |w, _| w.push(0));
        }
        let tok = s.schedule_at(SimTime::from_millis(99), |_, _| {});
        s.cancel(tok);
        s.reset();
        assert_eq!(s.pending(), 0);
        assert_eq!(s.now(), SimTime::ZERO);
        assert_eq!(s.events_executed(), 0);
        // Fully functional after reset.
        s.schedule_at(SimTime::from_millis(1), |w, _| w.push(7));
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert_eq!(world, vec![7]);
    }

    #[test]
    fn counts_executed() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        for i in 0..10u64 {
            s.schedule_at(SimTime::from_millis(i), |_, _| {});
        }
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert_eq!(s.events_executed(), 10);
    }
}
