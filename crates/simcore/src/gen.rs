//! Deterministic random-data generators for in-tree randomized tests.
//!
//! The per-crate `proptests.rs` suites used to pull in the external
//! `proptest` crate; tier-1 now builds fully offline, so those suites run
//! on these helpers instead: plain functions over [`SimRng`], driven by a
//! fixed base seed plus a seed sweep (see [`seeds`]). A failing case
//! reports its seed, and re-running with that seed reproduces it exactly —
//! the same shrink-free but fully replayable workflow the simulation
//! itself uses.

use crate::rng::SimRng;

/// Derive `n` well-separated child seeds from a base seed (SplitMix64
/// stream, the same mixer [`SimRng::new`] seeds its state with). Tests
/// iterate this for their seed sweep so every case is independent.
pub fn seeds(base: u64, n: usize) -> impl Iterator<Item = u64> {
    let mut state = base;
    (0..n).map(move |_| {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    })
}

/// Run `f` once per child seed of `base` (see [`seeds`]), handing it the
/// seed and a fresh [`SimRng`] for it. If a case panics, the panic is
/// re-raised after printing the base seed, case index, and failing child
/// seed, so the case can be replayed in isolation with `SimRng::new(seed)`.
pub fn for_each_seed(base: u64, n: usize, mut f: impl FnMut(u64, &mut SimRng)) {
    for (i, seed) in seeds(base, n).enumerate() {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = SimRng::new(seed);
            f(seed, &mut rng);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "seed sweep failed: base={base:#x} case={i}/{n} seed={seed:#018x} \
                 (replay with SimRng::new({seed:#018x}))"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// A lowercase ASCII word with length in `min_len..=max_len`.
pub fn ascii_word(rng: &mut SimRng, min_len: usize, max_len: usize) -> String {
    let len = rng.range(min_len as u64, max_len as u64) as usize;
    (0..len)
        .map(|_| (b'a' + rng.below(26) as u8) as char)
        .collect()
}

/// An absolute store-style path of `1..=max_depth` segments drawn from
/// `alphabet` (e.g. `"/local/domain/3"`). With a small alphabet, distinct
/// draws collide often — exactly what differential store tests want.
pub fn path_from_alphabet(rng: &mut SimRng, alphabet: &[&str], max_depth: usize) -> String {
    let depth = rng.range(1, max_depth as u64) as usize;
    let mut p = String::new();
    for _ in 0..depth {
        p.push('/');
        p.push_str(alphabet[rng.below(alphabet.len() as u64) as usize]);
    }
    p
}

/// A vector of `len` values produced by `f`.
pub fn vec_of<T>(rng: &mut SimRng, len: usize, mut f: impl FnMut(&mut SimRng) -> T) -> Vec<T> {
    (0..len).map(|_| f(rng)).collect()
}

/// A vector with random length in `min_len..=max_len`.
pub fn vec_between<T>(
    rng: &mut SimRng,
    min_len: usize,
    max_len: usize,
    f: impl FnMut(&mut SimRng) -> T,
) -> Vec<T> {
    let len = rng.range(min_len as u64, max_len as u64) as usize;
    vec_of(rng, len, f)
}

/// A float drawn uniformly from `[lo, hi)`.
pub fn f64_in(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    lo + rng.f64() * (hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a: Vec<u64> = seeds(42, 16).collect();
        let b: Vec<u64> = seeds(42, 16).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "child seeds collide");
        let c: Vec<u64> = seeds(43, 16).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn for_each_seed_visits_every_child_seed() {
        let expected: Vec<u64> = seeds(42, 16).collect();
        let mut visited = Vec::new();
        for_each_seed(42, 16, |seed, rng| {
            // The rng is seeded from the case's own seed.
            assert_eq!(rng.next_u64(), SimRng::new(seed).next_u64());
            visited.push(seed);
        });
        assert_eq!(visited, expected);
    }

    #[test]
    fn for_each_seed_propagates_panics() {
        let failing: u64 = seeds(42, 16).nth(7).unwrap();
        let caught = std::panic::catch_unwind(|| {
            for_each_seed(42, 16, |seed, _rng| {
                assert_ne!(seed, failing, "boom");
            });
        });
        assert!(caught.is_err(), "panic in case 7 must propagate");
    }

    #[test]
    fn words_respect_bounds() {
        let mut rng = SimRng::new(7);
        for _ in 0..200 {
            let w = ascii_word(&mut rng, 1, 8);
            assert!((1..=8).contains(&w.len()));
            assert!(w.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn paths_are_wellformed() {
        let mut rng = SimRng::new(7);
        let alphabet = ["a", "b", "local"];
        for _ in 0..200 {
            let p = path_from_alphabet(&mut rng, &alphabet, 4);
            assert!(p.starts_with('/'));
            assert!(!p.ends_with('/'));
            assert!(!p.contains("//"));
            assert!(p[1..].split('/').count() <= 4);
        }
    }

    #[test]
    fn f64_in_stays_in_range() {
        let mut rng = SimRng::new(9);
        for _ in 0..200 {
            let x = f64_in(&mut rng, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }
}
