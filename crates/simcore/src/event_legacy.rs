//! Frozen binary-heap implementation of the event scheduler.
//!
//! This is the `Scheduler` exactly as it shipped before the hierarchical
//! timer-wheel rewrite (`crate::event`): a `BinaryHeap` of timestamped
//! entries with a `HashSet` of cancellation tombstones, FIFO tie-break at
//! equal timestamps via a monotonic sequence number.
//!
//! It is kept verbatim for two jobs, on the `xenstore_legacy` pattern:
//!
//! 1. **Differential oracle** — randomized tests drive the same
//!    schedule/cancel/periodic/run script through this scheduler and the
//!    timer wheel and assert identical firing order
//!    (`tests/scheduler_differential.rs`).
//! 2. **Bench baseline** — the `hotpath` bench times both engines with
//!    one harness so the `scheduler_churn` speedup in
//!    `BENCH_hotpath.json` is measured, not estimated.
//!
//! Do not "fix" or optimize this module; its value is that it does not
//! change. Two known warts it preserves (both pinned by the differential
//! tests): `cancel` may report `true` for an event that already fired
//! (staleness is detected lazily), and a flag-cancelled periodic event
//! leaves its queued tick live — the tick pops, advances the clock and
//! counts as executed, firing nothing.
//!
//! `pop_next` and `advance_to` are public here (unlike the production
//! scheduler, which is driven through [`crate::Simulation`]) so the
//! oracle and the bench can run the event loop by hand.

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::rc::Rc;

use crate::time::{SimDuration, SimTime};

/// A callback scheduled to run at a simulated instant (legacy engine).
pub type Callback<M> = Box<dyn FnOnce(&mut M, &mut Scheduler<M>)>;

/// Identifies a scheduled event so it can be cancelled before firing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventToken(u64);

/// Handle to a periodic event; dropping it does **not** cancel the event,
/// call [`PeriodicHandle::cancel`] explicitly.
#[derive(Clone, Debug)]
pub struct PeriodicHandle {
    cancelled: Rc<Cell<bool>>,
}

impl PeriodicHandle {
    /// Stop the periodic event after the currently queued tick (if any).
    pub fn cancel(&self) {
        self.cancelled.set(true);
    }
    /// Whether the periodic event has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.get()
    }
}

struct Entry<M> {
    time: SimTime,
    seq: u64,
    cb: Callback<M>,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first and
        // lowest-sequence-first among equals.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of simulated events over a world `M` (frozen seed
/// implementation; see the module docs).
pub struct Scheduler<M> {
    now: SimTime,
    next_seq: u64,
    heap: BinaryHeap<Entry<M>>,
    cancelled: HashSet<u64>,
    executed: u64,
}

impl<M> Default for Scheduler<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Scheduler<M> {
    /// Empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            next_seq: 0,
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            executed: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled-but-unpopped).
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `cb` at absolute time `at`. Scheduling in the past is a bug
    /// in the caller; the event is clamped to "now" in release builds.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        cb: impl FnOnce(&mut M, &mut Scheduler<M>) + 'static,
    ) -> EventToken {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            cb: Box::new(cb),
        });
        EventToken(seq)
    }

    /// Schedule `cb` after a relative delay.
    #[inline]
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        cb: impl FnOnce(&mut M, &mut Scheduler<M>) + 'static,
    ) -> EventToken {
        self.schedule_at(self.now + delay, cb)
    }

    /// Schedule `cb` to run at the current instant, after all events already
    /// queued for this instant.
    #[inline]
    pub fn schedule_now(
        &mut self,
        cb: impl FnOnce(&mut M, &mut Scheduler<M>) + 'static,
    ) -> EventToken {
        self.schedule_at(self.now, cb)
    }

    /// Cancel a pending event. Cancelling an already-fired or already-
    /// cancelled event is a no-op (returns false), except that staleness
    /// is detected lazily so a fired event's token may still report
    /// `true` — the wart pinned by the differential oracle.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if token.0 >= self.next_seq {
            return false;
        }
        if self.heap.is_empty() {
            // Nothing pending: the event has already fired (or been
            // drained), so there is nothing to cancel.
            self.cancelled.clear();
            return false;
        }
        if !self.cancelled.insert(token.0) {
            return false;
        }
        if self.cancelled.len() > self.heap.len() {
            // More tombstones than pending events means some belong to
            // events that already fired; keep only the live ones.
            let live: HashSet<u64> = self.heap.iter().map(|e| e.seq).collect();
            self.cancelled.retain(|t| live.contains(t));
        }
        true
    }

    /// Drop every pending event (and cancellation tombstone) while keeping
    /// the heap's allocation.
    pub fn clear_pending(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
    }

    /// Rewind to an empty scheduler at time zero, retaining allocations.
    pub fn reset(&mut self) {
        self.clear_pending();
        self.now = SimTime::ZERO;
        self.next_seq = 0;
        self.executed = 0;
    }

    /// Number of cancellation tombstones currently held.
    pub fn cancelled_backlog(&self) -> usize {
        self.cancelled.len()
    }

    /// Schedule a periodic callback firing every `interval`, starting one
    /// interval from now. The callback returns `true` to keep going or
    /// `false` to stop; the returned handle cancels it externally.
    pub fn schedule_every(
        &mut self,
        interval: SimDuration,
        f: impl FnMut(&mut M, &mut Scheduler<M>) -> bool + 'static,
    ) -> PeriodicHandle
    where
        M: 'static,
    {
        assert!(
            !interval.is_zero(),
            "zero-interval periodic event would live-lock the simulation"
        );
        let cancelled = Rc::new(Cell::new(false));
        let handle = PeriodicHandle {
            cancelled: Rc::clone(&cancelled),
        };
        fn tick<M: 'static, F>(
            mut f: F,
            interval: SimDuration,
            cancelled: Rc<Cell<bool>>,
            m: &mut M,
            s: &mut Scheduler<M>,
        ) where
            F: FnMut(&mut M, &mut Scheduler<M>) -> bool + 'static,
        {
            if cancelled.get() {
                return;
            }
            if f(m, s) && !cancelled.get() {
                s.schedule_in(interval, move |m, s| tick(f, interval, cancelled, m, s));
            }
        }
        self.schedule_in(interval, move |m, s| tick(f, interval, cancelled, m, s));
        handle
    }

    /// Time of the next pending (non-cancelled) event, if any.
    pub fn peek_next_time(&mut self) -> Option<SimTime> {
        self.drain_cancelled_head();
        self.heap.peek().map(|e| e.time)
    }

    fn drain_cancelled_head(&mut self) {
        while let Some(head) = self.heap.peek() {
            if self.cancelled.remove(&head.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Pop the next event, advancing the clock to its timestamp.
    /// Returns `None` when the queue is empty. Public here (unlike the
    /// production scheduler) so oracle tests and benches can run the
    /// legacy event loop by hand.
    pub fn pop_next(&mut self) -> Option<(SimTime, Callback<M>)> {
        self.drain_cancelled_head();
        let Some(entry) = self.heap.pop() else {
            // Queue drained: any remaining tombstones refer to events that
            // can never fire, so the set empties with it.
            self.cancelled.clear();
            return None;
        };
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.executed += 1;
        Some((entry.time, entry.cb))
    }

    /// Advance the clock with no event (used by drivers that run to a
    /// horizon past the last event). Public for the oracle driver.
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now);
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(sched: &mut Scheduler<Vec<u32>>, world: &mut Vec<u32>) {
        while let Some((_, cb)) = sched.pop_next() {
            cb(world, sched);
        }
    }

    #[test]
    fn fires_in_time_order() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        s.schedule_at(SimTime::from_millis(3), |w, _| w.push(3));
        s.schedule_at(SimTime::from_millis(1), |w, _| w.push(1));
        s.schedule_at(SimTime::from_millis(2), |w, _| w.push(2));
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert_eq!(world, vec![1, 2, 3]);
        assert_eq!(s.now(), SimTime::from_millis(3));
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        for i in 0..100 {
            s.schedule_at(SimTime::from_millis(5), move |w, _| w.push(i));
        }
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert_eq!(world, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        let tok = s.schedule_in(SimDuration::from_millis(1), |w, _| w.push(1));
        s.schedule_in(SimDuration::from_millis(2), |w, _| w.push(2));
        assert!(s.cancel(tok));
        assert!(!s.cancel(tok), "double cancel reports false");
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert_eq!(world, vec![2]);
    }

    #[test]
    fn periodic_runs_until_false() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        s.schedule_every(SimDuration::from_millis(10), |w, _| {
            w.push(w.len() as u32);
            w.len() < 5
        });
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert_eq!(world, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.now(), SimTime::from_millis(50));
    }

    #[test]
    fn preserved_wart_cancelled_periodic_tick_stays_queued() {
        // The frozen behaviour the wheel fixes: after a flag-cancel, the
        // already-queued tick still pops (advancing the clock, counting
        // as executed) even though it fires nothing.
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        let handle = s.schedule_every(SimDuration::from_millis(10), |w, _| {
            w.push(0);
            true
        });
        handle.cancel();
        let mut world = Vec::new();
        drain(&mut s, &mut world);
        assert!(world.is_empty(), "cancelled periodic must fire nothing");
        assert_eq!(
            s.now(),
            SimTime::from_millis(10),
            "dead tick advances clock"
        );
        assert_eq!(s.events_executed(), 1, "dead tick counts as executed");
    }

    #[test]
    fn cancelled_set_stays_bounded() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1000), |_, _| {});
        let mut world = Vec::new();
        for round in 0..1000u64 {
            let tok = s.schedule_at(SimTime::from_millis(round), |_, _| {});
            if round % 2 == 0 {
                assert!(s.cancel(tok));
            }
            while s
                .peek_next_time()
                .is_some_and(|t| t <= SimTime::from_millis(round))
            {
                let (_, cb) = s.pop_next().unwrap();
                cb(&mut world, &mut s);
            }
            if round % 2 == 1 {
                s.cancel(tok);
            }
            assert!(
                s.cancelled_backlog() <= s.pending(),
                "tombstones ({}) exceed pending events ({}) at round {round}",
                s.cancelled_backlog(),
                s.pending()
            );
        }
        while let Some((_, cb)) = s.pop_next() {
            cb(&mut world, &mut s);
        }
        assert_eq!(s.cancelled_backlog(), 0);
    }
}
