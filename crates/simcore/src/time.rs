//! Simulated time.
//!
//! All simulation time is kept in integer **nanoseconds** so that runs are
//! exactly reproducible: no floating-point drift, no platform-dependent
//! rounding. [`SimTime`] is an absolute instant on the simulated clock and
//! [`SimDuration`] is a span between instants. Both are thin wrappers over
//! `u64` with checked/saturating arithmetic where it matters.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated clock, in nanoseconds since the
/// start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Whole microseconds since simulation start (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }
    /// Whole milliseconds since simulation start (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }
    /// Seconds since simulation start as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable span (used as "infinite").
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative or non-finite inputs clamp to zero; this is a convenience for
    /// workload generators that compute inter-arrival gaps in float seconds.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round().min(u64::MAX as f64) as u64)
    }
    /// Construct from fractional microseconds (same clamping as
    /// [`from_secs_f64`](Self::from_secs_f64)).
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }
    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }
    /// Fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Fractional microseconds (for reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// Fractional milliseconds (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative float, rounding to nanoseconds.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}
impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}
impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}
impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}
impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}
impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}
impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}
impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}
impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}
impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}
impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}
impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "inf")
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}
impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_millis(5);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(1));
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn float_conversions_clamp() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
        assert_eq!(
            SimDuration::from_micros_f64(1.5),
            SimDuration::from_nanos(1_500)
        );
    }

    #[test]
    fn display_is_human_scaled() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn mul_div() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 2, SimDuration::from_micros(5));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(5));
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
