//! # iorch-simcore — deterministic discrete-event simulation engine
//!
//! The foundation of the IOrchestra (SC '15) reproduction. Everything above
//! this crate — storage devices, guest kernels, the hypervisor, workloads —
//! is modelled as state machines driven by timestamped events over a single
//! world value.
//!
//! Design points, chosen for reproducibility (per the project's HPC guides):
//!
//! * **Integer nanosecond clock** ([`SimTime`]/[`SimDuration`]): no float
//!   drift, portable results.
//! * **Stable event ordering** ([`Scheduler`]): equal timestamps fire in
//!   scheduling order, so a run is a pure function of (model, seed).
//! * **Self-contained RNG** ([`SimRng`], xoshiro256++) with the distribution
//!   zoo the paper's workloads need (exponential, Poisson, [`Zipfian`],
//!   Pareto, normal), all seedable and forkable per component.
//! * **Single-threaded runs**: parallelism belongs *across* runs, never
//!   inside one, so every figure is replayable.
//! * **Self-contained tests** ([`gen`]): randomized-test data generators
//!   over [`SimRng`], so tier-1 needs no external property-test crate and
//!   builds fully offline.

#![warn(missing_docs)]

mod event;
pub mod event_legacy;
pub mod faults;
pub mod gen;
mod rng;
mod sim;
mod time;
pub mod trace;

pub use event::{Callback, EventToken, PeriodicHandle, Scheduler};
pub use faults::{BusFault, FaultEvent, FaultKind, FaultPlan, FaultWindow};
pub use rng::{SimRng, Zipfian};
pub use sim::{RunOutcome, Simulation};
pub use time::{SimDuration, SimTime};
