//! Deterministic random number generation for simulations.
//!
//! [`SimRng`] is a self-contained xoshiro256++ generator: identical seeds
//! yield identical streams on every platform, which is what makes whole
//! simulation runs bit-for-bit reproducible. The distribution helpers cover
//! everything the workload models need (exponential inter-arrivals, Poisson
//! counts, Zipfian key popularity à la YCSB, Pareto burst sizes, normal
//! service-time noise).

use crate::time::SimDuration;

/// Deterministic pseudo-random generator (xoshiro256++).
///
/// Not cryptographically secure; designed for statistical quality and
/// reproducibility in discrete-event simulation.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed. The seed is expanded with
    /// SplitMix64 per the xoshiro authors' recommendation.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child stream; used to give each VM / workload
    /// its own generator so adding one component never perturbs another.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Uses Lemire's multiply-shift rejection
    /// method for unbiased results. `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Widening multiply; reject to remove modulo bias.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range lo > hi");
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Exponentially distributed value with the given mean (`mean > 0`).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // 1 - f64() is in (0, 1], so ln() is finite.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Exponentially distributed duration with the given mean.
    #[inline]
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.exponential(mean.as_secs_f64()))
    }

    /// Standard normal via the polar (Marsaglia) method.
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Poisson-distributed count with the given mean.
    ///
    /// Knuth's product method for small means; a clamped normal
    /// approximation for large means (error is negligible above ~30).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        debug_assert!(mean >= 0.0);
        if mean <= 0.0 {
            return 0;
        }
        if mean < 30.0 {
            let limit = (-mean).exp();
            let mut product = self.f64();
            let mut count = 0u64;
            while product > limit {
                count += 1;
                product *= self.f64();
            }
            count
        } else {
            let x = self.normal(mean, mean.sqrt());
            if x < 0.0 {
                0
            } else {
                x.round() as u64
            }
        }
    }

    /// Pareto-distributed value with scale `xm > 0` and shape `alpha > 0`.
    #[inline]
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        debug_assert!(xm > 0.0 && alpha > 0.0);
        xm / (1.0 - self.f64()).powf(1.0 / alpha)
    }

    /// Log-normal: `exp(Normal(mu, sigma))`.
    #[inline]
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }
}

/// Zipfian generator over `[0, n)` using the Gray et al. rejection-inversion
/// approximation popularised by YCSB. Item `0` is the most popular.
///
/// The state is split from the RNG so one distribution can be shared by many
/// call sites while the RNG stays a simple value type.
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    zeta_n: f64,
    alpha: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Create a Zipfian distribution over `n` items with skew `theta`
    /// (YCSB default 0.99). `theta` must be in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipfian over zero items");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let zeta_n = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        Zipfian {
            n,
            theta,
            zeta_n,
            alpha,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for moderate n; these workloads use n <= ~10M where the
        // sum is still fast and exact enough, computed once per distribution.
        let mut sum = 0.0;
        // Sum the first min(n, 10_000) terms exactly, then integrate the tail.
        let exact = n.min(10_000);
        for i in 1..=exact {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > exact {
            // Integral approximation of the remaining tail of the series.
            let a = exact as f64;
            let b = n as f64;
            sum += (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
        }
        sum
    }

    /// Number of items.
    pub fn item_count(&self) -> u64 {
        self.n
    }

    /// Draw the next item rank in `[0, n)`; rank 0 is the hottest.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.f64();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(self.alpha);
        let item = (self.n as f64 * spread) as u64;
        item.min(self.n - 1)
    }

    /// Skew parameter theta.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Internal normalisation constants, exposed for tests.
    #[doc(hidden)]
    pub fn zetas(&self) -> (f64, f64) {
        (self.zeta_n, self.zeta2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = SimRng::new(7);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_unbiased_bounds() {
        let mut rng = SimRng::new(4);
        let mut seen = [0u32; 7];
        for _ in 0..70_000 {
            seen[rng.below(7) as usize] += 1;
        }
        for &count in &seen {
            // Each bucket should be near 10_000; allow generous slack.
            assert!((8_000..12_000).contains(&count), "count={count}");
        }
    }

    #[test]
    fn range_inclusive() {
        let mut rng = SimRng::new(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let x = rng.range(3, 5);
            assert!((3..=5).contains(&x));
            lo_seen |= x == 3;
            hi_seen |= x == 5;
        }
        assert!(lo_seen && hi_seen);
        assert_eq!(rng.range(9, 9), 9);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::new(6);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn poisson_mean_converges() {
        let mut rng = SimRng::new(7);
        for &lambda in &[0.5, 3.0, 20.0, 100.0] {
            let n = 50_000;
            let sum: u64 = (0..n).map(|_| rng.poisson(lambda)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda={lambda} mean={mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_mean() {
        let mut rng = SimRng::new(8);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(9);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.2, "var={var}");
    }

    #[test]
    fn pareto_lower_bound() {
        let mut rng = SimRng::new(10);
        for _ in 0..10_000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn zipfian_skews_to_head() {
        let dist = Zipfian::new(1_000, 0.99);
        let mut rng = SimRng::new(11);
        let n = 100_000;
        let mut head = 0u64;
        for _ in 0..n {
            let item = dist.sample(&mut rng);
            assert!(item < 1_000);
            if item < 10 {
                head += 1;
            }
        }
        // Top-1% of items should attract a large share of accesses.
        let share = head as f64 / n as f64;
        assert!(share > 0.3, "head share={share}");
    }

    #[test]
    fn zipfian_covers_tail() {
        let dist = Zipfian::new(100, 0.5);
        let mut rng = SimRng::new(12);
        let mut seen = [false; 100];
        for _ in 0..200_000 {
            seen[dist.sample(&mut rng) as usize] = true;
        }
        let covered = seen.iter().filter(|&&x| x).count();
        assert!(covered > 90, "covered={covered}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(13);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn exp_duration_positive() {
        let mut rng = SimRng::new(14);
        let mean = SimDuration::from_millis(10);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| rng.exp_duration(mean).as_nanos()).sum();
        let avg = total as f64 / n as f64;
        assert!((avg - 1e7).abs() < 3e5, "avg={avg}");
    }
}
