//! # iorch-trace — deterministic structured event tracing
//!
//! A sim-time, seeded-deterministic recorder for the whole I/O path: the
//! paper's monitoring module is blktrace-shaped, and reproducing its
//! decisions requires the same per-request, per-layer visibility. Every
//! layer (guest block queue, kernel, frontend ring, I/O cores, device,
//! system store, control planes) emits typed [`TraceEvent`]s through the
//! [`trace_event!`](crate::trace_event) macro into a bounded per-thread ring.
//!
//! Design points:
//!
//! * **Deterministic**: events carry only simulated time and model state —
//!   no wall clocks, no addresses — so the rendered timeline of a run is a
//!   pure function of `(model, seed)` and is byte-identical across runs.
//! * **Zero cost off**: [`trace_event!`](crate::trace_event) expands to a branch on
//!   [`enabled()`], whose first test is the compile-time constant
//!   [`COMPILED`]. Building with `RUSTFLAGS="--cfg iorch_trace_off"` turns
//!   the constant `false` and the whole arm — including construction of the
//!   event value — folds away. Even when compiled in, the off-path is one
//!   thread-local boolean load; the hot-path bench gate
//!   (`scripts/bench_hotpath.sh`) holds with the layer merged.
//! * **Bounded**: the ring keeps the most recent `capacity` events and
//!   counts what it dropped, so tracing a long run cannot exhaust memory.
//! * **Per-thread**: the recorder lives in thread-local storage. Runs are
//!   single-threaded by design (see crate docs), and the test harness runs
//!   many runs on different threads concurrently — a process-global
//!   recorder would interleave them.
//!
//! Two exporters ship with the recorder: a human-oriented timeline /
//! decision-log renderer (what `bin/tracedump` prints) and a Chrome
//! trace-event JSON writer (`chrome://tracing`, Perfetto).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::SimTime;

/// `false` when the crate graph was built with
/// `RUSTFLAGS="--cfg iorch_trace_off"`; the [`trace_event!`](crate::trace_event) macro
/// const-folds to nothing in that configuration.
pub const COMPILED: bool = !cfg!(iorch_trace_off);

/// Default ring capacity used by [`install`] via [`TraceSession::new`].
pub const DEFAULT_CAPACITY: usize = 1 << 20;

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static RECORDER: RefCell<Option<TraceRecorder>> = const { RefCell::new(None) };
    static TAP_ACTIVE: Cell<bool> = const { Cell::new(false) };
    static TAP: RefCell<Option<Tap>> = const { RefCell::new(None) };
}

/// A live observer of trace events (see [`set_tap`]).
pub type Tap = Box<dyn FnMut(SimTime, &TraceEventKind)>;

/// One recorded event: a simulated timestamp plus a typed payload.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceEvent {
    /// Simulated time the event occurred.
    pub t: SimTime,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The event taxonomy, one variant per instrumented point on the I/O path.
///
/// `dom` fields are domain tags: the guest's stream id, which the cluster
/// assigns equal to the domain id. Request ids are globally unique per run.
#[derive(Clone, PartialEq, Debug)]
pub enum TraceEventKind {
    // ---- guest block layer ------------------------------------------
    /// A request entered the plugged queue.
    QueueSubmit {
        /// Submitting domain.
        dom: u32,
        /// Request id.
        req: u64,
        /// Write (true) or read (false).
        write: bool,
        /// Length in bytes.
        len: u64,
    },
    /// A request was absorbed by an elevator back-merge.
    QueueMerge {
        /// Submitting domain.
        dom: u32,
        /// Id of the request that was merged away.
        req: u64,
        /// Length in bytes it added to the tail request.
        len: u64,
    },
    /// Submission blocked: the queue is congested (the process sleeps).
    QueueBlocked {
        /// Submitting domain.
        dom: u32,
        /// Request id that could not be queued.
        req: u64,
    },
    /// Allocation crossed the 7/8 threshold and the congestion-avoidance
    /// query was raised (latched until answered).
    CongestionQuery {
        /// Domain.
        dom: u32,
        /// Allocated descriptors at the time of the query.
        allocated: u32,
    },
    /// The congestion flag was set; submitters sleep.
    CongestionEnter {
        /// Domain.
        dom: u32,
    },
    /// The congestion flag cleared; sleepers wake after the wake delay.
    CongestionClear {
        /// Domain.
        dom: u32,
    },
    /// The collaborative bypass was granted (`release_request`).
    BypassGrant {
        /// Domain.
        dom: u32,
    },
    /// The bypass was revoked (host became congested).
    BypassRevoke {
        /// Domain.
        dom: u32,
        /// Whether the revoke immediately re-raised the congestion query
        /// (allocation was still at/above the on threshold).
        requery: bool,
    },
    /// A completion freed more descriptors than were dispatched — a
    /// simulator invariant violation (double completion). Recorded just
    /// before the simulator aborts the run.
    DescriptorUnderflow {
        /// Domain.
        dom: u32,
        /// Descriptors outstanding at the time.
        dispatched: u32,
        /// Descriptors the completion tried to free.
        completed: u32,
    },
    /// The plug list was dispatched to the frontend ring.
    Unplug {
        /// Domain.
        dom: u32,
        /// Requests in the batch.
        batch: u32,
        /// Forced (sync/explicit) rather than deadline/batch-size driven.
        forced: bool,
    },
    /// The kernel issued writeback for dirty pages.
    WritebackIssue {
        /// Domain.
        dom: u32,
        /// Pages in this writeback pass.
        pages: u64,
        /// Issued by a remote `flush_now` command rather than local policy.
        remote: bool,
    },
    // ---- hypervisor / ring / host ----------------------------------
    /// A request was pushed onto the frontend ring and the doorbell rung.
    RingPush {
        /// Domain.
        dom: u32,
        /// Request id.
        req: u64,
    },
    /// A completion was delivered back to the guest.
    BlockComplete {
        /// Domain.
        dom: u32,
        /// Request id.
        req: u64,
    },
    /// An I/O core's DRR scheduler began serving a stream's queue.
    DrrVisit {
        /// I/O core index.
        core: u32,
        /// Stream (domain) being served.
        dom: u32,
        /// Credit in bytes granted for this visit.
        credit: u64,
    },
    /// A backend dispatch was deferred because a policy rate limit had
    /// exhausted the domain's token bucket.
    RateLimitDefer {
        /// Throttled domain.
        dom: u32,
        /// Request id whose service start was deferred.
        req: u64,
        /// Deferral in microseconds until enough tokens accrue.
        delay_us: u64,
    },
    /// The host storage subsystem dispatched a request to the device.
    DeviceDispatch {
        /// Request id.
        req: u64,
        /// Originating domain.
        dom: u32,
        /// Write (true) or read (false).
        write: bool,
        /// Length in bytes.
        len: u64,
        /// Device queue occupancy after the dispatch.
        qdepth: u32,
    },
    /// The device completed a request.
    DeviceComplete {
        /// Request id.
        req: u64,
        /// Originating domain.
        dom: u32,
        /// Device service latency in microseconds.
        latency_us: u64,
    },
    // ---- system store / XenBus --------------------------------------
    /// A store write committed (and fired any matching watches).
    StoreWrite {
        /// Writing domain.
        dom: u32,
        /// Full path.
        path: Rc<str>,
        /// Value written.
        value: Rc<str>,
    },
    /// A store write-type operation was denied by permissions.
    StoreDenied {
        /// Offending domain.
        dom: u32,
        /// Path it tried to touch.
        path: Rc<str>,
    },
    /// A watch event was delivered to its owner over the XenBus channel.
    XenBusDeliver {
        /// Notified domain.
        dom: u32,
        /// Path that changed.
        path: Rc<str>,
        /// New value (`None` for a removal).
        value: Option<Rc<str>>,
    },
    /// An unreliable XenBus dropped a watch event instead of delivering it
    /// (injected by [`FaultKind::BusUnreliable`](crate::faults::FaultKind)).
    XenBusDrop {
        /// Domain that would have been notified.
        dom: u32,
        /// Path that changed.
        path: Rc<str>,
        /// Value that was lost (`None` for a removal).
        value: Option<Rc<str>>,
    },
    /// An unreliable XenBus delivered a watch event a second time
    /// (injected by [`FaultKind::BusUnreliable`](crate::faults::FaultKind)).
    XenBusDup {
        /// Notified domain.
        dom: u32,
        /// Path that changed.
        path: Rc<str>,
        /// Duplicated value (`None` for a removal).
        value: Option<Rc<str>>,
    },
    // ---- control plane ----------------------------------------------
    /// A management-module decision, with the inputs that drove it.
    Decision(Decision),
}

/// Control-plane decisions (the management module's side of Algorithms
/// 1–3 plus robustness actions), each carrying the inputs it was made on.
#[derive(Clone, PartialEq, Debug)]
pub enum Decision {
    /// Algorithm 1: device underutilized, flush the dirtiest domain.
    FlushNow {
        /// Chosen domain (argmax of dirty pages).
        dom: u32,
        /// Its dirty-page count.
        nr_dirty: u64,
        /// All eligible candidates as `(dom, nr_dirty)`, in domain order.
        candidates: Vec<(u32, u64)>,
    },
    /// A guest acked its `flush_now` (wrote it back to 0).
    FlushAck {
        /// Domain.
        dom: u32,
    },
    /// A `flush_now` expired unacked; the slot goes to the next-dirtiest.
    FlushTimeout {
        /// Domain.
        dom: u32,
        /// Consecutive timeouts for this domain.
        streak: u32,
    },
    /// Algorithm 2: congestion query answered with a release — the host
    /// device is not actually congested.
    ReleaseGranted {
        /// Domain.
        dom: u32,
        /// Host device queue depth at decision time.
        host_qdepth: u32,
    },
    /// Algorithm 2: congestion confirmed — the guest stays asleep and is
    /// queued for FIFO wake on relief.
    CongestionConfirmed {
        /// Domain.
        dom: u32,
        /// Host device queue depth at decision time.
        host_qdepth: u32,
    },
    /// Host relieved: a sleeping domain is woken with a staggered offset.
    StaggeredWake {
        /// Domain.
        dom: u32,
        /// Cumulative wake offset in milliseconds.
        offset_ms: u64,
    },
    /// A domain was quarantined (Baseline behaviour, keys ignored).
    Quarantine {
        /// Domain.
        dom: u32,
        /// Which budget or policy tripped.
        reason: &'static str,
    },
    /// An operator cleared a quarantine.
    QuarantineCleared {
        /// Domain.
        dom: u32,
    },
    /// Algorithm 3: new route weights pushed to the I/O cores.
    WeightPush {
        /// Domain.
        dom: u32,
        /// Per-socket route weights.
        weights: Vec<f64>,
    },
    /// The management plane crashed: all in-memory decision state is lost
    /// and watch events go undelivered until recovery.
    PlaneCrash,
    /// The management plane restarted and rebuilt its decision state from
    /// the store.
    PlaneRecover {
        /// Command epoch adopted for the new incarnation (persisted + 1).
        epoch: u64,
        /// Domains found and re-registered during the store scan.
        domains: u32,
        /// Quarantined domains restored from persisted state.
        quarantined: u32,
    },
    /// A guest driver discarded a stale or duplicate epoch-stamped command.
    StaleCommand {
        /// Domain that rejected the command.
        dom: u32,
        /// Epoch carried by the rejected command.
        epoch: u64,
        /// Newest epoch the guest has already accepted for this channel.
        last_seen: u64,
    },
    /// A policy-pipeline rule emitted an action. Opt-in per policy set
    /// (`trace_rules`); the built-in sets leave it off so their decision
    /// streams stay byte-identical to the pre-pipeline planes.
    RuleFired {
        /// Stage that hosted the rule.
        stage: &'static str,
        /// Rule name.
        rule: &'static str,
        /// Action discriminant, e.g. `"flush"` or `"rate_limit"`.
        action: &'static str,
        /// Target domain.
        dom: u32,
    },
    // ---- cluster control tier ----------------------------------------
    /// The cluster controller admitted a node into the membership (first
    /// registration of this incarnation).
    NodeRegistered {
        /// Cluster node index.
        node: u32,
        /// Boot incarnation the node registered under.
        incarnation: u64,
    },
    /// A member's lease expired without a heartbeat: the controller marks
    /// it dead and its domains orphaned.
    LeaseExpired {
        /// Cluster node index.
        node: u32,
        /// Logical domains orphaned by the expiry.
        orphaned: u32,
    },
    /// A node the controller had marked dead is heartbeating again (a
    /// healed partition, not a reboot — its incarnation is unchanged).
    NodeRejoined {
        /// Cluster node index.
        node: u32,
        /// Incarnation the node rejoined under.
        incarnation: u64,
    },
    /// The controller assigned a logical domain to a node (a `start`
    /// command was issued).
    DomainPlaced {
        /// Logical domain id.
        dom: u32,
        /// Target cluster node index.
        node: u32,
    },
    /// The controller evicted a logical domain from a node that should no
    /// longer run it (a `stop` command was issued).
    DomainEvicted {
        /// Logical domain id.
        dom: u32,
        /// Cluster node index being told to stop it.
        node: u32,
    },
    /// A logical domain orphaned by a dead node was re-placed on a
    /// survivor.
    Failover {
        /// Logical domain id.
        dom: u32,
        /// Node it was running on (now dead).
        from: u32,
        /// Surviving node it moves to.
        to: u32,
    },
    /// The cluster controller crashed: volatile membership and placement
    /// state is lost until restart.
    ControllerCrash,
    /// The cluster controller restarted under a fresh durable epoch and is
    /// rebuilding membership from incoming heartbeats.
    ControllerRecover {
        /// Command epoch adopted by the new incarnation (persisted + 1).
        epoch: u64,
    },
    /// A node agent discarded a stale or duplicate cluster command
    /// (epoch/sequence cursor or incarnation mismatch).
    ClusterCmdStale {
        /// Cluster node index that rejected the command.
        node: u32,
        /// Epoch carried by the rejected command.
        epoch: u64,
        /// Sequence number carried by the rejected command.
        seq: u64,
    },
    /// A cluster RPC timed out unacked and was re-issued with exponential
    /// backoff under a fresh sequence number.
    ClusterRetry {
        /// Target cluster node index.
        node: u32,
        /// Logical domain the command concerns.
        dom: u32,
        /// Retry attempt number (1 = first re-issue).
        attempt: u32,
    },
}

/// Bounded event ring plus drop accounting.
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// New empty recorder keeping at most `capacity` events (≥ 1).
    pub fn new(capacity: usize) -> Self {
        TraceRecorder {
            ring: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// Events in arrival order (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consume into a plain vector (oldest first).
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.ring.into()
    }
}

/// Install a fresh recorder on this thread and enable recording.
///
/// Replaces (and discards) any recorder already installed. Under
/// `--cfg iorch_trace_off` the recorder is still installed but
/// [`enabled()`] stays `false`, so nothing records.
pub fn install(capacity: usize) {
    RECORDER.with(|r| *r.borrow_mut() = Some(TraceRecorder::new(capacity)));
    ENABLED.with(|e| e.set(true));
}

/// Disable recording and take the recorder off this thread.
pub fn uninstall() -> Option<TraceRecorder> {
    ENABLED.with(|e| e.set(false));
    RECORDER.with(|r| r.borrow_mut().take())
}

/// Install a live tap on this thread: every event recorded via
/// [`trace_event!`](crate::trace_event) is also handed to `tap` by reference,
/// whether or not a ring recorder is installed. This is the metrics-export
/// seam — a telemetry hub observes the event stream without retaining it.
///
/// Determinism contract: a tap is **read-only with respect to the
/// simulation**. It receives borrowed events, never sees or touches the
/// RNG, and adds no scheduler events, so installing one cannot change the
/// (seed → trace) mapping; the ring contents with and without a tap are
/// byte-identical. The tap itself must not emit trace events (re-entrant
/// events are silently not delivered to the tap, though they still reach
/// the ring). Replaces any previously installed tap.
pub fn set_tap(tap: Tap) {
    TAP.with(|t| *t.borrow_mut() = Some(tap));
    TAP_ACTIVE.with(|a| a.set(true));
}

/// Remove the live tap, returning it (e.g. to extract accumulated state).
pub fn clear_tap() -> Option<Tap> {
    TAP_ACTIVE.with(|a| a.set(false));
    TAP.with(|t| t.borrow_mut().take())
}

/// Whether [`trace_event!`](crate::trace_event) records on this thread —
/// either into a ring recorder or into a live tap. The [`COMPILED`] test
/// is first so the whole call folds to `false` when traced-off builds
/// const-propagate it.
#[inline(always)]
pub fn enabled() -> bool {
    COMPILED && (ENABLED.with(|e| e.get()) || TAP_ACTIVE.with(|a| a.get()))
}

/// Record an event. Call through [`trace_event!`](crate::trace_event), which guards on
/// [`enabled()`] so disabled runs never construct the event value.
#[cold]
pub fn record(t: SimTime, kind: TraceEventKind) {
    if TAP_ACTIVE.with(|a| a.get()) {
        // Take the tap out while calling it so a tap that (incorrectly)
        // emits trace events cannot re-enter itself.
        let taken = TAP.with(|c| c.borrow_mut().take());
        if let Some(mut f) = taken {
            f(t, &kind);
            TAP.with(|c| *c.borrow_mut() = Some(f));
        }
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.push(TraceEvent { t, kind });
        }
    });
}

/// RAII guard: installs a recorder on construction, takes it on
/// [`finish`](TraceSession::finish) (or disables on drop).
pub struct TraceSession {
    _private: (),
}

impl TraceSession {
    /// Install a recorder with [`DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        install(DEFAULT_CAPACITY);
        TraceSession { _private: () }
    }

    /// Install a recorder with an explicit capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        install(capacity);
        TraceSession { _private: () }
    }

    /// Stop recording and return the captured events (oldest first).
    pub fn finish(self) -> TraceRecorder {
        std::mem::forget(self);
        uninstall().unwrap_or_else(|| TraceRecorder::new(1))
    }
}

impl Default for TraceSession {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        let _ = uninstall();
    }
}

/// RAII guard for a live tap: installs on construction, removes on drop.
/// See [`set_tap`] for the determinism contract.
pub struct TapSession {
    _private: (),
}

impl TapSession {
    /// Install `tap` as the thread's live observer.
    pub fn new(tap: Tap) -> Self {
        set_tap(tap);
        TapSession { _private: () }
    }
}

impl Drop for TapSession {
    fn drop(&mut self) {
        let _ = clear_tap();
    }
}

/// Record a trace event when the thread-local recorder is enabled.
///
/// `$t` is a [`SimTime`](crate::SimTime), `$kind` a
/// [`TraceEventKind`](crate::trace::TraceEventKind) expression; the
/// expression is **not evaluated** when tracing is disabled, and the whole
/// statement compiles away under `RUSTFLAGS="--cfg iorch_trace_off"`.
#[macro_export]
macro_rules! trace_event {
    ($t:expr, $kind:expr) => {
        if $crate::trace::enabled() {
            $crate::trace::record($t, $kind);
        }
    };
}

// --------------------------------------------------------------------
// Rendering
// --------------------------------------------------------------------

fn write_ts(out: &mut String, t: SimTime) {
    let us = t.as_nanos() / 1_000;
    let frac = t.as_nanos() % 1_000;
    let _ = write!(out, "[{:>12}.{:03}us] ", us, frac);
}

fn render_decision(out: &mut String, d: &Decision) {
    match d {
        Decision::FlushNow {
            dom,
            nr_dirty,
            candidates,
        } => {
            let _ = write!(
                out,
                "decision flush_now -> dom {dom}: nr_dirty={nr_dirty} candidates={{"
            );
            for (i, (d, n)) in candidates.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{d}:{n}");
            }
            out.push('}');
        }
        Decision::FlushAck { dom } => {
            let _ = write!(out, "decision flush_ack <- dom {dom}");
        }
        Decision::FlushTimeout { dom, streak } => {
            let _ = write!(out, "decision flush_timeout dom {dom}: streak={streak}");
        }
        Decision::ReleaseGranted { dom, host_qdepth } => {
            let _ = write!(
                out,
                "decision release_granted -> dom {dom}: host qdepth {host_qdepth}"
            );
        }
        Decision::CongestionConfirmed { dom, host_qdepth } => {
            let _ = write!(
                out,
                "decision congestion_confirmed dom {dom}: host qdepth {host_qdepth}"
            );
        }
        Decision::StaggeredWake { dom, offset_ms } => {
            let _ = write!(out, "decision staggered_wake -> dom {dom}: +{offset_ms}ms");
        }
        Decision::Quarantine { dom, reason } => {
            let _ = write!(out, "decision quarantine dom {dom}: {reason}");
        }
        Decision::QuarantineCleared { dom } => {
            let _ = write!(out, "decision quarantine_cleared dom {dom}");
        }
        Decision::WeightPush { dom, weights } => {
            let _ = write!(out, "decision weight_push dom {dom}: [");
            for (i, w) in weights.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{w:.4}");
            }
            out.push(']');
        }
        Decision::PlaneCrash => {
            out.push_str("decision plane_crash: control plane state lost");
        }
        Decision::PlaneRecover {
            epoch,
            domains,
            quarantined,
        } => {
            let _ = write!(
                out,
                "decision plane_recover: epoch={epoch} domains={domains} quarantined={quarantined}"
            );
        }
        Decision::StaleCommand {
            dom,
            epoch,
            last_seen,
        } => {
            let _ = write!(
                out,
                "decision stale_command dom {dom}: epoch={epoch} last_seen={last_seen}"
            );
        }
        Decision::RuleFired {
            stage,
            rule,
            action,
            dom,
        } => {
            let _ = write!(
                out,
                "decision rule_fired dom {dom}: stage={stage} rule={rule} action={action}"
            );
        }
        Decision::NodeRegistered { node, incarnation } => {
            let _ = write!(
                out,
                "decision node_registered node {node}: incarnation={incarnation}"
            );
        }
        Decision::LeaseExpired { node, orphaned } => {
            let _ = write!(
                out,
                "decision lease_expired node {node}: orphaned={orphaned}"
            );
        }
        Decision::NodeRejoined { node, incarnation } => {
            let _ = write!(
                out,
                "decision node_rejoined node {node}: incarnation={incarnation}"
            );
        }
        Decision::DomainPlaced { dom, node } => {
            let _ = write!(out, "decision domain_placed dom {dom} -> node {node}");
        }
        Decision::DomainEvicted { dom, node } => {
            let _ = write!(out, "decision domain_evicted dom {dom} <- node {node}");
        }
        Decision::Failover { dom, from, to } => {
            let _ = write!(out, "decision failover dom {dom}: node {from} -> node {to}");
        }
        Decision::ControllerCrash => {
            out.push_str("decision controller_crash: cluster controller state lost");
        }
        Decision::ControllerRecover { epoch } => {
            let _ = write!(out, "decision controller_recover: epoch={epoch}");
        }
        Decision::ClusterCmdStale { node, epoch, seq } => {
            let _ = write!(
                out,
                "decision cluster_cmd_stale node {node}: epoch={epoch} seq={seq}"
            );
        }
        Decision::ClusterRetry { node, dom, attempt } => {
            let _ = write!(
                out,
                "decision cluster_retry node {node}: dom {dom} attempt={attempt}"
            );
        }
    }
}

/// Render one event as a single timeline line (no trailing newline).
pub fn render_event(out: &mut String, ev: &TraceEvent) {
    write_ts(out, ev.t);
    match &ev.kind {
        TraceEventKind::QueueSubmit {
            dom,
            req,
            write,
            len,
        } => {
            let rw = if *write { "W" } else { "R" };
            let _ = write!(out, "dom {dom} queue_submit req {req} {rw} {len}B");
        }
        TraceEventKind::QueueMerge { dom, req, len } => {
            let _ = write!(out, "dom {dom} queue_merge req {req} +{len}B");
        }
        TraceEventKind::QueueBlocked { dom, req } => {
            let _ = write!(out, "dom {dom} queue_blocked req {req}");
        }
        TraceEventKind::CongestionQuery { dom, allocated } => {
            let _ = write!(out, "dom {dom} congestion_query allocated={allocated}");
        }
        TraceEventKind::CongestionEnter { dom } => {
            let _ = write!(out, "dom {dom} congestion_enter");
        }
        TraceEventKind::CongestionClear { dom } => {
            let _ = write!(out, "dom {dom} congestion_clear");
        }
        TraceEventKind::BypassGrant { dom } => {
            let _ = write!(out, "dom {dom} bypass_grant");
        }
        TraceEventKind::BypassRevoke { dom, requery } => {
            let _ = write!(out, "dom {dom} bypass_revoke requery={requery}");
        }
        TraceEventKind::DescriptorUnderflow {
            dom,
            dispatched,
            completed,
        } => {
            let _ = write!(
                out,
                "dom {dom} DESCRIPTOR_UNDERFLOW dispatched={dispatched} completed={completed}"
            );
        }
        TraceEventKind::Unplug { dom, batch, forced } => {
            let _ = write!(out, "dom {dom} unplug batch={batch} forced={forced}");
        }
        TraceEventKind::WritebackIssue { dom, pages, remote } => {
            let _ = write!(
                out,
                "dom {dom} writeback_issue pages={pages} remote={remote}"
            );
        }
        TraceEventKind::RingPush { dom, req } => {
            let _ = write!(out, "dom {dom} ring_push req {req}");
        }
        TraceEventKind::BlockComplete { dom, req } => {
            let _ = write!(out, "dom {dom} block_complete req {req}");
        }
        TraceEventKind::DrrVisit { core, dom, credit } => {
            let _ = write!(out, "iocore {core} drr_visit dom {dom} credit={credit}B");
        }
        TraceEventKind::RateLimitDefer { dom, req, delay_us } => {
            let _ = write!(out, "dom {dom} rate_limit_defer req {req} {delay_us}us");
        }
        TraceEventKind::DeviceDispatch {
            req,
            dom,
            write,
            len,
            qdepth,
        } => {
            let rw = if *write { "W" } else { "R" };
            let _ = write!(
                out,
                "device dispatch req {req} dom {dom} {rw} {len}B qdepth={qdepth}"
            );
        }
        TraceEventKind::DeviceComplete {
            req,
            dom,
            latency_us,
        } => {
            let _ = write!(out, "device complete req {req} dom {dom} {latency_us}us");
        }
        TraceEventKind::StoreWrite { dom, path, value } => {
            let _ = write!(out, "dom {dom} store_write {path} = {value}");
        }
        TraceEventKind::StoreDenied { dom, path } => {
            let _ = write!(out, "dom {dom} store_denied {path}");
        }
        TraceEventKind::XenBusDeliver { dom, path, value } => match value {
            Some(v) => {
                let _ = write!(out, "dom {dom} xenbus_deliver {path} = {v}");
            }
            None => {
                let _ = write!(out, "dom {dom} xenbus_deliver {path} (removed)");
            }
        },
        TraceEventKind::XenBusDrop { dom, path, value } => match value {
            Some(v) => {
                let _ = write!(out, "dom {dom} xenbus_drop {path} = {v}");
            }
            None => {
                let _ = write!(out, "dom {dom} xenbus_drop {path} (removed)");
            }
        },
        TraceEventKind::XenBusDup { dom, path, value } => match value {
            Some(v) => {
                let _ = write!(out, "dom {dom} xenbus_dup {path} = {v}");
            }
            None => {
                let _ = write!(out, "dom {dom} xenbus_dup {path} (removed)");
            }
        },
        TraceEventKind::Decision(d) => render_decision(out, d),
    }
}

/// Render the whole timeline, one line per event.
pub fn render_timeline(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        render_event(&mut out, ev);
        out.push('\n');
    }
    out
}

/// Render only the control-plane decision log.
pub fn render_decision_log(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        if let TraceEventKind::Decision(d) = &ev.kind {
            write_ts(&mut out, ev.t);
            render_decision(&mut out, d);
            out.push('\n');
        }
    }
    out
}

// --------------------------------------------------------------------
// Chrome trace-event JSON
// --------------------------------------------------------------------

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

struct ChromeEvent<'a> {
    name: &'static str,
    tid: u32,
    args: Vec<(&'static str, ArgVal<'a>)>,
}

enum ArgVal<'a> {
    U(u64),
    B(bool),
    S(&'a str),
    Owned(String),
}

fn chrome_fields(kind: &TraceEventKind) -> ChromeEvent<'_> {
    use ArgVal::{Owned, B, S, U};
    match kind {
        TraceEventKind::QueueSubmit {
            dom,
            req,
            write,
            len,
        } => ChromeEvent {
            name: "queue_submit",
            tid: *dom,
            args: vec![("req", U(*req)), ("write", B(*write)), ("len", U(*len))],
        },
        TraceEventKind::QueueMerge { dom, req, len } => ChromeEvent {
            name: "queue_merge",
            tid: *dom,
            args: vec![("req", U(*req)), ("len", U(*len))],
        },
        TraceEventKind::QueueBlocked { dom, req } => ChromeEvent {
            name: "queue_blocked",
            tid: *dom,
            args: vec![("req", U(*req))],
        },
        TraceEventKind::CongestionQuery { dom, allocated } => ChromeEvent {
            name: "congestion_query",
            tid: *dom,
            args: vec![("allocated", U(u64::from(*allocated)))],
        },
        TraceEventKind::CongestionEnter { dom } => ChromeEvent {
            name: "congestion_enter",
            tid: *dom,
            args: vec![],
        },
        TraceEventKind::CongestionClear { dom } => ChromeEvent {
            name: "congestion_clear",
            tid: *dom,
            args: vec![],
        },
        TraceEventKind::BypassGrant { dom } => ChromeEvent {
            name: "bypass_grant",
            tid: *dom,
            args: vec![],
        },
        TraceEventKind::BypassRevoke { dom, requery } => ChromeEvent {
            name: "bypass_revoke",
            tid: *dom,
            args: vec![("requery", B(*requery))],
        },
        TraceEventKind::DescriptorUnderflow {
            dom,
            dispatched,
            completed,
        } => ChromeEvent {
            name: "descriptor_underflow",
            tid: *dom,
            args: vec![
                ("dispatched", U(u64::from(*dispatched))),
                ("completed", U(u64::from(*completed))),
            ],
        },
        TraceEventKind::Unplug { dom, batch, forced } => ChromeEvent {
            name: "unplug",
            tid: *dom,
            args: vec![("batch", U(u64::from(*batch))), ("forced", B(*forced))],
        },
        TraceEventKind::WritebackIssue { dom, pages, remote } => ChromeEvent {
            name: "writeback_issue",
            tid: *dom,
            args: vec![("pages", U(*pages)), ("remote", B(*remote))],
        },
        TraceEventKind::RingPush { dom, req } => ChromeEvent {
            name: "ring_push",
            tid: *dom,
            args: vec![("req", U(*req))],
        },
        TraceEventKind::BlockComplete { dom, req } => ChromeEvent {
            name: "block_complete",
            tid: *dom,
            args: vec![("req", U(*req))],
        },
        TraceEventKind::DrrVisit { core, dom, credit } => ChromeEvent {
            name: "drr_visit",
            tid: *dom,
            args: vec![("core", U(u64::from(*core))), ("credit", U(*credit))],
        },
        TraceEventKind::RateLimitDefer { dom, req, delay_us } => ChromeEvent {
            name: "rate_limit_defer",
            tid: *dom,
            args: vec![("req", U(*req)), ("delay_us", U(*delay_us))],
        },
        TraceEventKind::DeviceDispatch {
            req,
            dom,
            write,
            len,
            qdepth,
        } => ChromeEvent {
            name: "device_dispatch",
            tid: *dom,
            args: vec![
                ("req", U(*req)),
                ("write", B(*write)),
                ("len", U(*len)),
                ("qdepth", U(u64::from(*qdepth))),
            ],
        },
        TraceEventKind::DeviceComplete {
            req,
            dom,
            latency_us,
        } => ChromeEvent {
            name: "device_complete",
            tid: *dom,
            args: vec![("req", U(*req)), ("latency_us", U(*latency_us))],
        },
        TraceEventKind::StoreWrite { dom, path, value } => ChromeEvent {
            name: "store_write",
            tid: *dom,
            args: vec![("path", S(path)), ("value", S(value))],
        },
        TraceEventKind::StoreDenied { dom, path } => ChromeEvent {
            name: "store_denied",
            tid: *dom,
            args: vec![("path", S(path))],
        },
        TraceEventKind::XenBusDeliver { dom, path, value } => ChromeEvent {
            name: "xenbus_deliver",
            tid: *dom,
            args: match value {
                Some(v) => vec![("path", S(path)), ("value", S(v))],
                None => vec![("path", S(path)), ("removed", B(true))],
            },
        },
        TraceEventKind::XenBusDrop { dom, path, value } => ChromeEvent {
            name: "xenbus_drop",
            tid: *dom,
            args: match value {
                Some(v) => vec![("path", S(path)), ("value", S(v))],
                None => vec![("path", S(path)), ("removed", B(true))],
            },
        },
        TraceEventKind::XenBusDup { dom, path, value } => ChromeEvent {
            name: "xenbus_dup",
            tid: *dom,
            args: match value {
                Some(v) => vec![("path", S(path)), ("value", S(v))],
                None => vec![("path", S(path)), ("removed", B(true))],
            },
        },
        TraceEventKind::Decision(d) => {
            let mut body = String::new();
            render_decision(&mut body, d);
            let (name, dom) = match d {
                Decision::FlushNow { dom, .. } => ("decision_flush_now", *dom),
                Decision::FlushAck { dom } => ("decision_flush_ack", *dom),
                Decision::FlushTimeout { dom, .. } => ("decision_flush_timeout", *dom),
                Decision::ReleaseGranted { dom, .. } => ("decision_release_granted", *dom),
                Decision::CongestionConfirmed { dom, .. } => {
                    ("decision_congestion_confirmed", *dom)
                }
                Decision::StaggeredWake { dom, .. } => ("decision_staggered_wake", *dom),
                Decision::Quarantine { dom, .. } => ("decision_quarantine", *dom),
                Decision::QuarantineCleared { dom } => ("decision_quarantine_cleared", *dom),
                Decision::WeightPush { dom, .. } => ("decision_weight_push", *dom),
                Decision::PlaneCrash => ("decision_plane_crash", 0),
                Decision::PlaneRecover { .. } => ("decision_plane_recover", 0),
                Decision::StaleCommand { dom, .. } => ("decision_stale_command", *dom),
                Decision::RuleFired { dom, .. } => ("decision_rule_fired", *dom),
                Decision::NodeRegistered { node, .. } => ("decision_node_registered", *node),
                Decision::LeaseExpired { node, .. } => ("decision_lease_expired", *node),
                Decision::NodeRejoined { node, .. } => ("decision_node_rejoined", *node),
                Decision::DomainPlaced { dom, .. } => ("decision_domain_placed", *dom),
                Decision::DomainEvicted { dom, .. } => ("decision_domain_evicted", *dom),
                Decision::Failover { dom, .. } => ("decision_failover", *dom),
                Decision::ControllerCrash => ("decision_controller_crash", 0),
                Decision::ControllerRecover { .. } => ("decision_controller_recover", 0),
                Decision::ClusterCmdStale { node, .. } => ("decision_cluster_cmd_stale", *node),
                Decision::ClusterRetry { node, .. } => ("decision_cluster_retry", *node),
            };
            ChromeEvent {
                name,
                tid: dom,
                args: vec![("detail", Owned(body))],
            }
        }
    }
}

/// Export events in Chrome trace-event JSON (array form): load the output
/// in `chrome://tracing` or Perfetto. One instant event per trace event;
/// `tid` is the domain tag. Output is deterministic.
pub fn chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push_str("[\n");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let c = chrome_fields(&ev.kind);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{}.{:03}",
            c.name,
            c.tid,
            ev.t.as_nanos() / 1_000,
            ev.t.as_nanos() % 1_000
        );
        if !c.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in c.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":");
                match v {
                    ArgVal::U(n) => {
                        let _ = write!(out, "{n}");
                    }
                    ArgVal::B(b) => {
                        let _ = write!(out, "{b}");
                    }
                    ArgVal::S(s) => {
                        out.push('"');
                        json_escape(&mut out, s);
                        out.push('"');
                    }
                    ArgVal::Owned(s) => {
                        out.push('"');
                        json_escape(&mut out, s);
                        out.push('"');
                    }
                }
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            t: SimTime::from_nanos(ns),
            kind,
        }
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut r = TraceRecorder::new(2);
        for i in 0..5 {
            r.push(ev(i, TraceEventKind::CongestionEnter { dom: 1 }));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let evs = r.into_events();
        assert_eq!(evs[0].t, SimTime::from_nanos(3));
        assert_eq!(evs[1].t, SimTime::from_nanos(4));
    }

    #[test]
    fn session_captures_through_macro() {
        if !COMPILED {
            return;
        }
        let session = TraceSession::with_capacity(16);
        crate::trace_event!(
            SimTime::from_micros(5),
            TraceEventKind::CongestionEnter { dom: 7 }
        );
        let rec = session.finish();
        assert_eq!(rec.len(), 1);
        assert!(!enabled());
        // After finish, the macro is a no-op again.
        crate::trace_event!(
            SimTime::from_micros(6),
            TraceEventKind::CongestionEnter { dom: 7 }
        );
        assert!(uninstall().is_none());
    }

    #[test]
    fn disabled_macro_records_nothing() {
        fn explode() -> u32 {
            panic!("kind expression must not be evaluated when disabled")
        }
        assert!(!enabled());
        crate::trace_event!(
            SimTime::ZERO,
            TraceEventKind::CongestionEnter { dom: explode() }
        );
    }

    #[test]
    fn tap_observes_without_a_recorder() {
        if !COMPILED {
            return;
        }
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let _guard = TapSession::new(Box::new(move |t, _kind| sink.borrow_mut().push(t)));
        assert!(enabled());
        crate::trace_event!(
            SimTime::from_micros(3),
            TraceEventKind::CongestionEnter { dom: 1 }
        );
        assert_eq!(*seen.borrow(), vec![SimTime::from_micros(3)]);
        // No recorder was installed, so nothing was retained.
        assert!(uninstall().is_none());
        drop(_guard);
        assert!(!enabled());
    }

    #[test]
    fn tap_and_recorder_both_receive_and_ring_is_unchanged_by_tap() {
        if !COMPILED {
            return;
        }
        // Reference run: recorder only.
        let session = TraceSession::with_capacity(16);
        crate::trace_event!(
            SimTime::from_micros(1),
            TraceEventKind::CongestionEnter { dom: 9 }
        );
        let reference = session.finish().into_events();

        // Same events with a tap installed: ring must be byte-identical.
        let count = std::rc::Rc::new(Cell::new(0u32));
        let c2 = std::rc::Rc::clone(&count);
        let guard = TapSession::new(Box::new(move |_, _| c2.set(c2.get() + 1)));
        let session = TraceSession::with_capacity(16);
        crate::trace_event!(
            SimTime::from_micros(1),
            TraceEventKind::CongestionEnter { dom: 9 }
        );
        let tapped = session.finish().into_events();
        drop(guard);
        assert_eq!(reference, tapped);
        assert_eq!(count.get(), 1);
    }

    #[test]
    fn timeline_and_decision_log_render() {
        let evs = vec![
            ev(
                1_500,
                TraceEventKind::QueueSubmit {
                    dom: 3,
                    req: 42,
                    write: true,
                    len: 4096,
                },
            ),
            ev(
                2_000_000,
                TraceEventKind::Decision(Decision::FlushNow {
                    dom: 3,
                    nr_dirty: 9412,
                    candidates: vec![(3, 9412), (5, 2048)],
                }),
            ),
            ev(
                3_000_000,
                TraceEventKind::Decision(Decision::ReleaseGranted {
                    dom: 5,
                    host_qdepth: 0,
                }),
            ),
        ];
        let tl = render_timeline(&evs);
        assert!(tl.contains("dom 3 queue_submit req 42 W 4096B"));
        assert!(tl.contains("flush_now -> dom 3: nr_dirty=9412 candidates={3:9412, 5:2048}"));
        let dl = render_decision_log(&evs);
        assert!(!dl.contains("queue_submit"));
        assert!(dl.contains("release_granted -> dom 5: host qdepth 0"));
        assert_eq!(dl.lines().count(), 2);
    }

    #[test]
    fn chrome_json_is_wellformed_and_deterministic() {
        let evs = vec![
            ev(
                1_500,
                TraceEventKind::StoreWrite {
                    dom: 1,
                    path: Rc::from("/local/domain/1/device/virt-dev/congested"),
                    value: Rc::from("1"),
                },
            ),
            ev(
                9_000,
                TraceEventKind::Decision(Decision::Quarantine {
                    dom: 2,
                    reason: "denied-rate budget",
                }),
            ),
        ];
        let a = chrome_json(&evs);
        let b = chrome_json(&evs);
        assert_eq!(a, b);
        assert!(a.starts_with("[\n"));
        assert!(a.ends_with("\n]\n"));
        assert!(a.contains("\"name\":\"store_write\""));
        assert!(a.contains("\"ts\":1.500"));
        assert!(a.contains("decision quarantine dom 2: denied-rate budget"));
    }

    #[test]
    fn json_escaping_handles_specials() {
        let mut s = String::new();
        json_escape(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }
}
