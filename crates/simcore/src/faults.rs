//! Deterministic, clock-scheduled fault-injection plans.
//!
//! A [`FaultPlan`] is a list of [`FaultEvent`]s — *what* goes wrong and
//! *when* (a [`FaultWindow`] on the simulation clock). The plan itself is
//! pure data: the layers above hook it into their models (device service
//! times in `iorch-storage`, store traffic and watch delivery in
//! `iorch-hypervisor`, guest-driver misbehaviour in `iorch-guestos`), so a
//! run with a given `(seed, plan)` pair is bit-for-bit reproducible, and a
//! component with no plan installed pays only an `Option` check.
//!
//! The fault vocabulary covers the failure matrix of DESIGN.md §6:
//! degraded and stalled devices, a malicious store writer (hammering its
//! own keys or violating another domain's permissions), delayed watch
//! delivery, and guests that ignore the collaborative protocol.
//!
//! This crate sits below the hypervisor, so domains are named by their raw
//! `u32` id here; the hypervisor-side installer maps them onto `DomainId`.

use crate::time::{SimDuration, SimTime};

/// A half-open window `[from, until)` on the simulation clock.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultWindow {
    /// First instant at which the fault is active.
    pub from: SimTime,
    /// First instant at which the fault is no longer active.
    pub until: SimTime,
}

impl FaultWindow {
    /// Window active during `[from, until)`.
    ///
    /// Both degenerate shapes are rejected: an inverted window
    /// (`from > until`) and an *empty* one (`from == until`), which under
    /// the half-open `contains` would silently never fire — a fault plan
    /// that tests nothing is almost certainly a bug in the scenario.
    pub fn new(from: SimTime, until: SimTime) -> Self {
        assert!(from <= until, "fault window ends before it starts");
        assert!(
            from < until,
            "fault window is empty (from == until) and would never fire"
        );
        FaultWindow { from, until }
    }

    /// Window active for the whole run.
    pub fn always() -> Self {
        FaultWindow {
            from: SimTime::ZERO,
            until: SimTime::MAX,
        }
    }

    /// Is the window active at `t`?
    pub fn contains(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// What goes wrong while a window is active.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum FaultKind {
    /// Device service times are multiplied by `factor` (> 1 = slower).
    /// Models a degraded performance state (worn flash, thermal throttle).
    DeviceSlowdown {
        /// Service-time multiplier.
        factor: f64,
    },
    /// The device stops servicing: work dispatched inside the window
    /// completes no earlier than the window's end (firmware hiccup, path
    /// failover).
    DeviceStall,
    /// Guest `dom`'s driver ignores `flush_now` commands — it never starts
    /// the remote sync and never acks.
    IgnoreFlushNow {
        /// Raw domain id.
        dom: u32,
    },
    /// Guest `dom`'s driver ignores `release_request` grants — it stays
    /// asleep in congestion instead of bypassing.
    IgnoreReleaseRequest {
        /// Raw domain id.
        dom: u32,
    },
    /// Guest `dom` hammers the system store with a junk write every
    /// `period` (watch-event spam against the management module).
    StoreHammer {
        /// Raw domain id.
        dom: u32,
        /// Interval between writes.
        period: SimDuration,
    },
    /// Guest `dom` attempts a write inside `victim`'s subtree every
    /// `period` — a permission violation the store must deny.
    StoreViolation {
        /// Raw attacker domain id.
        dom: u32,
        /// Raw victim domain id.
        victim: u32,
        /// Interval between attempts.
        period: SimDuration,
    },
    /// Watch-event delivery is delayed by `extra` on top of the modelled
    /// XenBus latency.
    WatchDelay {
        /// Additional delivery latency.
        extra: SimDuration,
    },
    /// The dom0 management plane crashes at `at`, losing all in-memory
    /// decision state and missing every event until it recovers
    /// `recover_after` later (restart + state rebuild from the store).
    /// Unlike the windowed kinds this is a point event, so it carries its
    /// own clock instants; installers pair it with
    /// [`FaultWindow::always`].
    PlaneCrash {
        /// Instant the plane dies.
        at: SimTime,
        /// Outage length; the plane recovers at `at + recover_after`.
        recover_after: SimDuration,
    },
    /// The XenBus transport misdelivers watch events while the window is
    /// active: every `drop_1_in`-th event is lost, every `dup_1_in`-th is
    /// delivered twice, and `reorder` reverses each delivery batch.
    /// Counters are deterministic (no RNG draw), so a `(seed, plan)` pair
    /// still replays bit-for-bit. A field of `0` disables that misbehaviour.
    BusUnreliable {
        /// Drop every n-th event (0 = drop nothing).
        drop_1_in: u64,
        /// Duplicate every n-th event (0 = duplicate nothing).
        dup_1_in: u64,
        /// Reverse the order of each same-instant delivery batch.
        reorder: bool,
    },
    /// The inter-node network partitions while the window is active: the
    /// nodes whose bits are set in `group` cannot exchange messages with
    /// the nodes whose bits are clear (traffic *within* either side still
    /// flows). Node `i` is in the group when bit `i` of the mask is set.
    NetPartition {
        /// Bitmask of isolated node indices.
        group: u64,
    },
    /// The inter-node message bus misdelivers while the window is active —
    /// the network-level twin of [`FaultKind::BusUnreliable`], with the
    /// same deterministic counter semantics (every n-th message, no RNG).
    NetUnreliable {
        /// Drop every n-th message (0 = drop nothing).
        drop_1_in: u64,
        /// Duplicate every n-th message (0 = duplicate nothing).
        dup_1_in: u64,
        /// Reverse the order of each same-instant delivery batch.
        reorder: bool,
    },
    /// Inter-node message delivery is delayed by `extra` on top of the
    /// modelled transfer time (congested uplink, slow switch fabric).
    NetDelay {
        /// Additional delivery latency.
        extra: SimDuration,
    },
    /// Whole node `node` crashes at `at` — its agent stops, its domains
    /// die with the host — and reboots `recover_after` later with a fresh
    /// incarnation and no state. A point event like
    /// [`FaultKind::PlaneCrash`]; installers pair it with
    /// [`FaultWindow::always`].
    NodeCrash {
        /// Raw cluster node index.
        node: u32,
        /// Instant the node dies.
        at: SimTime,
        /// Outage length; the node reboots at `at + recover_after`.
        recover_after: SimDuration,
    },
    /// The cluster controller crashes at `at`, losing all volatile
    /// membership/placement state, and restarts `recover_after` later
    /// under a fresh (durable, monotonic) command epoch. A point event
    /// like [`FaultKind::PlaneCrash`].
    ControllerCrash {
        /// Instant the controller dies.
        at: SimTime,
        /// Outage length; the controller restarts at `at + recover_after`.
        recover_after: SimDuration,
    },
}

/// One scheduled fault: a kind plus its active window.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FaultEvent {
    /// When the fault is active.
    pub window: FaultWindow,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add an event (builder style).
    pub fn with(mut self, window: FaultWindow, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { window, kind });
        self
    }

    /// All scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Does the plan schedule anything at all?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Combined device slowdown factor active at `now` (product of active
    /// [`FaultKind::DeviceSlowdown`] windows; `1.0` when none).
    pub fn device_slowdown(&self, now: SimTime) -> f64 {
        let mut f = 1.0;
        for ev in &self.events {
            if let FaultKind::DeviceSlowdown { factor } = ev.kind {
                if ev.window.contains(now) {
                    f *= factor;
                }
            }
        }
        f
    }

    /// If a [`FaultKind::DeviceStall`] window is active at `now`, the
    /// latest instant any active stall ends (work completes no earlier).
    pub fn device_stall_until(&self, now: SimTime) -> Option<SimTime> {
        let mut until = None;
        for ev in &self.events {
            if matches!(ev.kind, FaultKind::DeviceStall) && ev.window.contains(now) {
                until = Some(ev.window.until.max(until.unwrap_or(SimTime::ZERO)));
            }
        }
        until
    }

    /// Extra watch-delivery latency active at `now` (sum of active
    /// [`FaultKind::WatchDelay`] windows).
    pub fn watch_delay(&self, now: SimTime) -> SimDuration {
        let mut d = SimDuration::ZERO;
        for ev in &self.events {
            if let FaultKind::WatchDelay { extra } = ev.kind {
                if ev.window.contains(now) {
                    d += extra;
                }
            }
        }
        d
    }

    /// Does the plan affect device service times at any point?
    pub fn has_device_faults(&self) -> bool {
        self.events.iter().any(|ev| {
            matches!(
                ev.kind,
                FaultKind::DeviceSlowdown { .. } | FaultKind::DeviceStall
            )
        })
    }

    /// Does the plan delay watch delivery at any point?
    pub fn has_watch_faults(&self) -> bool {
        self.events
            .iter()
            .any(|ev| matches!(ev.kind, FaultKind::WatchDelay { .. }))
    }

    /// Does the plan misdeliver watch events at any point
    /// ([`FaultKind::BusUnreliable`])?
    pub fn has_bus_faults(&self) -> bool {
        self.events
            .iter()
            .any(|ev| matches!(ev.kind, FaultKind::BusUnreliable { .. }))
    }

    /// Absorb every event of `other` into this plan (layering an extra
    /// oracle plan on top of a scenario's own). Overlapping windows
    /// compose exactly as if both plans had been built as one.
    pub fn merge(&mut self, other: &FaultPlan) {
        self.events.extend_from_slice(&other.events);
    }

    /// Are nodes `a` and `b` unable to exchange messages at `now`? True
    /// when any active [`FaultKind::NetPartition`] window puts them on
    /// opposite sides of its `group` mask.
    pub fn net_partitioned(&self, a: usize, b: usize, now: SimTime) -> bool {
        self.events.iter().any(|ev| {
            if let FaultKind::NetPartition { group } = ev.kind {
                let in_a = a < 64 && group & (1 << a) != 0;
                let in_b = b < 64 && group & (1 << b) != 0;
                ev.window.contains(now) && in_a != in_b
            } else {
                false
            }
        })
    }

    /// Combined network misdelivery active at `now`: overlapping
    /// [`FaultKind::NetUnreliable`] windows compose like
    /// [`FaultPlan::bus_unreliable`] (smallest non-zero stride, OR-ed
    /// `reorder`). `None` when no window is active.
    pub fn net_unreliable(&self, now: SimTime) -> Option<BusFault> {
        let mut combined: Option<BusFault> = None;
        for ev in &self.events {
            if let FaultKind::NetUnreliable {
                drop_1_in,
                dup_1_in,
                reorder,
            } = ev.kind
            {
                if !ev.window.contains(now) {
                    continue;
                }
                let b = combined.get_or_insert(BusFault {
                    drop_1_in: 0,
                    dup_1_in: 0,
                    reorder: false,
                });
                b.drop_1_in = merge_stride(b.drop_1_in, drop_1_in);
                b.dup_1_in = merge_stride(b.dup_1_in, dup_1_in);
                b.reorder |= reorder;
            }
        }
        combined
    }

    /// Extra inter-node delivery latency active at `now` (sum of active
    /// [`FaultKind::NetDelay`] windows).
    pub fn net_delay(&self, now: SimTime) -> SimDuration {
        let mut d = SimDuration::ZERO;
        for ev in &self.events {
            if let FaultKind::NetDelay { extra } = ev.kind {
                if ev.window.contains(now) {
                    d += extra;
                }
            }
        }
        d
    }

    /// Does the plan touch the inter-node network at any point
    /// (partition, misdelivery or delay)?
    pub fn has_net_faults(&self) -> bool {
        self.events.iter().any(|ev| {
            matches!(
                ev.kind,
                FaultKind::NetPartition { .. }
                    | FaultKind::NetUnreliable { .. }
                    | FaultKind::NetDelay { .. }
            )
        })
    }

    /// Combined bus misbehaviour active at `now`: overlapping
    /// [`FaultKind::BusUnreliable`] windows compose by taking the most
    /// aggressive drop/duplicate stride (the smallest non-zero `n`) and
    /// OR-ing `reorder`. `None` when no window is active.
    pub fn bus_unreliable(&self, now: SimTime) -> Option<BusFault> {
        let mut combined: Option<BusFault> = None;
        for ev in &self.events {
            if let FaultKind::BusUnreliable {
                drop_1_in,
                dup_1_in,
                reorder,
            } = ev.kind
            {
                if !ev.window.contains(now) {
                    continue;
                }
                let b = combined.get_or_insert(BusFault {
                    drop_1_in: 0,
                    dup_1_in: 0,
                    reorder: false,
                });
                b.drop_1_in = merge_stride(b.drop_1_in, drop_1_in);
                b.dup_1_in = merge_stride(b.dup_1_in, dup_1_in);
                b.reorder |= reorder;
            }
        }
        combined
    }
}

/// The bus misbehaviour in force at one instant (see
/// [`FaultPlan::bus_unreliable`]); strides of `0` mean "off".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BusFault {
    /// Drop every n-th event (0 = drop nothing).
    pub drop_1_in: u64,
    /// Duplicate every n-th event (0 = duplicate nothing).
    pub dup_1_in: u64,
    /// Reverse each same-instant delivery batch.
    pub reorder: bool,
}

/// Most aggressive of two drop/dup strides, where 0 means disabled.
fn merge_stride(a: u64, b: u64) -> u64 {
    match (a, b) {
        (0, x) | (x, 0) => x,
        (a, b) => a.min(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn window_is_half_open() {
        let w = FaultWindow::new(t(10), t(20));
        assert!(!w.contains(t(9)));
        assert!(w.contains(t(10)));
        assert!(w.contains(t(19)));
        assert!(!w.contains(t(20)));
        assert!(FaultWindow::always().contains(SimTime::ZERO));
    }

    #[test]
    #[should_panic(expected = "fault window ends before it starts")]
    fn rejects_inverted_window() {
        FaultWindow::new(t(20), t(10));
    }

    #[test]
    #[should_panic(expected = "fault window is empty")]
    fn rejects_empty_window() {
        FaultWindow::new(t(10), t(10));
    }

    /// Boundary semantics of the half-open window: active *at* `from`,
    /// inactive *at* `until`, and a one-instant window contains exactly
    /// its `from`.
    #[test]
    fn contains_boundaries_are_half_open() {
        let w = FaultWindow::new(t(10), t(20));
        assert!(w.contains(w.from));
        assert!(!w.contains(w.until));
        let tiny = FaultWindow::new(
            t(5),
            SimTime::from_millis(5) + crate::SimDuration::from_nanos(1),
        );
        assert!(tiny.contains(tiny.from));
        assert!(!tiny.contains(tiny.until));
    }

    #[test]
    fn slowdown_factors_compose() {
        let plan = FaultPlan::new()
            .with(
                FaultWindow::new(t(0), t(100)),
                FaultKind::DeviceSlowdown { factor: 2.0 },
            )
            .with(
                FaultWindow::new(t(50), t(100)),
                FaultKind::DeviceSlowdown { factor: 3.0 },
            );
        assert_eq!(plan.device_slowdown(t(10)), 2.0);
        assert_eq!(plan.device_slowdown(t(60)), 6.0);
        assert_eq!(plan.device_slowdown(t(100)), 1.0);
    }

    #[test]
    fn stall_reports_latest_end() {
        let plan = FaultPlan::new()
            .with(FaultWindow::new(t(0), t(50)), FaultKind::DeviceStall)
            .with(FaultWindow::new(t(10), t(80)), FaultKind::DeviceStall);
        assert_eq!(plan.device_stall_until(t(20)), Some(t(80)));
        assert_eq!(plan.device_stall_until(t(60)), Some(t(80)));
        assert_eq!(plan.device_stall_until(t(90)), None);
    }

    #[test]
    fn bus_faults_compose_most_aggressively() {
        let plan = FaultPlan::new()
            .with(
                FaultWindow::new(t(0), t(100)),
                FaultKind::BusUnreliable {
                    drop_1_in: 7,
                    dup_1_in: 0,
                    reorder: false,
                },
            )
            .with(
                FaultWindow::new(t(50), t(150)),
                FaultKind::BusUnreliable {
                    drop_1_in: 13,
                    dup_1_in: 5,
                    reorder: true,
                },
            );
        assert!(plan.has_bus_faults());
        assert_eq!(
            plan.bus_unreliable(t(10)),
            Some(BusFault {
                drop_1_in: 7,
                dup_1_in: 0,
                reorder: false
            })
        );
        // Overlap: smallest non-zero stride wins, reorder ORs in.
        assert_eq!(
            plan.bus_unreliable(t(60)),
            Some(BusFault {
                drop_1_in: 7,
                dup_1_in: 5,
                reorder: true
            })
        );
        assert_eq!(plan.bus_unreliable(t(120)).unwrap().drop_1_in, 13);
        assert_eq!(plan.bus_unreliable(t(200)), None);
        assert!(!FaultPlan::new()
            .with(
                FaultWindow::always(),
                FaultKind::PlaneCrash {
                    at: t(5),
                    recover_after: SimDuration::from_millis(100),
                },
            )
            .has_bus_faults());
    }

    #[test]
    fn net_partition_splits_by_group_mask() {
        let plan = FaultPlan::new().with(
            FaultWindow::new(t(10), t(20)),
            FaultKind::NetPartition { group: 0b100 },
        );
        assert!(plan.has_net_faults());
        // Across the cut, inside the window only.
        assert!(plan.net_partitioned(2, 0, t(15)));
        assert!(plan.net_partitioned(0, 2, t(15)));
        assert!(!plan.net_partitioned(2, 0, t(25)));
        // Same side: reachable.
        assert!(!plan.net_partitioned(0, 1, t(15)));
        assert!(!plan.net_partitioned(2, 2, t(15)));
        // Node indices past the mask width sit outside every group.
        assert!(!plan.net_partitioned(64, 65, t(15)));
        assert!(plan.net_partitioned(2, 64, t(15)));
    }

    #[test]
    fn net_unreliable_and_delay_compose() {
        let plan = FaultPlan::new()
            .with(
                FaultWindow::new(t(0), t(100)),
                FaultKind::NetUnreliable {
                    drop_1_in: 9,
                    dup_1_in: 0,
                    reorder: false,
                },
            )
            .with(
                FaultWindow::new(t(50), t(100)),
                FaultKind::NetUnreliable {
                    drop_1_in: 4,
                    dup_1_in: 6,
                    reorder: true,
                },
            )
            .with(
                FaultWindow::new(t(0), t(50)),
                FaultKind::NetDelay {
                    extra: SimDuration::from_millis(3),
                },
            );
        assert_eq!(
            plan.net_unreliable(t(60)),
            Some(BusFault {
                drop_1_in: 4,
                dup_1_in: 6,
                reorder: true
            })
        );
        assert_eq!(plan.net_unreliable(t(10)).unwrap().drop_1_in, 9);
        assert_eq!(plan.net_unreliable(t(200)), None);
        assert_eq!(plan.net_delay(t(10)), SimDuration::from_millis(3));
        assert_eq!(plan.net_delay(t(60)), SimDuration::ZERO);
        // Net faults never leak into the XenBus accessor and vice versa.
        assert_eq!(plan.bus_unreliable(t(60)), None);
        assert!(!plan.has_bus_faults());
    }

    #[test]
    fn merge_layers_plans() {
        let mut plan = FaultPlan::new().with(FaultWindow::new(t(0), t(10)), FaultKind::DeviceStall);
        plan.merge(&FaultPlan::new().with(
            FaultWindow::new(t(5), t(20)),
            FaultKind::NetDelay {
                extra: SimDuration::from_millis(1),
            },
        ));
        assert_eq!(plan.events().len(), 2);
        assert!(plan.device_stall_until(t(5)).is_some());
        assert_eq!(plan.net_delay(t(15)), SimDuration::from_millis(1));
    }

    #[test]
    fn watch_delays_sum() {
        let plan = FaultPlan::new().with(
            FaultWindow::new(t(0), t(10)),
            FaultKind::WatchDelay {
                extra: SimDuration::from_millis(5),
            },
        );
        assert_eq!(plan.watch_delay(t(5)), SimDuration::from_millis(5));
        assert_eq!(plan.watch_delay(t(15)), SimDuration::ZERO);
        assert!(plan.has_watch_faults());
        assert!(!plan.has_device_faults());
    }
}
