//! The simulation driver: owns the world and the scheduler and runs the
//! event loop to completion or to a time horizon.

use crate::event::{Callback, Scheduler};
use crate::time::{SimDuration, SimTime};

/// A complete simulation: a world of type `M` plus its event scheduler.
///
/// The world is whatever state the model needs — a machine, a cluster, a
/// test vector. Events are closures that receive `(&mut M, &mut Scheduler)`.
///
/// ```
/// use iorch_simcore::{Simulation, SimDuration};
///
/// let mut sim = Simulation::new(0u64);
/// sim.scheduler_mut().schedule_in(SimDuration::from_millis(5), |count, s| {
///     *count += 1;
///     s.schedule_in(SimDuration::from_millis(5), |count, _| *count += 1);
/// });
/// sim.run_to_completion();
/// assert_eq!(*sim.world(), 2);
/// assert_eq!(sim.now(), iorch_simcore::SimTime::from_millis(10));
/// ```
pub struct Simulation<M> {
    world: M,
    sched: Scheduler<M>,
}

/// Why a call to [`Simulation::run_until`] returned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The event queue drained before the horizon.
    QueueEmpty,
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The event budget was exhausted (see [`Simulation::run_with_budget`]).
    BudgetExhausted,
}

impl<M> Simulation<M> {
    /// Create a simulation around an initial world at time zero.
    pub fn new(world: M) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(),
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Shared access to the world.
    #[inline]
    pub fn world(&self) -> &M {
        &self.world
    }

    /// Mutable access to the world (for setup and inspection between runs).
    #[inline]
    pub fn world_mut(&mut self) -> &mut M {
        &mut self.world
    }

    /// Mutable access to the scheduler (for setup).
    #[inline]
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<M> {
        &mut self.sched
    }

    /// Both at once, for setup code that needs world and scheduler together.
    #[inline]
    pub fn parts_mut(&mut self) -> (&mut M, &mut Scheduler<M>) {
        (&mut self.world, &mut self.sched)
    }

    /// Consume the simulation and return the world.
    pub fn into_world(self) -> M {
        self.world
    }

    /// Execute a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        match self.sched.pop_next() {
            Some((_, cb)) => {
                self.dispatch(cb);
                true
            }
            None => false,
        }
    }

    #[inline]
    fn dispatch(&mut self, cb: Callback<M>) {
        cb(&mut self.world, &mut self.sched);
    }

    /// Run until the queue drains.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Run until simulated time reaches `horizon` (inclusive: events *at*
    /// the horizon fire) or the queue drains, whichever is first. The clock
    /// is always left at `horizon` on return, so back-to-back `run_for`
    /// calls measure wall-clock spans even across idle periods.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            match self.sched.peek_next_time() {
                None => {
                    if horizon > self.sched.now() {
                        self.sched.advance_to(horizon);
                    }
                    return RunOutcome::QueueEmpty;
                }
                Some(t) if t > horizon => {
                    self.sched.advance_to(horizon);
                    return RunOutcome::HorizonReached;
                }
                Some(_) => {
                    let (_, cb) = self.sched.pop_next().expect("peeked event vanished");
                    self.dispatch(cb);
                }
            }
        }
    }

    /// Run for a relative span from the current clock.
    #[inline]
    pub fn run_for(&mut self, span: SimDuration) -> RunOutcome {
        self.run_until(self.now() + span)
    }

    /// Run until the horizon or until `max_events` more events have fired —
    /// a guard against accidental event storms in tests.
    pub fn run_with_budget(&mut self, horizon: SimTime, max_events: u64) -> RunOutcome {
        let start = self.sched.events_executed();
        loop {
            if self.sched.events_executed() - start >= max_events {
                return RunOutcome::BudgetExhausted;
            }
            match self.sched.peek_next_time() {
                None => return RunOutcome::QueueEmpty,
                Some(t) if t > horizon => {
                    self.sched.advance_to(horizon);
                    return RunOutcome::HorizonReached;
                }
                Some(_) => {
                    let (_, cb) = self.sched.pop_next().expect("peeked event vanished");
                    self.dispatch(cb);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        for ms in [1u64, 2, 3, 10, 20] {
            sim.scheduler_mut()
                .schedule_at(SimTime::from_millis(ms), move |w, _| w.push(ms));
        }
        let outcome = sim.run_until(SimTime::from_millis(5));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(sim.world(), &vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_millis(5));
        let outcome = sim.run_until(SimTime::from_millis(100));
        assert_eq!(outcome, RunOutcome::QueueEmpty);
        assert_eq!(sim.world(), &vec![1, 2, 3, 10, 20]);
    }

    #[test]
    fn horizon_is_inclusive() {
        let mut sim = Simulation::new(0u32);
        sim.scheduler_mut()
            .schedule_at(SimTime::from_millis(5), |w, _| *w += 1);
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(*sim.world(), 1);
    }

    #[test]
    fn budget_guard_trips() {
        let mut sim = Simulation::new(0u64);
        // Self-perpetuating zero-delay chain.
        fn storm(w: &mut u64, s: &mut Scheduler<u64>) {
            *w += 1;
            s.schedule_in(SimDuration::from_nanos(1), storm);
        }
        sim.scheduler_mut().schedule_now(storm);
        let outcome = sim.run_with_budget(SimTime::from_secs(1), 1000);
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
        assert_eq!(*sim.world(), 1000);
    }

    #[test]
    fn step_returns_false_when_empty() {
        let mut sim = Simulation::new(());
        assert!(!sim.step());
    }

    #[test]
    fn run_for_is_relative() {
        let mut sim = Simulation::new(0u32);
        sim.scheduler_mut()
            .schedule_at(SimTime::from_millis(3), |w, _| *w += 1);
        sim.run_until(SimTime::from_millis(2));
        sim.run_for(SimDuration::from_millis(2));
        assert_eq!(*sim.world(), 1);
        assert_eq!(sim.now(), SimTime::from_millis(4));
    }
}
