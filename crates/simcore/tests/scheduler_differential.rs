//! Differential oracle: the timer-wheel [`iorch_simcore::Scheduler`] must
//! fire the exact same events in the exact same order as the frozen
//! binary-heap engine [`iorch_simcore::event_legacy`].
//!
//! Random op scripts (schedule with nested follow-ups, cancel, periodic
//! with flag/immediate cancellation, horizon runs, final drain) are
//! generated once per seed and interpreted on both engines; the firing
//! logs `(time_ns, id)` are compared byte-for-byte. Only the logs are
//! compared — not cancel return values, final clocks, or executed counts,
//! because the legacy engine pops a cancelled periodic's dead tick (it
//! advances the clock and counts as executed while firing nothing; a
//! documented wart the wheel fixes). Clock alignment between the engines
//! is maintained by the `run_until` contract: both always land exactly on
//! the horizon, so relative delays resolve to identical absolute times.

use std::cell::Cell;

use iorch_simcore::{event_legacy, gen, SimDuration, SimRng, SimTime, Simulation};

type Log = Vec<(u64, u32)>;

#[derive(Clone, Debug)]
enum Op {
    /// `schedule_in(delay)`; the callback optionally schedules a nested
    /// follow-up event (exercises scheduling from inside callbacks, which
    /// lands mid-cascade on the wheel).
    Schedule {
        delay: u64,
        id: u32,
        nested: Option<(u64, u32)>,
    },
    /// Cancel the `pick % len`-th tracked one-shot token (may already have
    /// fired — must be a no-op on the log either way).
    Cancel { pick: usize },
    /// `schedule_every(interval)` self-terminating after `max_ticks`.
    Periodic {
        interval: u64,
        max_ticks: u32,
        id: u32,
    },
    /// Cancel the `pick % len`-th periodic handle. `immediate` uses the
    /// wheel's `cancel_periodic` (direct slot removal); the legacy engine
    /// only has the lazy flag — the firing logs must agree regardless.
    CancelPeriodic { pick: usize, immediate: bool },
    /// Run both engines to `now + delta` (inclusive horizon, clock left
    /// exactly at the horizon on both).
    RunFor { delta: u64 },
}

/// Delays spanning several wheel levels: mostly near-future, occasionally
/// far enough to land in the overflow levels and cascade back down.
fn gen_delay(rng: &mut SimRng) -> u64 {
    if rng.chance(0.04) {
        // Far future: up to ~64^8 ns, beyond the near wheels.
        rng.next_u64() >> rng.range(16, 24)
    } else {
        let level = rng.below(6);
        rng.below(64) << (6 * level)
    }
}

fn gen_script(rng: &mut SimRng, n: usize) -> Vec<Op> {
    let mut next_id = 0u32;
    let mut id = || {
        next_id += 1;
        next_id
    };
    (0..n)
        .map(|_| match rng.below(10) {
            0..=3 => Op::Schedule {
                delay: gen_delay(rng),
                id: id(),
                nested: rng.chance(0.3).then(|| (gen_delay(rng), id())),
            },
            4 | 5 => Op::Cancel {
                pick: rng.below(1 << 16) as usize,
            },
            6 => Op::Periodic {
                interval: rng.range(1, 5_000_000),
                max_ticks: rng.range(1, 12) as u32,
                id: id(),
            },
            7 => Op::CancelPeriodic {
                pick: rng.below(1 << 16) as usize,
                immediate: rng.chance(0.5),
            },
            _ => Op::RunFor {
                delta: rng.below(20_000_000),
            },
        })
        .collect()
}

fn run_wheel(script: &[Op]) -> Log {
    let mut sim: Simulation<Log> = Simulation::new(Vec::new());
    let mut tokens = Vec::new();
    let mut periodics = Vec::new();
    for op in script {
        match op.clone() {
            Op::Schedule { delay, id, nested } => {
                let tok = sim.scheduler_mut().schedule_in(
                    SimDuration::from_nanos(delay),
                    move |w: &mut Log, s| {
                        w.push((s.now().as_nanos(), id));
                        if let Some((d2, id2)) = nested {
                            s.schedule_in(SimDuration::from_nanos(d2), move |w: &mut Log, s| {
                                w.push((s.now().as_nanos(), id2));
                            });
                        }
                    },
                );
                tokens.push(Some(tok));
            }
            Op::Cancel { pick } => {
                if !tokens.is_empty() {
                    let i = pick % tokens.len();
                    if let Some(tok) = tokens[i].take() {
                        sim.scheduler_mut().cancel(tok);
                    }
                }
            }
            Op::Periodic {
                interval,
                max_ticks,
                id,
            } => {
                let count = Cell::new(0u32);
                let h = sim.scheduler_mut().schedule_every(
                    SimDuration::from_nanos(interval),
                    move |w: &mut Log, s| {
                        count.set(count.get() + 1);
                        w.push((s.now().as_nanos(), id));
                        count.get() < max_ticks
                    },
                );
                periodics.push(h);
            }
            Op::CancelPeriodic { pick, immediate } => {
                if !periodics.is_empty() {
                    let i = pick % periodics.len();
                    if immediate {
                        let h = periodics[i].clone();
                        sim.scheduler_mut().cancel_periodic(&h);
                    } else {
                        periodics[i].cancel();
                    }
                }
            }
            Op::RunFor { delta } => {
                sim.run_for(SimDuration::from_nanos(delta));
            }
        }
    }
    sim.run_to_completion();
    sim.into_world()
}

/// Mirror of `Simulation::run_until` for the legacy scheduler: pop while
/// the next event is at or before the horizon, then land on it exactly.
fn legacy_run_until(s: &mut event_legacy::Scheduler<Log>, w: &mut Log, horizon: SimTime) {
    loop {
        match s.peek_next_time() {
            Some(t) if t <= horizon => {
                let (_, cb) = s.pop_next().expect("peek said there is an event");
                cb(w, s);
            }
            _ => break,
        }
    }
    s.advance_to(horizon);
}

fn run_legacy(script: &[Op]) -> Log {
    let mut s: event_legacy::Scheduler<Log> = event_legacy::Scheduler::new();
    let mut w: Log = Vec::new();
    let mut tokens = Vec::new();
    let mut periodics = Vec::new();
    for op in script {
        match op.clone() {
            Op::Schedule { delay, id, nested } => {
                let tok = s.schedule_in(SimDuration::from_nanos(delay), move |w: &mut Log, s| {
                    w.push((s.now().as_nanos(), id));
                    if let Some((d2, id2)) = nested {
                        s.schedule_in(SimDuration::from_nanos(d2), move |w: &mut Log, s| {
                            w.push((s.now().as_nanos(), id2));
                        });
                    }
                });
                tokens.push(Some(tok));
            }
            Op::Cancel { pick } => {
                if !tokens.is_empty() {
                    let i = pick % tokens.len();
                    if let Some(tok) = tokens[i].take() {
                        s.cancel(tok);
                    }
                }
            }
            Op::Periodic {
                interval,
                max_ticks,
                id,
            } => {
                let count = Cell::new(0u32);
                let h =
                    s.schedule_every(SimDuration::from_nanos(interval), move |w: &mut Log, s| {
                        count.set(count.get() + 1);
                        w.push((s.now().as_nanos(), id));
                        count.get() < max_ticks
                    });
                periodics.push(h);
            }
            Op::CancelPeriodic { pick, .. } => {
                // The legacy engine has no immediate removal; the lazy flag
                // is its only mechanism. The logs must agree anyway.
                if !periodics.is_empty() {
                    let i = pick % periodics.len();
                    let h: &event_legacy::PeriodicHandle = &periodics[i];
                    h.cancel();
                }
            }
            Op::RunFor { delta } => {
                let horizon = s.now() + SimDuration::from_nanos(delta);
                legacy_run_until(&mut s, &mut w, horizon);
            }
        }
    }
    while let Some((_, cb)) = s.pop_next() {
        cb(&mut w, &mut s);
    }
    w
}

#[test]
fn wheel_matches_legacy_firing_order() {
    gen::for_each_seed(0x5CED_D1FF, 48, |seed, rng| {
        let script = gen_script(rng, 250);
        let wheel = run_wheel(&script);
        let legacy = run_legacy(&script);
        assert_eq!(
            wheel.len(),
            legacy.len(),
            "seed {seed}: different number of firings"
        );
        for (i, (a, b)) in wheel.iter().zip(legacy.iter()).enumerate() {
            assert_eq!(a, b, "seed {seed}: firing #{i} diverges");
        }
        // Sanity on the shared log: time must be non-decreasing.
        assert!(wheel.windows(2).all(|p| p[0].0 <= p[1].0), "seed {seed}");
    });
}

#[test]
fn wheel_matches_legacy_dense_same_instant_storm() {
    // Many events crammed into few distinct instants: maximal pressure on
    // the FIFO tie-break across cascades.
    gen::for_each_seed(0xDE5E_5707, 24, |seed, rng| {
        let instants: Vec<u64> = (0..6).map(|_| rng.below(50_000_000)).collect();
        let mut next_id = 0u32;
        let script: Vec<Op> = (0..400)
            .map(|_| {
                next_id += 1;
                if next_id.is_multiple_of(40) {
                    Op::RunFor {
                        delta: rng.below(10_000_000),
                    }
                } else {
                    Op::Schedule {
                        delay: *rng.pick(&instants),
                        id: next_id,
                        nested: rng.chance(0.2).then(|| {
                            (*rng.pick(&instants), {
                                next_id += 1;
                                next_id
                            })
                        }),
                    }
                }
            })
            .collect();
        let wheel = run_wheel(&script);
        let legacy = run_legacy(&script);
        assert_eq!(wheel, legacy, "seed {seed}: storm logs diverge");
    });
}
