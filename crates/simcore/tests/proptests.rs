//! Randomized tests for the event engine and RNG invariants.
//!
//! Formerly `proptest`-based; now driven by the in-tree deterministic
//! generators (`iorch_simcore::gen`) so tier-1 has no registry
//! dependencies. Each property sweeps a fixed set of derived seeds; a
//! failure message carries the seed that reproduces it.

use iorch_simcore::{gen, Scheduler, SimDuration, SimRng, SimTime, Simulation, Zipfian};

const CASES: usize = 64;

/// Events always fire in (time, insertion) order regardless of the order
/// they were scheduled in.
#[test]
fn events_fire_in_order() {
    gen::for_each_seed(0x51_0001, CASES, |seed, rng| {
        let times = gen::vec_between(rng, 1, 200, |r| r.below(1_000_000));
        let mut sim = Simulation::new(Vec::<(u64, usize)>::new());
        for (i, &t) in times.iter().enumerate() {
            sim.scheduler_mut().schedule_at(
                SimTime::from_nanos(t),
                move |w: &mut Vec<(u64, usize)>, _s: &mut Scheduler<Vec<(u64, usize)>>| {
                    w.push((t, i));
                },
            );
        }
        sim.run_to_completion();
        let fired = sim.world();
        assert_eq!(fired.len(), times.len(), "seed {seed}");
        for pair in fired.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "time order violated (seed {seed})");
            if pair[0].0 == pair[1].0 {
                assert!(
                    pair[0].1 < pair[1].1,
                    "FIFO tie-break violated (seed {seed})"
                );
            }
        }
    });
}

/// Cancelling an arbitrary subset prevents exactly that subset.
#[test]
fn cancellation_is_exact() {
    gen::for_each_seed(0x51_0002, CASES, |seed, rng| {
        let times = gen::vec_between(rng, 1, 100, |r| r.below(100_000));
        let cancel_mask = gen::vec_of(rng, times.len(), |r| r.chance(0.5));
        let mut sim = Simulation::new(Vec::<usize>::new());
        let mut tokens = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            let tok = sim.scheduler_mut().schedule_at(
                SimTime::from_nanos(t),
                move |w: &mut Vec<usize>, _s: &mut Scheduler<Vec<usize>>| w.push(i),
            );
            tokens.push(tok);
        }
        let mut expected: Vec<usize> = Vec::new();
        for (i, tok) in tokens.into_iter().enumerate() {
            if cancel_mask[i] {
                sim.scheduler_mut().cancel(tok);
            } else {
                expected.push(i);
            }
        }
        sim.run_to_completion();
        let mut fired = sim.world().clone();
        fired.sort_unstable();
        expected.sort_unstable();
        assert_eq!(fired, expected, "seed {seed}");
    });
}

/// run_until never executes events past the horizon, and a subsequent run
/// executes exactly the remainder.
#[test]
fn horizon_split_is_exact() {
    gen::for_each_seed(0x51_0003, CASES, |seed, rng| {
        let times = gen::vec_between(rng, 1, 100, |r| r.below(1_000_000));
        let horizon = rng.below(1_000_000);
        let mut sim = Simulation::new(Vec::<u64>::new());
        for &t in &times {
            sim.scheduler_mut().schedule_at(
                SimTime::from_nanos(t),
                move |w: &mut Vec<u64>, _s: &mut Scheduler<Vec<u64>>| w.push(t),
            );
        }
        sim.run_until(SimTime::from_nanos(horizon));
        let early = sim.world().len();
        let expect_early = times.iter().filter(|&&t| t <= horizon).count();
        assert_eq!(early, expect_early, "seed {seed}");
        sim.run_to_completion();
        assert_eq!(sim.world().len(), times.len(), "seed {seed}");
    });
}

/// Identical seeds give identical streams; the stream is within range.
#[test]
fn rng_determinism() {
    gen::for_each_seed(0x51_0004, CASES, |seed, _rng| {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64(), "seed {seed}");
        }
        for _ in 0..100 {
            let x = a.f64();
            assert!((0.0..1.0).contains(&x), "seed {seed}");
        }
    });
}

/// below(n) stays in range for arbitrary n.
#[test]
fn rng_below_in_range() {
    gen::for_each_seed(0x51_0005, CASES, |seed, rng| {
        // Cover tiny, mid-sized and near-max bounds.
        let n = match seed % 3 {
            0 => 1 + rng.below(16),
            1 => 1 + rng.below(1 << 40),
            _ => u64::MAX - rng.below(1 << 20),
        };
        for _ in 0..50 {
            assert!(rng.below(n) < n, "seed {seed}, n {n}");
        }
    });
}

/// Zipfian sampling stays within the item count and is deterministic per
/// seed.
#[test]
fn zipf_in_range() {
    gen::for_each_seed(0x51_0006, CASES, |seed, rng| {
        let n = 1 + rng.below(1_000_000);
        let theta = gen::f64_in(rng, 0.01, 0.999);
        let z = Zipfian::new(n, theta);
        for _ in 0..100 {
            assert!(z.sample(rng) < n, "seed {seed}, n {n}, theta {theta}");
        }
    });
}

/// Duration arithmetic: (a + b) - b == a for non-overflowing values.
#[test]
fn duration_roundtrip() {
    gen::for_each_seed(0x51_0007, CASES, |seed, rng| {
        let a = rng.below(1 << 62);
        let b = rng.below(1 << 62);
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        assert_eq!((da + db) - db, da, "seed {seed}");
        let t = SimTime::from_nanos(a);
        assert_eq!((t + db) - db, t, "seed {seed}");
    });
}
