//! Property-based tests for the event engine and RNG invariants.

use proptest::prelude::*;

use iorch_simcore::{Scheduler, SimDuration, SimRng, SimTime, Simulation, Zipfian};

proptest! {
    /// Events always fire in (time, insertion) order regardless of the
    /// order they were scheduled in.
    #[test]
    fn events_fire_in_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim = Simulation::new(Vec::<(u64, usize)>::new());
        for (i, &t) in times.iter().enumerate() {
            sim.scheduler_mut().schedule_at(
                SimTime::from_nanos(t),
                move |w: &mut Vec<(u64, usize)>, _s: &mut Scheduler<Vec<(u64, usize)>>| {
                    w.push((t, i));
                },
            );
        }
        sim.run_to_completion();
        let fired = sim.world();
        prop_assert_eq!(fired.len(), times.len());
        for pair in fired.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order violated");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Cancelling an arbitrary subset prevents exactly that subset.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..100_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let mut sim = Simulation::new(Vec::<usize>::new());
        let mut tokens = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            let tok = sim.scheduler_mut().schedule_at(
                SimTime::from_nanos(t),
                move |w: &mut Vec<usize>, _s: &mut Scheduler<Vec<usize>>| w.push(i),
            );
            tokens.push(tok);
        }
        let mut expected: Vec<usize> = Vec::new();
        for (i, tok) in tokens.into_iter().enumerate() {
            if cancel_mask[i % cancel_mask.len()] {
                sim.scheduler_mut().cancel(tok);
            } else {
                expected.push(i);
            }
        }
        sim.run_to_completion();
        let mut fired = sim.world().clone();
        fired.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(fired, expected);
    }

    /// run_until never executes events past the horizon, and a subsequent
    /// run executes exactly the remainder.
    #[test]
    fn horizon_split_is_exact(
        times in proptest::collection::vec(0u64..1_000_000, 1..100),
        horizon in 0u64..1_000_000,
    ) {
        let mut sim = Simulation::new(Vec::<u64>::new());
        for &t in &times {
            sim.scheduler_mut().schedule_at(
                SimTime::from_nanos(t),
                move |w: &mut Vec<u64>, _s: &mut Scheduler<Vec<u64>>| w.push(t),
            );
        }
        sim.run_until(SimTime::from_nanos(horizon));
        let early = sim.world().len();
        let expect_early = times.iter().filter(|&&t| t <= horizon).count();
        prop_assert_eq!(early, expect_early);
        sim.run_to_completion();
        prop_assert_eq!(sim.world().len(), times.len());
    }

    /// Identical seeds give identical streams; the stream is within range.
    #[test]
    fn rng_determinism(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..100 {
            let x = a.f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    /// below(n) stays in range for arbitrary n.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..u64::MAX) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    /// Zipfian sampling stays within the item count and is deterministic
    /// per seed.
    #[test]
    fn zipf_in_range(seed in any::<u64>(), n in 1u64..1_000_000, theta in 0.01f64..0.999) {
        let z = Zipfian::new(n, theta);
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Duration arithmetic: (a + b) - b == a for non-overflowing values.
    #[test]
    fn duration_roundtrip(a in 0u64..(1 << 62), b in 0u64..(1 << 62)) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((da + db) - db, da);
        let t = SimTime::from_nanos(a);
        prop_assert_eq!((t + db) - db, t);
    }
}
