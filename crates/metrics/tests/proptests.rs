//! Property-based tests for histogram and gauge invariants.

use proptest::prelude::*;

use iorch_metrics::{cdf, LatencyHistogram, TimeWeightedGauge, WindowedRate};
use iorch_simcore::{SimDuration, SimTime};

fn hist_of(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(SimDuration::from_nanos(v));
    }
    h
}

proptest! {
    /// Percentiles are monotone in p and bracketed by min/max.
    #[test]
    fn percentiles_monotone(values in proptest::collection::vec(0u64..u64::MAX / 2, 1..500)) {
        let h = hist_of(&values);
        let ps = [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0];
        let mut prev = SimDuration::ZERO;
        for &p in &ps {
            let v = h.percentile(p);
            prop_assert!(v >= prev, "p{p}: {v} < {prev}");
            prop_assert!(v >= h.min() && v <= h.max());
            prev = v;
        }
    }

    /// Merging is equivalent to recording the union; merge order is
    /// irrelevant.
    #[test]
    fn merge_associative(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        c in proptest::collection::vec(0u64..1_000_000_000, 0..200),
    ) {
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        let direct = hist_of(&all);

        let mut m1 = hist_of(&a);
        m1.merge(&hist_of(&b));
        m1.merge(&hist_of(&c));

        let mut m2 = hist_of(&c);
        m2.merge(&hist_of(&a));
        m2.merge(&hist_of(&b));

        prop_assert_eq!(m1.count(), direct.count());
        prop_assert_eq!(m2.count(), direct.count());
        prop_assert_eq!(m1.mean(), direct.mean());
        prop_assert_eq!(m2.mean(), direct.mean());
        for p in [50.0, 90.0, 99.0] {
            prop_assert_eq!(m1.percentile(p), direct.percentile(p));
            prop_assert_eq!(m2.percentile(p), direct.percentile(p));
        }
    }

    /// The mean is exact (not bucketed) and percentile(50) is within the
    /// histogram's relative error of the true median.
    #[test]
    fn median_within_bucket_error(values in proptest::collection::vec(1u64..1_000_000_000, 10..500)) {
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let true_median = sorted[(sorted.len() - 1) / 2] as f64;
        let got = h.median().as_nanos() as f64;
        // One sub-bucket of relative error (~3.2%) plus rank-rounding slop:
        // compare against the neighbouring order statistics too.
        let lo = sorted[((sorted.len() - 1) / 2).saturating_sub(1)] as f64;
        let hi = sorted[(sorted.len() / 2 + 1).min(sorted.len() - 1)] as f64;
        let lower = lo.min(true_median) * 0.96;
        let upper = hi.max(true_median) * 1.04;
        prop_assert!(got >= lower && got <= upper, "median {got} not in [{lower}, {upper}]");
    }

    /// CDF is monotone and ends at 1.
    #[test]
    fn cdf_monotone(values in proptest::collection::vec(0u64..u64::MAX / 2, 1..300)) {
        let h = hist_of(&values);
        let points = cdf(&h);
        prop_assert!(!points.is_empty());
        for w in points.windows(2) {
            prop_assert!(w[0].value <= w[1].value);
            prop_assert!(w[0].fraction <= w[1].fraction);
        }
        prop_assert!((points.last().unwrap().fraction - 1.0).abs() < 1e-9);
    }

    /// A windowed rate never reports more than the lifetime total, and the
    /// window sum equals the sum of in-window events.
    #[test]
    fn windowed_rate_conservation(
        events in proptest::collection::vec((0u64..10_000u64, 1u64..1000u64), 1..100),
        window_ms in 1u64..1000,
    ) {
        let mut sorted = events.clone();
        sorted.sort_by_key(|e| e.0);
        let mut r = WindowedRate::new(SimDuration::from_millis(window_ms));
        for &(t, amt) in &sorted {
            r.record(SimTime::from_millis(t), amt);
        }
        let now = SimTime::from_millis(sorted.last().unwrap().0);
        let cutoff = now - SimDuration::from_millis(window_ms);
        let expect: u64 = sorted
            .iter()
            .filter(|&&(t, _)| SimTime::from_millis(t) >= cutoff)
            .map(|&(_, a)| a)
            .sum();
        prop_assert_eq!(r.sum_in_window(now), expect);
        prop_assert!(r.sum_in_window(now) <= r.lifetime_sum());
    }

    /// Time-weighted average is bounded by the min and max of the values.
    #[test]
    fn gauge_average_bounded(
        updates in proptest::collection::vec((1u64..10_000u64, 0.0f64..100.0), 1..50),
    ) {
        let mut sorted = updates.clone();
        sorted.sort_by_key(|u| u.0);
        let mut g = TimeWeightedGauge::new(SimTime::ZERO, sorted[0].1);
        let mut lo = sorted[0].1;
        let mut hi = sorted[0].1;
        for &(t, v) in &sorted {
            g.set(SimTime::from_millis(t), v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let end = SimTime::from_millis(sorted.last().unwrap().0 + 10);
        let avg = g.average(end);
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9, "avg {avg} not in [{lo}, {hi}]");
    }
}
