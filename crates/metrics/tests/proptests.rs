//! Randomized tests for histogram and gauge invariants, driven by the
//! in-tree generators (`iorch_simcore::gen`) with a fixed seed sweep — no
//! external property-test crate.

use iorch_metrics::{cdf, LatencyHistogram, TimeWeightedGauge, WindowedRate};
use iorch_simcore::{gen, SimDuration, SimTime};

const CASES: usize = 64;

fn hist_of(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(SimDuration::from_nanos(v));
    }
    h
}

/// Percentiles are monotone in p and bracketed by min/max.
#[test]
fn percentiles_monotone() {
    gen::for_each_seed(0x3E_0001, CASES, |seed, rng| {
        let values = gen::vec_between(rng, 1, 500, |r| r.below(u64::MAX / 2));
        let h = hist_of(&values);
        let ps = [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0];
        let mut prev = SimDuration::ZERO;
        for &p in &ps {
            let v = h.percentile(p);
            assert!(v >= prev, "p{p}: {v} < {prev} (seed {seed})");
            assert!(v >= h.min() && v <= h.max(), "seed {seed}");
            prev = v;
        }
    });
}

/// Merging is equivalent to recording the union; merge order is
/// irrelevant.
#[test]
fn merge_associative() {
    gen::for_each_seed(0x3E_0002, CASES, |seed, rng| {
        let a = gen::vec_between(rng, 1, 200, |r| r.below(1_000_000_000));
        let b = gen::vec_between(rng, 1, 200, |r| r.below(1_000_000_000));
        let c = gen::vec_between(rng, 1, 200, |r| r.below(1_000_000_000));
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        let direct = hist_of(&all);

        let mut m1 = hist_of(&a);
        m1.merge(&hist_of(&b));
        m1.merge(&hist_of(&c));

        let mut m2 = hist_of(&c);
        m2.merge(&hist_of(&a));
        m2.merge(&hist_of(&b));

        assert_eq!(m1.count(), direct.count(), "seed {seed}");
        assert_eq!(m2.count(), direct.count(), "seed {seed}");
        assert_eq!(m1.mean(), direct.mean(), "seed {seed}");
        assert_eq!(m2.mean(), direct.mean(), "seed {seed}");
        for p in [50.0, 90.0, 99.0] {
            assert_eq!(m1.percentile(p), direct.percentile(p), "seed {seed}");
            assert_eq!(m2.percentile(p), direct.percentile(p), "seed {seed}");
        }
    });
}

/// The mean is exact (not bucketed) and percentile(50) is within the
/// histogram's relative error of the true median.
#[test]
fn median_within_bucket_error() {
    gen::for_each_seed(0x3E_0003, CASES, |seed, rng| {
        let values = gen::vec_between(rng, 10, 500, |r| 1 + r.below(1_000_000_000));
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let true_median = sorted[(sorted.len() - 1) / 2] as f64;
        let got = h.median().as_nanos() as f64;
        // One sub-bucket of relative error (~3.2%) plus rank-rounding slop:
        // compare against the neighbouring order statistics too.
        let lo = sorted[((sorted.len() - 1) / 2).saturating_sub(1)] as f64;
        let hi = sorted[(sorted.len() / 2 + 1).min(sorted.len() - 1)] as f64;
        let lower = lo.min(true_median) * 0.96;
        let upper = hi.max(true_median) * 1.04;
        assert!(
            got >= lower && got <= upper,
            "median {got} not in [{lower}, {upper}] (seed {seed})"
        );
    });
}

/// CDF is monotone and ends at 1.
#[test]
fn cdf_monotone() {
    gen::for_each_seed(0x3E_0004, CASES, |seed, rng| {
        let values = gen::vec_between(rng, 1, 300, |r| r.below(u64::MAX / 2));
        let h = hist_of(&values);
        let points = cdf(&h);
        assert!(!points.is_empty(), "seed {seed}");
        for w in points.windows(2) {
            assert!(w[0].value <= w[1].value, "seed {seed}");
            assert!(w[0].fraction <= w[1].fraction, "seed {seed}");
        }
        assert!(
            (points.last().unwrap().fraction - 1.0).abs() < 1e-9,
            "seed {seed}"
        );
    });
}

/// A windowed rate never reports more than the lifetime total, and the
/// window sum equals the sum of in-window events.
#[test]
fn windowed_rate_conservation() {
    gen::for_each_seed(0x3E_0005, CASES, |seed, rng| {
        let events = gen::vec_between(rng, 1, 100, |r| (r.below(10_000), 1 + r.below(999)));
        let window_ms = 1 + rng.below(999);
        let mut sorted = events.clone();
        sorted.sort_by_key(|e| e.0);
        let mut r = WindowedRate::new(SimDuration::from_millis(window_ms));
        for &(t, amt) in &sorted {
            r.record(SimTime::from_millis(t), amt);
        }
        let now = SimTime::from_millis(sorted.last().unwrap().0);
        let cutoff = now - SimDuration::from_millis(window_ms);
        let expect: u64 = sorted
            .iter()
            .filter(|&&(t, _)| SimTime::from_millis(t) >= cutoff)
            .map(|&(_, a)| a)
            .sum();
        assert_eq!(r.sum_in_window(now), expect, "seed {seed}");
        assert!(r.sum_in_window(now) <= r.lifetime_sum(), "seed {seed}");
    });
}

/// Time-weighted average is bounded by the min and max of the values.
#[test]
fn gauge_average_bounded() {
    gen::for_each_seed(0x3E_0006, CASES, |seed, rng| {
        let updates = gen::vec_between(rng, 1, 50, |r| {
            (1 + r.below(9_999), gen::f64_in(r, 0.0, 100.0))
        });
        let mut sorted = updates.clone();
        sorted.sort_by_key(|u| u.0);
        let mut g = TimeWeightedGauge::new(SimTime::ZERO, sorted[0].1);
        let mut lo = sorted[0].1;
        let mut hi = sorted[0].1;
        for &(t, v) in &sorted {
            g.set(SimTime::from_millis(t), v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let end = SimTime::from_millis(sorted.last().unwrap().0 + 10);
        let avg = g.average(end);
        assert!(
            avg >= lo - 1e-9 && avg <= hi + 1e-9,
            "avg {avg} not in [{lo}, {hi}] (seed {seed})"
        );
    });
}
