//! Edge-case coverage for the metrics crate: degenerate histograms,
//! single-sample CDFs, rate-window wraparound, and the algebraic
//! properties of histogram merging that the experiment runner's
//! seed-pooling relies on (summing repeats in any order must yield the
//! same figure values).

use iorch_metrics::{
    cdf, cdf_at_fractions, standard_grid, LatencyHistogram, LatencySummary, TelemetryHub,
    WindowedRate,
};
use iorch_simcore::{SimDuration, SimTime};

fn us(x: u64) -> SimDuration {
    SimDuration::from_micros(x)
}

fn ms(x: u64) -> SimTime {
    SimTime::from_millis(x)
}

// --- empty-histogram quantiles ---------------------------------------

#[test]
fn empty_histogram_quantiles_are_zero() {
    let h = LatencyHistogram::new();
    assert!(h.is_empty());
    assert_eq!(h.count(), 0);
    for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
        assert_eq!(h.percentile(p), SimDuration::ZERO);
    }
    assert_eq!(h.median(), SimDuration::ZERO);
    assert_eq!(h.p999(), SimDuration::ZERO);
    assert_eq!(h.mean(), SimDuration::ZERO);
    assert_eq!(h.min(), SimDuration::ZERO);
    assert_eq!(h.fraction_below(us(1_000_000)), 0.0);
    assert!(cdf(&h).is_empty());
    let summary = LatencySummary::from_histogram(&h);
    assert_eq!(summary.count, 0);
    assert_eq!(summary.p999, SimDuration::ZERO);
}

#[test]
fn empty_histogram_grid_sampling_is_all_zero() {
    // cdf_at_fractions on an empty histogram must not panic and must
    // report zero at every grid point — an empty smoke window renders as
    // a flat zero curve, not garbage.
    let points = cdf_at_fractions(&LatencyHistogram::new(), &standard_grid());
    assert_eq!(points.len(), 21);
    for p in &points {
        assert_eq!(p.value, SimDuration::ZERO);
    }
}

// --- single-sample CDF ------------------------------------------------

#[test]
fn single_sample_cdf_is_one_step() {
    let mut h = LatencyHistogram::new();
    h.record(us(250));
    let points = cdf(&h);
    assert_eq!(points.len(), 1, "one sample, one bucket, one CDF point");
    assert!((points[0].fraction - 1.0).abs() < 1e-12);
    // Every percentile of a single sample is that sample (clamped into
    // the exact observed range, so bucket quantization cannot leak out).
    for p in [0.0, 1.0, 50.0, 99.9, 100.0] {
        assert_eq!(h.percentile(p), us(250));
    }
    let grid = cdf_at_fractions(&h, &standard_grid());
    assert!(grid.iter().all(|pt| pt.value == us(250)));
    assert_eq!(h.min(), us(250));
    assert_eq!(h.max(), us(250));
    assert_eq!(h.mean(), us(250));
    assert_eq!(h.std_dev(), SimDuration::ZERO);
}

// --- rate window wraparound -------------------------------------------

#[test]
fn rate_window_wraparound_drops_old_events() {
    let mut r = WindowedRate::new(SimDuration::from_millis(100));
    // Fill the window, then advance far enough that every event has
    // wrapped out, then keep recording: the window sum must reflect only
    // the new epoch while the lifetime sum keeps the full history.
    r.record(ms(10), 5);
    r.record(ms(60), 7);
    assert_eq!(r.sum_in_window(ms(60)), 12);
    assert_eq!(r.sum_in_window(ms(500)), 0, "window fully wrapped");
    r.record(ms(510), 3);
    assert_eq!(r.sum_in_window(ms(510)), 3);
    assert_eq!(r.lifetime_sum(), 15);
    // A second wrap behaves identically — no residue from the first.
    assert_eq!(r.sum_in_window(ms(1_000)), 0);
    assert_eq!(r.rate_per_sec(ms(1_000)), 0.0);
}

#[test]
fn rate_window_near_time_zero_saturates() {
    // The cutoff `now - window` saturates at t=0: a query earlier than
    // one full window after the epoch must keep everything recorded so
    // far, not underflow.
    let mut r = WindowedRate::new(SimDuration::from_secs(10));
    r.record(ms(1), 100);
    r.record(ms(2), 200);
    assert_eq!(r.sum_in_window(ms(5)), 300);
    let rate = r.rate_per_sec(ms(5));
    assert!((rate - 30.0).abs() < 1e-9, "300 units / 10s window");
}

#[test]
fn rate_window_boundary_is_inclusive_after_wrap() {
    let mut r = WindowedRate::new(SimDuration::from_millis(50));
    r.record(ms(200), 9);
    // Event exactly at the cutoff (now - window == 200ms) stays...
    assert_eq!(r.sum_in_window(ms(250)), 9);
    // ...and leaves one tick later.
    assert_eq!(r.sum_in_window(ms(251)), 0);
}

// --- merge algebra ----------------------------------------------------

fn hist_from(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(us(s));
    }
    h
}

fn buckets(h: &LatencyHistogram) -> Vec<(SimDuration, u64)> {
    h.iter_buckets().collect()
}

fn assert_hist_eq(a: &LatencyHistogram, b: &LatencyHistogram, what: &str) {
    assert_eq!(buckets(a), buckets(b), "{what}: buckets differ");
    assert_eq!(a.count(), b.count(), "{what}: counts differ");
    assert_eq!(a.min(), b.min(), "{what}: min differs");
    assert_eq!(a.max(), b.max(), "{what}: max differs");
    assert_eq!(a.mean(), b.mean(), "{what}: mean differs");
    for p in [50.0, 90.0, 99.0, 99.9] {
        assert_eq!(a.percentile(p), b.percentile(p), "{what}: p{p} differs");
    }
}

#[test]
fn merge_is_commutative_bucket_for_bucket() {
    let a = hist_from(&[10, 20, 20, 5_000, 90_000]);
    let b = hist_from(&[1, 15, 400, 400, 2_000_000]);
    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_hist_eq(&ab, &ba, "merge(a,b) vs merge(b,a)");
}

#[test]
fn merge_is_associative_bucket_for_bucket() {
    // The runner pools repeat seeds by folding merge left-to-right; the
    // result must not depend on that grouping.
    let a = hist_from(&[3, 33, 333]);
    let b = hist_from(&[7, 77, 7_777, 777_777]);
    let c = hist_from(&[42, 42_000]);
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);
    assert_hist_eq(&left, &right, "(a+b)+c vs a+(b+c)");
}

#[test]
fn merge_with_empty_is_identity() {
    let a = hist_from(&[10, 500, 120_000]);
    let mut merged = a.clone();
    merged.merge(&LatencyHistogram::new());
    assert_hist_eq(&merged, &a, "a + empty");
    let mut from_empty = LatencyHistogram::new();
    from_empty.merge(&a);
    assert_hist_eq(&from_empty, &a, "empty + a");
}

#[test]
fn merged_summary_is_order_independent() {
    let a = hist_from(&[100, 200, 300, 90_000]);
    let b = hist_from(&[50, 60, 1_000_000]);
    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    let sa = LatencySummary::from_histogram(&ab);
    let sb = LatencySummary::from_histogram(&ba);
    assert_eq!(sa.count, sb.count);
    assert_eq!(sa.mean, sb.mean);
    assert_eq!(sa.std_dev, sb.std_dev);
    assert_eq!(sa.p50, sb.p50);
    assert_eq!(sa.p99, sb.p99);
    assert_eq!(sa.p999, sb.p999);
    assert_eq!(sa.max, sb.max);
}

// --- telemetry hub degenerate windows ----------------------------------

#[test]
fn telemetry_empty_run_finishes_with_no_reports() {
    let mut hub = TelemetryHub::new(SimDuration::from_millis(100), None);
    hub.finish(SimTime::ZERO);
    assert!(hub.reports().is_empty());
}

#[test]
fn telemetry_single_op_snapshot_matches_window() {
    let mut hub = TelemetryHub::new(SimDuration::from_millis(100), Some(us(500)));
    hub.record_op(ms(10), us(750)); // over SLO
    let snap = hub.snapshot(ms(20));
    assert_eq!(snap.ops, 1);
    assert_eq!(snap.slo_violations, 1);
    assert_eq!(snap.p50, us(750));
    hub.finish(ms(20));
    assert_eq!(hub.reports().len(), 1);
    assert_eq!(hub.reports()[0].ops, 1);
}
