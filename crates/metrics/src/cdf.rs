//! Cumulative-distribution extraction from histograms, used to regenerate
//! the paper's latency-distribution figures (Fig. 5 and Fig. 6).

use crate::histogram::LatencyHistogram;
use iorch_simcore::SimDuration;

/// One point on a CDF curve: `fraction` of samples were `<= value`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CdfPoint {
    /// Latency value.
    pub value: SimDuration,
    /// Cumulative fraction in `[0, 1]`.
    pub fraction: f64,
}

/// The full empirical CDF of a histogram (one point per non-empty bucket).
pub fn cdf(hist: &LatencyHistogram) -> Vec<CdfPoint> {
    let total = hist.count();
    if total == 0 {
        return Vec::new();
    }
    let mut seen = 0u64;
    hist.iter_buckets()
        .map(|(value, count)| {
            seen += count;
            CdfPoint {
                value,
                fraction: seen as f64 / total as f64,
            }
        })
        .collect()
}

/// Sample the CDF at fixed cumulative fractions (e.g. every 5%), which is
/// how the paper's distribution plots are drawn.
pub fn cdf_at_fractions(hist: &LatencyHistogram, fractions: &[f64]) -> Vec<CdfPoint> {
    fractions
        .iter()
        .map(|&f| CdfPoint {
            value: hist.percentile(f * 100.0),
            fraction: f,
        })
        .collect()
}

/// Standard 21-point grid from 0% to 100% in 5% steps.
pub fn standard_grid() -> Vec<f64> {
    (0..=20).map(|i| i as f64 / 20.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_hist(n: u64) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for i in 1..=n {
            h.record(SimDuration::from_micros(i));
        }
        h
    }

    #[test]
    fn empty_cdf() {
        assert!(cdf(&LatencyHistogram::new()).is_empty());
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let h = uniform_hist(1000);
        let points = cdf(&h);
        assert!(!points.is_empty());
        for pair in points.windows(2) {
            assert!(pair[0].value <= pair[1].value);
            assert!(pair[0].fraction <= pair[1].fraction);
        }
        let last = points.last().unwrap();
        assert!((last.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_grid_matches_percentiles() {
        let h = uniform_hist(1000);
        let grid = standard_grid();
        let points = cdf_at_fractions(&h, &grid);
        assert_eq!(points.len(), 21);
        assert_eq!(points[10].value, h.percentile(50.0));
        assert_eq!(points[20].value, h.percentile(100.0));
    }

    #[test]
    fn grid_values_monotone() {
        let h = uniform_hist(5000);
        let points = cdf_at_fractions(&h, &standard_grid());
        for pair in points.windows(2) {
            assert!(pair[0].value <= pair[1].value);
        }
    }
}
