//! Log-linear latency histogram (HDR-histogram style).
//!
//! Values are bucketed with geometric major buckets (one per power of two)
//! split into 32 linear sub-buckets, giving a worst-case quantization error
//! of ~3% across the full `u64` nanosecond range — plenty for reporting
//! means, tails and CDFs while staying allocation-light and mergeable.

use iorch_simcore::SimDuration;

const SUB_BUCKET_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS; // 32

/// A mergeable latency histogram over [`SimDuration`] samples.
#[derive(Clone, Debug, Default)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    sum_sq_ns: f64,
    min_ns: u64,
    max_ns: u64,
}

#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let major = msb - SUB_BUCKET_BITS + 1;
    let sub = (value >> (major - 1)) & (SUB_BUCKETS as u64 - 1);
    // Majors start after the first linear SUB_BUCKETS slots.
    (major as usize) * SUB_BUCKETS + sub as usize
}

/// Representative value (midpoint of the bucket) for an index.
#[inline]
fn bucket_value(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let major = (index / SUB_BUCKETS) as u32;
    let sub = (index % SUB_BUCKETS) as u64;
    let base = (SUB_BUCKETS as u64 + sub) << (major - 1);
    let width = 1u64 << (major - 1);
    base + width / 2
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Vec::new(),
            total: 0,
            sum_ns: 0,
            sum_sq_ns: 0.0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: SimDuration) {
        let ns = value.as_nanos();
        let idx = bucket_index(ns);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.sum_sq_ns += (ns as f64) * (ns as f64);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Record `n` identical samples.
    pub fn record_n(&mut self, value: SimDuration, n: u64) {
        if n == 0 {
            return;
        }
        let ns = value.as_nanos();
        let idx = bucket_index(ns);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.total += n;
        self.sum_ns += ns as u128 * n as u128;
        self.sum_sq_ns += (ns as f64) * (ns as f64) * n as f64;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when no samples have been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact arithmetic mean of the recorded samples (not bucketed).
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_ns / self.total as u128) as u64)
    }

    /// Population standard deviation of the recorded samples.
    pub fn std_dev(&self) -> SimDuration {
        if self.total < 2 {
            return SimDuration::ZERO;
        }
        let n = self.total as f64;
        let mean = self.sum_ns as f64 / n;
        let var = (self.sum_sq_ns / n - mean * mean).max(0.0);
        SimDuration::from_nanos(var.sqrt() as u64)
    }

    /// Exact minimum recorded sample.
    pub fn min(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Exact maximum recorded sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Value at percentile `p` in `[0, 100]`, quantized to bucket midpoints
    /// but clamped into the exact `[min, max]` observed range.
    pub fn percentile(&self, p: f64) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let v = bucket_value(idx).clamp(self.min_ns, self.max_ns);
                return SimDuration::from_nanos(v);
            }
        }
        self.max()
    }

    /// Median, i.e. the 50th percentile.
    #[inline]
    pub fn median(&self) -> SimDuration {
        self.percentile(50.0)
    }

    /// The 99.9th percentile — the paper's headline tail metric.
    #[inline]
    pub fn p999(&self) -> SimDuration {
        self.percentile(99.9)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.sum_sq_ns += other.sum_sq_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Iterate `(bucket_midpoint, count)` for non-empty buckets.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (SimDuration, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (SimDuration::from_nanos(bucket_value(i)), c))
    }

    /// Fraction of samples at or below `value`.
    pub fn fraction_below(&self, value: SimDuration) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let limit = bucket_index(value.as_nanos());
        let below: u64 = self.counts.iter().take(limit + 1).sum();
        below as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> SimDuration {
        SimDuration::from_micros(x)
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.percentile(99.0), SimDuration::ZERO);
        assert_eq!(h.std_dev(), SimDuration::ZERO);
    }

    #[test]
    fn single_sample_everywhere() {
        let mut h = LatencyHistogram::new();
        h.record(us(150));
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), us(150));
        assert_eq!(h.min(), us(150));
        assert_eq!(h.max(), us(150));
        // Percentile is bucketed but clamped to the observed range.
        assert_eq!(h.percentile(0.0), us(150));
        assert_eq!(h.percentile(100.0), us(150));
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(us(100));
        h.record(us(200));
        h.record(us(600));
        assert_eq!(h.mean(), us(300));
    }

    #[test]
    fn percentile_accuracy_within_bucket_error() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(SimDuration::from_nanos(i * 100)); // 100ns .. 1ms
        }
        for &(p, expect_ns) in &[(50.0, 500_000u64), (90.0, 900_000), (99.0, 990_000)] {
            let got = h.percentile(p).as_nanos() as f64;
            let err = (got - expect_ns as f64).abs() / expect_ns as f64;
            assert!(err < 0.04, "p{p}: got {got}, expect {expect_ns}, err {err}");
        }
    }

    #[test]
    fn p999_tracks_tail() {
        let mut h = LatencyHistogram::new();
        for _ in 0..999 {
            h.record(us(100));
        }
        h.record(us(10_000));
        let tail = h.p999();
        assert!(tail >= us(9_000), "tail={tail}");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = SimDuration::from_nanos(i * i + 17);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.mean(), combined.mean());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            assert_eq!(a.percentile(p), combined.percentile(p), "p={p}");
        }
    }

    #[test]
    fn record_n_matches_loop() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_n(us(42), 500);
        for _ in 0..500 {
            b.record(us(42));
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.percentile(99.0), b.percentile(99.0));
        a.record_n(us(1), 0);
        assert_eq!(a.count(), 500);
    }

    #[test]
    fn std_dev_known_value() {
        let mut h = LatencyHistogram::new();
        // Samples 2, 4, 4, 4, 5, 5, 7, 9 -> population stddev = 2.
        for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            h.record(SimDuration::from_micros(v));
        }
        let sd = h.std_dev().as_nanos() as f64;
        assert!((sd - 2_000.0).abs() < 1.0, "sd={sd}");
    }

    #[test]
    fn fraction_below_is_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(us(i));
        }
        let f10 = h.fraction_below(us(100));
        let f50 = h.fraction_below(us(500));
        let f100 = h.fraction_below(us(1000));
        assert!(f10 < f50 && f50 < f100);
        assert!((f100 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_and_tiny_values() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::ZERO);
        h.record(SimDuration::from_nanos(1));
        h.record(SimDuration::from_nanos(31));
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::from_nanos(31));
    }

    #[test]
    fn bucket_roundtrip_error_bounded() {
        // For all magnitudes, the bucket midpoint must be within ~3.2% of
        // the original value (half of one sub-bucket width).
        for shift in 0..50u32 {
            let v = (1u64 << shift) + (1u64 << shift) / 3;
            let mid = bucket_value(bucket_index(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.033, "v={v} mid={mid} err={err}");
        }
    }
}
