//! Run summaries and plain-text table rendering for the bench harness.
//!
//! Every experiment harness prints the same rows/series the paper reports;
//! [`Table`] does the aligned formatting and [`LatencySummary`] condenses a
//! histogram into the columns used across figures.

use std::fmt::Write as _;

use crate::histogram::LatencyHistogram;
use iorch_simcore::SimDuration;

/// The standard latency columns reported by the paper's figures.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Standard deviation (the paper's whiskers in Fig. 4).
    pub std_dev: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// 99.9th percentile — the paper's tail metric.
    pub p999: SimDuration,
    /// Maximum observed.
    pub max: SimDuration,
}

impl LatencySummary {
    /// Summarize a histogram.
    pub fn from_histogram(h: &LatencyHistogram) -> Self {
        LatencySummary {
            count: h.count(),
            mean: h.mean(),
            std_dev: h.std_dev(),
            p50: h.median(),
            p99: h.percentile(99.0),
            p999: h.p999(),
            max: h.max(),
        }
    }
}

/// Percentage improvement of `variant` over `baseline` for a lower-is-better
/// metric (latency). Positive means the variant is better.
pub fn latency_improvement_pct(baseline: SimDuration, variant: SimDuration) -> f64 {
    let b = baseline.as_nanos() as f64;
    if b <= 0.0 {
        return 0.0;
    }
    (b - variant.as_nanos() as f64) / b * 100.0
}

/// Percentage improvement of `variant` over `baseline` for a higher-is-better
/// metric (throughput). Positive means the variant is better.
pub fn throughput_improvement_pct(baseline: f64, variant: f64) -> f64 {
    if baseline <= 0.0 {
        return 0.0;
    }
    (variant - baseline) / baseline * 100.0
}

/// `variant / baseline` for normalized-latency plots (Figs. 7 and 9).
pub fn normalized(baseline: SimDuration, variant: SimDuration) -> f64 {
    let b = baseline.as_nanos() as f64;
    if b <= 0.0 {
        return 1.0;
    }
    variant.as_nanos() as f64 / b
}

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned plain-text table with a title line.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {cell:>w$} |", w = w);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let sep: String = {
            let mut s = String::from("|");
            for w in &widths {
                let _ = write!(s, "{}|", "-".repeat(w + 2));
            }
            s
        };
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Format a duration in the unit the paper uses for a given figure.
pub fn fmt_us(d: SimDuration) -> String {
    format!("{:.1}", d.as_micros_f64())
}

/// Format a duration in milliseconds with one decimal.
pub fn fmt_ms(d: SimDuration) -> String {
    format!("{:.1}", d.as_millis_f64())
}

/// Format a percentage with one decimal.
pub fn fmt_pct(p: f64) -> String {
    format!("{p:.1}%")
}

/// Format a ratio with three decimals (normalized-latency plots).
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use iorch_simcore::SimDuration;

    #[test]
    fn summary_from_histogram() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100u64 {
            h.record(SimDuration::from_micros(i * 10));
        }
        let s = LatencySummary::from_histogram(&h);
        assert_eq!(s.count, 100);
        assert_eq!(s.mean, SimDuration::from_micros(505));
        assert!(s.p50 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max);
    }

    #[test]
    fn improvement_signs() {
        let base = SimDuration::from_micros(200);
        let better = SimDuration::from_micros(150);
        let worse = SimDuration::from_micros(250);
        assert!((latency_improvement_pct(base, better) - 25.0).abs() < 1e-9);
        assert!((latency_improvement_pct(base, worse) + 25.0).abs() < 1e-9);
        assert!((throughput_improvement_pct(100.0, 120.0) - 20.0).abs() < 1e-9);
        assert_eq!(latency_improvement_pct(SimDuration::ZERO, better), 0.0);
        assert_eq!(throughput_improvement_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn normalized_ratio() {
        let base = SimDuration::from_micros(200);
        let v = SimDuration::from_micros(180);
        assert!((normalized(base, v) - 0.9).abs() < 1e-9);
        assert_eq!(normalized(SimDuration::ZERO, v), 1.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["x", "latency"]);
        t.row(vec!["1".into(), "100.0".into()]);
        t.row(vec!["200".into(), "5.0".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("latency"));
        // Both rows render with consistent pipe counts.
        let pipes: Vec<usize> = s.lines().skip(1).map(|l| l.matches('|').count()).collect();
        assert!(pipes.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_us(SimDuration::from_micros(1500)), "1500.0");
        assert_eq!(fmt_ms(SimDuration::from_micros(1500)), "1.5");
        assert_eq!(fmt_pct(12.34), "12.3%");
        assert_eq!(fmt_ratio(0.9), "0.900");
    }
}
