//! Sliding-window rate tracking.
//!
//! [`WindowedRate`] measures bytes (or any quantity) per second over a
//! recent window. The hypervisor's monitoring module uses it as the
//! `blktrace` stand-in: "bandwidth usage of a block device is lower than
//! one tenth of its capacity" (the paper's flush trigger) is a windowed
//! rate compared against device capacity.

use std::collections::VecDeque;

use iorch_simcore::{SimDuration, SimTime};

/// Rolling sum of events over a fixed look-back window.
#[derive(Clone, Debug)]
pub struct WindowedRate {
    window: SimDuration,
    events: VecDeque<(SimTime, u64)>,
    window_sum: u64,
    lifetime_sum: u64,
}

impl WindowedRate {
    /// Create a tracker with the given look-back window.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        WindowedRate {
            window,
            events: VecDeque::new(),
            window_sum: 0,
            lifetime_sum: 0,
        }
    }

    /// Record `amount` units at time `now`. Timestamps must be non-
    /// decreasing (they come off the simulation clock).
    pub fn record(&mut self, now: SimTime, amount: u64) {
        debug_assert!(
            self.events.back().is_none_or(|&(t, _)| t <= now),
            "timestamps must be monotone"
        );
        self.events.push_back((now, amount));
        self.window_sum += amount;
        self.lifetime_sum += amount;
        self.evict(now);
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = now - self.window; // saturating at 0
        while let Some(&(t, amt)) = self.events.front() {
            if t < cutoff {
                self.events.pop_front();
                self.window_sum -= amt;
            } else {
                break;
            }
        }
    }

    /// Sum of amounts inside the window ending at `now`.
    pub fn sum_in_window(&mut self, now: SimTime) -> u64 {
        self.evict(now);
        self.window_sum
    }

    /// Average rate (units per second) over the window ending at `now`.
    pub fn rate_per_sec(&mut self, now: SimTime) -> f64 {
        let sum = self.sum_in_window(now);
        sum as f64 / self.window.as_secs_f64()
    }

    /// Total recorded over the tracker's lifetime.
    pub fn lifetime_sum(&self) -> u64 {
        self.lifetime_sum
    }

    /// The configured window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }
}

/// Simple monotonically increasing counter with a start time, for computing
/// lifetime throughput (e.g. FileBench MB/s over a run).
#[derive(Clone, Copy, Debug, Default)]
pub struct Throughput {
    total: u64,
    started: SimTime,
}

impl Throughput {
    /// Counter starting at `start`.
    pub fn new(start: SimTime) -> Self {
        Throughput {
            total: 0,
            started: start,
        }
    }

    /// Add an amount.
    #[inline]
    pub fn add(&mut self, amount: u64) {
        self.total += amount;
    }

    /// Total accumulated.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Average rate (units/second) from start until `now`.
    pub fn rate_per_sec(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_since(self.started).as_secs_f64();
        if elapsed <= 0.0 {
            0.0
        } else {
            self.total as f64 / elapsed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn window_evicts_old_events() {
        let mut r = WindowedRate::new(SimDuration::from_millis(100));
        r.record(ms(0), 10);
        r.record(ms(50), 20);
        assert_eq!(r.sum_in_window(ms(50)), 30);
        // At t=120 the event at t=0 has left the [20,120] window.
        assert_eq!(r.sum_in_window(ms(120)), 20);
        // At t=200 everything has left.
        assert_eq!(r.sum_in_window(ms(200)), 0);
        assert_eq!(r.lifetime_sum(), 30);
    }

    #[test]
    fn boundary_event_is_inclusive() {
        let mut r = WindowedRate::new(SimDuration::from_millis(100));
        r.record(ms(0), 7);
        // Cutoff is exactly t=0 at now=100ms; events *at* the cutoff stay.
        assert_eq!(r.sum_in_window(ms(100)), 7);
        assert_eq!(r.sum_in_window(ms(101)), 0);
    }

    #[test]
    fn rate_per_sec_scales_by_window() {
        let mut r = WindowedRate::new(SimDuration::from_millis(500));
        r.record(ms(400), 1000);
        // 1000 units in a 0.5s window = 2000 units/s.
        assert!((r.rate_per_sec(ms(400)) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_lifetime_rate() {
        let mut t = Throughput::new(ms(1000));
        t.add(4096);
        t.add(4096);
        assert_eq!(t.total(), 8192);
        let rate = t.rate_per_sec(ms(3000)); // 8192 bytes over 2s
        assert!((rate - 4096.0).abs() < 1e-9);
        // Before any time elapses the rate is defined as zero.
        assert_eq!(t.rate_per_sec(ms(1000)), 0.0);
    }
}
