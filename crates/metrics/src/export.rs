//! Live metrics export: the telemetry side of the experiment harness.
//!
//! Post-hoc histograms answer "what happened over the run"; long scale
//! runs and SLO-driven policies (IOTune-style elastic per-VM states) need
//! "what is happening *now*". [`TelemetryHub`] turns the two live streams
//! the simulator produces — application operation latencies (fed by the
//! workload recorders) and trace events (fed by the
//! [`iorch_simcore::trace`] tap) — into fixed-cadence windows, each
//! summarized as a [`LiveReport`]: ops, p50/p99/p99.9, SLO-violation
//! counts, device throughput and control-plane decision counts.
//!
//! Determinism contract (DESIGN.md §12): the hub is an *observer*. It
//! holds no RNG, schedules no events, and is fed exclusively by borrowed
//! data, so attaching it cannot change the (seed → trace) mapping; the
//! emitted report stream is itself a pure function of the run. Reports
//! are cut at fixed sim-time boundaries (`k * cadence`), rolled forward
//! whenever a sample arrives and flushed by [`TelemetryHub::finish`].

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use iorch_simcore::trace::TraceEventKind;
use iorch_simcore::{SimDuration, SimTime};

use crate::histogram::LatencyHistogram;

/// One telemetry window, summarized.
#[derive(Clone, Debug)]
pub struct LiveReport {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive; `start + cadence` except for the final
    /// partial window cut by [`TelemetryHub::finish`]).
    pub end: SimTime,
    /// Application operations recorded in the window.
    pub ops: u64,
    /// Median application op latency.
    pub p50: SimDuration,
    /// 99th-percentile application op latency.
    pub p99: SimDuration,
    /// 99.9th-percentile application op latency.
    pub p999: SimDuration,
    /// Ops whose latency exceeded the SLO threshold (0 when no SLO set).
    pub slo_violations: u64,
    /// Device completions observed via the trace tap.
    pub dev_ops: u64,
    /// Bytes dispatched to the device, observed via the trace tap.
    pub dev_bytes: u64,
    /// Control-plane decisions observed via the trace tap.
    pub decisions: u64,
}

impl LiveReport {
    /// Fraction of ops violating the SLO, in `[0, 1]` (0 when idle).
    pub fn slo_violation_rate(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.slo_violations as f64 / self.ops as f64
        }
    }

    /// Render as the one-line live format streamed during a run:
    ///
    /// ```text
    /// [telemetry 1.500s] ops=420 p50=812.0us p99=2104.0us p999=2944.0us slo_viol=2/420 (0.5%) dev_ops=388 dev_bytes=12582912 decisions=3
    /// ```
    pub fn render(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "[telemetry {:.3}s] ops={} p50={:.1}us p99={:.1}us p999={:.1}us",
            self.end.as_secs_f64(),
            self.ops,
            self.p50.as_micros_f64(),
            self.p99.as_micros_f64(),
            self.p999.as_micros_f64(),
        );
        let _ = write!(
            s,
            " slo_viol={}/{} ({:.1}%)",
            self.slo_violations,
            self.ops,
            self.slo_violation_rate() * 100.0
        );
        let _ = write!(
            s,
            " dev_ops={} dev_bytes={} decisions={}",
            self.dev_ops, self.dev_bytes, self.decisions
        );
        s
    }
}

/// Receives each completed [`LiveReport`] as it is cut.
pub type ReportSink = Box<dyn FnMut(&LiveReport)>;

/// Fixed-cadence live telemetry aggregator. See the module docs.
///
/// `Debug` is summary-only (the sink is opaque).
pub struct TelemetryHub {
    cadence: SimDuration,
    slo: Option<SimDuration>,
    window_start: SimTime,
    next_cut: SimTime,
    app: LatencyHistogram,
    slo_violations: u64,
    dev_ops: u64,
    dev_bytes: u64,
    decisions: u64,
    finished: bool,
    reports: Vec<LiveReport>,
    sink: Option<ReportSink>,
}

impl std::fmt::Debug for TelemetryHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryHub")
            .field("cadence", &self.cadence)
            .field("slo", &self.slo)
            .field("window_start", &self.window_start)
            .field("reports", &self.reports.len())
            .finish_non_exhaustive()
    }
}

impl TelemetryHub {
    /// New hub cutting windows every `cadence` (≥ 1 ms enforced), with an
    /// optional application-latency SLO threshold.
    pub fn new(cadence: SimDuration, slo: Option<SimDuration>) -> Self {
        let cadence = cadence.max(SimDuration::from_millis(1));
        TelemetryHub {
            cadence,
            slo,
            window_start: SimTime::ZERO,
            next_cut: SimTime::ZERO + cadence,
            app: LatencyHistogram::new(),
            slo_violations: 0,
            dev_ops: 0,
            dev_bytes: 0,
            decisions: 0,
            finished: false,
            reports: Vec::new(),
            sink: None,
        }
    }

    /// Attach a sink called once per completed window (e.g. an eprintln
    /// of [`LiveReport::render`]). Reports are *also* retained internally.
    pub fn with_sink(mut self, sink: ReportSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The configured cadence.
    pub fn cadence(&self) -> SimDuration {
        self.cadence
    }

    /// The configured SLO threshold, if any.
    pub fn slo(&self) -> Option<SimDuration> {
        self.slo
    }

    /// Emit every window boundary at or before `now`.
    fn roll(&mut self, now: SimTime) {
        while now >= self.next_cut {
            let end = self.next_cut;
            self.cut(end);
            self.window_start = end;
            self.next_cut = end + self.cadence;
        }
    }

    fn cut(&mut self, end: SimTime) {
        let report = LiveReport {
            start: self.window_start,
            end,
            ops: self.app.count(),
            p50: self.app.median(),
            p99: self.app.percentile(99.0),
            p999: self.app.p999(),
            slo_violations: self.slo_violations,
            dev_ops: self.dev_ops,
            dev_bytes: self.dev_bytes,
            decisions: self.decisions,
        };
        if let Some(sink) = self.sink.as_mut() {
            sink(&report);
        }
        self.reports.push(report);
        self.app = LatencyHistogram::new();
        self.slo_violations = 0;
        self.dev_ops = 0;
        self.dev_bytes = 0;
        self.decisions = 0;
    }

    /// Record one application operation (workload-recorder feed).
    pub fn record_op(&mut self, now: SimTime, latency: SimDuration) {
        self.roll(now);
        self.app.record(latency);
        if self.slo.is_some_and(|t| latency > t) {
            self.slo_violations += 1;
        }
    }

    /// Observe one trace event (the [`iorch_simcore::trace`] tap feed).
    /// Only device dispatch/complete and control-plane decisions are
    /// aggregated; everything else is ignored cheaply.
    pub fn on_trace(&mut self, t: SimTime, kind: &TraceEventKind) {
        match kind {
            TraceEventKind::DeviceDispatch { len, .. } => {
                self.roll(t);
                self.dev_bytes += len;
            }
            TraceEventKind::DeviceComplete { .. } => {
                self.roll(t);
                self.dev_ops += 1;
            }
            TraceEventKind::Decision(_) => {
                self.roll(t);
                self.decisions += 1;
            }
            _ => {}
        }
    }

    /// Snapshot of the current (partial) window without cutting it.
    pub fn snapshot(&self, now: SimTime) -> LiveReport {
        LiveReport {
            start: self.window_start,
            end: now,
            ops: self.app.count(),
            p50: self.app.median(),
            p99: self.app.percentile(99.0),
            p999: self.app.p999(),
            slo_violations: self.slo_violations,
            dev_ops: self.dev_ops,
            dev_bytes: self.dev_bytes,
            decisions: self.decisions,
        }
    }

    /// Cut all windows up to `now`, then the final partial window if it
    /// holds anything. Idempotent; call once at end of run.
    pub fn finish(&mut self, now: SimTime) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.roll(now);
        if self.app.count() > 0 || self.dev_ops > 0 || self.dev_bytes > 0 || self.decisions > 0 {
            self.cut(now);
        }
    }

    /// All reports cut so far, oldest first.
    pub fn reports(&self) -> &[LiveReport] {
        &self.reports
    }

    /// Consume the hub, returning its reports.
    pub fn into_reports(self) -> Vec<LiveReport> {
        self.reports
    }
}

/// Shared handle to a [`TelemetryHub`], cloned into workload recorders
/// and the trace tap.
pub type SharedHub = Rc<RefCell<TelemetryHub>>;

/// Convenience: a shared hub.
pub fn shared_hub(cadence: SimDuration, slo: Option<SimDuration>) -> SharedHub {
    Rc::new(RefCell::new(TelemetryHub::new(cadence, slo)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn windows_cut_at_fixed_boundaries() {
        let mut hub = TelemetryHub::new(SimDuration::from_millis(100), None);
        hub.record_op(ms(30), SimDuration::from_micros(10));
        hub.record_op(ms(90), SimDuration::from_micros(20));
        // Crossing into the second window cuts the first.
        hub.record_op(ms(150), SimDuration::from_micros(30));
        assert_eq!(hub.reports().len(), 1);
        let r = &hub.reports()[0];
        assert_eq!(r.start, ms(0));
        assert_eq!(r.end, ms(100));
        assert_eq!(r.ops, 2);
        hub.finish(ms(180));
        assert_eq!(hub.reports().len(), 2);
        assert_eq!(hub.reports()[1].ops, 1);
        assert_eq!(hub.reports()[1].end, ms(180));
    }

    #[test]
    fn quiet_gaps_emit_empty_windows() {
        let mut hub = TelemetryHub::new(SimDuration::from_millis(100), None);
        hub.record_op(ms(10), SimDuration::from_micros(10));
        hub.record_op(ms(450), SimDuration::from_micros(10));
        // Windows [0,100), [100,200), [200,300), [300,400) were all cut.
        assert_eq!(hub.reports().len(), 4);
        assert_eq!(hub.reports()[0].ops, 1);
        assert_eq!(hub.reports()[1].ops, 0);
        assert_eq!(hub.reports()[1].p50, SimDuration::ZERO);
    }

    #[test]
    fn slo_violations_counted_per_window() {
        let slo = Some(SimDuration::from_micros(100));
        let mut hub = TelemetryHub::new(SimDuration::from_millis(100), slo);
        hub.record_op(ms(10), SimDuration::from_micros(50));
        hub.record_op(ms(20), SimDuration::from_micros(150));
        hub.record_op(ms(30), SimDuration::from_micros(100)); // at threshold: ok
        hub.finish(ms(40));
        let r = &hub.reports()[0];
        assert_eq!(r.ops, 3);
        assert_eq!(r.slo_violations, 1);
        assert!((r.slo_violation_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn trace_feed_aggregates_device_and_decisions() {
        use iorch_simcore::trace::Decision;
        let mut hub = TelemetryHub::new(SimDuration::from_millis(100), None);
        hub.on_trace(
            ms(5),
            &TraceEventKind::DeviceDispatch {
                req: 1,
                dom: 0,
                write: true,
                len: 4096,
                qdepth: 1,
            },
        );
        hub.on_trace(
            ms(6),
            &TraceEventKind::DeviceComplete {
                req: 1,
                dom: 0,
                latency_us: 80,
            },
        );
        hub.on_trace(
            ms(7),
            &TraceEventKind::Decision(Decision::FlushAck { dom: 0 }),
        );
        // Ignored kind: no panic, no aggregation.
        hub.on_trace(ms(8), &TraceEventKind::CongestionEnter { dom: 0 });
        hub.finish(ms(9));
        let r = &hub.reports()[0];
        assert_eq!((r.dev_bytes, r.dev_ops, r.decisions), (4096, 1, 1));
    }

    #[test]
    fn finish_is_idempotent_and_skips_empty_tail() {
        let mut hub = TelemetryHub::new(SimDuration::from_millis(100), None);
        hub.record_op(ms(10), SimDuration::from_micros(10));
        hub.finish(ms(100));
        // The op landed in [0,100) which was cut by roll(); the tail at
        // t=100 is empty and must not produce a second report.
        assert_eq!(hub.reports().len(), 1);
        hub.finish(ms(200));
        assert_eq!(hub.reports().len(), 1);
    }

    #[test]
    fn render_is_deterministic() {
        let mut hub = TelemetryHub::new(SimDuration::from_millis(100), None);
        hub.record_op(ms(10), SimDuration::from_micros(500));
        hub.finish(ms(50));
        let a = hub.reports()[0].render();
        assert!(a.starts_with("[telemetry 0.050s] ops=1 p50=500.0us"));
        assert!(a.contains("slo_viol=0/1 (0.0%)"));
    }

    #[test]
    fn sink_sees_every_cut() {
        use std::cell::Cell;
        let n = Rc::new(Cell::new(0u32));
        let n2 = Rc::clone(&n);
        let mut hub = TelemetryHub::new(SimDuration::from_millis(100), None)
            .with_sink(Box::new(move |_| n2.set(n2.get() + 1)));
        hub.record_op(ms(250), SimDuration::from_micros(10));
        hub.finish(ms(260));
        assert_eq!(n.get() as usize, hub.reports().len());
        assert_eq!(n.get(), 3);
    }
}
