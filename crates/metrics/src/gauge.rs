//! Time-weighted gauges for utilization-style metrics.
//!
//! The paper reports average CPU utilization (Fig. 10c) and the storage
//! monitor needs device busy fractions; both are time-weighted averages of
//! a piecewise-constant signal, which is what [`TimeWeightedGauge`] and
//! [`BusyTracker`] compute online in O(1) memory.

use iorch_simcore::{SimDuration, SimTime};

/// Online time-weighted average of a piecewise-constant value.
#[derive(Clone, Copy, Debug)]
pub struct TimeWeightedGauge {
    value: f64,
    last_change: SimTime,
    weighted_sum: f64,
    started: SimTime,
}

impl TimeWeightedGauge {
    /// Gauge starting with `initial` at time `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeightedGauge {
            value: initial,
            last_change: start,
            weighted_sum: 0.0,
            started: start,
        }
    }

    /// Set the value at time `now` (must be >= the previous update time).
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(now >= self.last_change);
        let span = now.saturating_since(self.last_change).as_secs_f64();
        self.weighted_sum += self.value * span;
        self.value = value;
        self.last_change = now;
    }

    /// Add a delta to the current value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current instantaneous value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Time-weighted average from the start until `now`.
    pub fn average(&self, now: SimTime) -> f64 {
        let total = now.saturating_since(self.started).as_secs_f64();
        if total <= 0.0 {
            return self.value;
        }
        let pending = now.saturating_since(self.last_change).as_secs_f64();
        (self.weighted_sum + self.value * pending) / total
    }
}

/// Tracks busy/idle periods of a single resource (a device, an I/O core).
#[derive(Clone, Copy, Debug)]
pub struct BusyTracker {
    busy_since: Option<SimTime>,
    busy_total: SimDuration,
    started: SimTime,
}

impl BusyTracker {
    /// Idle tracker starting at `start`.
    pub fn new(start: SimTime) -> Self {
        BusyTracker {
            busy_since: None,
            busy_total: SimDuration::ZERO,
            started: start,
        }
    }

    /// Mark the resource busy at `now`; no-op if already busy.
    pub fn set_busy(&mut self, now: SimTime) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
        }
    }

    /// Mark the resource idle at `now`; no-op if already idle.
    pub fn set_idle(&mut self, now: SimTime) {
        if let Some(since) = self.busy_since.take() {
            self.busy_total += now.saturating_since(since);
        }
    }

    /// Whether the resource is currently busy.
    pub fn is_busy(&self) -> bool {
        self.busy_since.is_some()
    }

    /// Total busy time up to `now` (including an open busy period).
    pub fn busy_time(&self, now: SimTime) -> SimDuration {
        let open = self
            .busy_since
            .map(|s| now.saturating_since(s))
            .unwrap_or(SimDuration::ZERO);
        self.busy_total + open
    }

    /// Busy fraction in `[0, 1]` from the start until `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let total = now.saturating_since(self.started).as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        (self.busy_time(now).as_secs_f64() / total).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn gauge_time_weighted_average() {
        let mut g = TimeWeightedGauge::new(ms(0), 0.0);
        g.set(ms(100), 1.0); // 0 for 100ms
        g.set(ms(300), 0.5); // 1 for 200ms
                             // then 0.5 for 100ms -> (0*0.1 + 1*0.2 + 0.5*0.1) / 0.4 = 0.625
        let avg = g.average(ms(400));
        assert!((avg - 0.625).abs() < 1e-9, "avg={avg}");
        assert_eq!(g.current(), 0.5);
    }

    #[test]
    fn gauge_add_deltas() {
        let mut g = TimeWeightedGauge::new(ms(0), 2.0);
        g.add(ms(50), 3.0);
        assert_eq!(g.current(), 5.0);
        g.add(ms(100), -5.0);
        assert_eq!(g.current(), 0.0);
    }

    #[test]
    fn gauge_average_before_any_update() {
        let g = TimeWeightedGauge::new(ms(10), 7.0);
        assert_eq!(g.average(ms(10)), 7.0);
        assert!((g.average(ms(20)) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn busy_tracker_accumulates_periods() {
        let mut b = BusyTracker::new(ms(0));
        b.set_busy(ms(10));
        b.set_idle(ms(30)); // 20ms busy
        b.set_busy(ms(50));
        b.set_busy(ms(60)); // no-op, already busy
        b.set_idle(ms(90)); // 40ms busy
        b.set_idle(ms(95)); // no-op, already idle
        assert_eq!(b.busy_time(ms(100)), SimDuration::from_millis(60));
        assert!((b.utilization(ms(100)) - 0.6).abs() < 1e-9);
        assert!(!b.is_busy());
    }

    #[test]
    fn busy_tracker_open_period_counts() {
        let mut b = BusyTracker::new(ms(0));
        b.set_busy(ms(0));
        assert!(b.is_busy());
        assert!((b.utilization(ms(100)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_zero_elapsed() {
        let b = BusyTracker::new(ms(5));
        assert_eq!(b.utilization(ms(5)), 0.0);
    }
}
