//! # iorch-metrics — measurement primitives for the IOrchestra reproduction
//!
//! Everything the experiments record flows through this crate:
//!
//! * [`LatencyHistogram`] — mergeable log-linear histogram with exact mean
//!   and ~3%-accurate percentiles across the full nanosecond range;
//! * [`cdf`]/[`cdf_at_fractions`] — latency-distribution curves (paper
//!   Figs. 5–6);
//! * [`WindowedRate`] / [`Throughput`] — bandwidth monitoring (the
//!   blktrace stand-in that drives the flush policy) and run throughput;
//! * [`TimeWeightedGauge`] / [`BusyTracker`] — CPU and device utilization
//!   (paper Fig. 10c);
//! * [`LatencySummary`] / [`Table`] — the row/series formatting used by
//!   every bench harness;
//! * [`TelemetryHub`] / [`LiveReport`] — live fixed-cadence export of
//!   p50/p99/SLO-violation streams for long runs (the `trace`-tap bridge).

#![warn(missing_docs)]

mod cdf;
mod export;
mod gauge;
mod histogram;
mod rate;
mod summary;

pub use cdf::{cdf, cdf_at_fractions, standard_grid, CdfPoint};
pub use export::{shared_hub, LiveReport, ReportSink, SharedHub, TelemetryHub};
pub use gauge::{BusyTracker, TimeWeightedGauge};
pub use histogram::LatencyHistogram;
pub use rate::{Throughput, WindowedRate};
pub use summary::{
    fmt_ms, fmt_pct, fmt_ratio, fmt_us, latency_improvement_pct, normalized,
    throughput_improvement_pct, LatencySummary, Table,
};
